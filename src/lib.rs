//! # Genie — framework-layer AI accelerator disaggregation
//!
//! A from-scratch Rust implementation of the Genie platform from *"Lost
//! in Translation: The Search for Meaning in Network-Attached AI
//! Accelerator Disaggregation"* (HotNets '25): a semantics-aware runtime
//! that captures application intent at the ML-framework layer into a
//! **Semantically-Rich Graph (SRG)** and uses it to schedule and execute
//! work on disaggregated, network-attached accelerators.
//!
//! This crate is the facade over the platform's workspace:
//!
//! | crate | role |
//! |---|---|
//! | [`srg`] | the SRG IR: annotations, validation, traversal, lineage cuts |
//! | [`analysis`] | semantic lint engine: `GA0xx` graph + `GA1xx` plan passes |
//! | [`tensor`] | CPU tensor kernels (the functional plane's arithmetic) |
//! | [`frontend`] | lazy-tensor intent capture, recognizers, re-capture |
//! | [`models`] | model zoo: transformer LM, CNN, DLRM, multimodal |
//! | [`cluster`] | accelerator/NIC/topology descriptions + live state |
//! | [`netsim`] | deterministic discrete-event network simulation |
//! | [`transport`] | real TCP transport: framing, codec, RPC, pinned pools |
//! | [`scheduler`] | cost model, policies, rewrites, global scheduling |
//! | [`telemetry`] | cross-layer spans, metrics registry, Perfetto export |
//! | [`backend`] | local / simulated / remote-over-TCP execution |
//! | [`serving`] | continuous-batching serving loop: SLO queue, KV residency |
//! | [`lineage`] | lineage log, replay cuts, commit points |
//! | [`bench`](mod@bench) | regeneration of every table and figure in the paper |
//!
//! ## Quickstart
//!
//! ```
//! use genie::prelude::*;
//!
//! // 1. Capture intent: code runs lazily, building an SRG.
//! let ctx = CaptureCtx::new("quickstart");
//! let x = ctx.input("x", [1, 8], ElemType::F32, Some(genie::tensor::init::randn([1, 8], 1)));
//! let w = ctx.parameter("w", [8, 8], ElemType::F32, Some(genie::tensor::init::randn([8, 8], 2)));
//! let y = x.matmul(&w).gelu();
//! y.mark_output();
//! let cap = ctx.finish();
//!
//! // 2. Schedule it onto a disaggregated pool.
//! let topo = Topology::paper_testbed();
//! let state = ClusterState::new();
//! let cost = CostModel::ideal_25g();
//! let plan = genie::scheduler::schedule(&cap.srg, &topo, &state, &cost, &SemanticsAware::new());
//! assert!(plan.devices_used() >= 1);
//!
//! // 3. Execute functionally and check the math.
//! let out = genie::backend::LocalBackend.execute_outputs(&cap).unwrap();
//! assert_eq!(out[0].as_f("y").dims(), &[1, 8]);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod chaos;

pub use genie_analysis as analysis;
pub use genie_backend as backend;
pub use genie_bench as bench;
pub use genie_cluster as cluster;
pub use genie_frontend as frontend;
pub use genie_lineage as lineage;
pub use genie_models as models;
pub use genie_netsim as netsim;
pub use genie_scheduler as scheduler;
pub use genie_serving as serving;
pub use genie_srg as srg;
pub use genie_telemetry as telemetry;
pub use genie_tensor as tensor;
pub use genie_transport as transport;

/// The items most programs need.
pub mod prelude {
    pub use crate::chaos::ChaosConfig;
    pub use genie_backend::{LocalBackend, RemoteSession, SimBackend};
    pub use genie_cluster::{ClusterState, Topology};
    pub use genie_frontend::capture::{CaptureCtx, CapturedGraph, LazyTensor};
    pub use genie_frontend::value::Value;
    pub use genie_frontend::RecaptureSession;
    pub use genie_scheduler::{
        schedule, CostModel, DataAware, ExecutionPlan, LeastLoaded, Policy, RoundRobin,
        SemanticsAware,
    };
    pub use genie_serving::{ArrivalConfig, ServingConfig, ServingLoop, ServingModel};
    pub use genie_srg::{ElemType, Modality, Phase, Residency, Srg};
}
