//! Chaos harness (§4g of DESIGN.md): reusable seeded fault fixtures.
//!
//! A [`ChaosConfig`] is the full fault story of one run, derived from a
//! single seed: a `genie-netsim` [`FaultSchedule`] for the simulated
//! fabric, the matching scheduler-visible [`ClusterState`] projection,
//! and a transport-level [`ChaosPolicy`] + [`RetryPolicy`] pair for the
//! real TCP plane. Tests sweep seeds; every derived behaviour — fault
//! windows, backoff jitter, stall/drop decisions — is a pure function of
//! the seed, so a failing seed reproduces exactly.
//!
//! ```
//! use genie::chaos::ChaosConfig;
//! use genie::models::Workload;
//!
//! let run = ChaosConfig::for_testbed(42).run_sim(&Workload::ComputerVision.spec_graph());
//! assert!(run.faulty.makespan_s >= 0.0);
//! ```

use genie_cluster::{ClusterState, Topology};
use genie_netsim::{FaultPlan, FaultSchedule, Nanos, RpcParams};
use genie_scheduler::{schedule, CostModel, ExecutionPlan, SemanticsAware};
use genie_srg::Srg;
use genie_transport::{ChaosPolicy, RetryPolicy};
use std::time::Duration;

/// Per-attempt deadline used by [`ChaosConfig::retry_policy`]; stalls
/// injected by [`ChaosConfig::transport_policy`] sleep past it so they
/// surface as typed timeouts rather than slow successes.
pub const CHAOS_DEADLINE: Duration = Duration::from_millis(150);

/// A seeded chaos fixture.
#[derive(Clone, Debug)]
pub struct ChaosConfig {
    /// The one knob: drives schedule generation, retry jitter, and the
    /// chaotic server's decision stream.
    pub seed: u64,
    /// The simulated-fabric fault schedule this seed generated (empty for
    /// the oracle configuration).
    pub schedule: FaultSchedule,
}

impl ChaosConfig {
    /// The fault-free baseline every chaotic run is compared against.
    pub fn oracle() -> Self {
        ChaosConfig {
            seed: 0,
            schedule: FaultSchedule::none(),
        }
    }

    /// Generate a schedule of `faults` seeded faults over `hosts` hosts
    /// and a `horizon` of simulated time.
    pub fn generate(seed: u64, hosts: u32, horizon: Nanos, faults: usize) -> Self {
        ChaosConfig {
            seed,
            schedule: FaultSchedule::generate(seed, hosts, horizon, faults),
        }
    }

    /// [`generate`](Self::generate) sized for
    /// [`Topology::paper_testbed`]: two hosts, an eight-second horizon
    /// (weight uploads dominate the first ~4 s), six faults.
    pub fn for_testbed(seed: u64) -> Self {
        Self::generate(seed, 2, Nanos::from_secs_f64(8.0), 6)
    }

    /// True when this configuration injects nothing anywhere.
    pub fn is_oracle(&self) -> bool {
        self.schedule.is_empty()
    }

    /// The netsim fault plan to install with
    /// [`Fabric::apply_fault_plan`](genie_netsim::Fabric::apply_fault_plan).
    pub fn fault_plan(&self) -> FaultPlan {
        FaultPlan::new(self.seed, self.schedule.clone())
    }

    /// Fresh cluster state carrying the scheduler's view of this
    /// schedule: derated links and conservatively-partitioned pairs.
    pub fn planning_state(&self, topo: &Topology) -> ClusterState {
        let mut state = ClusterState::new();
        self.fault_plan()
            .project_onto_state(&mut state, topo.hosts().len() as u32);
        state
    }

    /// Transport-plane hostility matched to the seed: delivers faithfully
    /// for the oracle, otherwise drops ~25% of responses and stalls ~10%
    /// past [`CHAOS_DEADLINE`].
    pub fn transport_policy(&self) -> ChaosPolicy {
        if self.is_oracle() {
            ChaosPolicy::none()
        } else {
            ChaosPolicy::hostile(self.seed, CHAOS_DEADLINE * 2)
        }
    }

    /// The retry policy a client should pair with
    /// [`transport_policy`](Self::transport_policy): tight per-attempt
    /// deadlines, seed-keyed jitter.
    pub fn retry_policy(&self) -> RetryPolicy {
        RetryPolicy {
            max_attempts: 4,
            base_backoff: Duration::from_millis(5),
            max_backoff: Duration::from_millis(40),
            deadline: CHAOS_DEADLINE,
            seed: self.seed,
        }
    }

    /// Simulate `srg` on the paper testbed under this configuration and
    /// its fault-free oracle, with the semantics-aware policy end to end:
    /// the scheduler plans against [`planning_state`](Self::planning_state)
    /// (rerouting off partitioned hosts), the fabric runs under
    /// [`fault_plan`](Self::fault_plan).
    pub fn run_sim(&self, srg: &Srg) -> ChaosRun {
        let topo = Topology::paper_testbed();
        let cost = CostModel::paper_stack();
        let params = RpcParams::rdma_zero_copy();

        let clean = ClusterState::new();
        let oracle_plan = schedule(srg, &topo, &clean, &cost, &SemanticsAware::new());
        let oracle = genie_backend::simulate_once(&oracle_plan, &topo, &cost, params.clone());

        let state = self.planning_state(&topo);
        let plan = schedule(srg, &topo, &state, &cost, &SemanticsAware::new());
        let rerouted = plan.devices_used() < oracle_plan.devices_used();
        let faulty =
            genie_backend::simulate_once_faulty(&plan, &topo, &cost, params, &self.fault_plan());
        ChaosRun {
            oracle,
            oracle_plan,
            faulty,
            plan,
            rerouted,
        }
    }
}

/// One simulated chaos run alongside its fault-free oracle.
pub struct ChaosRun {
    /// Report of the fault-free run.
    pub oracle: genie_backend::SimReport,
    /// The oracle's plan.
    pub oracle_plan: ExecutionPlan,
    /// Report of the faulted run.
    pub faulty: genie_backend::SimReport,
    /// The plan scheduled under the fault projection.
    pub plan: ExecutionPlan,
    /// Whether the scheduler pulled work off partitioned devices.
    pub rerouted: bool,
}
