//! Data-plane micro-benchmarks: kernel dispatch paths (scalar vs blocked
//! vs parallel), zero-copy tensor plumbing, and wavefront vs sequential
//! interpretation. The `bench_dataplane` binary produces the committed
//! `BENCH_dataplane.json` artifact; this harness is for interactive
//! `cargo bench -p genie-bench --bench dataplane` digging.

use criterion::{criterion_group, criterion_main, Criterion};
use genie_frontend::capture::CaptureCtx;
use genie_frontend::interp;
use genie_models::{TransformerConfig, TransformerLm};
use genie_tensor::{init, ops};

fn bench_matmul_paths(c: &mut Criterion) {
    let mut group = c.benchmark_group("matmul");
    group.sample_size(10);
    for &n in &[128usize, 256, 512] {
        let a = init::randn([n, n], 1);
        let b = init::randn([n, n], 2);
        group.bench_function(format!("scalar/{n}"), |bch| {
            bch.iter(|| ops::matmul_scalar(&a, &b).len())
        });
        group.bench_function(format!("blocked/{n}"), |bch| {
            bch.iter(|| ops::matmul_blocked(&a, &b).len())
        });
        group.bench_function(format!("parallel/{n}"), |bch| {
            bch.iter(|| ops::matmul_parallel(&a, &b).len())
        });
    }
    group.finish();
}

fn bench_zero_copy(c: &mut Criterion) {
    let t = init::randn([1024, 1024], 3);
    c.bench_function("tensor/clone_1m", |b| b.iter(|| t.clone().len()));
    c.bench_function("tensor/reshaped_1m", |b| {
        b.iter(|| t.reshaped([1024 * 1024]).len())
    });
    c.bench_function("tensor/deep_copy_1m", |b| {
        b.iter(|| genie_tensor::Tensor::from_vec([1024, 1024], t.data().to_vec()).len())
    });
}

fn bench_interp(c: &mut Criterion) {
    let model = TransformerLm::new_functional(TransformerConfig::tiny(), 7);
    let prompt: Vec<i64> = (0..16).collect();
    let ctx = CaptureCtx::new("prefill");
    let cap = model.capture_prefill(&ctx, &prompt);
    cap.logits.mark_output();
    let captured = ctx.finish();

    let mut group = c.benchmark_group("interp");
    group.sample_size(10);
    group.bench_function("sequential/tiny_prefill", |b| {
        b.iter(|| {
            interp::execute_sequential(&captured.srg, &captured.values)
                .unwrap()
                .len()
        })
    });
    group.bench_function("wavefront/tiny_prefill", |b| {
        b.iter(|| {
            interp::execute(&captured.srg, &captured.values)
                .unwrap()
                .len()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_matmul_paths, bench_zero_copy, bench_interp);
criterion_main!(benches);
