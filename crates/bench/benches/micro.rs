//! Micro-benchmarks of the platform's own hot paths: capture overhead,
//! graph algorithms, scheduling time, serialization. These quantify the
//! cost of *having* semantics — the tax Genie pays for its awareness.

use criterion::{criterion_group, criterion_main, Criterion};
use genie_cluster::{ClusterState, Topology};
use genie_frontend::capture::CaptureCtx;
use genie_models::{KvState, TransformerConfig, TransformerLm};
use genie_scheduler::{schedule, CostModel, SemanticsAware};
use genie_srg::ElemType;

fn decode_srg() -> genie_srg::Srg {
    let m = TransformerLm::new_spec(TransformerConfig::gptj_6b());
    let ctx = CaptureCtx::new("decode");
    let cap = m.capture_decode_step(&ctx, 0, &KvState::default());
    cap.logits.sample().mark_output();
    ctx.finish().srg
}

fn bench_micro(c: &mut Criterion) {
    // Build the shared graph and emit diagnostics before any measurement
    // starts, so nothing allocates or prints inside the measured region.
    let srg = decode_srg();
    eprintln!(
        "GPT-J decode-step SRG: {} nodes, {} edges",
        srg.node_count(),
        srg.edge_count()
    );

    // Capture overhead: full GPT-J decode-step graph (~500 nodes).
    c.bench_function("capture/gptj_decode_step", |b| {
        b.iter(|| decode_srg().node_count())
    });

    c.bench_function("graph/topo_order", |b| {
        b.iter(|| genie_srg::traverse::topo_order(&srg).unwrap().len())
    });
    c.bench_function("graph/validate", |b| {
        b.iter(|| genie_srg::validate::validate(&srg).len())
    });
    c.bench_function("graph/json_roundtrip", |b| {
        b.iter(|| {
            let json = genie_srg::serialize::to_json(&srg).unwrap();
            genie_srg::serialize::from_json(&json).unwrap().node_count()
        })
    });

    // Scheduling latency: the per-request planning cost.
    let topo = Topology::rack(4, 25e9);
    let state = ClusterState::new();
    let cost = CostModel::paper_stack();
    c.bench_function("scheduler/semantics_aware_plan", |b| {
        b.iter(|| {
            schedule(&srg, &topo, &state, &cost, &SemanticsAware::new())
                .transfers
                .len()
        })
    });

    // Functional-plane arithmetic.
    let a = genie_tensor::init::randn([64, 64], 1);
    let bm = genie_tensor::init::randn([64, 64], 2);
    c.bench_function("tensor/matmul_64", |b| {
        b.iter(|| genie_tensor::ops::matmul(&a, &bm).len())
    });

    // Capture-vs-execute overhead at small scale.
    c.bench_function("capture/small_mlp", |b| {
        b.iter(|| {
            let ctx = CaptureCtx::new("mlp");
            let x = ctx.input("x", [1, 64], ElemType::F32, None);
            let w = ctx.parameter("w", [64, 64], ElemType::F32, None);
            x.matmul(&w).gelu().mark_output();
            ctx.finish().srg.node_count()
        })
    });
}

criterion_group!(benches, bench_micro);
criterion_main!(benches);
