//! Criterion bench over the Figure-1 analog: semantic-visibility
//! accounting across stack levels.

use criterion::{criterion_group, criterion_main, Criterion};
use genie_bench::stack_levels::semantic_visibility;

fn bench_visibility(c: &mut Criterion) {
    println!("\n=== Figure 1 analog (regenerated) ===");
    for row in semantic_visibility() {
        println!(
            "{:<16} {:<10} total semantic facts: {:>4}",
            row.workload, row.level, row.total
        );
    }

    c.bench_function("figure1/semantic_visibility", |b| {
        b.iter(semantic_visibility)
    });
}

criterion_group!(benches, bench_visibility);
criterion_main!(benches);
