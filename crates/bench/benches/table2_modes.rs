//! Criterion bench over the Table-2 regeneration: times each execution
//! mode's simulated phase run and prints the regenerated table once.

use criterion::{criterion_group, criterion_main, Criterion};
use genie_bench::modes::{run_phase, Mode, PhaseRun};
use genie_bench::{table2, Calibration, LlmWorkload};

fn bench_modes(c: &mut Criterion) {
    let w = LlmWorkload::paper();
    let cal = Calibration::paper();

    // Print the regenerated table once so `cargo bench` output contains
    // the evaluation artifact.
    println!("\n=== Table 2 (regenerated) ===");
    for row in table2(&w, &cal) {
        println!(
            "{:<24} prefill: {:>8.2}s {:>12.2}MB {:>6.2}% | decode: {:>8.2}s {:>12.2}MB {:>6.2}%",
            row.mode.label(),
            row.prefill.latency_s,
            row.prefill.net_mb,
            row.prefill.gpu_util_pct,
            row.decode.latency_s,
            row.decode.net_mb,
            row.decode.gpu_util_pct,
        );
    }

    let mut group = c.benchmark_group("table2");
    for mode in Mode::ALL {
        group.bench_function(format!("{mode:?}_decode50"), |b| {
            b.iter(|| run_phase(mode, PhaseRun::Decode(50), &w, &cal))
        });
    }
    group.bench_function("full_table", |b| b.iter(|| table2(&w, &cal)));
    group.finish();
}

criterion_group!(benches, bench_modes);
criterion_main!(benches);
