//! Criterion bench over the Table-3 regeneration: decode-latency scaling
//! sweeps for ΔKV vs Semantics-Aware.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use genie_bench::modes::{run_phase, Mode, PhaseRun};
use genie_bench::{table3, Calibration, LlmWorkload};

fn bench_scaling(c: &mut Criterion) {
    let w = LlmWorkload::paper();
    let cal = Calibration::paper();

    println!("\n=== Table 3 (regenerated) ===");
    for (n, dkv, sa) in table3(&w, &cal, &[50, 100, 150, 200]) {
        println!(
            "N={n:<4} dKV {dkv:>7.1}s   SA {sa:>7.1}s   ratio {:.2}x",
            dkv / sa
        );
    }

    let mut group = c.benchmark_group("table3");
    for n in [50usize, 100, 150, 200] {
        group.bench_with_input(BenchmarkId::new("delta_kv", n), &n, |b, &n| {
            b.iter(|| run_phase(Mode::DeltaKv, PhaseRun::Decode(n), &w, &cal))
        });
        group.bench_with_input(BenchmarkId::new("semantics_aware", n), &n, |b, &n| {
            b.iter(|| run_phase(Mode::SemanticsAware, PhaseRun::Decode(n), &w, &cal))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_scaling);
criterion_main!(benches);
