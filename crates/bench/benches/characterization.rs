//! Criterion bench over the Table-1 regeneration: capture + recognizers +
//! statistics per workload family.

use criterion::{criterion_group, criterion_main, Criterion};
use genie_bench::characterize::table1;
use genie_models::Workload;
use genie_srg::stats::GraphStats;

fn bench_characterization(c: &mut Criterion) {
    println!("\n=== Table 1 (regenerated) ===");
    for row in table1() {
        println!(
            "{:<16} {:<38} {:<26} {}",
            row.workload, row.computation_pattern, row.memory_access, row.key_optimization
        );
    }

    let mut group = c.benchmark_group("table1");
    for w in Workload::ALL {
        group.bench_function(format!("capture_{}", w.name().replace(' ', "_")), |b| {
            b.iter(|| w.spec_graph().node_count())
        });
    }
    let llm = Workload::LlmServing.spec_graph();
    group.bench_function("stats_llm", |b| b.iter(|| GraphStats::of(&llm).unwrap()));
    group.finish();
}

criterion_group!(benches, bench_characterization);
criterion_main!(benches);
