//! Ablation: cross-tenant decode batching (§3.6 "How").
//!
//! Sweeps the number of tenants sharing one public LLM and compares fleet
//! throughput with and without semantic batching. Only a scheduler that
//! sees model identity in the request (the SRG's weight fingerprint) can
//! apply it.
//!
//! Run with: `cargo run -p genie-bench --bin ablation_multitenant`

use genie_bench::report::render_table;
use genie_scheduler::global::batching;

fn main() {
    let step_s = 0.0306; // calibrated single-request decode step
    let weight_fraction = 0.9; // share of the step spent reading weights

    println!("Ablation — cross-tenant decode batching (30.6 ms step, 90% weight reads)\n");
    let mut rows = Vec::new();
    for b in [1usize, 2, 4, 8, 16, 32] {
        let batched = batching::batched_step_time(step_s, weight_fraction, b);
        let speedup = batching::batching_speedup(step_s, weight_fraction, b);
        let tok_s_unbatched = b as f64 / (step_s * b as f64);
        let tok_s_batched = b as f64 / batched;
        rows.push(vec![
            b.to_string(),
            format!("{:.1}", batched * 1e3),
            format!("{tok_s_unbatched:.1}"),
            format!("{tok_s_batched:.1}"),
            format!("{speedup:.2}x"),
        ]);
    }
    println!(
        "{}",
        render_table(
            &[
                "Tenants",
                "Batched step [ms]",
                "tok/s serial",
                "tok/s batched",
                "Speedup"
            ],
            &rows
        )
    );
    println!("memory-bound decode reads the 12 GB of weights once per step no matter");
    println!("the batch — identifying \"two requests to the same public LLM\" (§3.6)");
    println!(
        "is worth up to {:.1}x in fleet decode throughput.",
        1.0 / (1.0 - weight_fraction)
    );
}
