//! Ablation: prefill/decode disaggregation (§2.2).
//!
//! The paper's argument against merely-data-aware scheduling is that it
//! "would still entirely miss the potential benefits of PD
//! disaggregation". This ablation quantifies those benefits: decode
//! interference under colocated serving vs the handoff tax of split
//! pools, across loads and interconnects.
//!
//! Run with: `cargo run -p genie-bench --bin ablation_pd`

use genie_bench::report::render_table;
use genie_scheduler::pd::{best_split, colocated, PdProfile};

fn main() {
    let profile = PdProfile::gptj_paper();
    let devices = 16;

    println!(
        "Ablation — PD disaggregation (GPT-J, {} devices, prefill {:.2}s, decode {:.2}s/req, handoff {:.1}ms)\n",
        devices,
        profile.prefill_s,
        profile.decode_s(),
        profile.handoff_s() * 1e3
    );

    let mut rows = Vec::new();
    for rate in [1.0, 3.0, 5.0, 7.0, 8.5] {
        let colo = colocated(&profile, devices, rate);
        let (split, _) = best_split(&profile, devices, rate);
        rows.push(vec![
            format!("{rate:.1}"),
            format!("{:.1}", colo.throughput_rps),
            format!("{:.1}", colo.decode_interference_s * 1e3),
            format!("{}+{}", split.prefill_devices, split.decode_devices),
            format!("{:.1}", split.throughput_rps),
            "0.0".to_string(),
        ]);
    }
    println!(
        "{}",
        render_table(
            &[
                "Load [req/s]",
                "Colo cap [req/s]",
                "Colo token jitter [ms]",
                "PD split",
                "PD cap [req/s]",
                "PD jitter [ms]"
            ],
            &rows
        )
    );

    println!("interconnect sensitivity (load 5 req/s):");
    let mut rows = Vec::new();
    for (name, bw) in [
        ("10 GbE", 10e9 / 8.0),
        ("25 GbE", 25e9 / 8.0),
        ("100 GbE", 100e9 / 8.0),
    ] {
        let p = PdProfile {
            interconnect: bw,
            ..profile
        };
        let (split, colo) = best_split(&p, devices, 5.0);
        rows.push(vec![
            name.to_string(),
            format!("{:.2}", p.handoff_s() * 1e3),
            format!("{:.1}", split.throughput_rps),
            format!("{:.0}%", 100.0 * split.throughput_rps / colo.throughput_rps),
        ]);
    }
    println!(
        "{}",
        render_table(
            &[
                "Interconnect",
                "Handoff [ms]",
                "PD cap [req/s]",
                "vs colocated"
            ],
            &rows
        )
    );
    println!("the trade is visible only to a phase-aware scheduler: blind policies");
    println!("cannot tell prefill from decode, so they can neither avoid the jitter");
    println!("nor reason about the handoff (§2.2).");
}
