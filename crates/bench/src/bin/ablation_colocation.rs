//! Ablation: stateful co-location on/off (§3.3).
//!
//! Plans the GPT-J decode step with and without the co-location rule (the
//! blind policies stand in for "off") and reports the recurring per-step
//! network traffic each placement would ship.
//!
//! Run with: `cargo run -p genie-bench --bin ablation_colocation`

use genie_bench::report::render_table;
use genie_cluster::{ClusterState, Topology};
use genie_frontend::capture::CaptureCtx;
use genie_models::{KvState, TransformerConfig, TransformerLm};
use genie_scheduler::{
    schedule, CostModel, DataAware, LeastLoaded, Policy, RoundRobin, SemanticsAware,
};

fn main() {
    let m = TransformerLm::new_spec(TransformerConfig::gptj_6b());
    let ctx = CaptureCtx::new("gptj.decode");
    let cap = m.capture_decode_step(&ctx, 0, &KvState::default());
    cap.logits.sample().mark_output();
    for (k, v) in cap.k_caches.iter().zip(&cap.v_caches) {
        k.mark_output();
        v.mark_output();
    }
    let srg = ctx.finish().srg;

    let topo = Topology::rack(4, 25e9);
    let state = ClusterState::new();
    let cost = CostModel::paper_stack();

    println!("Ablation — stateful co-location (GPT-J decode step, 4×A100 rack)\n");
    let mut rows = Vec::new();
    for policy in [
        &RoundRobin as &dyn Policy,
        &LeastLoaded,
        &DataAware,
        &SemanticsAware::new(),
    ] {
        let plan = schedule(&srg, &topo, &state, &cost, policy);
        let recurring: u64 = plan
            .transfers
            .iter()
            .filter(|t| !t.via_handle)
            .map(|t| t.bytes)
            .sum();
        rows.push(vec![
            plan.policy.clone(),
            plan.devices_used().to_string(),
            format!("{recurring}"),
            format!("{:.3}", plan.estimate.total_s()),
        ]);
    }
    println!(
        "{}",
        render_table(
            &["Policy", "Devices", "Recurring B/step", "Est latency [s]"],
            &rows
        )
    );
    println!("co-location pins decode beside its KV cache: the per-step traffic");
    println!("collapses to the token + logits, as §3.3 claims.");
}
