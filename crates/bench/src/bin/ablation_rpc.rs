//! Ablation: RPC-stack sweep (§4 "latency becomes RPC-bound").
//!
//! Holds the semantics-aware strategy fixed and swaps the transport:
//! the paper's TensorPipe-from-Python stack, a tuned C++ TCP stack, and
//! the §3.4 zero-copy RDMA datapath. Shows that once semantics eliminate
//! the data-motion bottleneck, the transport is what remains.
//!
//! Run with: `cargo run -p genie-bench --bin ablation_rpc`

use genie_bench::modes::{run_phase, Mode, PhaseRun};
use genie_bench::report::{fmt_secs, render_table};
use genie_bench::{Calibration, LlmWorkload};

fn main() {
    let w = LlmWorkload::paper();
    let stacks: [(&str, Calibration); 3] = [
        ("TensorPipe (Python, paper)", Calibration::paper()),
        (
            "tuned TCP (C++)",
            Calibration {
                session_init_s: 5.0,
                rpc_per_call_s: 200e-6,
                rpc_bandwidth: 2.8e9,
                ..Calibration::paper()
            },
        ),
        ("zero-copy RDMA (§3.4)", Calibration::rdma()),
    ];

    println!("Ablation — transport sweep, semantics-aware mode, decode of 50 tokens\n");
    let mut rows = Vec::new();
    for (name, cal) in &stacks {
        let decode = run_phase(Mode::SemanticsAware, PhaseRun::Decode(50), &w, cal);
        let dkv = run_phase(Mode::DeltaKv, PhaseRun::Decode(50), &w, cal);
        rows.push(vec![
            name.to_string(),
            fmt_secs(decode.latency_s),
            fmt_secs(decode.latency_s - cal.session_init_s),
            format!("{:.1}", decode.gpu_util_pct),
            fmt_secs(dkv.latency_s - cal.session_init_s),
        ]);
    }
    println!(
        "{}",
        render_table(
            &[
                "Transport",
                "SA latency [s]",
                "SA work [s]",
                "SA util [%]",
                "dKV work [s]"
            ],
            &rows
        )
    );
    println!("with RDMA the semantics-aware decode approaches the 1.53 s local bound:");
    println!("\"replacing [TensorPipe] with a zero-copy RDMA path ... would tighten the");
    println!("gap but not change the relative ordering of the designs\" (§4).");
}
