//! Regenerate `BENCH_serving.json`: the serving runtime's offered-load ×
//! fleet-size sweep at GPT-J scale — p50/p99 TTFT, aggregate tokens/s,
//! and shed rate per point, batched vs. unbatched decode.
//!
//! The sweep is entirely on the virtual clock (spec plane), so it runs in
//! milliseconds of wall time and is bit-deterministic: the artifact only
//! changes when the engine or the cost model does.
//!
//! Pass `--quick` (CI) for the 3-point load sweep on a single lane.
//!
//! Pass `--disagg` for the prefill/decode disaggregation frontier
//! instead: colocated fleets vs. equal-total-lane disaggregated fleets
//! (dedicated prefill lanes shipping KV prefixes over the 25 Gbps
//! fabric under the planner policy), written to `BENCH_disagg.json`.
//! The run asserts the disaggregated layout dominates the colocated one
//! (lower p50 TTFT at no worse aggregate tokens/s) on at least one
//! load × fleet point — the DistServe/Splitwise claim, reproduced on
//! the virtual clock.

use genie_bench::report::{render_table, write_artifact};
use genie_cluster::GpuSpec;
use genie_models::TransformerConfig;
use genie_netsim::Nanos;
use genie_serving::{ArrivalConfig, DisaggConfig, ServingConfig, ServingLoop, ServingModel};
use serde_json::json;

fn serving_config(lanes: u32, batched: bool) -> ServingConfig {
    ServingConfig {
        lanes,
        max_batch: 8,
        batched,
        kv_capacity_bytes: 16 << 30,
        queue_budget: Nanos::from_secs_f64(2.0),
        max_queue: 1024,
        gpu: GpuSpec::a100_80gb(),
        link_bandwidth_bps: 25e9,
        link_latency_s: 250e-6,
        fault_plan: None,
        slo: genie_serving::SloConfig::paper_default(),
        record_telemetry: false,
        disagg: None,
        shard: None,
    }
}

fn disagg_main(quick: bool) {
    let loads: &[f64] = if quick {
        &[2.0, 4.0]
    } else {
        &[1.0, 2.0, 4.0, 6.0]
    };
    // Equal total lanes per fleet: `total` colocated lanes vs.
    // `total - 1` decode lanes + 1 dedicated prefill lane.
    let fleets: &[u32] = if quick { &[2] } else { &[2, 3] };
    let horizon = Nanos::from_secs_f64(if quick { 4.0 } else { 10.0 });
    let model = TransformerConfig::gptj_6b();

    let mut rows = Vec::new();
    let mut table = Vec::new();
    let mut dominated = 0usize;
    for &total in fleets {
        for &load in loads {
            let requests = ArrivalConfig {
                seed: 42,
                rate_per_s: load,
                horizon,
                prompt_len: (16, 48),
                decode_tokens: (32, 96),
                vocab: model.vocab,
                tenants: 4,
            }
            .generate();
            let colocated = ServingLoop::new(
                ServingModel::Spec(model.clone()),
                serving_config(total, true),
            )
            .run(&requests);
            let mut dconf = serving_config(total - 1, true);
            dconf.disagg = Some(DisaggConfig::paper_testbed(1));
            let disagg = ServingLoop::new(ServingModel::Spec(model.clone()), dconf).run(&requests);
            let point_dominates = disagg.ttft_p50() < colocated.ttft_p50()
                && disagg.tokens_per_s() >= 0.95 * colocated.tokens_per_s()
                && disagg.shed_rate() <= colocated.shed_rate();
            if point_dominates {
                dominated += 1;
            }
            for (mode, report) in [("colocated", &colocated), ("disagg", &disagg)] {
                table.push(vec![
                    format!("{load:.1}"),
                    total.to_string(),
                    mode.to_string(),
                    report.completed().to_string(),
                    format!("{:.1}", report.shed_rate() * 100.0),
                    format!("{:.1}", report.ttft_p50() * 1e3),
                    format!("{:.1}", report.ttft_p99() * 1e3),
                    format!("{:.0}", report.tokens_per_s()),
                    report.migrations.to_string(),
                    report.reprefills_planned.to_string(),
                ]);
            }
            let mode_json = |report: &genie_serving::ServingReport| {
                json!({
                    "requests": requests.len(),
                    "completed": report.completed(),
                    "shed_rate": report.shed_rate(),
                    "ttft_p50_s": report.ttft_p50(),
                    "ttft_p99_s": report.ttft_p99(),
                    "tokens_per_s": report.tokens_per_s(),
                    "makespan_s": report.makespan.as_secs_f64(),
                    "migrations": report.migrations,
                    "migrations_completed": report.migrations_completed,
                    "migrations_failed": report.migrations_failed,
                    "migrated_kv_bytes": report.migrated_kv_bytes,
                    "reprefills_planned": report.reprefills_planned,
                    "reprefills_evicted": report.reprefills_evicted,
                    "reprefills_migration": report.reprefills_migration,
                })
            };
            rows.push(json!({
                "offered_load_req_s": load,
                "total_lanes": total,
                "colocated": mode_json(&colocated),
                "disagg": mode_json(&disagg),
                "disagg_dominates": point_dominates,
            }));
        }
    }

    assert!(
        dominated >= 1,
        "disaggregation must dominate colocated serving on at least one \
         load × fleet point of the frontier"
    );

    let artifact = json!({
        "bench": "disagg",
        "quick": quick,
        "model": "gptj_6b",
        "seed": 42,
        "policy": "planner",
        "fabric": { "bandwidth_bps": 25e9, "latency_s": 250e-6 },
        "dominated_points": dominated,
        "sweep": rows,
    });
    let path = write_artifact("BENCH_disagg", &artifact).expect("artifact written");

    println!(
        "{}",
        render_table(
            &[
                "load req/s",
                "lanes",
                "mode",
                "completed",
                "shed %",
                "ttft p50 ms",
                "ttft p99 ms",
                "tok/s",
                "migr",
                "replan"
            ],
            &table,
        )
    );
    println!(
        "disagg dominates colocated on {dominated} point(s); artifact: {}",
        path.display()
    );
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    if std::env::args().any(|a| a == "--disagg") {
        disagg_main(quick);
        return;
    }
    let loads: &[f64] = if quick {
        &[0.5, 2.0, 4.0]
    } else {
        &[0.5, 1.0, 2.0, 4.0, 8.0]
    };
    let fleets: &[u32] = if quick { &[1] } else { &[1, 2] };
    let horizon = Nanos::from_secs_f64(if quick { 4.0 } else { 10.0 });
    let model = TransformerConfig::gptj_6b();

    let mut rows = Vec::new();
    let mut table = Vec::new();
    for &lanes in fleets {
        for &load in loads {
            let requests = ArrivalConfig {
                seed: 42,
                rate_per_s: load,
                horizon,
                prompt_len: (16, 48),
                decode_tokens: (32, 96),
                vocab: model.vocab,
                tenants: 4,
            }
            .generate();
            let mut per_mode = Vec::new();
            for batched in [true, false] {
                let report = ServingLoop::new(
                    ServingModel::Spec(model.clone()),
                    serving_config(lanes, batched),
                )
                .run(&requests);
                // Bucket-interpolated p99 alongside the exact
                // nearest-rank one: the histogram path is what live
                // metrics collection would report.
                let reg = genie_telemetry::MetricsRegistry::new();
                let hist =
                    reg.histogram("ttft_seconds", &[], &genie_telemetry::DEFAULT_TIME_BOUNDS);
                for t in report.ttfts() {
                    hist.observe(t);
                }
                let ttft_p99_hist = reg
                    .snapshot()
                    .histogram("ttft_seconds", &[])
                    .map_or(0.0, |h| h.quantile(0.99));
                per_mode.push(json!({
                    "batched": batched,
                    "requests": requests.len(),
                    "completed": report.completed(),
                    "shed_rate": report.shed_rate(),
                    "ttft_p50_s": report.ttft_p50(),
                    "ttft_p99_s": report.ttft_p99(),
                    "ttft_p99_hist_s": ttft_p99_hist,
                    "tokens_per_s": report.tokens_per_s(),
                    "makespan_s": report.makespan.as_secs_f64(),
                    "preemptions": report.preemptions,
                    "steps": report.steps,
                }));
                table.push(vec![
                    format!("{load:.1}"),
                    lanes.to_string(),
                    if batched { "batched" } else { "unbatched" }.to_string(),
                    report.completed().to_string(),
                    format!("{:.1}", report.shed_rate() * 100.0),
                    format!("{:.1}", report.ttft_p50() * 1e3),
                    format!("{:.1}", report.ttft_p99() * 1e3),
                    format!("{:.0}", report.tokens_per_s()),
                ]);
            }
            rows.push(json!({
                "offered_load_req_s": load,
                "lanes": lanes,
                "modes": per_mode,
            }));
        }
    }

    // Acceptance check: at offered load >= 2 req/s, continuous batching
    // must beat unbatched decode on aggregate tokens/s (weight reads are
    // amortized across the batch on a memory-bound decode step).
    for row in &rows {
        let load = row["offered_load_req_s"].as_f64().unwrap();
        if load < 2.0 {
            continue;
        }
        let modes = row["modes"].as_array().unwrap();
        let tps_of = |want: bool| {
            modes
                .iter()
                .find(|m| m["batched"].as_bool() == Some(want))
                .and_then(|m| m["tokens_per_s"].as_f64())
                .unwrap_or(0.0)
        };
        assert!(
            tps_of(true) > tps_of(false),
            "load {load}: batched {} tok/s must beat unbatched {} tok/s",
            tps_of(true),
            tps_of(false)
        );
    }

    let artifact = json!({
        "bench": "serving",
        "quick": quick,
        "model": "gptj_6b",
        "seed": 42,
        "sweep": rows,
    });
    let path = write_artifact("BENCH_serving", &artifact).expect("artifact written");

    println!(
        "{}",
        render_table(
            &[
                "load req/s",
                "lanes",
                "mode",
                "completed",
                "shed %",
                "ttft p50 ms",
                "ttft p99 ms",
                "tok/s"
            ],
            &table,
        )
    );
    println!("artifact: {}", path.display());
}
