//! Regenerate `BENCH_dataplane.json`: before/after numbers for the
//! data-plane overhaul — kernel dispatch paths (scalar reference vs
//! cache-blocked vs parallel), zero-copy tensor plumbing, wavefront vs
//! sequential interpretation, and the scheduler's kernel-time cache.
//!
//! Pass `--quick` (CI) to shrink problem sizes and repetition counts.
//! Timing is hand-rolled (`std::time::Instant` medians) because criterion
//! is a dev-dependency and this binary ships with the crate.

use genie_bench::report::{render_table, write_artifact};
use genie_cluster::{ClusterState, Topology};
use genie_frontend::capture::CaptureCtx;
use genie_frontend::interp;
use genie_models::{KvState, TransformerConfig, TransformerLm};
use genie_scheduler::{schedule, CostModel, SemanticsAware};
use genie_tensor::{init, ops, stats};
use serde_json::json;
use std::time::Instant;

/// Median wall-clock seconds of `reps` runs of `f` (after one warmup).
fn median_secs<R>(reps: usize, mut f: impl FnMut() -> R) -> f64 {
    std::hint::black_box(f());
    let mut times: Vec<f64> = (0..reps.max(1))
        .map(|_| {
            let t0 = Instant::now();
            std::hint::black_box(f());
            t0.elapsed().as_secs_f64()
        })
        .collect();
    times.sort_by(f64::total_cmp);
    times[times.len() / 2]
}

fn matmul_section(quick: bool) -> (serde_json::Value, Vec<Vec<String>>) {
    let sizes: &[usize] = if quick {
        &[64, 128, 256]
    } else {
        &[128, 256, 512]
    };
    let reps = if quick { 2 } else { 5 };
    let mut rows = Vec::new();
    let mut table = Vec::new();
    for &n in sizes {
        let a = init::randn([n, n], 1);
        let b = init::randn([n, n], 2);
        // Equivalence sanity before timing anything.
        let reference = ops::matmul_scalar(&a, &b);
        assert_eq!(reference.data(), ops::matmul_blocked(&a, &b).data());
        assert_eq!(reference.data(), ops::matmul_parallel(&a, &b).data());

        let scalar = median_secs(reps, || ops::matmul_scalar(&a, &b).len());
        let blocked = median_secs(reps, || ops::matmul_blocked(&a, &b).len());
        let parallel = median_secs(reps, || ops::matmul_parallel(&a, &b).len());
        let speedup_blocked = scalar / blocked.max(1e-12);
        let speedup_parallel = scalar / parallel.max(1e-12);
        table.push(vec![
            format!("{n}x{n}"),
            format!("{:.1}", scalar * 1e3),
            format!("{:.1}", blocked * 1e3),
            format!("{:.1}", parallel * 1e3),
            format!("{speedup_blocked:.2}x"),
            format!("{speedup_parallel:.2}x"),
        ]);
        rows.push(json!({
            "size": n,
            "scalar_s": scalar,
            "blocked_s": blocked,
            "parallel_s": parallel,
            "speedup_blocked": speedup_blocked,
            "speedup_parallel": speedup_parallel,
        }));
    }
    (json!(rows), table)
}

fn zero_copy_section(quick: bool) -> serde_json::Value {
    let n = if quick { 512 } else { 1024 };
    let reps = if quick { 100 } else { 1000 };
    let t = init::randn([n, n], 3);
    let clone = median_secs(reps, || t.clone().len());
    let reshape = median_secs(reps, || t.reshaped([n * n]).len());
    let deep = median_secs(reps, || {
        genie_tensor::Tensor::from_vec([n, n], t.data().to_vec()).len()
    });
    json!({
        "elements": n * n,
        "clone_s": clone,
        "reshaped_s": reshape,
        "deep_copy_s": deep,
        "clone_speedup_vs_deep_copy": deep / clone.max(1e-12),
    })
}

fn interp_section(quick: bool) -> serde_json::Value {
    let model = TransformerLm::new_functional(TransformerConfig::tiny(), 7);
    let prompt: Vec<i64> = (0..if quick { 8 } else { 24 }).collect();
    let ctx = CaptureCtx::new("prefill");
    let cap = model.capture_prefill(&ctx, &prompt);
    cap.logits.mark_output();
    let logits_node = cap.logits.node;
    let captured = ctx.finish();

    // Wavefront must agree with the sequential oracle exactly.
    let seq = interp::execute_sequential(&captured.srg, &captured.values).unwrap();
    let wave = interp::execute(&captured.srg, &captured.values).unwrap();
    assert_eq!(seq[&logits_node], wave[&logits_node]);

    let reps = if quick { 3 } else { 10 };
    let sequential = median_secs(reps, || {
        interp::execute_sequential(&captured.srg, &captured.values)
            .unwrap()
            .len()
    });
    let wavefront = median_secs(reps, || {
        interp::execute(&captured.srg, &captured.values)
            .unwrap()
            .len()
    });
    let outputs_only = median_secs(reps, || {
        interp::execute_outputs(&captured.srg, &captured.values, &[logits_node])
            .unwrap()
            .len()
    });
    json!({
        "graph": "transformer_tiny_prefill",
        "nodes": captured.srg.node_count(),
        "prompt_tokens": prompt.len(),
        "sequential_s": sequential,
        "wavefront_s": wavefront,
        "wavefront_outputs_only_s": outputs_only,
        "wavefront_speedup": sequential / wavefront.max(1e-12),
    })
}

fn decode_section(quick: bool) -> serde_json::Value {
    // Decode-throughput workload: a functional transformer sized so the
    // per-step kernels land in the SIMD tier (d_model=64, ffn=256), run
    // through greedy generation — per-step capture plus wavefront
    // interpretation, i.e. the full eager data plane.
    let mut config = TransformerConfig::tiny();
    config.layers = 2;
    config.d_model = 64;
    config.heads = 4;
    config.vocab = 512;
    config.ffn_mult = 4;
    let model = TransformerLm::new_functional(config, 11);
    let prompt: Vec<i64> = (1..9).collect();
    let steps = if quick { 12 } else { 48 };
    let reps = if quick { 3 } else { 5 };

    // Best-of-N wall clock: the max over reps approximates uncontended
    // speed on a loaded host better than the median does, and throughput
    // gates care about what the machine *can* do.
    let mut tokens_per_s = 0.0f64;
    for _ in 0..reps {
        let t0 = Instant::now();
        std::hint::black_box(model.generate(&prompt, steps).len());
        tokens_per_s = tokens_per_s.max(steps as f64 / t0.elapsed().as_secs_f64());
    }

    // Machine calibration: a fixed scalar matmul timed the same way.
    // `normalized_tokens_per_calib` (tokens per calibration-matmul-time)
    // cancels host speed to first order, so the committed baseline
    // transfers across machines.
    let ca = init::randn([96, 96], 21);
    let cb = init::randn([96, 96], 22);
    let mut calibration_s = f64::INFINITY;
    for _ in 0..reps.max(3) {
        let t0 = Instant::now();
        std::hint::black_box(ops::matmul_scalar(&ca, &cb).len());
        calibration_s = calibration_s.min(t0.elapsed().as_secs_f64());
    }

    json!({
        "workload": "greedy decode: layers=2 d_model=64 heads=4 ffn=256 vocab=512",
        "quick": quick,
        "steps": steps,
        "tokens_per_s": tokens_per_s,
        "calibration_scalar_matmul96_s": calibration_s,
        "normalized_tokens_per_calib": tokens_per_s * calibration_s,
    })
}

/// Compare this run's decode throughput against the committed baseline
/// (`BENCH_dataplane.baseline.json`, overridable via
/// `GENIE_BENCH_BASELINE`). Fails on a >10% regression of the
/// calibration-normalized tokens/s.
fn check_baseline(decode: &serde_json::Value) -> Result<String, String> {
    let path = std::env::var("GENIE_BENCH_BASELINE")
        .unwrap_or_else(|_| "BENCH_dataplane.baseline.json".to_string());
    let text = std::fs::read_to_string(&path)
        .map_err(|e| format!("baseline {path} unreadable: {e} (run --update-baseline to pin)"))?;
    let base: serde_json::Value =
        serde_json::from_str(&text).map_err(|e| format!("baseline {path} unparsable: {e}"))?;
    if base["decode"]["quick"] != decode["quick"] {
        return Err(format!(
            "baseline {path} was pinned in quick={} mode but this run is quick={}; \
             re-run in the matching mode",
            base["decode"]["quick"], decode["quick"]
        ));
    }
    let base_norm = base["decode"]["normalized_tokens_per_calib"]
        .as_f64()
        .ok_or_else(|| format!("baseline {path} lacks decode.normalized_tokens_per_calib"))?;
    let norm = decode["normalized_tokens_per_calib"]
        .as_f64()
        .unwrap_or(0.0);
    if norm < base_norm * 0.9 {
        return Err(format!(
            "decode throughput regressed: normalized {norm:.4} < 90% of baseline {base_norm:.4} \
             ({path})"
        ));
    }
    Ok(format!(
        "baseline gate OK: normalized {norm:.4} vs baseline {base_norm:.4} (floor {:.4})",
        base_norm * 0.9
    ))
}

/// Rewrite the committed baseline from this run's numbers.
fn update_baseline(decode: &serde_json::Value) -> std::io::Result<()> {
    let path = std::env::var("GENIE_BENCH_BASELINE")
        .unwrap_or_else(|_| "BENCH_dataplane.baseline.json".to_string());
    let baseline = json!({
        "bench": "dataplane",
        "method": "best-of-N greedy-decode tokens/s, normalized by a scalar 96x96x96 \
                   matmul timed in the same process; gate fails below 90% of \
                   normalized_tokens_per_calib. Re-pin with --update-baseline.",
        "decode": decode,
    });
    std::fs::write(&path, serde_json::to_string_pretty(&baseline)? + "\n")
}

fn cost_cache_section(quick: bool) -> serde_json::Value {
    // GPT-J decode-step graph: the per-request planning workload.
    let m = TransformerLm::new_spec(TransformerConfig::gptj_6b());
    let ctx = CaptureCtx::new("decode");
    let cap = m.capture_decode_step(&ctx, 0, &KvState::default());
    cap.logits.sample().mark_output();
    let srg = ctx.finish().srg;

    let topo = Topology::rack(4, 25e9);
    let state = ClusterState::new();
    let cost = CostModel::paper_stack();
    let policy = SemanticsAware::new();

    cost.clear_cache();
    let t0 = Instant::now();
    std::hint::black_box(
        schedule(&srg, &topo, &state, &cost, &policy)
            .transfers
            .len(),
    );
    let cold = t0.elapsed().as_secs_f64();
    let reps = if quick { 3 } else { 10 };
    let warm = median_secs(reps, || {
        schedule(&srg, &topo, &state, &cost, &policy)
            .transfers
            .len()
    });
    let cache = cost.cache_stats();
    json!({
        "graph": "gptj_6b_decode_step",
        "nodes": srg.node_count(),
        "cold_schedule_s": cold,
        "warm_schedule_s": warm,
        "warm_speedup": cold / warm.max(1e-12),
        "cache_hits": cache.hits,
        "cache_misses": cache.misses,
        "cache_entries": cache.entries,
        "cache_hit_rate": cache.hit_rate(),
    })
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let gate = args.iter().any(|a| a == "--check-baseline");
    let pin = args.iter().any(|a| a == "--update-baseline");
    let before = stats::snapshot();

    let (matmul, matmul_table) = matmul_section(quick);
    let zero_copy = zero_copy_section(quick);
    let interp_cmp = interp_section(quick);
    let decode = decode_section(quick);
    let cost_cache = cost_cache_section(quick);

    let after = stats::snapshot().since(&before);
    let dispatch: Vec<serde_json::Value> = after
        .cells()
        .into_iter()
        .map(|(op, path, n)| json!({ "op": op, "path": path, "calls": n }))
        .collect();
    let by_tier: Vec<serde_json::Value> = after
        .by_path()
        .into_iter()
        .map(|(path, n)| json!({ "tier": path, "calls": n }))
        .collect();

    let artifact = json!({
        "bench": "dataplane",
        "quick": quick,
        "matmul": matmul,
        "zero_copy": zero_copy,
        "interp": interp_cmp,
        "decode": decode,
        "cost_cache": cost_cache,
        "kernel_dispatch": dispatch,
        "dispatch_by_tier": by_tier,
        "worker_pool": {
            "size": genie_tensor::pool::size(),
            "threads_spawned": genie_tensor::pool::threads_spawned(),
            "busy_peak": genie_tensor::pool::busy_peak_take(),
        },
    });
    let path = write_artifact("BENCH_dataplane", &artifact).expect("artifact written");

    println!(
        "{}",
        render_table(
            &[
                "matmul",
                "scalar ms",
                "blocked ms",
                "parallel ms",
                "blocked x",
                "parallel x"
            ],
            &matmul_table,
        )
    );
    println!(
        "interp tiny-prefill: sequential {:.2} ms, wavefront {:.2} ms ({:.2}x)",
        interp_cmp["sequential_s"].as_f64().unwrap_or(0.0) * 1e3,
        interp_cmp["wavefront_s"].as_f64().unwrap_or(0.0) * 1e3,
        interp_cmp["wavefront_speedup"].as_f64().unwrap_or(0.0),
    );
    println!(
        "cost cache: cold {:.2} ms, warm {:.2} ms ({:.2}x), hit rate {:.1}%",
        cost_cache["cold_schedule_s"].as_f64().unwrap_or(0.0) * 1e3,
        cost_cache["warm_schedule_s"].as_f64().unwrap_or(0.0) * 1e3,
        cost_cache["warm_speedup"].as_f64().unwrap_or(0.0),
        cost_cache["cache_hit_rate"].as_f64().unwrap_or(0.0) * 100.0,
    );
    println!(
        "decode: {:.0} tokens/s (normalized {:.4}), pool {} threads",
        decode["tokens_per_s"].as_f64().unwrap_or(0.0),
        decode["normalized_tokens_per_calib"]
            .as_f64()
            .unwrap_or(0.0),
        genie_tensor::pool::size(),
    );
    let tier_mix: Vec<String> = artifact["dispatch_by_tier"]
        .as_array()
        .map(|rows| {
            rows.iter()
                .map(|r| format!("{}={}", r["tier"].as_str().unwrap_or("?"), r["calls"]))
                .collect()
        })
        .unwrap_or_default();
    println!("dispatch tiers: {}", tier_mix.join(" "));
    println!("artifact: {}", path.display());

    if pin {
        update_baseline(&decode).expect("baseline written");
        println!("baseline pinned to BENCH_dataplane.baseline.json");
    }
    if gate {
        match check_baseline(&decode) {
            Ok(msg) => println!("{msg}"),
            Err(msg) => {
                eprintln!("{msg}");
                std::process::exit(1);
            }
        }
    }
}
