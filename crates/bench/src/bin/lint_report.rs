//! Runs the full semantic lint suite (`GA0xx` graph passes + `GA1xx` plan
//! passes) over every workload family of the model zoo and emits a summary
//! table plus a machine-readable artifact.
//!
//! Run with: `cargo run -p genie-bench --bin lint_report`

use genie_analysis::{run_srg_passes, LintConfig, Severity};
use genie_bench::report::{render_table, write_artifact};
use genie_cluster::{ClusterState, Topology};
use genie_models::Workload;
use genie_scheduler::{schedule, CostModel, SemanticsAware};

fn main() {
    println!("Semantic lint report — GA0xx graph passes + GA1xx plan passes\n");
    let cfg = LintConfig::new();
    let topo = Topology::rack(4, 25e9);
    let state = ClusterState::new();
    let cost = CostModel::ideal_25g();

    let mut rows = Vec::new();
    let mut artifacts = Vec::new();
    for w in Workload::ALL {
        let srg = w.spec_graph();
        let graph_report = run_srg_passes(&srg, &cfg);
        let plan = schedule(&srg, &topo, &state, &cost, &SemanticsAware::new());
        let plan_report = genie_scheduler::lint_plan(&plan, &topo, &state, &cfg);

        rows.push(vec![
            w.name().to_string(),
            format!("{} nodes / {} edges", srg.node_count(), srg.edge_count()),
            summarize(&graph_report),
            summarize(&plan_report),
        ]);
        artifacts.push(serde_json::json!({
            "workload": w.name(),
            "nodes": srg.node_count(),
            "edges": srg.edge_count(),
            "graph": graph_report.to_json(),
            "plan": plan_report.to_json(),
        }));
    }

    println!(
        "{}",
        render_table(
            &[
                "Workload",
                "Graph size",
                "SRG lints (GA0xx)",
                "Plan lints (GA1xx)"
            ],
            &rows
        )
    );
    if let Ok(path) = write_artifact("lint_report", &artifacts) {
        println!("artifact: {}\n", path.display());
    }
    println!("every zoo capture must be deny-clean: deny-level findings would");
    println!("have aborted capture (finish) or scheduling (schedule_checked).");
}

fn summarize(report: &genie_analysis::Report) -> String {
    format!(
        "{} deny / {} warn / {} info",
        report.count(Severity::Deny),
        report.count(Severity::Warn),
        report.count(Severity::Info),
    )
}
