//! Runs the full semantic lint suite — `GA0xx` graph passes, `GA1xx`
//! plan passes, `GA2xx` schedule-timeline passes, and `GA3xx` precision
//! passes — over every workload family of the model zoo and emits a
//! per-family summary table plus a machine-readable artifact.
//!
//! Run with: `cargo run -p genie-bench --bin lint_report`

use genie_analysis::{run_srg_passes, LintConfig, LintFamily, Report, Severity};
use genie_bench::report::{render_table, write_artifact};
use genie_cluster::{ClusterState, Topology};
use genie_models::Workload;
use genie_scheduler::{schedule, CostModel, SemanticsAware};

const FAMILIES: [LintFamily; 4] = [
    LintFamily::Graph,
    LintFamily::Plan,
    LintFamily::Schedule,
    LintFamily::Precision,
];

fn main() {
    println!(
        "Semantic lint report — GA0xx graph / GA1xx plan / GA2xx schedule / GA3xx precision\n"
    );
    let cfg = LintConfig::new();
    let topo = Topology::rack(4, 25e9);
    let state = ClusterState::new();
    let cost = CostModel::ideal_25g();

    let mut rows = Vec::new();
    let mut artifacts = Vec::new();
    for w in Workload::ALL {
        let srg = w.spec_graph();
        let graph_report = run_srg_passes(&srg, &cfg);
        let plan = schedule(&srg, &topo, &state, &cost, &SemanticsAware::new());
        let plan_report = genie_scheduler::lint_plan(&plan, &topo, &state, &cfg);

        let mut row = vec![
            w.name().to_string(),
            format!("{} nodes / {} edges", srg.node_count(), srg.edge_count()),
        ];
        for fam in FAMILIES {
            row.push(family_summary(fam, &[&graph_report, &plan_report]));
        }
        rows.push(row);
        artifacts.push(serde_json::json!({
            "workload": w.name(),
            "nodes": srg.node_count(),
            "edges": srg.edge_count(),
            "graph": graph_report.to_json(),
            "plan": plan_report.to_json(),
        }));
    }

    println!(
        "{}",
        render_table(
            &[
                "Workload",
                "Graph size",
                "Graph (GA0xx)",
                "Plan (GA1xx)",
                "Schedule (GA2xx)",
                "Precision (GA3xx)"
            ],
            &rows
        )
    );
    if let Ok(path) = write_artifact("lint_report", &artifacts) {
        println!("artifact: {}\n", path.display());
    }
    println!("every zoo capture must be deny-clean: deny-level findings would");
    println!("have aborted capture (finish) or scheduling (schedule_checked).");
}

/// `deny/warn/info` counts for one family, summed over `reports`.
fn family_summary(fam: LintFamily, reports: &[&Report]) -> String {
    let count = |sev: Severity| -> usize {
        reports
            .iter()
            .flat_map(|r| r.diagnostics.iter())
            .filter(|d| d.code.family() == fam && d.severity == sev)
            .count()
    };
    format!(
        "{} deny / {} warn / {} info",
        count(Severity::Deny),
        count(Severity::Warn),
        count(Severity::Info),
    )
}
