//! Exports a Chrome-trace / Perfetto JSON timeline for model-zoo runs.
//!
//! For each requested workload family the tool captures the spec graph,
//! schedules it with the semantics-aware policy, simulates the plan on
//! the paper testbed, and converts both the runtime spans (capture,
//! schedule, lint instants) and the simulator's device/link trace into
//! one Chrome-trace JSON file per family under `target/experiments/`.
//! Load the file in `chrome://tracing` or <https://ui.perfetto.dev>.
//!
//! Run with: `cargo run -p genie-bench --bin trace_export -- llm`
//! Families: `llm`, `cv`, `dlrm`, `vqa`, or `all` (default).

use genie_backend::simulate_once;
use genie_bench::report::{render_table, write_artifact};
use genie_cluster::{ClusterState, Topology};
use genie_models::Workload;
use genie_netsim::RpcParams;
use genie_scheduler::{schedule, CostModel, SemanticsAware};
use genie_telemetry::{render_top, ChromeTrace};

fn family(arg: &str) -> Option<(&'static str, Workload)> {
    match arg {
        "llm" => Some(("llm", Workload::LlmServing)),
        "cv" => Some(("cv", Workload::ComputerVision)),
        "dlrm" => Some(("dlrm", Workload::Recommendation)),
        "vqa" => Some(("vqa", Workload::Multimodal)),
        _ => None,
    }
}

fn main() {
    let arg = std::env::args().nth(1).unwrap_or_else(|| "all".to_string());
    let selected: Vec<(&'static str, Workload)> = if arg == "all" {
        vec![
            ("llm", Workload::LlmServing),
            ("cv", Workload::ComputerVision),
            ("dlrm", Workload::Recommendation),
            ("vqa", Workload::Multimodal),
        ]
    } else {
        match family(&arg) {
            Some(pair) => vec![pair],
            None => {
                eprintln!("unknown family '{arg}': expected llm | cv | dlrm | vqa | all");
                std::process::exit(2);
            }
        }
    };

    println!("Perfetto trace export — semantics-aware scheduling on the paper testbed\n");
    let topo = Topology::paper_testbed();
    let state = ClusterState::new();
    let cost = CostModel::paper_stack();
    let telemetry = genie_telemetry::global();

    let mut rows = Vec::new();
    for (key, w) in &selected {
        // Start each family from a clean span buffer so every exported
        // trace holds exactly one run; metrics stay cumulative.
        telemetry.collector.drain();

        let srg = w.spec_graph();
        let plan = schedule(&srg, &topo, &state, &cost, &SemanticsAware::new());
        let report = simulate_once(&plan, &topo, &cost, RpcParams::tensorpipe_python());

        let records = telemetry.collector.drain();
        let mut chrome = ChromeTrace::new();
        chrome.push_records(&records, Some(&srg));
        chrome.push_sim_trace(&report.trace, Some(&srg), Some(&plan.label()));

        let name = format!("trace_{key}");
        match write_artifact(&name, &chrome) {
            Ok(path) => println!("{key:>5}: {}", path.display()),
            Err(e) => eprintln!("{key}: failed to write trace artifact: {e}"),
        }
        rows.push(vec![
            w.name().to_string(),
            srg.node_count().to_string(),
            chrome.events.len().to_string(),
            format!("{:.3}", report.makespan_s * 1e3),
            format!("{:.1}", report.network_bytes as f64 / 1e6),
        ]);
    }

    println!(
        "\n{}",
        render_table(
            &[
                "Workload",
                "SRG nodes",
                "Trace events",
                "Makespan [ms]",
                "Net [MB]"
            ],
            &rows,
        )
    );

    let snapshot = telemetry.metrics.snapshot();
    if let Ok(path) = write_artifact("trace_metrics", &snapshot) {
        println!("metrics artifact: {}\n", path.display());
    }
    println!("{}", render_top(&snapshot, &telemetry.collector.snapshot()));
}
