//! Ablation: pipelined CNN inference vs single-device, swept over
//! interconnect bandwidth (§3.3).
//!
//! Run with: `cargo run -p genie-bench --bin ablation_pipeline`

use genie_bench::report::render_table;
use genie_cluster::Topology;
use genie_frontend::capture::CaptureCtx;
use genie_models::{CnnConfig, SimpleCnn};
use genie_scheduler::pipeline;
use genie_scheduler::CostModel;

fn main() {
    let model = SimpleCnn::new_spec(CnnConfig::resnet_like());
    let ctx = CaptureCtx::new("resnet");
    model.capture_inference(&ctx, 1, None).mark_output();
    let mut srg = ctx.finish().srg;
    genie_frontend::patterns::run_all(&mut srg);

    let topo = Topology::rack(4, 25e9);
    let cost = CostModel::paper_stack();
    let stages = pipeline::stage_profiles(&srg, &topo, &cost);
    let batch = 256;
    let serial = pipeline::serial_makespan(&stages, batch);

    println!(
        "Ablation — pipelined CNN inference ({} stages, batch {batch})\n",
        stages.len()
    );
    let mut rows = vec![vec![
        "single device (serial)".to_string(),
        format!("{serial:.3}"),
        "1.00".to_string(),
        "-".to_string(),
    ]];
    for (name, bw) in [
        ("4-way, 10 GbE", 10e9 / 8.0),
        ("4-way, 25 GbE", 25e9 / 8.0),
        ("4-way, 100 GbE", 100e9 / 8.0),
        ("4-way, 200 GbE", 200e9 / 8.0),
        ("4-way, NVLink 300 GB/s", 300e9),
    ] {
        let piped = pipeline::pipelined_makespan(&stages, batch, 4, bw);
        rows.push(vec![
            name.to_string(),
            format!("{piped:.3}"),
            format!("{:.2}", serial / piped),
            if piped < serial { "wins" } else { "loses" }.to_string(),
        ]);
    }
    println!(
        "{}",
        render_table(
            &["Configuration", "Makespan [s]", "Speedup", "Verdict"],
            &rows
        )
    );
    println!(
        "break-even interconnect ≈ {:.1} GB/s: pipelining \"overlaps communication\nand computation\" (§3.3) only above it — a decision the SRG's stage\nannotations let the scheduler make without profiling.",
        pipeline::pipeline_breakeven_bandwidth(&stages, 4) / 1e9
    );
}
