//! Regenerates Table 3: decode-latency scaling with generation length
//! for ΔKV versus Semantics-Aware.
//!
//! Run with: `cargo run -p genie-bench --bin table3`

use genie_bench::report::{fmt_secs, render_table};
use genie_bench::{table3, Calibration, LlmWorkload};

fn main() {
    let w = LlmWorkload::paper();
    let cal = Calibration::paper();
    let lengths = [50usize, 100, 150, 200];
    let t3 = table3(&w, &cal, &lengths);

    println!("Table 3 — decode latency for N tokens [s]\n");
    let mut rows = Vec::new();
    let paper_dkv = [132.0, 159.9, 181.8, 204.3];
    let paper_sa = [114.0, 118.4, 118.5, 119.2];
    let mut dkv_row = vec!["dKV".to_string()];
    let mut sa_row = vec!["Semantics-Aware".to_string()];
    for (i, (_, dkv, sa)) in t3.iter().enumerate() {
        dkv_row.push(format!("{} ({})", fmt_secs(*dkv), paper_dkv[i]));
        sa_row.push(format!("{} ({})", fmt_secs(*sa), paper_sa[i]));
    }
    rows.push(dkv_row);
    rows.push(sa_row);
    println!(
        "{}",
        render_table(
            &["Mode (ours vs paper)", "N=50", "N=100", "N=150", "N=200"],
            &rows
        )
    );

    if let Ok(path) = genie_bench::report::write_artifact("table3", &t3) {
        println!("artifact: {}\n", path.display());
    }
    let dkv_slope = (t3[3].1 - t3[0].1) / 150.0;
    let sa_slope = (t3[3].2 - t3[0].2) / 150.0;
    println!("dKV slope:  {dkv_slope:.3} s/token (paper ~0.48) — linear in N");
    println!("SA slope:   {sa_slope:.4} s/token (paper ~0.035) — nearly constant");
    println!(
        "at N=200 the semantics-aware design is {:.2}x faster (paper ~1.7x)",
        t3[3].1 / t3[3].2
    );
}
