//! Regenerate `BENCH_blame.json`: per-request critical-path blame for a
//! pinned-seed serving run, with and without a chaos fault schedule,
//! plus what-if speedup bounds (2x link bandwidth, zero faults,
//! infinite lanes).
//!
//! This is the "where did my latency go?" harness: every completed
//! request's lifetime is tiled into queue / compute / transfer / fault /
//! re-prefill nanoseconds that sum to its TTLT *exactly*, and the
//! artifact fails loudly (asserts) if any invariant breaks:
//!
//! - blame fractions sum to 1 ± 1e-6 for every request;
//! - the critical path tiles `[arrival, finished]` with no gaps;
//! - the zero-fault what-if never predicts slower than observed;
//! - same-seed reruns produce a byte-identical blame report.
//!
//! Entirely on the virtual clock (spec plane): milliseconds of wall
//! time, bit-deterministic output.

use genie_bench::report::{render_table, write_artifact};
use genie_models::TransformerConfig;
use genie_netsim::{FaultPlan, FaultSchedule, FaultSpec, Nanos};
use genie_serving::{
    ArrivalConfig, DisaggConfig, MigrationPolicy, ServingConfig, ServingLoop, ServingModel,
    ServingReport,
};
use genie_telemetry::causal::{self, BlameFractions, BlameReport, WhatIf};
use serde_json::json;

/// Render blame fractions field by field — the schema the CI jq gate
/// sums over, so every category (including `collective`) must appear.
fn fractions_json(f: &BlameFractions) -> serde_json::Value {
    json!({
        "queue": f.queue,
        "compute": f.compute,
        "transfer": f.transfer,
        "fault": f.fault,
        "reprefill": f.reprefill,
        "migrate": f.migrate,
        "collective": f.collective,
    })
}

const SEED: u64 = 42;
const CHAOS_SEED: u64 = 7;

fn config(fault_plan: Option<FaultPlan>) -> ServingConfig {
    let mut c = ServingConfig::paper_testbed();
    c.max_batch = 4;
    c.fault_plan = fault_plan;
    c.record_telemetry = false;
    c
}

fn chaos_plan() -> FaultPlan {
    FaultPlan::new(
        CHAOS_SEED,
        FaultSchedule {
            specs: vec![
                FaultSpec::Derate {
                    a: 0,
                    b: 1,
                    factor: 0.25,
                },
                FaultSpec::Jitter {
                    a: 0,
                    b: 1,
                    max: Nanos::from_millis(2),
                },
            ],
        },
    )
}

fn run(plan: Option<FaultPlan>) -> ServingReport {
    let model = TransformerConfig::gptj_6b();
    let requests = ArrivalConfig {
        seed: SEED,
        rate_per_s: 4.0,
        horizon: Nanos::from_secs_f64(4.0),
        prompt_len: (16, 48),
        decode_tokens: (16, 48),
        vocab: model.vocab,
        tenants: 4,
    }
    .generate();
    ServingLoop::new(ServingModel::Spec(model), config(plan)).run(&requests)
}

/// The disaggregated scenario: one prefill lane shipping every KV
/// prefix to the decode lane, so `kv.migrate` wire time shows up as its
/// own blame category.
fn run_disagg() -> ServingReport {
    let model = TransformerConfig::gptj_6b();
    let requests = ArrivalConfig {
        seed: SEED,
        rate_per_s: 4.0,
        horizon: Nanos::from_secs_f64(4.0),
        prompt_len: (16, 48),
        decode_tokens: (16, 48),
        vocab: model.vocab,
        tenants: 4,
    }
    .generate();
    let mut c = config(None);
    let mut d = DisaggConfig::paper_testbed(1);
    d.policy = MigrationPolicy::AlwaysShip;
    c.disagg = Some(d);
    ServingLoop::new(ServingModel::Spec(model), c).run(&requests)
}

/// Analyze one scenario and enforce every blame invariant.
fn analyze_checked(label: &str, report: &ServingReport) -> BlameReport {
    let blame = causal::analyze(&report.causal_doc());
    for r in &blame.requests {
        let sum = r.fractions.sum();
        assert!(
            (sum - 1.0).abs() < 1e-6,
            "{label}: request {} blame fractions sum to {sum}, not 1",
            r.request
        );
        assert_eq!(
            r.blame.total_ns(),
            r.ttlt_ns,
            "{label}: request {} blamed ns must equal TTLT",
            r.request
        );
        let first = r.critical_path.first().expect("non-empty path");
        let last = r.critical_path.last().expect("non-empty path");
        assert_eq!(
            first.start_ns, r.arrival_ns,
            "{label}: path starts at arrival"
        );
        assert_eq!(
            last.end_ns, r.finished_ns,
            "{label}: path ends at completion"
        );
        for w in r.critical_path.windows(2) {
            assert_eq!(
                w[0].end_ns, w[1].start_ns,
                "{label}: request {} critical path has a gap",
                r.request
            );
        }
        assert!(
            WhatIf::zero_faults().replay(r) <= r.ttlt_ns,
            "{label}: zero-fault replay must not predict slower than observed"
        );
    }
    blame
}

/// Aggregate mean fractions over a blame report (by total ns, so long
/// requests weigh more — this is "where did the *time* go").
fn mean_fractions(blame: &BlameReport) -> (f64, f64, f64, f64, f64, f64) {
    let total: u64 = blame.requests.iter().map(|r| r.ttlt_ns).sum();
    if total == 0 {
        return (0.0, 0.0, 0.0, 0.0, 0.0, 0.0);
    }
    let t = total as f64;
    let sum = |f: &dyn Fn(&causal::BlameBreakdown) -> u64| -> f64 {
        blame.requests.iter().map(|r| f(&r.blame)).sum::<u64>() as f64 / t
    };
    (
        sum(&|b| b.queue_ns),
        sum(&|b| b.compute_prefill_ns + b.compute_decode_ns),
        sum(&|b| b.transfer_ns()),
        sum(&|b| b.fault_ns),
        sum(&|b| b.reprefill_ns),
        sum(&|b| b.migrate_ns),
    )
}

fn scenario_json(blame: &BlameReport, report: &ServingReport) -> serde_json::Value {
    let what_ifs = [
        causal::what_if(blame, "observed", &WhatIf::observed()),
        causal::what_if(blame, "link_bandwidth_2x", &WhatIf::link_bandwidth(2.0)),
        causal::what_if(blame, "zero_faults", &WhatIf::zero_faults()),
        causal::what_if(blame, "infinite_lanes", &WhatIf::infinite_lanes()),
    ];
    json!({
        "completed": blame.requests.len(),
        "shed": blame.shed,
        "profile_p50": fractions_json(&blame.profile_p50),
        "profile_p99": fractions_json(&blame.profile_p99),
        "what_if": what_ifs.iter().map(|w| json!({
            "scenario": w.scenario.clone(),
            "observed_mean_ns": w.observed_mean_ns,
            "predicted_mean_ns": w.predicted_mean_ns,
            "speedup": w.speedup,
        })).collect::<Vec<_>>(),
        "slo": json!({
            "per_tenant": report.slo.per_tenant.iter().map(|(t, s)| json!({
                "tenant": t,
                "observed": s.observed,
                "violations": s.violations,
                "burn_rate": s.burn_rate,
            })).collect::<Vec<_>>(),
        }),
    })
}

fn main() {
    let baseline = run(None);
    let chaos = run(Some(chaos_plan()));
    let disagg = run_disagg();

    let baseline_blame = analyze_checked("baseline", &baseline);
    let chaos_blame = analyze_checked("chaos", &chaos);
    let disagg_blame = analyze_checked("disagg", &disagg);

    // Determinism: a same-seed rerun must reproduce the blame report
    // byte for byte.
    let rerun = analyze_checked("chaos-rerun", &run(Some(chaos_plan())));
    assert_eq!(
        chaos_blame, rerun,
        "same-seed blame reports must be bit-identical"
    );

    // The chaos schedule must actually surface as fault blame.
    let chaos_fault_ns: u64 = chaos_blame.requests.iter().map(|r| r.blame.fault_ns).sum();
    assert!(
        chaos_fault_ns > 0,
        "chaos run produced no fault-attributed time"
    );

    // And shipped KV prefixes must surface as migrate blame.
    let migrate_ns: u64 = disagg_blame
        .requests
        .iter()
        .map(|r| r.blame.migrate_ns)
        .sum();
    assert!(
        migrate_ns > 0,
        "disagg run produced no migration-attributed time"
    );

    let mut table = Vec::new();
    for (label, blame) in [
        ("baseline", &baseline_blame),
        ("chaos", &chaos_blame),
        ("disagg", &disagg_blame),
    ] {
        let (queue, compute, transfer, fault, reprefill, migrate) = mean_fractions(blame);
        let zero_faults = causal::what_if(blame, "zero_faults", &WhatIf::zero_faults());
        let bw2 = causal::what_if(blame, "bw2x", &WhatIf::link_bandwidth(2.0));
        table.push(vec![
            label.to_string(),
            blame.requests.len().to_string(),
            format!("{:.1}", queue * 100.0),
            format!("{:.1}", compute * 100.0),
            format!("{:.1}", transfer * 100.0),
            format!("{:.1}", fault * 100.0),
            format!("{:.1}", reprefill * 100.0),
            format!("{:.1}", migrate * 100.0),
            format!("{:.2}x", zero_faults.speedup),
            format!("{:.2}x", bw2.speedup),
        ]);
    }

    let artifact = json!({
        "bench": "blame",
        "seed": SEED,
        "chaos_seed": CHAOS_SEED,
        "model": "gptj_6b",
        // Per-request blame for the chaos run: the CI schema gate
        // checks these fractions sum to 1 ± 1e-6.
        "requests": chaos_blame.requests.iter().map(|r| json!({
            "request": r.request,
            "ttlt_ns": r.ttlt_ns,
            "fractions": fractions_json(&r.fractions),
        })).collect::<Vec<_>>(),
        "baseline": scenario_json(&baseline_blame, &baseline),
        "chaos": scenario_json(&chaos_blame, &chaos),
        "disagg": scenario_json(&disagg_blame, &disagg),
    });
    let path = write_artifact("BENCH_blame", &artifact).expect("artifact written");

    println!(
        "{}",
        render_table(
            &[
                "scenario",
                "completed",
                "queue %",
                "compute %",
                "transfer %",
                "fault %",
                "reprefill %",
                "migrate %",
                "zero-fault",
                "2x link"
            ],
            &table,
        )
    );
    println!("artifact: {}", path.display());
}
