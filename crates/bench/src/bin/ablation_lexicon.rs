//! Ablation: the learned semantic lexicon (§5, "the evolving semantic
//! lexicon") — classification accuracy on unseen model configurations as
//! a function of training exemplars per family.
//!
//! Run with: `cargo run -p genie-bench --bin ablation_lexicon`

use genie_bench::report::render_table;
use genie_frontend::capture::CaptureCtx;
use genie_frontend::patterns::learned::LearnedLexicon;
use genie_models::{
    CnnConfig, Dlrm, DlrmConfig, KvState, SimpleCnn, TransformerConfig, TransformerLm,
};
use genie_srg::{ElemType, Srg};

fn llm(layers: usize, d_model: usize) -> Srg {
    let m = TransformerLm::new_spec(TransformerConfig {
        layers,
        d_model,
        heads: 8,
        vocab: 32000,
        ffn_mult: 4,
        elem: ElemType::F16,
    });
    let ctx = CaptureCtx::new("llm");
    let cap = m.capture_decode_step(&ctx, 0, &KvState::default());
    cap.logits.sample().mark_output();
    ctx.finish().srg
}

fn cnn(stages: usize, channels: usize) -> Srg {
    let m = SimpleCnn::new_spec(CnnConfig {
        stages,
        base_channels: channels,
        image_size: 64,
        classes: 100,
        elem: ElemType::F16,
    });
    let ctx = CaptureCtx::new("cnn");
    m.capture_inference(&ctx, 1, None).mark_output();
    ctx.finish().srg
}

fn dlrm(tables: usize, dim: usize) -> Srg {
    let cfg = DlrmConfig {
        tables,
        rows_per_table: 100_000,
        embedding_dim: dim,
        dense_features: 13,
        mlp_hidden: 256,
        lookups_per_table: 16,
        elem: ElemType::F16,
    };
    let m = Dlrm::new_spec(cfg.clone());
    let ctx = CaptureCtx::new("dlrm");
    let ids: Vec<Vec<i64>> = (0..cfg.tables)
        .map(|_| vec![0; cfg.lookups_per_table])
        .collect();
    m.capture_inference(&ctx, &ids, None).mark_output();
    ctx.finish().srg
}

fn eval_accuracy(train_per_family: usize) -> (f64, usize) {
    let mut lex = LearnedLexicon::new();
    let llm_train = [(2, 64), (4, 128), (8, 256), (12, 512)];
    let cnn_train = [(2, 4), (4, 8), (6, 16), (8, 32)];
    let dlrm_train = [(2, 8), (4, 16), (8, 32), (16, 64)];
    for i in 0..train_per_family {
        let (l, d) = llm_train[i % llm_train.len()];
        lex.learn("llm", &llm(l, d));
        let (s, c) = cnn_train[i % cnn_train.len()];
        lex.learn("vision", &cnn(s, c));
        let (t, e) = dlrm_train[i % dlrm_train.len()];
        lex.learn("recsys", &dlrm(t, e));
    }
    // Held-out grid: scales never trained on.
    let mut correct = 0usize;
    let mut total = 0usize;
    for (l, d) in [(6, 96), (20, 1024), (28, 4096)] {
        total += 1;
        if lex.classify(&llm(l, d)).map(|(c, _)| c) == Some("llm") {
            correct += 1;
        }
    }
    for (s, c) in [(3, 12), (5, 24), (8, 64)] {
        total += 1;
        if lex.classify(&cnn(s, c)).map(|(c, _)| c) == Some("vision") {
            correct += 1;
        }
    }
    for (t, e) in [(3, 12), (10, 48), (26, 128)] {
        total += 1;
        if lex.classify(&dlrm(t, e)).map(|(c, _)| c) == Some("recsys") {
            correct += 1;
        }
    }
    (correct as f64 / total as f64, total)
}

fn main() {
    println!("Ablation — learned lexicon accuracy on unseen configurations\n");
    let mut rows = Vec::new();
    for k in [1usize, 2, 4] {
        let (acc, total) = eval_accuracy(k);
        rows.push(vec![
            k.to_string(),
            format!("{:.0}%", acc * 100.0),
            total.to_string(),
        ]);
    }
    println!(
        "{}",
        render_table(
            &["Exemplars/family", "Held-out accuracy", "Test graphs"],
            &rows
        )
    );
    println!("a nearest-centroid lexicon over scale-normalized SRG features learns");
    println!("new workload families from a handful of exemplars and generalizes to");
    println!("GPT-J-scale configurations it never saw — a first step past");
    println!("\"manually curated pattern recognizers\" (§5).");
}
