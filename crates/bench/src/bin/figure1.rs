//! Figure-1 analog: quantifies the semantic translation gap by counting
//! the semantic facts recoverable at each interposition level.
//!
//! Run with: `cargo run -p genie-bench --bin figure1`

use genie_bench::report::render_table;
use genie_bench::stack_levels::semantic_visibility;

fn main() {
    println!("Figure 1 analog — semantic facts visible at each stack level");
    println!("(what is \"lost in translation\" as computation descends)\n");
    let rows: Vec<Vec<String>> = semantic_visibility()
        .into_iter()
        .map(|r| {
            vec![
                r.workload,
                r.level.to_string(),
                r.op_kinds.to_string(),
                r.phases.to_string(),
                r.residencies.to_string(),
                r.modalities.to_string(),
                r.structure.to_string(),
                r.total.to_string(),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            &[
                "Workload",
                "Level",
                "Ops",
                "Phases",
                "Residency",
                "Modality",
                "Structure",
                "Total"
            ],
            &rows
        )
    );
    if let Ok(path) = genie_bench::report::write_artifact("figure1", &semantic_visibility()) {
        println!("artifact: {}\n", path.display());
    }
    println!("PCIe sees DMA bursts (0 facts); the driver sees kernel names only;");
    println!("the framework layer sees everything the scheduler needs.");
}
