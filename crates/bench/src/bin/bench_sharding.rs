//! Regenerate `BENCH_sharding.json`: scaling efficiency of sharded
//! GPT-J decode versus device-to-device fabric bandwidth.
//!
//! For each shard layout (tensor-parallel, pipeline, combined) the
//! sweep prices one steady-state decode step with
//! `genie_backend::sharded_step_time` across fabric bandwidths and
//! reports decode tokens/s, speedup over the single-device oracle, and
//! scaling efficiency (`speedup / devices`). The whole bench is
//! analytical (spec plane): milliseconds of wall time, bit-deterministic
//! output.
//!
//! The artifact fails loudly (asserts) if any headline claim breaks:
//!
//! - efficiency is monotone non-decreasing in fabric bandwidth for
//!   every layout (the collective wire term is the only bandwidth-
//!   dependent cost);
//! - at least one multi-device layout beats single-device decode
//!   tokens/s outright;
//! - 2-way tensor parallelism holds efficiency >= 0.6 at 100 Gbps
//!   (the CI jq gate re-checks this from the shipped schema);
//! - on the paper testbed's 250 us fabric the same layout *loses* to
//!   one device — per-layer collective latency swamps the split
//!   weight stream. Disaggregation changed the meaning of "2x devices".
//!
//! Pass `--quick` (CI) for the 2-bandwidth sweep. A `serving` section
//! cross-checks the step-cost curve end to end: the serving loop runs
//! the same shard spec behind `ServingConfig::shard` and must finish a
//! fixed request batch sooner than the flat single-device lane.

use genie_backend::{batched_step_time, sharded_step_time, ShardPlan, StepWork};
use genie_bench::report::{render_table, write_artifact};
use genie_cluster::GpuSpec;
use genie_models::TransformerConfig;
use genie_netsim::Nanos;
use genie_serving::{ArrivalConfig, ServingConfig, ServingLoop, ServingModel};
use genie_srg::shard::ShardSpec;
use serde_json::json;

/// Steady-state decode step: a full continuous batch, every member one
/// token in, 64 tokens of KV resident each.
const DECODE_MEMBERS: u64 = 8;
const KV_PER_MEMBER: u64 = 64;

/// Device-to-device fabric latency for the sweep: a rack-scale
/// accelerator fabric (NVLink/ICI class), not the paper's 250 us
/// network-attached testbed — that contrast is the `paper_fabric`
/// section.
const FABRIC_LATENCY_S: f64 = 5e-6;

/// Client-facing link (token/logit traffic), identical in every layout
/// so the comparison isolates the fabric.
const LINK_BW_BPS: f64 = 25e9;
const LINK_LATENCY_S: f64 = 250e-6;

fn decode_work() -> StepWork {
    StepWork {
        prefill_members: 0,
        prefill_tokens: 0,
        decode_members: DECODE_MEMBERS,
        kv_resident_tokens: DECODE_MEMBERS * KV_PER_MEMBER,
    }
}

/// Decode tokens/s of one priced step: members over the barrier time
/// (compute + client link + collectives).
fn tokens_per_s(cfg: &TransformerConfig, plan: &ShardPlan) -> (f64, f64, f64) {
    let work = decode_work();
    let (cost, collective_s) = sharded_step_time(
        cfg,
        &work,
        &GpuSpec::a100_80gb(),
        LINK_BW_BPS,
        LINK_LATENCY_S,
        true,
        plan,
    );
    let step_s = cost.total_s() + collective_s;
    (work.tokens_produced() as f64 / step_s, step_s, collective_s)
}

fn serving_section(cfg: &TransformerConfig) -> serde_json::Value {
    let requests = ArrivalConfig {
        seed: 42,
        rate_per_s: 4.0,
        horizon: Nanos::from_secs_f64(2.0),
        prompt_len: (16, 48),
        decode_tokens: (32, 96),
        vocab: cfg.vocab,
        tenants: 2,
    }
    .generate();
    let config = |shard: Option<ShardSpec>| {
        let mut c = ServingConfig::paper_testbed();
        c.max_batch = DECODE_MEMBERS as usize;
        c.link_bandwidth_bps = 100e9;
        c.link_latency_s = FABRIC_LATENCY_S;
        c.record_telemetry = false;
        c.shard = shard;
        c
    };
    let flat = ServingLoop::new(ServingModel::Spec(cfg.clone()), config(None)).run(&requests);
    let sharded = ServingLoop::new(
        ServingModel::Spec(cfg.clone()),
        config(Some(ShardSpec::tensor(2))),
    )
    .run(&requests);
    assert_eq!(flat.completed(), requests.len(), "flat run must complete");
    assert_eq!(
        sharded.completed(),
        requests.len(),
        "sharded run must complete"
    );
    assert!(
        sharded.makespan < flat.makespan,
        "end-to-end: tensor(2) on the 100 Gbps fabric must drain the \
         batch sooner than one device ({:?} vs {:?})",
        sharded.makespan,
        flat.makespan
    );
    json!({
        "spec": "pp1xtp2",
        "fabric_gbps": 100.0,
        "requests": requests.len(),
        "flat_makespan_s": flat.makespan.as_secs_f64(),
        "sharded_makespan_s": sharded.makespan.as_secs_f64(),
        "flat_tokens_per_s": flat.tokens_per_s(),
        "sharded_tokens_per_s": sharded.tokens_per_s(),
    })
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let bandwidths_gbps: &[f64] = if quick {
        &[25.0, 100.0]
    } else {
        &[10.0, 25.0, 50.0, 100.0, 200.0]
    };
    let layouts: &[(u32, u32)] = &[(1, 2), (1, 4), (2, 1), (4, 1), (2, 2)];
    let cfg = TransformerConfig::gptj_6b();

    // Single-device oracle: same step, no fabric in the price.
    let work = decode_work();
    let base = batched_step_time(
        &cfg,
        &work,
        &GpuSpec::a100_80gb(),
        LINK_BW_BPS,
        LINK_LATENCY_S,
        true,
    );
    let single_tps = work.tokens_produced() as f64 / base.total_s();

    let mut rows = Vec::new();
    let mut table = Vec::new();
    let mut beats_single = 0usize;
    for &(pp, tp) in layouts {
        let spec = format!("pp{pp}xtp{tp}");
        let shards = pp * tp;
        let mut prev_eff = f64::NEG_INFINITY;
        for &gbps in bandwidths_gbps {
            let plan = ShardPlan {
                pipeline_stages: pp,
                tensor_parallel: tp,
                fabric_bandwidth_bps: gbps * 1e9,
                fabric_latency_s: FABRIC_LATENCY_S,
            };
            let (tps, step_s, collective_s) = tokens_per_s(&cfg, &plan);
            let speedup = tps / single_tps;
            let efficiency = speedup / shards as f64;
            assert!(
                efficiency >= prev_eff,
                "{spec}: efficiency must be monotone in fabric bandwidth \
                 ({efficiency} at {gbps} Gbps after {prev_eff})"
            );
            prev_eff = efficiency;
            if tps > single_tps {
                beats_single += 1;
            }
            table.push(vec![
                spec.clone(),
                shards.to_string(),
                format!("{gbps:.0}"),
                format!("{:.2}", step_s * 1e3),
                format!("{:.0}", collective_s * 1e6),
                format!("{tps:.0}"),
                format!("{speedup:.2}x"),
                format!("{:.2}", efficiency),
            ]);
            rows.push(json!({
                "spec": spec.clone(),
                "pipeline_stages": pp,
                "tensor_parallel": tp,
                "shards": shards,
                "fabric_gbps": gbps,
                "step_s": step_s,
                "collective_s": collective_s,
                "tokens_per_s": tps,
                "speedup": speedup,
                "efficiency": efficiency,
            }));
        }
    }

    assert!(
        beats_single >= 1,
        "at least one multi-device layout must beat single-device decode \
         tokens/s ({single_tps:.0})"
    );
    let tp2_at_100 = rows
        .iter()
        .find(|r| r["spec"].as_str() == Some("pp1xtp2") && r["fabric_gbps"].as_f64() == Some(100.0))
        .expect("sweep must include pp1xtp2 at 100 Gbps");
    assert!(
        tp2_at_100["efficiency"].as_f64().unwrap() >= 0.6,
        "2-way tensor parallelism must hold efficiency >= 0.6 at 100 Gbps"
    );

    // The paper's fabric: same 2-way split, 250 us device-to-device
    // latency. 56 collective rounds per step price in at ~14 ms against
    // a ~3 ms stage — the split loses outright.
    let paper_plan = ShardPlan {
        pipeline_stages: 1,
        tensor_parallel: 2,
        fabric_bandwidth_bps: LINK_BW_BPS,
        fabric_latency_s: LINK_LATENCY_S,
    };
    let (paper_tps, paper_step_s, paper_collective_s) = tokens_per_s(&cfg, &paper_plan);
    assert!(
        paper_tps < single_tps,
        "on the 250 us network-attached fabric, tensor(2) must lose to \
         one device ({paper_tps:.0} vs {single_tps:.0} tok/s)"
    );

    let serving = serving_section(&cfg);

    let artifact = json!({
        "bench": "sharding",
        "quick": quick,
        "model": "gptj_6b",
        "seed": 42,
        "work": {
            "decode_members": DECODE_MEMBERS,
            "kv_resident_tokens": DECODE_MEMBERS * KV_PER_MEMBER,
        },
        "fabric_latency_s": FABRIC_LATENCY_S,
        "single_tokens_per_s": single_tps,
        "sweep": rows,
        "paper_fabric": {
            "spec": "pp1xtp2",
            "fabric_gbps": LINK_BW_BPS / 1e9,
            "fabric_latency_s": LINK_LATENCY_S,
            "step_s": paper_step_s,
            "collective_s": paper_collective_s,
            "tokens_per_s": paper_tps,
            "speedup": paper_tps / single_tps,
        },
        "serving": serving,
    });
    let path = write_artifact("BENCH_sharding", &artifact).expect("artifact written");

    println!(
        "{}",
        render_table(
            &[
                "layout",
                "devices",
                "fabric Gbps",
                "step ms",
                "collective us",
                "tok/s",
                "speedup",
                "efficiency"
            ],
            &table,
        )
    );
    println!(
        "single device: {single_tps:.0} tok/s; paper fabric tp2: {paper_tps:.0} tok/s; \
         artifact: {}",
        path.display()
    );
}
