//! Ablation: dynamic recomputation under congestion (§3.3).
//!
//! Sweeps background congestion and reports when fetching a cheap
//! intermediate across the wire loses to recomputing it at the consumer.
//!
//! Run with: `cargo run -p genie-bench --bin ablation_recompute`

use genie_bench::report::render_table;
use genie_cluster::GpuSpec;
use genie_scheduler::CostModel;
use genie_srg::{CostHints, Node, NodeId, OpKind};

fn main() {
    let cost = CostModel::ideal_25g();
    let gpu = GpuSpec::a100_80gb();

    // A cheap elementwise intermediate: 100 MFLOP producing 64 MB.
    let producer = Node::new(NodeId::new(0), OpKind::Gelu, "activation")
        .with_cost(CostHints::new(100e6, 64e6, 64e6));
    let bytes = 64e6;

    println!("Ablation — dynamic recomputation (64 MB intermediate, 100 MFLOP)\n");
    let mut rows = Vec::new();
    for congestion in [0.0, 0.3, 0.5, 0.7, 0.8, 0.9, 0.95, 0.99] {
        let advantage = cost.recompute_advantage(&producer, bytes, &gpu, congestion);
        let fetch_s = cost.per_call_overhead_s
            + bytes / (cost.network_bandwidth * (1.0 - congestion))
            + cost.network_latency_s;
        let recompute_s = cost.kernel_time(&producer, &gpu);
        rows.push(vec![
            format!("{:.0}%", congestion * 100.0),
            format!("{:.2}", fetch_s * 1e3),
            format!("{:.3}", recompute_s * 1e3),
            if advantage > 0.0 {
                "recompute"
            } else {
                "fetch"
            }
            .to_string(),
            format!("{:+.2}", advantage * 1e3),
        ]);
    }
    println!(
        "{}",
        render_table(
            &[
                "Congestion",
                "Fetch [ms]",
                "Recompute [ms]",
                "Decision",
                "Saved [ms]"
            ],
            &rows
        )
    );
    println!("recomputation always wins for this tensor: moving 64 MB costs more than");
    println!("0.3 ms of GELU even on an idle link — and the gap widens 100× under");
    println!("congestion. The scheduler flips per-edge using live RTT hints (§3.3).");
}
