//! Regenerates Table 1: semantic characteristics of the four workload
//! families, derived mechanically from their captured SRGs.
//!
//! Run with: `cargo run -p genie-bench --bin table1`

use genie_bench::characterize::table1;
use genie_bench::report::render_table;

fn main() {
    println!("Table 1 — workload characteristics recovered from captured SRGs\n");
    let rows: Vec<Vec<String>> = table1()
        .into_iter()
        .map(|r| {
            vec![
                r.workload,
                r.computation_pattern,
                r.memory_access,
                r.key_optimization,
                format!("{} nodes, phases: {}", r.nodes, r.phases.join("+")),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            &[
                "Workload",
                "Computation Pattern",
                "Memory Access",
                "Key Optimization",
                "Evidence (from graph)"
            ],
            &rows
        )
    );
    if let Ok(path) = genie_bench::report::write_artifact("table1", &table1()) {
        println!("artifact: {}\n", path.display());
    }
    println!("paper's rows: sequential-phased / layer-parallel / sparse+dense / cross-modal;");
    println!("all four recovered from graph statistics alone (no per-model logic).");
}
