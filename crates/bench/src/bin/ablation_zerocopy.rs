//! Ablation: proactive pinned allocation vs reactive pinning (§3.4).
//!
//! Counts the staging copies each datapath performs while sending a
//! decode session's tensors through the pinned-buffer pool — the
//! observable form of "allocating tensors in network-ready buffers at
//! creation time completely eliminates the initial copy overhead".
//!
//! Run with: `cargo run -p genie-bench --bin ablation_zerocopy`

use genie_bench::report::render_table;
use genie_transport::PinnedPool;
use std::sync::atomic::Ordering;

fn main() {
    let steps = 1000;
    let payload = 917_504usize; // one GPT-J KV delta (f32)

    // Reactive path: tensors are born in ordinary memory; every send
    // stages a copy into registered buffers (pin_memory() after the
    // fact).
    let reactive = PinnedPool::new();
    let tensor = vec![0u8; payload];
    for _ in 0..steps {
        let _wire = reactive.send_reactive(&tensor);
    }

    // Proactive path: tensors are created inside pool buffers, so the
    // wire sees them with no staging.
    let proactive = PinnedPool::new();
    for _ in 0..steps {
        let mut buf = proactive.alloc(payload);
        // The "kernel" writes its output directly into pinned memory.
        buf.bytes_mut().resize(payload, 0);
        let _wire = proactive.send_proactive(buf);
    }

    println!("Ablation — zero-copy datapath ({steps} sends of one {payload}-byte KV delta)\n");
    let stats = |p: &PinnedPool| {
        (
            p.stats().staging_copies.load(Ordering::Relaxed),
            p.stats().staged_bytes.load(Ordering::Relaxed),
            p.stats().zero_copy_sends.load(Ordering::Relaxed),
        )
    };
    let (rc, rb, rz) = stats(&reactive);
    let (pc, pb, pz) = stats(&proactive);
    println!(
        "{}",
        render_table(
            &[
                "Datapath",
                "Staging copies",
                "Bytes copied",
                "Zero-copy sends"
            ],
            &[
                vec![
                    "reactive (pin_memory post-hoc)".into(),
                    rc.to_string(),
                    rb.to_string(),
                    rz.to_string()
                ],
                vec![
                    "proactive (born pinned, §3.4)".into(),
                    pc.to_string(),
                    pb.to_string(),
                    pz.to_string()
                ],
            ]
        )
    );
    println!(
        "the proactive path eliminates {} copies ({:.1} MB of memcpy) per 1000 steps.",
        rc,
        rb as f64 / 1e6
    );
}
