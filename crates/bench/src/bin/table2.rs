//! Regenerates Table 2: end-to-end latency, network traffic, and
//! effective GPU utilization for the four execution modes, prefill and
//! decode phases.
//!
//! Run with: `cargo run -p genie-bench --bin table2`

use genie_bench::report::{fmt_mb, fmt_pct, fmt_secs, render_table};
use genie_bench::{table2, Calibration, LlmWorkload};

fn main() {
    let w = LlmWorkload::paper();
    let cal = Calibration::paper();
    let rows = table2(&w, &cal);

    println!(
        "Table 2 — GPT-J ({:.1} GB fp16) on A100-80GB over 25 GbE,",
        w.weight_bytes() / 1e9
    );
    println!(
        "{}-token prompt + {}-token decode; TensorPipe-calibrated transport\n",
        w.prompt_tokens, w.decode_tokens
    );

    for (phase, pick) in [
        ("Prefill (72-token prompt)", 0usize),
        ("Decode (50 tokens)", 1usize),
    ] {
        println!("{phase}");
        let paper: [[&str; 3]; 4] = if pick == 0 {
            [
                ["0.21", "0.0", "100.0"],
                ["216", "149,258", "0.1"],
                ["110", "4.31", "0.2"],
                ["111", "5.56", "0.2"],
            ]
        } else {
            [
                ["1.53", "0.0", "99.1"],
                ["783", "95,438", "0.3"],
                ["131", "52.3", "1.5"],
                ["116", "11.3", "1.8"],
            ]
        };
        let table_rows: Vec<Vec<String>> = rows
            .iter()
            .zip(paper)
            .map(|(r, p)| {
                let m = if pick == 0 { r.prefill } else { r.decode };
                vec![
                    r.mode.label().to_string(),
                    fmt_secs(m.latency_s),
                    fmt_mb(m.net_mb),
                    fmt_pct(m.gpu_util_pct),
                    m.rpc_calls.to_string(),
                    format!("{} / {} / {}", p[0], p[1], p[2]),
                ]
            })
            .collect();
        println!(
            "{}",
            render_table(
                &[
                    "Mode",
                    "Latency [s]",
                    "Net [MB]",
                    "GPU Util [%]",
                    "RPCs",
                    "(paper: s / MB / %)",
                ],
                &table_rows,
            )
        );
    }

    if let Ok(path) = genie_bench::report::write_artifact("table2", &rows) {
        println!("artifact: {}\n", path.display());
    }

    let naive = &rows[1];
    let sa = &rows[3];
    println!("traffic reduction, semantics-aware vs naive:");
    println!(
        "  prefill {:>9.0}x   decode {:>7.0}x   (paper: >26,000x and >8,400x)",
        naive.prefill.net_mb / sa.prefill.net_mb,
        naive.decode.net_mb / sa.decode.net_mb
    );
}
