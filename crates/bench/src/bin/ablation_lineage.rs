//! Ablation: lineage recovery vs full restart (§3.5).
//!
//! Simulates a long decode session that fails at varying points and
//! compares the work replayed by lineage-based recovery (prefill survives
//! as a recipe; only the lost KV chain re-executes) against restarting
//! the whole session.
//!
//! Run with: `cargo run -p genie-bench --bin ablation_lineage`

use genie_bench::report::render_table;
use genie_bench::Calibration;

fn main() {
    let cal = Calibration::paper();
    let prompt_kernel = cal.kernel_prefill_s;
    let token_kernel = cal.kernel_token_s;

    println!("Ablation — lineage recovery vs restart (GPT-J session, checkpoint-free)\n");
    println!("Failure at step k of a 200-token decode. Lineage replays the KV chain");
    println!("from the last surviving state; restart redoes prefill + all k tokens.\n");

    let mut rows = Vec::new();
    for fail_at in [10usize, 50, 100, 150, 200] {
        // Restart: prefill + k decode steps redo, then continue.
        let restart = prompt_kernel + fail_at as f64 * token_kernel;
        // Lineage: the prompt's KV is itself remote state whose recipe is
        // the prefill graph; if the device dies, the KV chain must
        // rebuild — but recipes batch the rebuild as one prefill-shaped
        // replay over the already-known tokens (teacher forcing), which
        // runs at prefill parallelism rather than step-by-step.
        let replay_tokens = fail_at; // tokens whose KV must re-materialize
        let lineage = prompt_kernel * (replay_tokens as f64 / 72.0).max(1.0);
        rows.push(vec![
            fail_at.to_string(),
            format!("{restart:.2}"),
            format!("{lineage:.2}"),
            format!("{:.1}x", restart / lineage),
        ]);
    }
    println!(
        "{}",
        render_table(
            &[
                "Fail at step",
                "Restart redo [s]",
                "Lineage replay [s]",
                "Saving"
            ],
            &rows
        )
    );
    println!("because the SRG records decode deterministically (sampled tokens are");
    println!("part of the lineage), lost KV rebuilds as one parallel prefill-style");
    println!("replay instead of a sequential re-decode — \"recovery of long-running");
    println!("decode loops without restarting prefill\" (§3.5).");
}
