//! Ablation: static per-tenant allocation vs a disaggregated pool — the
//! paper's motivating utilization argument (§1) made quantitative.
//!
//! Run with: `cargo run -p genie-bench --bin ablation_fleet`

use genie_bench::fleet::{simulate_pooled, simulate_static, TenantLoad};
use genie_bench::report::render_table;

fn main() {
    let tenants: Vec<TenantLoad> = (0..8).map(|_| TenantLoad::chatbot(9.0)).collect();
    let horizon = 3600.0;
    let seed = 2026;

    println!(
        "Ablation — fleet utilization: 8 bursty tenants (GPT-J requests, ~20% duty cycle each)\n"
    );

    let stat = simulate_static(&tenants, horizon, seed);
    let mut rows = vec![vec![
        "static (1 GPU/tenant)".to_string(),
        stat.devices.to_string(),
        format!("{:.0}%", stat.mean_utilization * 100.0),
        format!("{:.2}", stat.mean_latency_s),
        format!("{:.2}", stat.p95_latency_s),
    ]];
    for pool in [6usize, 4, 3, 2] {
        let r = simulate_pooled(&tenants, pool, horizon, seed);
        rows.push(vec![
            format!("disaggregated pool of {pool}"),
            pool.to_string(),
            format!("{:.0}%", r.mean_utilization * 100.0),
            format!("{:.2}", r.mean_latency_s),
            format!("{:.2}", r.p95_latency_s),
        ]);
    }
    println!(
        "{}",
        render_table(
            &[
                "Configuration",
                "GPUs",
                "Mean util",
                "Mean lat [s]",
                "p95 lat [s]"
            ],
            &rows
        )
    );
    println!("the static fleet reproduces the paper's \"55–60% idleness\" (§1); a");
    println!("semantics-aware pool serves the same load on ~a third of the devices");
    println!("at bounded latency cost — the capacity disaggregation reclaims.");
}
