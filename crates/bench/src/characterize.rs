//! Table-1 regeneration: derive each workload family's semantic
//! characteristics *from its captured SRG*.
//!
//! The paper's Table 1 is hand-written; here it is recovered mechanically
//! from graph statistics — the demonstration that the framework layer
//! actually observes these semantics rather than asserting them.

use genie_models::Workload;
use genie_srg::stats::GraphStats;
use serde::{Deserialize, Serialize};

/// One derived Table-1 row.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Table1Row {
    /// Workload family name.
    pub workload: String,
    /// Computation pattern derived from the SRG.
    pub computation_pattern: String,
    /// Memory-access profile derived from the SRG.
    pub memory_access: String,
    /// The key optimization this family unlocks (from the zoo's catalog;
    /// the optimization itself is exercised by the ablations).
    pub key_optimization: String,
    /// Supporting evidence: captured graph size.
    pub nodes: usize,
    /// Supporting evidence: phases observed in the graph.
    pub phases: Vec<String>,
}

/// Regenerate Table 1 from the model zoo.
pub fn table1() -> Vec<Table1Row> {
    Workload::ALL
        .iter()
        .map(|w| {
            let srg = w.spec_graph();
            let stats = GraphStats::of(&srg).expect("zoo graphs are acyclic");
            Table1Row {
                workload: w.name().to_string(),
                computation_pattern: stats.computation_pattern().to_string(),
                memory_access: stats.memory_access_profile().to_string(),
                key_optimization: w.key_optimization().to_string(),
                nodes: stats.nodes,
                phases: stats.phases.clone(),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn four_rows_in_paper_order() {
        let rows = table1();
        assert_eq!(rows.len(), 4);
        assert_eq!(rows[0].workload, "LLM Serving");
        assert_eq!(rows[3].workload, "Multi-modal");
    }

    #[test]
    fn derived_columns_match_paper_vocabulary() {
        let rows = table1();
        assert!(rows[0].computation_pattern.contains("prefill/decode"));
        assert_eq!(rows[0].memory_access, "streaming KV cache");
        assert_eq!(rows[1].key_optimization, "Pipeline parallelism");
        assert_eq!(rows[2].memory_access, "hot/cold embeddings");
        assert_eq!(rows[3].computation_pattern, "cross-modal fusion");
    }

    #[test]
    fn evidence_is_nontrivial() {
        for row in table1() {
            assert!(row.nodes > 10, "{} graph too small", row.workload);
            assert!(!row.phases.is_empty(), "{} has no phases", row.workload);
        }
    }
}
