//! The four execution modes of §4, driven over the simulated transport.
//!
//! Each mode is a mechanistic client strategy, not a curve fit: the Naïve
//! mode really issues one weight re-upload per remote call, ΔKV really
//! ships the per-token KV slice, Semantics-Aware really pins state and
//! streams logits — the latency and traffic columns fall out of the
//! calibrated transport ([`crate::calibration::Calibration`]) and the
//! link's FIFO discipline.

use crate::calibration::Calibration;
use crate::workload::LlmWorkload;
use genie_netsim::{LinkSim, Nanos, RpcChannel};
use serde::{Deserialize, Serialize};

/// The four §4 execution modes.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Mode {
    /// Model and KV cache on the client's own GPU.
    Local,
    /// Semantics-blind: the entire model re-uploads on every remote call;
    /// the KV cache is not preserved between steps.
    NaiveBlind,
    /// Semantics-blind with delta shipping: weights remain remote, each
    /// step ships the new KV slice.
    DeltaKv,
    /// Genie: weights and KV pinned remotely behind handles; each step
    /// moves the token in and the logits out.
    SemanticsAware,
}

impl Mode {
    /// All modes in table order.
    pub const ALL: [Mode; 4] = [
        Mode::Local,
        Mode::NaiveBlind,
        Mode::DeltaKv,
        Mode::SemanticsAware,
    ];

    /// Row label matching the paper's Table 2.
    pub fn label(&self) -> &'static str {
        match self {
            Mode::Local => "Local (upper bound)",
            Mode::NaiveBlind => "Semantics-Blind, Naive",
            Mode::DeltaKv => "Semantics-Blind, dKV",
            Mode::SemanticsAware => "Semantics-Aware",
        }
    }
}

/// The measured phase.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PhaseRun {
    /// Prompt processing.
    Prefill,
    /// Autoregressive generation of `n` tokens.
    Decode(usize),
}

/// One table cell triple.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct PhaseMetrics {
    /// End-to-end wall-clock seconds (the paper's `/usr/bin/time`).
    pub latency_s: f64,
    /// Network volume in MB (decimal, as the paper reports).
    pub net_mb: f64,
    /// Effective GPU utilization percent: kernel seconds / wall clock.
    pub gpu_util_pct: f64,
    /// Completed RPC round trips (the evaluation's "network volume via
    /// RPC counters" companion figure; 0 for local execution).
    #[serde(default)]
    pub rpc_calls: u64,
}

fn fresh_channel(cal: &Calibration) -> RpcChannel {
    let link = LinkSim::new(25e9 / 8.0, Nanos::from_secs_f64(cal.net_latency_s));
    RpcChannel::new(cal.rpc_params(), link)
}

/// Run one mode through one phase, reproducing the paper's measurement
/// protocol: each phase is a fresh process/session (`/usr/bin/time`), so
/// remote modes pay session establishment each time.
pub fn run_phase(mode: Mode, phase: PhaseRun, w: &LlmWorkload, cal: &Calibration) -> PhaseMetrics {
    let kernel_s = match phase {
        PhaseRun::Prefill => cal.kernel_prefill_s,
        PhaseRun::Decode(n) => n as f64 * cal.kernel_token_s,
    };

    if mode == Mode::Local {
        return PhaseMetrics {
            latency_s: kernel_s,
            net_mb: 0.0,
            gpu_util_pct: 100.0,
            rpc_calls: 0,
        };
    }

    let mut ch = fresh_channel(cal);
    let start = ch.ensure_session(Nanos::ZERO);
    let finish = match (mode, phase) {
        (Mode::NaiveBlind, PhaseRun::Prefill) => {
            // One remote call per module stage; each re-uploads the whole
            // model plus the running activations; the last returns logits.
            let mut t = start;
            let stage_kernel =
                Nanos::from_secs_f64(cal.kernel_prefill_s / cal.prefill_stages as f64);
            for stage in 0..cal.prefill_stages {
                let up = w.weight_bytes() as u64
                    + if stage == 0 {
                        w.prompt_bytes() as u64
                    } else {
                        w.boundary_activation_bytes() as u64
                    };
                let down = if stage + 1 == cal.prefill_stages {
                    w.logits_bytes() as u64
                } else {
                    w.boundary_activation_bytes() as u64
                };
                t = ch.call_sync(t, up, down, stage_kernel).response_delivered;
            }
            t
        }
        (Mode::NaiveBlind, PhaseRun::Decode(n)) => {
            // Every token re-uploads the model; no KV survives between
            // steps, so the server re-runs prefill context each time (we
            // charge only the token kernel — conservative in the
            // blind mode's favor).
            let mut t = start;
            let k = Nanos::from_secs_f64(cal.kernel_token_s);
            for _ in 0..n {
                let up = w.weight_bytes() as u64 + 8;
                let down = w.logits_bytes() as u64;
                t = ch.call_sync(t, up, down, k).response_delivered;
            }
            t
        }
        (Mode::DeltaKv, PhaseRun::Prefill) => {
            // Weights stay remote; per-module calls round-trip activations
            // through the client (the RPC caller owns every return value).
            let mut t = start;
            let stage_kernel =
                Nanos::from_secs_f64(cal.kernel_prefill_s / cal.prefill_stages as f64);
            for stage in 0..cal.prefill_stages {
                let up = if stage == 0 {
                    w.prompt_bytes() as u64
                } else {
                    w.boundary_activation_bytes() as u64
                };
                let down = if stage + 1 == cal.prefill_stages {
                    w.logits_bytes() as u64
                } else {
                    w.boundary_activation_bytes() as u64
                };
                t = ch.call_sync(t, up, down, stage_kernel).response_delivered;
            }
            t
        }
        (Mode::DeltaKv, PhaseRun::Decode(n)) => {
            // One synchronous round trip per token: the client keeps the
            // canonical KV and ships the delta slice each step.
            let mut t = start;
            let k = Nanos::from_secs_f64(cal.kernel_token_s);
            for _ in 0..n {
                let up = w.kv_delta_bytes() as u64 + 8;
                let down = w.logits_bytes() as u64;
                t = ch.call_sync(t, up, down, k).response_delivered;
            }
            t
        }
        (Mode::SemanticsAware, PhaseRun::Prefill) => {
            // One call installs the plan and ships the prompt; weights are
            // already pinned (handles); logits for the final position
            // return.
            let plan_bytes = 10_000u64;
            let t = ch.call_sync(
                start,
                w.prompt_bytes() as u64 + plan_bytes,
                w.logits_bytes() as u64,
                Nanos::from_secs_f64(cal.kernel_prefill_s),
            );
            t.response_delivered
        }
        (Mode::SemanticsAware, PhaseRun::Decode(n)) => {
            // The captured decode loop is installed once; the device runs
            // continuously (KV pinned beside it) while each step's token
            // and logits stream back asynchronously — round trips overlap
            // compute, so only kernel time accumulates.
            let plan_bytes = 10_000u64;
            let install = ch
                .call_sync(start, plan_bytes, 0, Nanos::ZERO)
                .response_delivered;
            let mut last_delivery = install;
            let k = cal.kernel_token_s;
            for step in 0..n {
                let step_done = install + Nanos::from_secs_f64((step + 1) as f64 * k);
                let delivered = ch.send_oneway(step_done, w.logits_bytes() as u64 + 8);
                last_delivery = last_delivery.max(delivered);
            }
            last_delivery
        }
        (Mode::Local, _) => unreachable!("handled above"),
    };

    let latency_s = finish.as_secs_f64();
    PhaseMetrics {
        latency_s,
        net_mb: ch.total_bytes() as f64 / 1e6,
        gpu_util_pct: 100.0 * kernel_s / latency_s,
        rpc_calls: ch.calls,
    }
}

/// One Table-2 row: a mode's prefill and decode metrics.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Table2Row {
    /// The mode.
    pub mode: Mode,
    /// Prefill metrics (72-token prompt).
    pub prefill: PhaseMetrics,
    /// Decode metrics (50 steps).
    pub decode: PhaseMetrics,
}

/// Regenerate Table 2.
pub fn table2(w: &LlmWorkload, cal: &Calibration) -> Vec<Table2Row> {
    Mode::ALL
        .iter()
        .map(|&mode| Table2Row {
            mode,
            prefill: run_phase(mode, PhaseRun::Prefill, w, cal),
            decode: run_phase(mode, PhaseRun::Decode(w.decode_tokens), w, cal),
        })
        .collect()
}

/// Regenerate Table 3: decode latency for N ∈ `lengths` under ΔKV and
/// Semantics-Aware.
pub fn table3(w: &LlmWorkload, cal: &Calibration, lengths: &[usize]) -> Vec<(usize, f64, f64)> {
    lengths
        .iter()
        .map(|&n| {
            let dkv = run_phase(Mode::DeltaKv, PhaseRun::Decode(n), w, cal);
            let sa = run_phase(Mode::SemanticsAware, PhaseRun::Decode(n), w, cal);
            (n, dkv.latency_s, sa.latency_s)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (LlmWorkload, Calibration) {
        (LlmWorkload::paper(), Calibration::paper())
    }

    #[test]
    fn latency_ordering_matches_paper() {
        let (w, cal) = setup();
        let rows = table2(&w, &cal);
        let by_mode = |m: Mode| rows.iter().find(|r| r.mode == m).unwrap().clone();
        let local = by_mode(Mode::Local);
        let naive = by_mode(Mode::NaiveBlind);
        let dkv = by_mode(Mode::DeltaKv);
        let sa = by_mode(Mode::SemanticsAware);
        // Local « SA ≤ ΔKV « Naive in both phases.
        assert!(local.decode.latency_s < sa.decode.latency_s);
        assert!(sa.decode.latency_s < dkv.decode.latency_s);
        assert!(dkv.decode.latency_s < naive.decode.latency_s / 2.0);
        assert!(sa.prefill.latency_s < naive.prefill.latency_s / 1.5);
    }

    #[test]
    fn traffic_ratios_match_paper_magnitudes() {
        let (w, cal) = setup();
        let rows = table2(&w, &cal);
        let naive = &rows[1];
        let sa = &rows[3];
        // Paper: >8,400× decode traffic reduction, >26,000× prefill.
        assert!(
            naive.decode.net_mb / sa.decode.net_mb > 1_000.0,
            "decode ratio {}",
            naive.decode.net_mb / sa.decode.net_mb
        );
        assert!(
            naive.prefill.net_mb / sa.prefill.net_mb > 10_000.0,
            "prefill ratio {}",
            naive.prefill.net_mb / sa.prefill.net_mb
        );
        // Absolute magnitudes: naive prefill ~145 GB, ΔKV decode ~56 MB,
        // SA decode ~10 MB.
        assert!((100_000.0..200_000.0).contains(&naive.prefill.net_mb));
        assert!((40.0..70.0).contains(&rows[2].decode.net_mb));
        assert!((5.0..15.0).contains(&sa.decode.net_mb));
    }

    #[test]
    fn latency_cells_land_near_paper_values() {
        let (w, cal) = setup();
        let rows = table2(&w, &cal);
        let close = |ours: f64, paper: f64, tol: f64| {
            assert!(
                (ours - paper).abs() / paper < tol,
                "ours {ours} vs paper {paper}"
            );
        };
        close(rows[0].prefill.latency_s, 0.21, 0.01); // local prefill
        close(rows[0].decode.latency_s, 1.53, 0.01); // local decode
        close(rows[1].prefill.latency_s, 216.0, 0.10); // naive prefill
        close(rows[2].prefill.latency_s, 110.0, 0.10); // dKV prefill
        close(rows[3].prefill.latency_s, 111.0, 0.05); // SA prefill
        close(rows[2].decode.latency_s, 131.0, 0.10); // dKV decode
        close(rows[3].decode.latency_s, 116.0, 0.06); // SA decode
    }

    #[test]
    fn gpu_idles_in_blind_modes() {
        let (w, cal) = setup();
        let rows = table2(&w, &cal);
        // Paper: >98% idle in Naive/ΔKV; SA several× better than naive.
        assert!(rows[1].decode.gpu_util_pct < 1.0);
        assert!(rows[2].decode.gpu_util_pct < 2.0);
        assert!(rows[3].decode.gpu_util_pct > 3.0 * rows[1].decode.gpu_util_pct);
        assert!((99.0..=100.0).contains(&rows[0].decode.gpu_util_pct));
    }

    #[test]
    fn table3_shape_linear_vs_flat() {
        let (w, cal) = setup();
        let t3 = table3(&w, &cal, &[50, 100, 150, 200]);
        // ΔKV slope per token.
        let dkv_slope = (t3[3].1 - t3[0].1) / 150.0;
        let sa_slope = (t3[3].2 - t3[0].2) / 150.0;
        assert!(
            (0.3..0.7).contains(&dkv_slope),
            "dKV slope {dkv_slope} (paper 0.48)"
        );
        assert!(sa_slope < 0.05, "SA slope {sa_slope} (paper 0.035)");
        // ≥1.5× at N = 200 (paper: ~1.7×).
        assert!(t3[3].1 / t3[3].2 > 1.5, "ratio {}", t3[3].1 / t3[3].2);
    }

    #[test]
    fn sa_closes_most_of_the_gap() {
        // Paper: SA "closes 88% of the latency gap" to local versus ΔKV.
        // The shared ~109 s session-init floor is a measurement artifact
        // of `/usr/bin/time`; on phase work time, closure =
        // (dkv - sa) / (dkv - local) must be large.
        let (w, cal) = setup();
        let rows = table2(&w, &cal);
        let local = rows[0].decode.latency_s;
        let dkv = rows[2].decode.latency_s - cal.session_init_s;
        let sa = rows[3].decode.latency_s - cal.session_init_s;
        let closure = (dkv - sa) / (dkv - local);
        assert!(closure > 0.85, "closure {closure}");
    }
}
