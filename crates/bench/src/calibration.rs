//! Calibration of the simulator to the paper's measured stack.
//!
//! The paper's absolute numbers come from a specific testbed: GPT-J on an
//! A100-80GB, a CPU-only Python client, TensorPipe RPC over 25 GbE,
//! latency measured with `/usr/bin/time` (i.e. *process* wall clock,
//! including interpreter start, model load, CUDA context, and RPC mesh
//! setup). Refitting every latency cell of Tables 2–3 yields a
//! three-parameter transport model that reproduces the table within a few
//! percent:
//!
//! | constant | value | evidence |
//! |---|---|---|
//! | `session_init_s` | 109 s | ΔKV/SA prefill rows are 110/111 s with ≈1 s of work; every remote row shares the same ~109 s floor |
//! | `rpc_per_call_s` | 0.45 s | Table 3 ΔKV slope: (204.3 − 132.0)/150 tokens ≈ 0.48 s/token ≈ per-call overhead + ~1 MB transfer + 0.03 s kernel |
//! | `rpc_bandwidth_Bps` | 1.4 GB/s | Naïve prefill: 12 weight re-uploads ≈ 147 GB in (216 − 109) s ≈ 1.4 GB/s effective goodput (≈45% of the 25 GbE line rate — serialization-bound) |
//! | `kernel_prefill_s` | 0.21 s | the Local prefill row |
//! | `kernel_token_s` | 0.0306 s | Local decode: 1.53 s / 50 tokens |
//!
//! Cross-checks: the implied decode kernel time matches an A100 roofline
//! at ≈20% memory-bandwidth efficiency (12.1 GB of fp16 weights / (2 TB/s
//! × 0.2) ≈ 30 ms), and the ΔKV per-token payload matches GPT-J's f32 KV
//! slice (2·28·4096·4 ≈ 0.92 MB — the paper says "~1.0 MB").

use serde::{Deserialize, Serialize};

/// The calibrated constants.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Calibration {
    /// One-time session establishment (process + CUDA + RPC mesh).
    pub session_init_s: f64,
    /// Fixed cost per synchronous RPC round trip.
    pub rpc_per_call_s: f64,
    /// Effective TensorPipe goodput in bytes/s.
    pub rpc_bandwidth: f64,
    /// One-way network latency.
    pub net_latency_s: f64,
    /// Measured A100 kernel time for the 72-token GPT-J prefill.
    pub kernel_prefill_s: f64,
    /// Measured A100 kernel time per decoded token.
    pub kernel_token_s: f64,
    /// Number of module-level remote invocations the prototype issues
    /// during prefill (each re-uploads weights in Naïve mode): fitted
    /// from 149,258 MB ÷ 12,288 MB ≈ 12.
    pub prefill_stages: usize,
}

impl Calibration {
    /// The paper's measured stack.
    pub fn paper() -> Self {
        Calibration {
            session_init_s: 109.0,
            rpc_per_call_s: 0.45,
            rpc_bandwidth: 1.4e9,
            net_latency_s: 250e-6,
            kernel_prefill_s: 0.21,
            kernel_token_s: 0.0306,
            prefill_stages: 12,
        }
    }

    /// The §3.4 target datapath: zero-copy RDMA, no Python.
    pub fn rdma() -> Self {
        Calibration {
            session_init_s: 1.0,
            rpc_per_call_s: 8e-6,
            rpc_bandwidth: 25e9 / 8.0,
            net_latency_s: 250e-6,
            kernel_prefill_s: 0.21,
            kernel_token_s: 0.0306,
            prefill_stages: 12,
        }
    }

    /// `genie-netsim` transport parameters for this calibration.
    pub fn rpc_params(&self) -> genie_netsim::RpcParams {
        genie_netsim::RpcParams {
            session_init: genie_netsim::Nanos::from_secs_f64(self.session_init_s),
            per_call_overhead: genie_netsim::Nanos::from_secs_f64(self.rpc_per_call_s),
            effective_bandwidth: self.rpc_bandwidth,
            zero_copy: self.rpc_per_call_s < 1e-3,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_constants_fit_the_delta_kv_slope() {
        let c = Calibration::paper();
        // Per-token ΔKV cost: overhead + ~0.92 MB + kernel.
        let kv_delta = 2.0 * 28.0 * 4096.0 * 4.0;
        let per_token = c.rpc_per_call_s + kv_delta / c.rpc_bandwidth + c.kernel_token_s;
        let paper_slope = (204.3 - 132.0) / 150.0;
        assert!(
            (per_token - paper_slope).abs() < 0.1,
            "slope {per_token} vs paper {paper_slope}"
        );
    }

    #[test]
    fn paper_constants_fit_naive_prefill() {
        let c = Calibration::paper();
        let weights = 12.1e9;
        let latency = c.session_init_s
            + c.prefill_stages as f64 * (c.rpc_per_call_s + weights / c.rpc_bandwidth)
            + c.kernel_prefill_s;
        assert!(
            (latency - 216.0).abs() / 216.0 < 0.05,
            "naive prefill {latency} vs paper 216"
        );
    }

    #[test]
    fn rdma_is_orders_faster_per_call() {
        let p = Calibration::paper();
        let r = Calibration::rdma();
        assert!(p.rpc_per_call_s / r.rpc_per_call_s > 10_000.0);
        assert!(r.rpc_params().zero_copy);
        assert!(!p.rpc_params().zero_copy);
    }
}
