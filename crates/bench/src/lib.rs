//! # genie-bench — the evaluation harness
//!
//! Regenerates every table and figure of the paper's evaluation plus the
//! ablations DESIGN.md calls out:
//!
//! | artifact | module | binary |
//! |---|---|---|
//! | Table 1 (workload characterization) | [`characterize`] | `table1` |
//! | Figure 1 (semantic visibility across the stack) | [`stack_levels`] | `figure1` |
//! | Table 2 (four execution modes) | [`modes`] | `table2` |
//! | Table 3 (decode-latency scaling) | [`modes::table3`] | `table3` |
//!
//! [`calibration`] documents how the simulator's transport constants were
//! refit from the paper's own cells; [`workload`] fixes the GPT-J request
//! the tables measure.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod calibration;
pub mod characterize;
pub mod fleet;
pub mod modes;
pub mod report;
pub mod stack_levels;
pub mod workload;

pub use calibration::Calibration;
pub use modes::{run_phase, table2, table3, Mode, PhaseMetrics, PhaseRun, Table2Row};
pub use workload::LlmWorkload;
