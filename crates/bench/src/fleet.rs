//! Fleet serving simulation: static allocation vs semantics-aware
//! disaggregation.
//!
//! The paper's opening numbers — "$150B in accelerators, 55–60% average
//! GPU idleness" — indict today's tightly-coupled allocation: each tenant
//! owns devices sized for its peak, which idle between requests. This
//! simulation quantifies the alternative the paper argues for: a shared,
//! network-attached pool where a semantics-aware runtime packs work by
//! phase and session affinity.
//!
//! The model is a deterministic discrete-event queueing simulation:
//! tenants emit requests (seeded arrivals); a request is one prefill
//! kernel plus `decode_tokens` sequential decode kernels. Under **static**
//! allocation each tenant queues on its own device. Under **pooled**
//! allocation any idle device may serve any request's prefill, while
//! decode stays pinned to the device that ran the prefill (KV-cache
//! affinity — the co-location rule).

use genie_netsim::{EventQueue, Nanos};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// One tenant's request stream.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct TenantLoad {
    /// Mean seconds between request arrivals.
    pub mean_interarrival_s: f64,
    /// Prefill kernel seconds per request.
    pub prefill_s: f64,
    /// Decode kernel seconds per token.
    pub decode_step_s: f64,
    /// Tokens per request.
    pub decode_tokens: usize,
}

impl TenantLoad {
    /// A chatbot-like tenant on the calibrated GPT-J numbers.
    pub fn chatbot(mean_interarrival_s: f64) -> Self {
        TenantLoad {
            mean_interarrival_s,
            prefill_s: 0.21,
            decode_step_s: 0.0306,
            decode_tokens: 50,
        }
    }

    fn service_s(&self) -> f64 {
        self.prefill_s + self.decode_step_s * self.decode_tokens as f64
    }
}

/// Result of one fleet simulation.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct FleetReport {
    /// Devices simulated.
    pub devices: usize,
    /// Requests completed.
    pub completed: usize,
    /// Mean device utilization over the simulated horizon.
    pub mean_utilization: f64,
    /// Mean request latency (queueing + service).
    pub mean_latency_s: f64,
    /// 95th-percentile request latency.
    pub p95_latency_s: f64,
}

#[derive(Clone, Copy)]
struct Arrival {
    tenant: usize,
    at: Nanos,
}

/// Generate each tenant's arrivals over `horizon_s` with seeded
/// exponential-ish gaps (deterministic).
fn arrivals(tenants: &[TenantLoad], horizon_s: f64, seed: u64) -> Vec<Arrival> {
    let mut out = Vec::new();
    for (i, t) in tenants.iter().enumerate() {
        let mut rng = SmallRng::seed_from_u64(seed ^ (i as u64).wrapping_mul(0x9E3779B97F4A7C15));
        let mut now = 0.0f64;
        loop {
            // Inverse-CDF exponential gap from a uniform draw.
            let u: f64 = rng.gen_range(1e-9..1.0);
            now += -t.mean_interarrival_s * u.ln();
            if now >= horizon_s {
                break;
            }
            out.push(Arrival {
                tenant: i,
                at: Nanos::from_secs_f64(now),
            });
        }
    }
    out.sort_by_key(|a| a.at);
    out
}

/// Simulate with each tenant statically bound to `device = tenant index`
/// (requires `devices == tenants.len()`).
pub fn simulate_static(tenants: &[TenantLoad], horizon_s: f64, seed: u64) -> FleetReport {
    let devices = tenants.len();
    simulate(tenants, devices, horizon_s, seed, false)
}

/// Simulate with all devices pooled: prefill goes to the
/// earliest-available device; decode stays there (cache affinity).
pub fn simulate_pooled(
    tenants: &[TenantLoad],
    devices: usize,
    horizon_s: f64,
    seed: u64,
) -> FleetReport {
    simulate(tenants, devices, horizon_s, seed, true)
}

fn simulate(
    tenants: &[TenantLoad],
    devices: usize,
    horizon_s: f64,
    seed: u64,
    pooled: bool,
) -> FleetReport {
    let mut q: EventQueue<Arrival> = EventQueue::new();
    for a in arrivals(tenants, horizon_s, seed) {
        q.schedule(a.at, a);
    }
    let mut device_free = vec![Nanos::ZERO; devices];
    let mut busy_s = vec![0.0f64; devices];
    let mut latencies: Vec<f64> = Vec::new();

    while let Some((at, arrival)) = q.pop() {
        let t = &tenants[arrival.tenant];
        let dev = if pooled {
            // Earliest-available device, ties to the lowest index.
            (0..devices)
                .min_by_key(|&d| (device_free[d], d))
                .expect("devices > 0")
        } else {
            arrival.tenant % devices
        };
        let start = at.max(device_free[dev]);
        let service = t.service_s();
        let end = start + Nanos::from_secs_f64(service);
        device_free[dev] = end;
        busy_s[dev] += service;
        latencies.push((end - at).as_secs_f64());
    }

    let horizon = latencies
        .iter()
        .copied()
        .fold(horizon_s, f64::max)
        .max(horizon_s);
    let mean_utilization = busy_s.iter().sum::<f64>() / (devices as f64 * horizon);
    latencies.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    let mean_latency_s = latencies.iter().sum::<f64>() / latencies.len().max(1) as f64;
    let p95 = if latencies.is_empty() {
        0.0
    } else {
        latencies[(latencies.len() as f64 * 0.95) as usize % latencies.len()]
    };
    FleetReport {
        devices,
        completed: latencies.len(),
        mean_utilization,
        mean_latency_s,
        p95_latency_s: p95,
    }
}

/// The headline comparison: `n` bursty tenants on dedicated devices vs
/// the same load on a right-sized shared pool. Returns
/// (static report, pooled report with `pool_devices`).
pub fn static_vs_pooled(
    tenants: &[TenantLoad],
    pool_devices: usize,
    horizon_s: f64,
    seed: u64,
) -> (FleetReport, FleetReport) {
    (
        simulate_static(tenants, horizon_s, seed),
        simulate_pooled(tenants, pool_devices, horizon_s, seed),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bursty_fleet() -> Vec<TenantLoad> {
        // 8 tenants at ~20% duty cycle each: the classic over-provisioned
        // fleet (service ≈ 1.74 s, arrivals every ~9 s).
        (0..8).map(|_| TenantLoad::chatbot(9.0)).collect()
    }

    #[test]
    fn simulation_is_deterministic() {
        let t = bursty_fleet();
        let a = simulate_static(&t, 600.0, 42);
        let b = simulate_static(&t, 600.0, 42);
        assert_eq!(a, b);
        let c = simulate_static(&t, 600.0, 43);
        assert_ne!(a, c);
    }

    #[test]
    fn static_fleet_idles_like_the_paper_says() {
        // "real fleets still report 55–60% average GPU idleness": at 20%
        // duty cycle per tenant, dedicated devices idle ~80%.
        let report = simulate_static(&bursty_fleet(), 1200.0, 7);
        assert!(
            report.mean_utilization < 0.45,
            "static util {}",
            report.mean_utilization
        );
    }

    #[test]
    fn pooling_raises_utilization_with_fewer_devices() {
        let tenants = bursty_fleet();
        let (stat, pooled) = static_vs_pooled(&tenants, 3, 1200.0, 7);
        assert_eq!(stat.completed, pooled.completed, "same offered load");
        assert!(
            pooled.mean_utilization > 2.0 * stat.mean_utilization,
            "pooled {} vs static {}",
            pooled.mean_utilization,
            stat.mean_utilization
        );
        // And the latency cost of sharing stays bounded at this load.
        assert!(pooled.p95_latency_s < 4.0 * stat.p95_latency_s.max(1.8));
    }

    #[test]
    fn undersized_pool_queues() {
        let tenants = bursty_fleet();
        let tight = simulate_pooled(&tenants, 1, 1200.0, 7);
        let roomy = simulate_pooled(&tenants, 6, 1200.0, 7);
        assert!(tight.mean_latency_s > roomy.mean_latency_s);
        assert!(tight.mean_utilization > roomy.mean_utilization);
    }

    #[test]
    fn zero_horizon_is_empty() {
        let report = simulate_static(&bursty_fleet(), 0.0, 1);
        assert_eq!(report.completed, 0);
        assert_eq!(report.mean_latency_s, 0.0);
    }
}
