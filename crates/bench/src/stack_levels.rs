//! Figure-1 analog: semantic visibility across the software stack.
//!
//! Figure 1 of the paper is the layered-stack diagram motivating the
//! "semantic translation gap". We make it quantitative: for each workload
//! we render the same execution at three interposition levels and count
//! the semantic facts recoverable at each — the information that is
//! *lost in translation* as computation descends the stack.
//!
//! - **PCIe level** sees only DMA bursts: sizes and directions. Every
//!   transfer looks alike; 0 semantic facts.
//! - **Driver level** sees kernel launches and memcpy sizes: operator
//!   mnemonics are recoverable (kernel names), but phases, residency,
//!   modality, and module structure are gone.
//! - **Framework level (SRG)** sees the full annotation schema.

use genie_models::Workload;
use genie_srg::{Modality, Phase, Residency, Srg};
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// Facts visible at one interposition level for one workload.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct VisibilityRow {
    /// Workload family.
    pub workload: String,
    /// Stack level name.
    pub level: &'static str,
    /// Distinct operator families identifiable.
    pub op_kinds: usize,
    /// Distinct execution phases identifiable.
    pub phases: usize,
    /// Distinct residency classes identifiable.
    pub residencies: usize,
    /// Distinct modalities identifiable.
    pub modalities: usize,
    /// Module-structure facts (distinct module paths).
    pub structure: usize,
    /// Total semantic facts (sum of the above).
    pub total: usize,
}

fn count_graph_facts(srg: &Srg, level: &'static str, workload: &str) -> VisibilityRow {
    let (op_kinds, phases, residencies, modalities, structure) = match level {
        // PCIe: opaque DMA bursts.
        "pcie" => (0, 0, 0, 0, 0),
        // Driver: kernel names leak operator families; nothing else.
        "driver" => {
            let ops: BTreeSet<String> = srg
                .nodes()
                .filter(|n| !n.op.is_source())
                .map(|n| n.op.mnemonic().to_string())
                .collect();
            (ops.len(), 0, 0, 0, 0)
        }
        // Framework: the full SRG.
        _ => {
            let ops: BTreeSet<String> = srg
                .nodes()
                .filter(|n| !n.op.is_source())
                .map(|n| n.op.mnemonic().to_string())
                .collect();
            let phases: BTreeSet<&Phase> = srg
                .nodes()
                .map(|n| &n.phase)
                .filter(|p| **p != Phase::Unknown)
                .collect();
            let res: BTreeSet<Residency> = srg
                .nodes()
                .map(|n| n.residency)
                .filter(|r| *r != Residency::Unknown)
                .collect();
            let mods: BTreeSet<Modality> = srg
                .nodes()
                .map(|n| n.modality)
                .filter(|m| *m != Modality::Unknown)
                .collect();
            let paths: BTreeSet<&str> = srg
                .nodes()
                .map(|n| n.module_path.as_str())
                .filter(|p| !p.is_empty())
                .collect();
            (ops.len(), phases.len(), res.len(), mods.len(), paths.len())
        }
    };
    VisibilityRow {
        workload: workload.to_string(),
        level,
        op_kinds,
        phases,
        residencies,
        modalities,
        structure,
        total: op_kinds + phases + residencies + modalities + structure,
    }
}

/// The three interposition levels.
pub const LEVELS: [&str; 3] = ["pcie", "driver", "framework"];

/// Compute the visibility table for all workloads × levels.
pub fn semantic_visibility() -> Vec<VisibilityRow> {
    let mut out = Vec::new();
    for w in Workload::ALL {
        let srg = w.spec_graph();
        for level in LEVELS {
            out.push(count_graph_facts(&srg, level, w.name()));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn visibility_strictly_increases_up_the_stack() {
        let rows = semantic_visibility();
        for chunk in rows.chunks(3) {
            let (pcie, driver, framework) = (&chunk[0], &chunk[1], &chunk[2]);
            assert_eq!(pcie.total, 0, "{}", pcie.workload);
            assert!(
                driver.total > pcie.total,
                "{}: driver sees kernel names",
                driver.workload
            );
            assert!(
                framework.total > 2 * driver.total,
                "{}: the SRG must dominate ({} vs {})",
                framework.workload,
                framework.total,
                driver.total
            );
        }
    }

    #[test]
    fn framework_level_sees_phases_and_residency() {
        let rows = semantic_visibility();
        let llm_fw = rows
            .iter()
            .find(|r| r.workload == "LLM Serving" && r.level == "framework")
            .unwrap();
        assert!(llm_fw.phases >= 1);
        assert!(llm_fw.residencies >= 3, "weights, cache, activations");
        assert!(llm_fw.structure > 28, "per-layer module paths");
    }

    #[test]
    fn driver_level_sees_only_op_kinds() {
        for row in semantic_visibility() {
            if row.level == "driver" {
                assert_eq!(
                    row.phases + row.residencies + row.modalities + row.structure,
                    0
                );
                assert!(row.op_kinds > 0);
            }
        }
    }
}
