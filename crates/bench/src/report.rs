//! Table formatting and artifact recording for the regeneration binaries.

use std::path::PathBuf;

/// Write a machine-readable experiment record to
/// `target/experiments/{name}.json` and return its path. Regeneration
/// binaries call this so every table lands as a diffable artifact.
pub fn write_artifact<T: serde::Serialize>(name: &str, value: &T) -> std::io::Result<PathBuf> {
    let dir = PathBuf::from("target/experiments");
    std::fs::create_dir_all(&dir)?;
    let path = dir.join(format!("{name}.json"));
    let json = serde_json::to_string_pretty(value)
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))?;
    std::fs::write(&path, json)?;
    Ok(path)
}

/// Render rows as a fixed-width text table with a header rule.
pub fn render_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    let render_row = |cells: &[String], widths: &[usize]| -> String {
        cells
            .iter()
            .zip(widths)
            .map(|(c, w)| format!("{c:<w$}"))
            .collect::<Vec<_>>()
            .join("  ")
    };
    let header_cells: Vec<String> = headers.iter().map(|h| h.to_string()).collect();
    out.push_str(&render_row(&header_cells, &widths));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
    out.push('\n');
    for row in rows {
        out.push_str(&render_row(row, &widths));
        out.push('\n');
    }
    out
}

/// Format seconds with sensible precision (matches the paper's tables:
/// sub-second values get 2 decimals, larger values fewer).
pub fn fmt_secs(s: f64) -> String {
    if s < 1.0 {
        format!("{s:.2}")
    } else if s < 100.0 {
        format!("{s:.1}")
    } else {
        format!("{s:.0}")
    }
}

/// Format megabytes like the paper (comma-grouped integers above 1000,
/// 2-decimal below).
pub fn fmt_mb(mb: f64) -> String {
    if mb >= 1000.0 {
        let n = mb.round() as u64;
        let s = n.to_string();
        let mut out = String::new();
        for (i, c) in s.chars().enumerate() {
            if i > 0 && (s.len() - i).is_multiple_of(3) {
                out.push(',');
            }
            out.push(c);
        }
        out
    } else {
        format!("{mb:.2}")
    }
}

/// Format a percentage with one decimal.
pub fn fmt_pct(p: f64) -> String {
    format!("{p:.1}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_alignment() {
        let t = render_table(
            &["Mode", "Latency"],
            &[
                vec!["Local".into(), "0.21".into()],
                vec!["Semantics-Aware".into(), "111".into()],
            ],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("Mode"));
        assert!(lines[1].chars().all(|c| c == '-'));
        // Columns align: "Latency" starts at the same offset everywhere.
        let col = lines[0].find("Latency").unwrap();
        assert_eq!(&lines[2][col..col + 4], "0.21");
    }

    #[test]
    fn artifacts_are_written_and_parseable() {
        let rows = vec![("n", 1.5f64), ("m", 2.5)];
        let path = write_artifact("unit_test_artifact", &rows).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        let back: Vec<(String, f64)> = serde_json::from_str(&text).unwrap();
        assert_eq!(back.len(), 2);
        assert_eq!(back[1].1, 2.5);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn number_formats() {
        assert_eq!(fmt_secs(0.214), "0.21");
        assert_eq!(fmt_secs(13.37), "13.4");
        assert_eq!(fmt_secs(216.4), "216");
        assert_eq!(fmt_mb(149258.0), "149,258");
        assert_eq!(fmt_mb(4.31), "4.31");
        assert_eq!(fmt_pct(99.12), "99.1");
    }
}
