//! The §4 evaluation workload: GPT-J serving one request.

use genie_models::TransformerConfig;
use serde::{Deserialize, Serialize};

/// The evaluation request: a 72-token prompt followed by autoregressive
/// decoding.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct LlmWorkload {
    /// Model architecture (GPT-J-6B in the paper).
    pub config: TransformerConfig,
    /// Prompt length in tokens.
    pub prompt_tokens: usize,
    /// Decode steps.
    pub decode_tokens: usize,
}

impl LlmWorkload {
    /// The paper's setup: 72-token prompt, 50 decode steps.
    pub fn paper() -> Self {
        LlmWorkload {
            config: TransformerConfig::gptj_6b(),
            prompt_tokens: 72,
            decode_tokens: 50,
        }
    }

    /// Weight bytes at model precision (fp16 for GPT-J ⇒ ~12.1 GB).
    pub fn weight_bytes(&self) -> f64 {
        self.config.weight_bytes() as f64
    }

    /// KV-cache delta per decoded token. The paper's prototype stores KV
    /// in f32 regardless of weight precision ("~1.0 MB" per token), so we
    /// charge 2 elements-widths.
    pub fn kv_delta_bytes(&self) -> f64 {
        (self.config.kv_bytes_per_token() * 2) as f64
    }

    /// Logits returned for one position (f32).
    pub fn logits_bytes(&self) -> f64 {
        self.config.logits_bytes() as f64
    }

    /// Prompt payload (i64 token ids).
    pub fn prompt_bytes(&self) -> f64 {
        (self.prompt_tokens * 8) as f64
    }

    /// Hidden-state activation crossing a stage boundary during prefill
    /// (`[prompt, d_model]` at model precision).
    pub fn boundary_activation_bytes(&self) -> f64 {
        (self.prompt_tokens * self.config.d_model * self.config.elem.size_bytes()) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_volumes_match_reported_magnitudes() {
        let w = LlmWorkload::paper();
        // ~12.1 GB of weights.
        assert!((11e9..13e9).contains(&w.weight_bytes()));
        // ~1.0 MB KV delta per token (paper's words).
        assert!((0.85e6..1.05e6).contains(&w.kv_delta_bytes()));
        // ~200 KB of logits per position.
        assert!((190e3..210e3).contains(&w.logits_bytes()));
        assert_eq!(w.prompt_bytes(), 72.0 * 8.0);
    }
}
