//! Property-based tests for the link and channel models: conservation
//! and monotonicity invariants every simulation result depends on.

use genie_netsim::{LinkSim, Nanos, RpcChannel, RpcParams};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// FIFO links never reorder: delivery times are non-decreasing in
    /// submission order, and every byte is accounted.
    #[test]
    fn fifo_is_monotone_and_conserves_bytes(
        sizes in prop::collection::vec(1u64..10_000_000, 1..20),
        bw_mbps in 1f64..100_000.0,
        latency_us in 0u64..10_000,
    ) {
        let mut link = LinkSim::new(bw_mbps * 1e6 / 8.0, Nanos::from_micros(latency_us));
        let mut last = Nanos::ZERO;
        let mut total = 0u64;
        for &bytes in &sizes {
            let t = link.transmit(Nanos::ZERO, bytes);
            prop_assert!(t.delivered >= last, "reordered delivery");
            prop_assert!(t.sent >= t.start);
            prop_assert_eq!(t.delivered, t.sent + Nanos::from_micros(latency_us));
            last = t.delivered;
            total += bytes;
        }
        prop_assert_eq!(link.bytes_sent, total);
        prop_assert_eq!(link.transmissions, sizes.len() as u64);
    }

    /// Transfer durations scale inversely with bandwidth.
    #[test]
    fn bandwidth_scaling(bytes in 1u64..1_000_000_000, factor in 2f64..16.0) {
        let mut slow = LinkSim::new(1e9, Nanos::ZERO);
        let mut fast = LinkSim::new(1e9 * factor, Nanos::ZERO);
        let ts = slow.transmit(Nanos::ZERO, bytes).sent.as_secs_f64();
        let tf = fast.transmit(Nanos::ZERO, bytes).sent.as_secs_f64();
        // Within nanosecond-rounding tolerance of the exact ratio.
        prop_assert!((ts / tf.max(1e-12) - factor).abs() / factor < 0.01 || ts < 1e-6);
    }

    /// Channel totals equal the sum of per-call payloads, and timing is
    /// monotone across sequential sync calls.
    #[test]
    fn channel_accounting(
        calls in prop::collection::vec((0u64..5_000_000, 0u64..5_000_000), 1..12),
    ) {
        let link = LinkSim::new(25e9 / 8.0, Nanos::from_micros(250));
        let mut ch = RpcChannel::new(RpcParams::rdma_zero_copy(), link);
        let mut t = ch.ensure_session(Nanos::ZERO);
        let mut up_total = 0u64;
        let mut down_total = 0u64;
        for &(up, down) in &calls {
            let timing = ch.call_sync(t, up, down, Nanos::ZERO);
            prop_assert!(timing.response_delivered >= t);
            prop_assert!(timing.request_delivered <= timing.response_delivered);
            t = timing.response_delivered;
            up_total += up;
            down_total += down;
        }
        prop_assert_eq!(ch.bytes_up, up_total);
        prop_assert_eq!(ch.bytes_down, down_total);
        prop_assert_eq!(ch.calls, calls.len() as u64);
    }

    /// Congestion strictly slows nonzero transfers and never corrupts
    /// accounting.
    #[test]
    fn congestion_slows(bytes in 1_000u64..100_000_000, congestion in 0.01f64..0.95) {
        let mut clear = LinkSim::new(1e9, Nanos::ZERO);
        let mut busy = LinkSim::new(1e9, Nanos::ZERO);
        busy.congestion = congestion;
        let tc = clear.transmit(Nanos::ZERO, bytes).sent;
        let tb = busy.transmit(Nanos::ZERO, bytes).sent;
        prop_assert!(tb >= tc);
    }
}
