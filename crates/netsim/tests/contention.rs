//! Multi-flow contention: FIFO links serialize concurrent tenants, and
//! the channel abstraction preserves conservation of bytes and time.

use genie_cluster::{ClusterState, HostId, Topology};
use genie_netsim::{Fabric, LinkSim, Nanos, RpcChannel, RpcParams};

#[test]
fn two_tenants_on_one_link_serialize() {
    let link = LinkSim::new(25e9 / 8.0, Nanos::from_micros(250));
    let mut ch = RpcChannel::new(RpcParams::rdma_zero_copy(), link);
    let t0 = ch.ensure_session(Nanos::ZERO);

    // Tenant A and tenant B both issue 1 GB transfers at the same time.
    let a = ch.send_oneway(t0, 1_000_000_000);
    let b = ch.send_oneway(t0, 1_000_000_000);
    // B's delivery starts only after A's serialization window.
    let gb_time = 1_000_000_000.0 / (25e9 / 8.0);
    assert!((a.as_secs_f64() - t0.as_secs_f64() - gb_time - 250e-6).abs() < 1e-3);
    assert!(
        b.as_secs_f64() >= a.as_secs_f64() + gb_time - 1e-3,
        "B must queue behind A: {} vs {}",
        b.as_secs_f64(),
        a.as_secs_f64()
    );
    assert_eq!(ch.total_bytes(), 2_000_000_000);
}

#[test]
fn separate_links_do_not_interfere() {
    let topo = Topology::rack(2, 25e9);
    let state = ClusterState::new();
    let mut fabric = Fabric::new(&topo, &state, RpcParams::rdma_zero_copy());
    let client = HostId(0);

    let t0a = fabric
        .channel(client, HostId(1))
        .ensure_session(Nanos::ZERO);
    let t0b = fabric
        .channel(client, HostId(2))
        .ensure_session(Nanos::ZERO);
    let a = fabric
        .channel(client, HostId(1))
        .send_oneway(t0a, 1_000_000_000);
    let b = fabric
        .channel(client, HostId(2))
        .send_oneway(t0b, 1_000_000_000);
    // Distinct links: both complete in one transfer time, not two.
    let gb_time = 1_000_000_000.0 / (25e9 / 8.0);
    assert!((a.as_secs_f64() - t0a.as_secs_f64()) < gb_time * 1.05);
    assert!((b.as_secs_f64() - t0b.as_secs_f64()) < gb_time * 1.05);
}

#[test]
fn congestion_scales_completion_times_proportionally() {
    let topo = Topology::paper_testbed();
    let mut state = ClusterState::new();
    let run = |congestion: f64, state: &mut ClusterState| {
        state.set_congestion(0, 1, congestion);
        let mut fabric = Fabric::new(&topo, state, RpcParams::rdma_zero_copy());
        let ch = fabric.channel(HostId(0), HostId(1));
        let t0 = ch.ensure_session(Nanos::ZERO);
        ch.send_oneway(t0, 100_000_000).as_secs_f64() - t0.as_secs_f64()
    };
    let clear = run(0.0, &mut state);
    let half = run(0.5, &mut state);
    assert!(
        (half / clear - 2.0).abs() < 0.05,
        "50% congestion should double transfer time: {clear} vs {half}"
    );
}

#[test]
fn interleaved_small_and_large_transfers_preserve_order() {
    let link = LinkSim::new(1e9, Nanos::ZERO);
    let mut ch = RpcChannel::new(RpcParams::rdma_zero_copy(), link);
    let t0 = ch.ensure_session(Nanos::ZERO);
    let big = ch.send_oneway(t0, 1_000_000_000); // 1 s
    let tiny = ch.send_oneway(t0, 1_000); // queued behind
    assert!(tiny > big, "FIFO: the tiny message waits (head-of-line)");
    // This head-of-line blocking is precisely why the §3.1 criticality
    // annotation exists: a scheduler that knows the tiny transfer is
    // critical issues it first.
    let link = LinkSim::new(1e9, Nanos::ZERO);
    let mut ch = RpcChannel::new(RpcParams::rdma_zero_copy(), link);
    let t0 = ch.ensure_session(Nanos::ZERO);
    let tiny_first = ch.send_oneway(t0, 1_000);
    let _big = ch.send_oneway(t0, 1_000_000_000);
    assert!(tiny_first < big, "reordering rescues the critical message");
}
