//! # genie-netsim — deterministic discrete-event network simulation
//!
//! The performance plane of Genie's evaluation. Since the paper's testbed
//! (A100 server, 25 GbE, TensorPipe RPC) is hardware we substitute, this
//! crate models exactly the quantities that set the shape of Tables 2–3:
//!
//! - [`link::LinkSim`] — FIFO-serialized point-to-point links with
//!   propagation latency and background congestion;
//! - [`rpc::RpcChannel`] — RPC transports parameterized by session-init
//!   cost, per-call overhead, and effective goodput, with calibrated
//!   presets (`RpcParams::tensorpipe_python` reproduces the paper's
//!   measured stack, `RpcParams::rdma_zero_copy` the §3.4 target
//!   datapath);
//! - [`fabric::Fabric`] — per-host-pair channels over a
//!   `genie_cluster::Topology`;
//! - [`queue::EventQueue`] / [`time::Nanos`] — a deterministic event core
//!   (integer nanoseconds, ties broken by insertion order);
//! - [`fault::FaultPlan`] — seeded, wall-clock-free fault injection:
//!   bandwidth derates, latency jitter, link outages and host partitions
//!   applied inside [`link::LinkSim`] and surfaced as trace marks;
//! - [`trace::Trace`] — flat records from which latency, traffic, and the
//!   paper's "effective GPU utilization" metric are computed.
//!
//! ```
//! use genie_netsim::{rpc::{RpcChannel, RpcParams}, link::LinkSim, time::Nanos};
//!
//! let link = LinkSim::new(25e9 / 8.0, Nanos::from_micros(250));
//! let mut ch = RpcChannel::new(RpcParams::rdma_zero_copy(), link);
//! let ready = ch.ensure_session(Nanos::ZERO);
//! let t = ch.call_sync(ready, 1 << 20, 4096, Nanos::from_millis(5));
//! assert!(t.response_delivered > ready);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod fabric;
pub mod fault;
pub mod link;
pub mod queue;
pub mod rpc;
pub mod time;
pub mod trace;

pub use fabric::{Fabric, LinkStatus};
pub use fault::{FaultPlan, FaultSchedule, FaultSpec, TransferOutcome, XorShift64};
pub use link::{LinkFault, LinkSim};
pub use queue::EventQueue;
pub use rpc::{CallTiming, OnewayTiming, RpcChannel, RpcParams};
pub use time::Nanos;
pub use trace::{Trace, TraceEvent};
