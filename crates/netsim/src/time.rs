//! Simulated time.
//!
//! Time is kept in integer nanoseconds so that event ordering is exact and
//! platform-independent — a float clock accumulates rounding that can flip
//! tie-breaks between runs.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point in simulated time, in nanoseconds since simulation start.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default)]
#[serde(transparent)]
pub struct Nanos(pub u64);

impl Nanos {
    /// Time zero.
    pub const ZERO: Nanos = Nanos(0);

    /// Construct from seconds (rounds to the nearest nanosecond).
    pub fn from_secs_f64(s: f64) -> Nanos {
        debug_assert!(s >= 0.0 && s.is_finite(), "invalid duration {s}");
        Nanos((s * 1e9).round() as u64)
    }

    /// Construct from microseconds.
    pub fn from_micros(us: u64) -> Nanos {
        Nanos(us * 1_000)
    }

    /// Construct from milliseconds.
    pub fn from_millis(ms: u64) -> Nanos {
        Nanos(ms * 1_000_000)
    }

    /// Value in (floating) seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, other: Nanos) -> Nanos {
        Nanos(self.0.saturating_sub(other.0))
    }
}

impl Add for Nanos {
    type Output = Nanos;
    fn add(self, rhs: Nanos) -> Nanos {
        Nanos(self.0 + rhs.0)
    }
}

impl AddAssign for Nanos {
    fn add_assign(&mut self, rhs: Nanos) {
        self.0 += rhs.0;
    }
}

impl Sub for Nanos {
    type Output = Nanos;
    fn sub(self, rhs: Nanos) -> Nanos {
        Nanos(self.0 - rhs.0)
    }
}

impl fmt::Debug for Nanos {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for Nanos {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions() {
        assert_eq!(Nanos::from_secs_f64(1.5).0, 1_500_000_000);
        assert_eq!(Nanos::from_micros(250).0, 250_000);
        assert_eq!(Nanos::from_millis(3).0, 3_000_000);
        assert!((Nanos(1_500_000_000).as_secs_f64() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn arithmetic() {
        let a = Nanos(100);
        let b = Nanos(30);
        assert_eq!(a + b, Nanos(130));
        assert_eq!(a - b, Nanos(70));
        assert_eq!(b.saturating_sub(a), Nanos::ZERO);
        let mut c = a;
        c += b;
        assert_eq!(c, Nanos(130));
    }

    #[test]
    fn ordering_is_exact() {
        assert!(Nanos(1) < Nanos(2));
        assert_eq!(Nanos::from_secs_f64(0.0), Nanos::ZERO);
    }

    #[test]
    fn display_in_seconds() {
        assert_eq!(format!("{}", Nanos::from_millis(1500)), "1.500000s");
    }
}
