//! A simulated network fabric over a cluster topology.
//!
//! [`Fabric`] instantiates one [`RpcChannel`] per host pair from a
//! [`Topology`](genie_cluster::Topology), applying each pair's link
//! parameters and any background congestion from
//! [`ClusterState`](genie_cluster::ClusterState). It is the network half of
//! Genie's simulation backend; the compute half lives in
//! `genie-backend::sim`.

use crate::fault::{FaultPlan, FaultSpec};
use crate::link::{LinkFault, LinkSim};
use crate::rpc::{RpcChannel, RpcParams};
use crate::time::Nanos;
use crate::trace::TraceEvent;
use genie_cluster::{ClusterState, HostId, Topology};
use std::collections::BTreeMap;

/// Health of one link at a point in simulated time.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum LinkStatus {
    /// Full bandwidth, no injected degradation.
    Up,
    /// Degraded: effective bandwidth multiplied by the carried factor.
    Degraded(f64),
    /// Inside an outage or partition window: no traffic moves.
    Down,
}

/// Simulated fabric: per-host-pair RPC channels with shared parameters.
#[derive(Clone, Debug)]
pub struct Fabric {
    params: RpcParams,
    channels: BTreeMap<(HostId, HostId), RpcChannel>,
    /// The applied fault plan, when one is installed.
    fault_plan: Option<FaultPlan>,
    /// Fault windows as trace marks, recorded when the plan is applied.
    fault_events: Vec<TraceEvent>,
}

impl Fabric {
    /// Build a fabric over `topo` using `params` for every channel, seeding
    /// per-pair congestion from `state`.
    pub fn new(topo: &Topology, state: &ClusterState, params: RpcParams) -> Self {
        let mut channels = BTreeMap::new();
        for link in topo.links() {
            let key = ordered(link.a, link.b);
            let mut sim =
                LinkSim::new(link.bandwidth_bytes(), Nanos::from_secs_f64(link.latency_s));
            sim.congestion = state.congestion(link.a.0, link.b.0);
            channels.insert(key, RpcChannel::new(params.clone(), sim));
        }
        Fabric {
            params,
            channels,
            fault_plan: None,
            fault_events: Vec::new(),
        }
    }

    /// Install a fault plan: every spec is projected onto the affected
    /// links (derates multiply, jitter takes the max, outage and
    /// partition windows accumulate as down windows) and each fault
    /// window is recorded as a [`TraceEvent::Mark`] pair so exports show
    /// when the fabric was degraded. Idempotent per plan: applying a new
    /// plan replaces the previous one.
    pub fn apply_fault_plan(&mut self, plan: &FaultPlan) {
        self.fault_events.clear();
        for (&(a, b), ch) in self.channels.iter_mut() {
            let mut fault = LinkFault::none(plan.seed ^ (u64::from(a.0) << 32) ^ u64::from(b.0));
            let mut touched = false;
            for spec in plan.faults_for(a.0, b.0) {
                touched = true;
                match spec {
                    FaultSpec::Derate { factor, .. } => {
                        fault.derate *= factor.clamp(f64::MIN_POSITIVE, 1.0);
                    }
                    FaultSpec::Jitter { max, .. } => {
                        fault.jitter_max = fault.jitter_max.max(*max);
                    }
                    FaultSpec::LinkDown { from, until, .. }
                    | FaultSpec::Partition { from, until, .. } => {
                        fault.down.push((*from, *until));
                    }
                }
            }
            ch.link.fault = if touched { Some(fault) } else { None };
        }
        for spec in &plan.schedule.specs {
            let label = spec.label();
            match spec.window() {
                Some((from, until)) => {
                    self.fault_events.push(TraceEvent::Mark {
                        label: format!("{label} begin"),
                        at: from,
                    });
                    self.fault_events.push(TraceEvent::Mark {
                        label: format!("{label} end"),
                        at: until,
                    });
                }
                None => self.fault_events.push(TraceEvent::Mark {
                    label,
                    at: Nanos::ZERO,
                }),
            }
        }
        self.fault_plan = Some(plan.clone());
    }

    /// The installed fault plan, if any.
    pub fn fault_plan(&self) -> Option<&FaultPlan> {
        self.fault_plan.as_ref()
    }

    /// Fault-window trace marks recorded by [`apply_fault_plan`]
    /// (push them into a [`Trace`](crate::Trace) alongside the run's
    /// events so exports attribute degradation windows).
    pub fn fault_events(&self) -> &[TraceEvent] {
        &self.fault_events
    }

    /// Total transmissions perturbed by injected faults across all links.
    pub fn faults_injected(&self) -> u64 {
        self.channels.values().map(|c| c.link.faults_hit).sum()
    }

    /// Health of the link between two hosts at `now`. `Down` while inside
    /// an outage or partition window, `Degraded` under a bandwidth
    /// derate, `Up` otherwise (including when no link exists — callers
    /// panic on missing links elsewhere).
    pub fn link_status(&self, a: HostId, b: HostId, now: Nanos) -> LinkStatus {
        let Some(plan) = &self.fault_plan else {
            return LinkStatus::Up;
        };
        if plan.is_severed(a.0, b.0, now) {
            return LinkStatus::Down;
        }
        let derate: f64 = plan
            .faults_for(a.0, b.0)
            .filter_map(|s| match s {
                FaultSpec::Derate { factor, .. } => Some(factor.clamp(f64::MIN_POSITIVE, 1.0)),
                _ => None,
            })
            .product();
        if derate < 1.0 {
            LinkStatus::Degraded(derate)
        } else {
            LinkStatus::Up
        }
    }

    /// The channel between two hosts. Panics if the topology has no link
    /// between them (schedulers must only bind reachable placements).
    pub fn channel(&mut self, a: HostId, b: HostId) -> &mut RpcChannel {
        self.channels
            .get_mut(&ordered(a, b))
            .unwrap_or_else(|| panic!("no link between {a} and {b}"))
    }

    /// Immutable channel access.
    pub fn channel_ref(&self, a: HostId, b: HostId) -> Option<&RpcChannel> {
        self.channels.get(&ordered(a, b))
    }

    /// Transport parameters in use.
    pub fn params(&self) -> &RpcParams {
        &self.params
    }

    /// Total payload bytes moved across all channels.
    pub fn total_bytes(&self) -> u64 {
        self.channels.values().map(|c| c.total_bytes()).sum()
    }

    /// Total completed calls across all channels.
    pub fn total_calls(&self) -> u64 {
        self.channels.values().map(|c| c.calls).sum()
    }
}

fn ordered(a: HostId, b: HostId) -> (HostId, HostId) {
    if a <= b {
        (a, b)
    } else {
        (b, a)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fabric_from_paper_testbed() {
        let topo = Topology::paper_testbed();
        let state = ClusterState::new();
        let mut f = Fabric::new(&topo, &state, RpcParams::rdma_zero_copy());
        let c = f.channel(HostId(0), HostId(1));
        let t0 = c.ensure_session(Nanos::ZERO);
        c.call_sync(t0, 1_000, 1_000, Nanos::ZERO);
        assert_eq!(f.total_bytes(), 2_000);
        assert_eq!(f.total_calls(), 1);
    }

    #[test]
    fn channel_lookup_symmetric() {
        let topo = Topology::paper_testbed();
        let state = ClusterState::new();
        let f = Fabric::new(&topo, &state, RpcParams::tuned_tcp());
        assert!(f.channel_ref(HostId(1), HostId(0)).is_some());
        assert!(f.channel_ref(HostId(0), HostId(0)).is_none());
    }

    #[test]
    #[should_panic(expected = "no link")]
    fn missing_link_panics() {
        let topo = Topology::paper_testbed();
        let state = ClusterState::new();
        let mut f = Fabric::new(&topo, &state, RpcParams::tuned_tcp());
        f.channel(HostId(0), HostId(5));
    }

    #[test]
    fn fault_plan_projects_onto_links() {
        use crate::fault::{FaultSchedule, FaultSpec};
        let topo = Topology::paper_testbed();
        let state = ClusterState::new();
        let mut f = Fabric::new(&topo, &state, RpcParams::rdma_zero_copy());
        let plan = FaultPlan::new(
            7,
            FaultSchedule {
                specs: vec![
                    FaultSpec::Derate {
                        a: 0,
                        b: 1,
                        factor: 0.25,
                    },
                    FaultSpec::LinkDown {
                        a: 0,
                        b: 1,
                        from: Nanos::from_millis(1),
                        until: Nanos::from_millis(2),
                    },
                ],
            },
        );
        f.apply_fault_plan(&plan);
        assert_eq!(
            f.link_status(HostId(0), HostId(1), Nanos::ZERO),
            LinkStatus::Degraded(0.25)
        );
        assert_eq!(
            f.link_status(HostId(0), HostId(1), Nanos::from_millis(1)),
            LinkStatus::Down
        );
        // Four marks: derate (one) + link-down begin/end... derate has no
        // window so it is a single mark: 1 + 2 = 3.
        assert_eq!(f.fault_events().len(), 3);
        assert_eq!(f.faults_injected(), 0, "nothing transmitted yet");
        let c = f.channel(HostId(0), HostId(1));
        let t0 = c.ensure_session(Nanos::ZERO);
        c.call_sync(t0, 1_000_000, 0, Nanos::ZERO);
        assert!(f.faults_injected() > 0, "derated transmission counted");
    }

    #[test]
    fn faulted_runs_are_seed_deterministic() {
        let topo = Topology::paper_testbed();
        let state = ClusterState::new();
        let run = |seed| {
            let mut f = Fabric::new(&topo, &state, RpcParams::tuned_tcp());
            f.apply_fault_plan(&FaultPlan::generate(
                seed,
                topo.hosts().len() as u32,
                Nanos::from_secs_f64(30.0),
                6,
            ));
            let c = f.channel(HostId(0), HostId(1));
            let mut t = c.ensure_session(Nanos::ZERO);
            for _ in 0..5 {
                t = c
                    .call_sync(t, 1 << 20, 1 << 10, Nanos::from_millis(3))
                    .response_delivered;
            }
            (t, f.faults_injected())
        };
        assert_eq!(run(11), run(11), "same seed, same timeline");
    }

    #[test]
    fn congestion_carried_from_state() {
        let topo = Topology::paper_testbed();
        let mut state = ClusterState::new();
        state.set_congestion(0, 1, 0.5);
        let f = Fabric::new(&topo, &state, RpcParams::rdma_zero_copy());
        let c = f.channel_ref(HostId(0), HostId(1)).unwrap();
        assert_eq!(c.link.congestion, 0.5);
        assert_eq!(c.link.effective_bandwidth(), 25e9 / 8.0 * 0.5);
    }
}
