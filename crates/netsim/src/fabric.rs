//! A simulated network fabric over a cluster topology.
//!
//! [`Fabric`] instantiates one [`RpcChannel`] per host pair from a
//! [`Topology`](genie_cluster::Topology), applying each pair's link
//! parameters and any background congestion from
//! [`ClusterState`](genie_cluster::ClusterState). It is the network half of
//! Genie's simulation backend; the compute half lives in
//! `genie-backend::sim`.

use crate::link::LinkSim;
use crate::rpc::{RpcChannel, RpcParams};
use crate::time::Nanos;
use genie_cluster::{ClusterState, HostId, Topology};
use std::collections::BTreeMap;

/// Simulated fabric: per-host-pair RPC channels with shared parameters.
#[derive(Clone, Debug)]
pub struct Fabric {
    params: RpcParams,
    channels: BTreeMap<(HostId, HostId), RpcChannel>,
}

impl Fabric {
    /// Build a fabric over `topo` using `params` for every channel, seeding
    /// per-pair congestion from `state`.
    pub fn new(topo: &Topology, state: &ClusterState, params: RpcParams) -> Self {
        let mut channels = BTreeMap::new();
        for link in topo.links() {
            let key = ordered(link.a, link.b);
            let mut sim =
                LinkSim::new(link.bandwidth_bytes(), Nanos::from_secs_f64(link.latency_s));
            sim.congestion = state.congestion(link.a.0, link.b.0);
            channels.insert(key, RpcChannel::new(params.clone(), sim));
        }
        Fabric { params, channels }
    }

    /// The channel between two hosts. Panics if the topology has no link
    /// between them (schedulers must only bind reachable placements).
    pub fn channel(&mut self, a: HostId, b: HostId) -> &mut RpcChannel {
        self.channels
            .get_mut(&ordered(a, b))
            .unwrap_or_else(|| panic!("no link between {a} and {b}"))
    }

    /// Immutable channel access.
    pub fn channel_ref(&self, a: HostId, b: HostId) -> Option<&RpcChannel> {
        self.channels.get(&ordered(a, b))
    }

    /// Transport parameters in use.
    pub fn params(&self) -> &RpcParams {
        &self.params
    }

    /// Total payload bytes moved across all channels.
    pub fn total_bytes(&self) -> u64 {
        self.channels.values().map(|c| c.total_bytes()).sum()
    }

    /// Total completed calls across all channels.
    pub fn total_calls(&self) -> u64 {
        self.channels.values().map(|c| c.calls).sum()
    }
}

fn ordered(a: HostId, b: HostId) -> (HostId, HostId) {
    if a <= b {
        (a, b)
    } else {
        (b, a)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fabric_from_paper_testbed() {
        let topo = Topology::paper_testbed();
        let state = ClusterState::new();
        let mut f = Fabric::new(&topo, &state, RpcParams::rdma_zero_copy());
        let c = f.channel(HostId(0), HostId(1));
        let t0 = c.ensure_session(Nanos::ZERO);
        c.call_sync(t0, 1_000, 1_000, Nanos::ZERO);
        assert_eq!(f.total_bytes(), 2_000);
        assert_eq!(f.total_calls(), 1);
    }

    #[test]
    fn channel_lookup_symmetric() {
        let topo = Topology::paper_testbed();
        let state = ClusterState::new();
        let f = Fabric::new(&topo, &state, RpcParams::tuned_tcp());
        assert!(f.channel_ref(HostId(1), HostId(0)).is_some());
        assert!(f.channel_ref(HostId(0), HostId(0)).is_none());
    }

    #[test]
    #[should_panic(expected = "no link")]
    fn missing_link_panics() {
        let topo = Topology::paper_testbed();
        let state = ClusterState::new();
        let mut f = Fabric::new(&topo, &state, RpcParams::tuned_tcp());
        f.channel(HostId(0), HostId(5));
    }

    #[test]
    fn congestion_carried_from_state() {
        let topo = Topology::paper_testbed();
        let mut state = ClusterState::new();
        state.set_congestion(0, 1, 0.5);
        let f = Fabric::new(&topo, &state, RpcParams::rdma_zero_copy());
        let c = f.channel_ref(HostId(0), HostId(1)).unwrap();
        assert_eq!(c.link.congestion, 0.5);
        assert_eq!(c.link.effective_bandwidth(), 25e9 / 8.0 * 0.5);
    }
}
