//! Point-to-point link model.
//!
//! Each link is a FIFO serializer: transmissions queue behind one another
//! at the link's effective bandwidth, then experience propagation latency.
//! Background congestion (other tenants) scales the effective bandwidth —
//! the signal the scheduler's dynamic-recomputation policy reacts to
//! (§3.3).

use crate::time::Nanos;
use serde::{Deserialize, Serialize};

/// Mutable state of one simulated link direction.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct LinkSim {
    /// Line bandwidth in bytes/s.
    pub bandwidth_bytes: f64,
    /// One-way propagation latency.
    pub latency: Nanos,
    /// Fraction of bandwidth consumed by background traffic, `[0, 1)`.
    pub congestion: f64,
    /// When the serializer becomes free.
    busy_until: Nanos,
    /// Total payload bytes accepted.
    pub bytes_sent: u64,
    /// Number of transmissions accepted.
    pub transmissions: u64,
}

/// Timing of one accepted transmission.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TxTiming {
    /// When serialization onto the wire began.
    pub start: Nanos,
    /// When the last byte left the sender.
    pub sent: Nanos,
    /// When the last byte arrived at the receiver (sent + latency).
    pub delivered: Nanos,
}

impl LinkSim {
    /// New idle link.
    pub fn new(bandwidth_bytes: f64, latency: Nanos) -> Self {
        assert!(bandwidth_bytes > 0.0, "bandwidth must be positive");
        LinkSim {
            bandwidth_bytes,
            latency,
            congestion: 0.0,
            busy_until: Nanos::ZERO,
            bytes_sent: 0,
            transmissions: 0,
        }
    }

    /// Effective bandwidth after background congestion.
    pub fn effective_bandwidth(&self) -> f64 {
        self.bandwidth_bytes * (1.0 - self.congestion)
    }

    /// Accept a transmission of `bytes` at `now`; returns its timing. The
    /// link serializes FIFO: the transfer starts when both `now` has
    /// arrived and the previous transfer has left the wire.
    pub fn transmit(&mut self, now: Nanos, bytes: u64) -> TxTiming {
        let start = now.max(self.busy_until);
        let tx_time = Nanos::from_secs_f64(bytes as f64 / self.effective_bandwidth());
        let sent = start + tx_time;
        self.busy_until = sent;
        self.bytes_sent += bytes;
        self.transmissions += 1;
        TxTiming {
            start,
            sent,
            delivered: sent + self.latency,
        }
    }

    /// Occupy the serializer for an externally-computed duration (used by
    /// transports whose goodput is below the line rate: the wire is held
    /// for the slower serialization window). Returns the start time.
    pub fn occupy(&mut self, now: Nanos, duration: Nanos, bytes: u64) -> Nanos {
        let start = now.max(self.busy_until);
        self.busy_until = start + duration;
        self.bytes_sent += bytes;
        self.transmissions += 1;
        start
    }

    /// When the serializer frees up.
    pub fn busy_until(&self) -> Nanos {
        self.busy_until
    }

    /// Reset counters and availability (new simulation run).
    pub fn reset(&mut self) {
        self.busy_until = Nanos::ZERO;
        self.bytes_sent = 0;
        self.transmissions = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gbps25() -> LinkSim {
        LinkSim::new(25e9 / 8.0, Nanos::from_micros(250))
    }

    #[test]
    fn single_transfer_timing() {
        let mut l = gbps25();
        // 3.125 GB at 3.125 GB/s = 1 s.
        let t = l.transmit(Nanos::ZERO, 3_125_000_000);
        assert_eq!(t.start, Nanos::ZERO);
        assert!((t.sent.as_secs_f64() - 1.0).abs() < 1e-6);
        assert!((t.delivered.as_secs_f64() - 1.00025).abs() < 1e-6);
    }

    #[test]
    fn fifo_serialization() {
        let mut l = gbps25();
        let a = l.transmit(Nanos::ZERO, 3_125_000_000);
        let b = l.transmit(Nanos::ZERO, 3_125_000_000);
        assert_eq!(b.start, a.sent);
        assert!((b.delivered.as_secs_f64() - 2.00025).abs() < 1e-5);
        assert_eq!(l.transmissions, 2);
        assert_eq!(l.bytes_sent, 6_250_000_000);
    }

    #[test]
    fn idle_gap_respected() {
        let mut l = gbps25();
        l.transmit(Nanos::ZERO, 1_000);
        let later = Nanos::from_secs_f64(5.0);
        let t = l.transmit(later, 1_000);
        assert_eq!(t.start, later);
    }

    #[test]
    fn congestion_halves_bandwidth() {
        let mut l = gbps25();
        l.congestion = 0.5;
        let t = l.transmit(Nanos::ZERO, 3_125_000_000);
        assert!((t.sent.as_secs_f64() - 2.0).abs() < 1e-6);
    }

    #[test]
    fn zero_bytes_costs_only_latency() {
        let mut l = gbps25();
        let t = l.transmit(Nanos::ZERO, 0);
        assert_eq!(t.sent, Nanos::ZERO);
        assert_eq!(t.delivered, Nanos::from_micros(250));
    }

    #[test]
    fn reset_clears_state() {
        let mut l = gbps25();
        l.transmit(Nanos::ZERO, 1_000_000);
        l.reset();
        assert_eq!(l.busy_until(), Nanos::ZERO);
        assert_eq!(l.bytes_sent, 0);
    }
}
