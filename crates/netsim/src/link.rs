//! Point-to-point link model.
//!
//! Each link is a FIFO serializer: transmissions queue behind one another
//! at the link's effective bandwidth, then experience propagation latency.
//! Background congestion (other tenants) scales the effective bandwidth —
//! the signal the scheduler's dynamic-recomputation policy reacts to
//! (§3.3).

use crate::fault::XorShift64;
use crate::time::Nanos;
use serde::{Deserialize, Serialize};

/// Injected degradation state of one link (see `crate::fault`). All
/// fields deterministic: jitter draws come from the seeded RNG carried
/// here, never from a wall clock.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct LinkFault {
    /// Multiplier on effective bandwidth in `(0, 1]`.
    pub derate: f64,
    /// Maximum extra propagation latency per transmission.
    pub jitter_max: Nanos,
    /// Windows `[from, until)` during which the link accepts no traffic.
    pub down: Vec<(Nanos, Nanos)>,
    /// Seeded stream for jitter draws.
    pub rng: XorShift64,
}

impl LinkFault {
    /// A no-op fault (full bandwidth, no jitter, never down).
    pub fn none(seed: u64) -> Self {
        LinkFault {
            derate: 1.0,
            jitter_max: Nanos::ZERO,
            down: Vec::new(),
            rng: XorShift64::new(seed),
        }
    }
}

/// Mutable state of one simulated link direction.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct LinkSim {
    /// Line bandwidth in bytes/s.
    pub bandwidth_bytes: f64,
    /// One-way propagation latency.
    pub latency: Nanos,
    /// Fraction of bandwidth consumed by background traffic, `[0, 1)`.
    pub congestion: f64,
    /// When the serializer becomes free.
    busy_until: Nanos,
    /// Total payload bytes accepted.
    pub bytes_sent: u64,
    /// Number of transmissions accepted.
    pub transmissions: u64,
    /// Injected fault state, when a fault plan targets this link.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub fault: Option<LinkFault>,
    /// Transmissions perturbed by a fault (deferred past an outage,
    /// jittered, or slowed by a derate).
    #[serde(default)]
    pub faults_hit: u64,
}

/// Timing of one accepted transmission.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TxTiming {
    /// When serialization onto the wire began.
    pub start: Nanos,
    /// When the last byte left the sender.
    pub sent: Nanos,
    /// When the last byte arrived at the receiver (sent + latency).
    pub delivered: Nanos,
}

impl LinkSim {
    /// New idle link.
    pub fn new(bandwidth_bytes: f64, latency: Nanos) -> Self {
        assert!(bandwidth_bytes > 0.0, "bandwidth must be positive");
        LinkSim {
            bandwidth_bytes,
            latency,
            congestion: 0.0,
            busy_until: Nanos::ZERO,
            bytes_sent: 0,
            transmissions: 0,
            fault: None,
            faults_hit: 0,
        }
    }

    /// Effective bandwidth after background congestion and any injected
    /// derate.
    pub fn effective_bandwidth(&self) -> f64 {
        let derate = self.fault.as_ref().map_or(1.0, |f| f.derate);
        self.bandwidth_bytes * (1.0 - self.congestion) * derate
    }

    /// Defer `at` past any injected outage window it falls inside, and
    /// draw this transmission's latency jitter. Counts perturbed
    /// transmissions in `faults_hit`.
    fn apply_fault(&mut self, at: Nanos) -> (Nanos, Nanos) {
        let Some(fault) = self.fault.as_mut() else {
            return (at, Nanos::ZERO);
        };
        let mut start = at;
        let mut hit = fault.derate < 1.0;
        // Windows may abut or nest; iterate until a fixed point so a
        // transmission deferred into a later window keeps deferring.
        let mut moved = true;
        while moved {
            moved = false;
            for &(from, until) in &fault.down {
                if start >= from && start < until {
                    start = until;
                    moved = true;
                    hit = true;
                }
            }
        }
        let jitter = Nanos(fault.rng.next_below(fault.jitter_max.0.saturating_add(1)));
        if jitter > Nanos::ZERO {
            hit = true;
        }
        if hit {
            self.faults_hit += 1;
        }
        (start, jitter)
    }

    /// Accept a transmission of `bytes` at `now`; returns its timing. The
    /// link serializes FIFO: the transfer starts when both `now` has
    /// arrived and the previous transfer has left the wire — and, under an
    /// injected outage, not before the outage window closes.
    pub fn transmit(&mut self, now: Nanos, bytes: u64) -> TxTiming {
        let (now, jitter) = self.apply_fault(now);
        let start = now.max(self.busy_until);
        let tx_time = Nanos::from_secs_f64(bytes as f64 / self.effective_bandwidth());
        let sent = start + tx_time;
        self.busy_until = sent;
        self.bytes_sent += bytes;
        self.transmissions += 1;
        TxTiming {
            start,
            sent,
            delivered: sent + self.latency + jitter,
        }
    }

    /// Occupy the serializer for an externally-computed duration (used by
    /// transports whose goodput is below the line rate: the wire is held
    /// for the slower serialization window). Returns the start time.
    pub fn occupy(&mut self, now: Nanos, duration: Nanos, bytes: u64) -> Nanos {
        self.occupy_timed(now, duration, bytes).0
    }

    /// [`occupy`](Self::occupy) returning `(start, jitter)`: callers that
    /// compute delivery themselves must add the drawn latency jitter.
    pub fn occupy_timed(&mut self, now: Nanos, duration: Nanos, bytes: u64) -> (Nanos, Nanos) {
        let (now, jitter) = self.apply_fault(now);
        let start = now.max(self.busy_until);
        self.busy_until = start + duration;
        self.bytes_sent += bytes;
        self.transmissions += 1;
        (start, jitter)
    }

    /// When the serializer frees up.
    pub fn busy_until(&self) -> Nanos {
        self.busy_until
    }

    /// Reset counters, availability, and fault state (new simulation run).
    pub fn reset(&mut self) {
        self.busy_until = Nanos::ZERO;
        self.bytes_sent = 0;
        self.transmissions = 0;
        self.fault = None;
        self.faults_hit = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gbps25() -> LinkSim {
        LinkSim::new(25e9 / 8.0, Nanos::from_micros(250))
    }

    #[test]
    fn single_transfer_timing() {
        let mut l = gbps25();
        // 3.125 GB at 3.125 GB/s = 1 s.
        let t = l.transmit(Nanos::ZERO, 3_125_000_000);
        assert_eq!(t.start, Nanos::ZERO);
        assert!((t.sent.as_secs_f64() - 1.0).abs() < 1e-6);
        assert!((t.delivered.as_secs_f64() - 1.00025).abs() < 1e-6);
    }

    #[test]
    fn fifo_serialization() {
        let mut l = gbps25();
        let a = l.transmit(Nanos::ZERO, 3_125_000_000);
        let b = l.transmit(Nanos::ZERO, 3_125_000_000);
        assert_eq!(b.start, a.sent);
        assert!((b.delivered.as_secs_f64() - 2.00025).abs() < 1e-5);
        assert_eq!(l.transmissions, 2);
        assert_eq!(l.bytes_sent, 6_250_000_000);
    }

    #[test]
    fn idle_gap_respected() {
        let mut l = gbps25();
        l.transmit(Nanos::ZERO, 1_000);
        let later = Nanos::from_secs_f64(5.0);
        let t = l.transmit(later, 1_000);
        assert_eq!(t.start, later);
    }

    #[test]
    fn congestion_halves_bandwidth() {
        let mut l = gbps25();
        l.congestion = 0.5;
        let t = l.transmit(Nanos::ZERO, 3_125_000_000);
        assert!((t.sent.as_secs_f64() - 2.0).abs() < 1e-6);
    }

    #[test]
    fn zero_bytes_costs_only_latency() {
        let mut l = gbps25();
        let t = l.transmit(Nanos::ZERO, 0);
        assert_eq!(t.sent, Nanos::ZERO);
        assert_eq!(t.delivered, Nanos::from_micros(250));
    }

    #[test]
    fn reset_clears_state() {
        let mut l = gbps25();
        l.transmit(Nanos::ZERO, 1_000_000);
        l.fault = Some(LinkFault::none(1));
        l.reset();
        assert_eq!(l.busy_until(), Nanos::ZERO);
        assert_eq!(l.bytes_sent, 0);
        assert!(l.fault.is_none());
    }

    #[test]
    fn derate_slows_transmission_and_counts_hits() {
        let mut l = gbps25();
        let mut f = LinkFault::none(1);
        f.derate = 0.5;
        l.fault = Some(f);
        let t = l.transmit(Nanos::ZERO, 3_125_000_000);
        assert!((t.sent.as_secs_f64() - 2.0).abs() < 1e-6, "{:?}", t.sent);
        assert_eq!(l.faults_hit, 1);
    }

    #[test]
    fn down_window_defers_transmission() {
        let mut l = gbps25();
        let mut f = LinkFault::none(1);
        f.down = vec![(Nanos::ZERO, Nanos::from_millis(10))];
        l.fault = Some(f);
        let t = l.transmit(Nanos::from_millis(5), 1_000);
        assert_eq!(t.start, Nanos::from_millis(10), "deferred to window end");
        assert_eq!(l.faults_hit, 1);
        // Outside the window the link behaves normally.
        let t2 = l.transmit(Nanos::from_millis(20), 1_000);
        assert_eq!(t2.start, Nanos::from_millis(20));
        assert_eq!(l.faults_hit, 1);
    }

    #[test]
    fn abutting_down_windows_chain() {
        let mut l = gbps25();
        let mut f = LinkFault::none(1);
        f.down = vec![
            (Nanos(0), Nanos(100)),
            (Nanos(100), Nanos(200)),
            (Nanos(500), Nanos(600)),
        ];
        l.fault = Some(f);
        let t = l.transmit(Nanos(50), 0);
        assert_eq!(t.start, Nanos(200), "chained through abutting windows");
    }

    #[test]
    fn jitter_is_bounded_and_seed_deterministic() {
        let run = |seed: u64| {
            let mut l = gbps25();
            let mut f = LinkFault::none(seed);
            f.jitter_max = Nanos::from_micros(100);
            l.fault = Some(f);
            (0..20)
                .map(|i| l.transmit(Nanos::from_millis(i * 10), 0).delivered)
                .collect::<Vec<_>>()
        };
        let a = run(3);
        let b = run(3);
        assert_eq!(a, b, "same seed, same jitter");
        for (i, d) in a.iter().enumerate() {
            let base = Nanos::from_millis(i as u64 * 10) + Nanos::from_micros(250);
            assert!(*d >= base && *d <= base + Nanos::from_micros(100));
        }
        assert_ne!(a, run(4), "different seed perturbs differently");
    }
}
