//! Simulation traces: a flat record of what happened and when, for
//! reports, debugging, and the bench harness's table generators.

use crate::time::Nanos;
use serde::{Deserialize, Serialize};

/// One recorded simulation event.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum TraceEvent {
    /// A kernel executed on a device.
    Kernel {
        /// Device index.
        device: u32,
        /// Node name or label.
        label: String,
        /// Start time.
        start: Nanos,
        /// End time.
        end: Nanos,
    },
    /// A network transfer completed.
    Transfer {
        /// Source host.
        from: u32,
        /// Destination host.
        to: u32,
        /// Payload size.
        bytes: u64,
        /// Start time.
        start: Nanos,
        /// Delivery time.
        end: Nanos,
    },
    /// An RPC round-trip completed.
    Rpc {
        /// Label for the call.
        label: String,
        /// Issue time.
        start: Nanos,
        /// Response-delivered time.
        end: Nanos,
    },
    /// A free-form annotation (phase boundaries, failures, …).
    Mark {
        /// Annotation text.
        label: String,
        /// Time of the mark.
        at: Nanos,
    },
}

impl TraceEvent {
    /// Event end time (or mark time).
    pub fn end_time(&self) -> Nanos {
        match self {
            TraceEvent::Kernel { end, .. }
            | TraceEvent::Transfer { end, .. }
            | TraceEvent::Rpc { end, .. } => *end,
            TraceEvent::Mark { at, .. } => *at,
        }
    }
}

/// An append-only trace.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct Trace {
    events: Vec<TraceEvent>,
}

impl Trace {
    /// Empty trace.
    pub fn new() -> Self {
        Trace::default()
    }

    /// Append an event.
    pub fn push(&mut self, e: TraceEvent) {
        self.events.push(e);
    }

    /// All events in record order.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Latest end time across all events (the makespan).
    pub fn makespan(&self) -> Nanos {
        self.events
            .iter()
            .map(TraceEvent::end_time)
            .max()
            .unwrap_or(Nanos::ZERO)
    }

    /// Total busy seconds per device, summed over kernel events.
    pub fn device_busy_seconds(&self, device: u32) -> f64 {
        self.events
            .iter()
            .filter_map(|e| match e {
                TraceEvent::Kernel {
                    device: d,
                    start,
                    end,
                    ..
                } if *d == device => Some(end.as_secs_f64() - start.as_secs_f64()),
                _ => None,
            })
            .sum()
    }

    /// Total transferred bytes.
    pub fn transferred_bytes(&self) -> u64 {
        self.events
            .iter()
            .filter_map(|e| match e {
                TraceEvent::Transfer { bytes, .. } => Some(*bytes),
                _ => None,
            })
            .sum()
    }

    /// GPU utilization = busy / makespan for the given device (the paper's
    /// "effective GPU utilization": total kernel time over wall clock).
    pub fn utilization(&self, device: u32) -> f64 {
        let span = self.makespan().as_secs_f64();
        if span <= 0.0 {
            return 0.0;
        }
        self.device_busy_seconds(device) / span
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn makespan_and_utilization() {
        let mut t = Trace::new();
        t.push(TraceEvent::Kernel {
            device: 0,
            label: "mm".into(),
            start: Nanos::ZERO,
            end: Nanos::from_secs_f64(1.0),
        });
        t.push(TraceEvent::Transfer {
            from: 0,
            to: 1,
            bytes: 1000,
            start: Nanos::from_secs_f64(1.0),
            end: Nanos::from_secs_f64(3.0),
        });
        assert_eq!(t.makespan(), Nanos::from_secs_f64(3.0));
        assert!((t.device_busy_seconds(0) - 1.0).abs() < 1e-9);
        assert!((t.utilization(0) - 1.0 / 3.0).abs() < 1e-9);
        assert_eq!(t.transferred_bytes(), 1000);
    }

    #[test]
    fn empty_trace_is_safe() {
        let t = Trace::new();
        assert_eq!(t.makespan(), Nanos::ZERO);
        assert_eq!(t.utilization(0), 0.0);
        assert_eq!(t.transferred_bytes(), 0);
    }

    #[test]
    fn marks_extend_makespan() {
        let mut t = Trace::new();
        t.push(TraceEvent::Mark {
            label: "failure injected".into(),
            at: Nanos::from_secs_f64(9.0),
        });
        assert_eq!(t.makespan(), Nanos::from_secs_f64(9.0));
    }

    #[test]
    fn busy_seconds_filters_by_device() {
        let mut t = Trace::new();
        for d in 0..2 {
            t.push(TraceEvent::Kernel {
                device: d,
                label: "k".into(),
                start: Nanos::ZERO,
                end: Nanos::from_secs_f64(1.0 + d as f64),
            });
        }
        assert!((t.device_busy_seconds(1) - 2.0).abs() < 1e-9);
    }
}
