//! Simulation traces: a flat record of what happened and when, for
//! reports, debugging, and the bench harness's table generators.
//!
//! Events optionally carry *semantic attribution* — the SRG node and the
//! execution plan that caused them, and (for transfers) the time spent
//! queued behind other traffic. This is the raw material the telemetry
//! layer's Perfetto exporter turns into per-device/per-link tracks where
//! every kernel names its graph node and phase.

use crate::time::Nanos;
use genie_srg::NodeId;
use serde::{Deserialize, Serialize};

/// One recorded simulation event.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum TraceEvent {
    /// A kernel executed on a device.
    Kernel {
        /// Device index.
        device: u32,
        /// Node name or label.
        label: String,
        /// Start time.
        start: Nanos,
        /// End time.
        end: Nanos,
        /// SRG node this kernel realizes, when known.
        #[serde(default, skip_serializing_if = "Option::is_none")]
        node: Option<NodeId>,
        /// Execution-plan label (`<graph>@<policy>`) this ran under.
        #[serde(default, skip_serializing_if = "Option::is_none")]
        plan: Option<String>,
        /// Serving-request id this kernel is causally attributed to.
        #[serde(default, skip_serializing_if = "Option::is_none")]
        request: Option<u64>,
    },
    /// A network transfer completed.
    Transfer {
        /// Source host.
        from: u32,
        /// Destination host.
        to: u32,
        /// Payload size.
        bytes: u64,
        /// Start time.
        start: Nanos,
        /// Delivery time.
        end: Nanos,
        /// SRG node whose output (or input) moved, when known.
        #[serde(default, skip_serializing_if = "Option::is_none")]
        node: Option<NodeId>,
        /// Execution-plan label this ran under.
        #[serde(default, skip_serializing_if = "Option::is_none")]
        plan: Option<String>,
        /// Time spent waiting for the link serializer (FIFO queueing)
        /// before the first byte hit the wire.
        #[serde(default)]
        queue_delay: Nanos,
        /// Serving-request id this transfer is causally attributed to.
        #[serde(default, skip_serializing_if = "Option::is_none")]
        request: Option<u64>,
    },
    /// An RPC round-trip completed.
    Rpc {
        /// Label for the call.
        label: String,
        /// Issue time.
        start: Nanos,
        /// Response-delivered time.
        end: Nanos,
    },
    /// A free-form annotation (phase boundaries, failures, …).
    Mark {
        /// Annotation text.
        label: String,
        /// Time of the mark.
        at: Nanos,
    },
}

impl TraceEvent {
    /// An unattributed kernel event (attach attribution with
    /// [`with_node`](Self::with_node) / [`with_plan`](Self::with_plan)).
    pub fn kernel(device: u32, label: impl Into<String>, start: Nanos, end: Nanos) -> Self {
        TraceEvent::Kernel {
            device,
            label: label.into(),
            start,
            end,
            node: None,
            plan: None,
            request: None,
        }
    }

    /// An unattributed transfer event with zero queue delay.
    pub fn transfer(from: u32, to: u32, bytes: u64, start: Nanos, end: Nanos) -> Self {
        TraceEvent::Transfer {
            from,
            to,
            bytes,
            start,
            end,
            node: None,
            plan: None,
            queue_delay: Nanos::ZERO,
            request: None,
        }
    }

    /// Attach the causing SRG node (no-op on `Rpc`/`Mark`).
    pub fn with_node(mut self, id: NodeId) -> Self {
        match &mut self {
            TraceEvent::Kernel { node, .. } | TraceEvent::Transfer { node, .. } => {
                *node = Some(id);
            }
            _ => {}
        }
        self
    }

    /// Attach the execution-plan label (no-op on `Rpc`/`Mark`).
    pub fn with_plan(mut self, label: impl Into<String>) -> Self {
        match &mut self {
            TraceEvent::Kernel { plan, .. } | TraceEvent::Transfer { plan, .. } => {
                *plan = Some(label.into());
            }
            _ => {}
        }
        self
    }

    /// Attach the FIFO queueing delay (no-op on non-`Transfer` events).
    pub fn with_queue_delay(mut self, delay: Nanos) -> Self {
        if let TraceEvent::Transfer { queue_delay, .. } = &mut self {
            *queue_delay = delay;
        }
        self
    }

    /// Attach the causing serving request (no-op on `Rpc`/`Mark`).
    pub fn with_request(mut self, id: u64) -> Self {
        match &mut self {
            TraceEvent::Kernel { request, .. } | TraceEvent::Transfer { request, .. } => {
                *request = Some(id);
            }
            _ => {}
        }
        self
    }

    /// The attributed serving request, when present.
    pub fn request(&self) -> Option<u64> {
        match self {
            TraceEvent::Kernel { request, .. } | TraceEvent::Transfer { request, .. } => *request,
            _ => None,
        }
    }

    /// The attributed SRG node, when present.
    pub fn node(&self) -> Option<NodeId> {
        match self {
            TraceEvent::Kernel { node, .. } | TraceEvent::Transfer { node, .. } => *node,
            _ => None,
        }
    }

    /// The attributed plan label, when present.
    pub fn plan(&self) -> Option<&str> {
        match self {
            TraceEvent::Kernel { plan, .. } | TraceEvent::Transfer { plan, .. } => plan.as_deref(),
            _ => None,
        }
    }

    /// Event end time (or mark time).
    pub fn end_time(&self) -> Nanos {
        match self {
            TraceEvent::Kernel { end, .. }
            | TraceEvent::Transfer { end, .. }
            | TraceEvent::Rpc { end, .. } => *end,
            TraceEvent::Mark { at, .. } => *at,
        }
    }
}

/// An append-only trace.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct Trace {
    events: Vec<TraceEvent>,
}

impl Trace {
    /// Empty trace.
    pub fn new() -> Self {
        Trace::default()
    }

    /// Append an event.
    pub fn push(&mut self, e: TraceEvent) {
        self.events.push(e);
    }

    /// All events in record order.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Latest end time across all events (the makespan).
    pub fn makespan(&self) -> Nanos {
        self.events
            .iter()
            .map(TraceEvent::end_time)
            .max()
            .unwrap_or(Nanos::ZERO)
    }

    /// Total busy seconds per device, summed over kernel events.
    pub fn device_busy_seconds(&self, device: u32) -> f64 {
        self.events
            .iter()
            .filter_map(|e| match e {
                TraceEvent::Kernel {
                    device: d,
                    start,
                    end,
                    ..
                } if *d == device => Some(end.as_secs_f64() - start.as_secs_f64()),
                _ => None,
            })
            .sum()
    }

    /// Total transferred bytes.
    pub fn transferred_bytes(&self) -> u64 {
        self.events
            .iter()
            .filter_map(|e| match e {
                TraceEvent::Transfer { bytes, .. } => Some(*bytes),
                _ => None,
            })
            .sum()
    }

    /// Total seconds transfers spent queued behind other traffic.
    pub fn total_queue_delay_seconds(&self) -> f64 {
        self.events
            .iter()
            .filter_map(|e| match e {
                TraceEvent::Transfer { queue_delay, .. } => Some(queue_delay.as_secs_f64()),
                _ => None,
            })
            .sum()
    }

    /// GPU utilization = busy / makespan for the given device (the paper's
    /// "effective GPU utilization": total kernel time over wall clock).
    pub fn utilization(&self, device: u32) -> f64 {
        let span = self.makespan().as_secs_f64();
        if span <= 0.0 {
            return 0.0;
        }
        self.device_busy_seconds(device) / span
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn makespan_and_utilization() {
        let mut t = Trace::new();
        t.push(TraceEvent::kernel(
            0,
            "mm",
            Nanos::ZERO,
            Nanos::from_secs_f64(1.0),
        ));
        t.push(TraceEvent::transfer(
            0,
            1,
            1000,
            Nanos::from_secs_f64(1.0),
            Nanos::from_secs_f64(3.0),
        ));
        assert_eq!(t.makespan(), Nanos::from_secs_f64(3.0));
        assert!((t.device_busy_seconds(0) - 1.0).abs() < 1e-9);
        assert!((t.utilization(0) - 1.0 / 3.0).abs() < 1e-9);
        assert_eq!(t.transferred_bytes(), 1000);
    }

    #[test]
    fn empty_trace_is_safe() {
        let t = Trace::new();
        assert_eq!(t.makespan(), Nanos::ZERO);
        assert_eq!(t.utilization(0), 0.0);
        assert_eq!(t.transferred_bytes(), 0);
        assert_eq!(t.total_queue_delay_seconds(), 0.0);
    }

    #[test]
    fn marks_extend_makespan() {
        let mut t = Trace::new();
        t.push(TraceEvent::Mark {
            label: "failure injected".into(),
            at: Nanos::from_secs_f64(9.0),
        });
        assert_eq!(t.makespan(), Nanos::from_secs_f64(9.0));
    }

    #[test]
    fn busy_seconds_filters_by_device() {
        let mut t = Trace::new();
        for d in 0..2 {
            t.push(TraceEvent::kernel(
                d,
                "k",
                Nanos::ZERO,
                Nanos::from_secs_f64(1.0 + d as f64),
            ));
        }
        assert!((t.device_busy_seconds(1) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn attribution_builders_set_fields() {
        let e = TraceEvent::kernel(1, "matmul", Nanos::ZERO, Nanos(10))
            .with_node(NodeId::new(7))
            .with_plan("llm@semantics_aware");
        assert_eq!(e.node(), Some(NodeId::new(7)));
        assert_eq!(e.plan(), Some("llm@semantics_aware"));

        let t = TraceEvent::transfer(0, 1, 64, Nanos(5), Nanos(20))
            .with_node(NodeId::new(3))
            .with_queue_delay(Nanos(4))
            .with_request(17);
        match &t {
            TraceEvent::Transfer { queue_delay, .. } => assert_eq!(*queue_delay, Nanos(4)),
            _ => unreachable!(),
        }
        assert_eq!(t.request(), Some(17));
        // No-op on events without those fields.
        let m = TraceEvent::Mark {
            label: "m".into(),
            at: Nanos::ZERO,
        }
        .with_node(NodeId::new(1))
        .with_plan("p")
        .with_queue_delay(Nanos(1))
        .with_request(9);
        assert_eq!(m.node(), None);
        assert_eq!(m.plan(), None);
        assert_eq!(m.request(), None);
    }

    #[test]
    fn queue_delay_totals() {
        let mut t = Trace::new();
        t.push(
            TraceEvent::transfer(0, 1, 10, Nanos::ZERO, Nanos(100))
                .with_queue_delay(Nanos::from_secs_f64(0.25)),
        );
        t.push(
            TraceEvent::transfer(1, 0, 10, Nanos::ZERO, Nanos(100))
                .with_queue_delay(Nanos::from_secs_f64(0.5)),
        );
        assert!((t.total_queue_delay_seconds() - 0.75).abs() < 1e-9);
    }

    #[test]
    fn legacy_json_without_attribution_still_parses() {
        // Pre-attribution serialization: no node/plan/queue_delay keys.
        let legacy = r#"{"Kernel":{"device":0,"label":"mm","start":0,"end":1000}}"#;
        let e: TraceEvent = serde_json::from_str(legacy).unwrap();
        assert_eq!(e.node(), None);
        let legacy_t = r#"{"Transfer":{"from":0,"to":1,"bytes":8,"start":0,"end":1000}}"#;
        let e: TraceEvent = serde_json::from_str(legacy_t).unwrap();
        match e {
            TraceEvent::Transfer { queue_delay, .. } => assert_eq!(queue_delay, Nanos::ZERO),
            _ => unreachable!(),
        }
    }

    #[test]
    fn attributed_event_roundtrips() {
        let e = TraceEvent::transfer(0, 1, 64, Nanos(5), Nanos(20))
            .with_node(NodeId::new(3))
            .with_plan("vision@local")
            .with_queue_delay(Nanos(4))
            .with_request(41);
        let json = serde_json::to_string(&e).unwrap();
        let back: TraceEvent = serde_json::from_str(&json).unwrap();
        assert_eq!(back, e);
        // Unattributed events omit the request key entirely.
        let bare = serde_json::to_string(&TraceEvent::kernel(0, "k", Nanos(0), Nanos(1))).unwrap();
        assert!(!bare.contains("\"request\""), "{bare}");
    }
}
