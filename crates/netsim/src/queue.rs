//! Deterministic discrete-event queue.

use crate::time::Nanos;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// A min-heap of timestamped events. Ties at the same timestamp pop in
/// insertion order (a monotone sequence number breaks them), making every
/// simulation replayable bit-for-bit.
#[derive(Debug)]
pub struct EventQueue<T> {
    heap: BinaryHeap<Reverse<(Nanos, u64)>>,
    payloads: std::collections::HashMap<u64, T>,
    next_seq: u64,
}

impl<T> Default for EventQueue<T> {
    fn default() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            payloads: std::collections::HashMap::new(),
            next_seq: 0,
        }
    }
}

impl<T> EventQueue<T> {
    /// Empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedule `payload` to fire at `at`.
    pub fn schedule(&mut self, at: Nanos, payload: T) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Reverse((at, seq)));
        self.payloads.insert(seq, payload);
    }

    /// Pop the earliest event, returning its firing time and payload.
    pub fn pop(&mut self) -> Option<(Nanos, T)> {
        let Reverse((at, seq)) = self.heap.pop()?;
        let payload = self
            .payloads
            .remove(&seq)
            .expect("payload exists for scheduled seq");
        Some((at, payload))
    }

    /// Firing time of the next event without removing it.
    pub fn peek_time(&self) -> Option<Nanos> {
        self.heap.peek().map(|Reverse((at, _))| *at)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(Nanos(30), "c");
        q.schedule(Nanos(10), "a");
        q.schedule(Nanos(20), "b");
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, p)| p).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn ties_pop_in_insertion_order() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.schedule(Nanos(5), i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop()).map(|(_, p)| p).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn peek_does_not_consume() {
        let mut q = EventQueue::new();
        q.schedule(Nanos(7), ());
        assert_eq!(q.peek_time(), Some(Nanos(7)));
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
        q.pop();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
    }

    #[test]
    fn interleaved_schedule_and_pop() {
        let mut q = EventQueue::new();
        q.schedule(Nanos(10), 1);
        let (t, v) = q.pop().unwrap();
        assert_eq!((t, v), (Nanos(10), 1));
        q.schedule(Nanos(5), 2); // earlier than a previously-popped event is fine
        assert_eq!(q.pop().unwrap().1, 2);
    }
}
