//! RPC transport models.
//!
//! The paper's evaluation (§4) runs over PyTorch's TensorPipe RPC driven
//! from Python, whose costs dwarf the 25 Gbps line rate. We model a
//! transport with four calibrated parameters; presets cover the paper's
//! stack and the zero-copy RDMA datapath Genie's backend targets (§3.4).
//!
//! The calibration for [`RpcParams::tensorpipe_python`] was obtained by
//! refitting every latency cell of Tables 2–3 (see
//! `genie-bench::calibration`): a fixed per-session setup of ~109 s
//! (process start, CUDA context, RPC mesh — the paper measures with
//! `/usr/bin/time`, which includes all of it), ~0.45 s per synchronous
//! round trip, and ~1.4 GB/s effective goodput. With those three numbers
//! the paper's cells reproduce to within a few percent.

use crate::link::LinkSim;
use crate::time::Nanos;
use serde::{Deserialize, Serialize};

/// Parameters of an RPC transport.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct RpcParams {
    /// One-time session establishment cost (connection, remote context).
    pub session_init: Nanos,
    /// Fixed cost per synchronous call (marshalling, dispatch, GIL, …).
    pub per_call_overhead: Nanos,
    /// Effective payload goodput in bytes/s (≤ line rate; serialization-
    /// bound stacks sit well below it).
    pub effective_bandwidth: f64,
    /// Whether the datapath is zero-copy into device memory (RDMA +
    /// GPUDirect). Zero-copy transports skip host staging, so their
    /// effective bandwidth equals the line rate and per-call costs are
    /// microseconds.
    pub zero_copy: bool,
}

impl RpcParams {
    /// PyTorch TensorPipe RPC driven from Python over 25 GbE — the paper's
    /// measured stack.
    pub fn tensorpipe_python() -> Self {
        RpcParams {
            session_init: Nanos::from_secs_f64(109.0),
            per_call_overhead: Nanos::from_secs_f64(0.45),
            effective_bandwidth: 1.4e9,
            zero_copy: false,
        }
    }

    /// The zero-copy DPDK/RDMA datapath of §3.4: per-call cost is a NIC
    /// doorbell, goodput is the 25 GbE line rate.
    pub fn rdma_zero_copy() -> Self {
        RpcParams {
            session_init: Nanos::from_secs_f64(1.0),
            per_call_overhead: Nanos::from_micros(8),
            effective_bandwidth: 25e9 / 8.0,
            zero_copy: true,
        }
    }

    /// A tuned C++ RPC stack without RDMA (intermediate ablation point).
    pub fn tuned_tcp() -> Self {
        RpcParams {
            session_init: Nanos::from_secs_f64(5.0),
            per_call_overhead: Nanos::from_micros(200),
            effective_bandwidth: 2.8e9,
            zero_copy: false,
        }
    }
}

/// A simulated RPC endpoint pair: one client, one server, one link. Tracks
/// cumulative traffic and time the way the paper's RPC counters do.
#[derive(Clone, Debug)]
pub struct RpcChannel {
    /// Transport parameters.
    pub params: RpcParams,
    /// Underlying link (owned; FIFO-serialized).
    pub link: LinkSim,
    /// Total request payload bytes sent client → server.
    pub bytes_up: u64,
    /// Total response payload bytes sent server → client.
    pub bytes_down: u64,
    /// Number of completed calls.
    pub calls: u64,
    session_open: bool,
}

/// Outcome of one synchronous call.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CallTiming {
    /// When the request arrived at the server (server work may begin).
    pub request_delivered: Nanos,
    /// When the response arrived back at the client.
    pub response_delivered: Nanos,
}

/// Outcome of one one-way send, with queueing visibility.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct OnewayTiming {
    /// When the send was issued (after any session setup).
    pub issued: Nanos,
    /// When the first byte hit the wire (≥ `issued` under FIFO queueing).
    pub wire_start: Nanos,
    /// When the last byte arrived at the receiver.
    pub delivered: Nanos,
    /// `wire_start - issued`: time spent queued behind earlier traffic.
    pub queue_delay: Nanos,
}

impl RpcChannel {
    /// New channel over the given link.
    pub fn new(params: RpcParams, link: LinkSim) -> Self {
        RpcChannel {
            params,
            link,
            bytes_up: 0,
            bytes_down: 0,
            calls: 0,
            session_open: false,
        }
    }

    /// Ensure the session is established; returns the time at which the
    /// channel is usable.
    pub fn ensure_session(&mut self, now: Nanos) -> Nanos {
        if self.session_open {
            now
        } else {
            self.session_open = true;
            now + self.params.session_init
        }
    }

    /// Perform a synchronous call carrying `up` request bytes and `down`
    /// response bytes, with `server_time` of work between them. The
    /// per-call overhead is charged on the client before the request hits
    /// the wire; payloads move at the transport's effective bandwidth and
    /// the link's FIFO discipline.
    pub fn call_sync(&mut self, now: Nanos, up: u64, down: u64, server_time: Nanos) -> CallTiming {
        let now = self.ensure_session(now);
        let issue = now + self.params.per_call_overhead;
        let req = self.transmit_payload(issue, up);
        let server_done = req + server_time;
        let resp = self.transmit_payload(server_done, down);
        self.bytes_up += up;
        self.bytes_down += down;
        self.calls += 1;
        CallTiming {
            request_delivered: req,
            response_delivered: resp,
        }
    }

    /// One-way transfer (async send / stream). Returns delivery time.
    pub fn send_oneway(&mut self, now: Nanos, bytes: u64) -> Nanos {
        self.send_oneway_timed(now, bytes).delivered
    }

    /// One-way transfer with full timing, including how long the payload
    /// waited for the link serializer behind earlier traffic. This is the
    /// queueing-delay signal the telemetry layer surfaces per transfer.
    pub fn send_oneway_timed(&mut self, now: Nanos, bytes: u64) -> OnewayTiming {
        let now = self.ensure_session(now);
        let (start, delivered) = self.transmit_payload_timed(now, bytes);
        self.bytes_up += bytes;
        self.calls += 1;
        OnewayTiming {
            issued: now,
            wire_start: start,
            delivered,
            queue_delay: start.saturating_sub(now),
        }
    }

    /// Total bytes in both directions.
    pub fn total_bytes(&self) -> u64 {
        self.bytes_up + self.bytes_down
    }

    fn transmit_payload(&mut self, at: Nanos, bytes: u64) -> Nanos {
        self.transmit_payload_timed(at, bytes).1
    }

    /// Returns `(wire_start, delivered)` for one payload.
    fn transmit_payload_timed(&mut self, at: Nanos, bytes: u64) -> (Nanos, Nanos) {
        // The slower of the transport's serialization goodput and the
        // link's (possibly congested) rate governs; the wire is held for
        // that window (FIFO with other transfers), then propagation.
        let line = self.link.effective_bandwidth();
        let goodput = self.params.effective_bandwidth.min(line);
        let duration = Nanos::from_secs_f64(bytes as f64 / goodput);
        let (start, jitter) = self.link.occupy_timed(at, duration, bytes);
        (start, start + duration + self.link.latency + jitter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn channel(params: RpcParams) -> RpcChannel {
        RpcChannel::new(params, LinkSim::new(25e9 / 8.0, Nanos::from_micros(250)))
    }

    #[test]
    fn session_init_charged_once() {
        let mut c = channel(RpcParams::tensorpipe_python());
        let t0 = c.ensure_session(Nanos::ZERO);
        assert!((t0.as_secs_f64() - 109.0).abs() < 1e-9);
        let t1 = c.ensure_session(t0);
        assert_eq!(t1, t0);
    }

    #[test]
    fn sync_call_includes_overhead_and_both_directions() {
        let mut c = channel(RpcParams::rdma_zero_copy());
        c.ensure_session(Nanos::ZERO);
        let t = c.call_sync(
            Nanos::from_secs_f64(1.0),
            1_000_000,
            1_000_000,
            Nanos::from_millis(10),
        );
        // overhead 8us + 1MB at line rate (~0.32ms) + 250us + 10ms + same back
        let total = t.response_delivered.as_secs_f64() - 1.0;
        assert!(total > 0.010, "must include server time, got {total}");
        assert!(total < 0.013, "unexpectedly slow: {total}");
        assert_eq!(c.bytes_up, 1_000_000);
        assert_eq!(c.bytes_down, 1_000_000);
        assert_eq!(c.calls, 1);
    }

    #[test]
    fn tensorpipe_goodput_below_line_rate() {
        let mut c = channel(RpcParams::tensorpipe_python());
        let start = c.ensure_session(Nanos::ZERO);
        // 12.1 GB weight upload ≈ 12.1e9 / 1.4e9 ≈ 8.64 s.
        let t = c.call_sync(start, 12_100_000_000, 0, Nanos::ZERO);
        let dur = t.response_delivered.as_secs_f64() - start.as_secs_f64();
        assert!((dur - (0.45 + 8.64)).abs() < 0.05, "got {dur}");
    }

    #[test]
    fn zero_copy_faster_than_tensorpipe() {
        let payload = 100_000_000u64;
        let mut slow = channel(RpcParams::tensorpipe_python());
        let mut fast = channel(RpcParams::rdma_zero_copy());
        let s0 = slow.ensure_session(Nanos::ZERO);
        let f0 = fast.ensure_session(Nanos::ZERO);
        let ts = slow.call_sync(s0, payload, 0, Nanos::ZERO);
        let tf = fast.call_sync(f0, payload, 0, Nanos::ZERO);
        let slow_dur = ts.response_delivered - s0;
        let fast_dur = tf.response_delivered - f0;
        assert!(slow_dur > fast_dur);
    }

    #[test]
    fn oneway_accumulates_traffic() {
        let mut c = channel(RpcParams::rdma_zero_copy());
        let t0 = c.ensure_session(Nanos::ZERO);
        c.send_oneway(t0, 500);
        c.send_oneway(t0, 500);
        assert_eq!(c.total_bytes(), 1_000);
        assert_eq!(c.calls, 2);
    }

    #[test]
    fn oneway_timed_reports_fifo_queue_delay() {
        let mut c = channel(RpcParams::rdma_zero_copy());
        let t0 = c.ensure_session(Nanos::ZERO);
        // First send occupies the wire; the second, issued at the same
        // instant, must queue for exactly the first's serialization time.
        let a = c.send_oneway_timed(t0, 3_125_000_000);
        let b = c.send_oneway_timed(t0, 1_000);
        assert_eq!(a.queue_delay, Nanos::ZERO);
        assert_eq!(
            b.wire_start,
            a.wire_start + (a.delivered - a.issued) - c.link.latency
        );
        assert!(
            (b.queue_delay.as_secs_f64() - 1.0).abs() < 1e-6,
            "{:?}",
            b.queue_delay
        );
        assert!(b.delivered > a.delivered.saturating_sub(c.link.latency));
    }
}
