//! Deterministic network fault injection.
//!
//! A [`FaultPlan`] is a seeded, wall-clock-free description of everything
//! that goes wrong on the fabric during a run: per-link degradation
//! (bandwidth derate, latency jitter), transient link-down windows, and
//! host partitions. Plans are either hand-built from [`FaultSpec`]s or
//! generated pseudo-randomly from a seed with [`FaultSchedule::generate`];
//! either way the same seed always yields the same schedule and — because
//! the only randomness is a [`XorShift64`] threaded through the simulated
//! links — the same simulated timeline, which is what makes a failing
//! chaos seed reproducible from its number alone.

use crate::time::Nanos;
use serde::{Deserialize, Serialize};

/// A tiny, deterministic xorshift64* PRNG. No wall clock, no global
/// state: callers seed it explicitly and ownership decides the stream.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct XorShift64 {
    state: u64,
}

impl XorShift64 {
    /// Seeded generator (a zero seed is remapped: xorshift has a zero
    /// fixed point).
    pub fn new(seed: u64) -> Self {
        XorShift64 {
            state: if seed == 0 { 0x9E3779B97F4A7C15 } else { seed },
        }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.state = x;
        x.wrapping_mul(0x2545F4914F6CDD1D)
    }

    /// Uniform value in `[0, bound)`; 0 when `bound` is 0.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        if bound == 0 {
            0
        } else {
            self.next_u64() % bound
        }
    }

    /// Uniform float in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// One injected fault, in terms of host ids and simulated time.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum FaultSpec {
    /// Multiply the link's effective bandwidth by `factor` (in `(0, 1]`)
    /// for the whole run.
    Derate {
        /// One endpoint host id.
        a: u32,
        /// Other endpoint host id.
        b: u32,
        /// Bandwidth multiplier in `(0, 1]`.
        factor: f64,
    },
    /// Add up to `max` of pseudo-random extra propagation latency per
    /// transmission on the link (drawn from the plan's seeded RNG).
    Jitter {
        /// One endpoint host id.
        a: u32,
        /// Other endpoint host id.
        b: u32,
        /// Maximum extra latency per transmission.
        max: Nanos,
    },
    /// The link accepts no traffic during the window; transmissions issued
    /// inside it are deferred to the window's end.
    LinkDown {
        /// One endpoint host id.
        a: u32,
        /// Other endpoint host id.
        b: u32,
        /// Start of the outage (inclusive).
        from: Nanos,
        /// End of the outage (exclusive).
        until: Nanos,
    },
    /// Every link touching any host in `hosts` is down during the window
    /// (the host group is unreachable from the rest of the cluster).
    Partition {
        /// The partitioned host group.
        hosts: Vec<u32>,
        /// Start of the partition (inclusive).
        from: Nanos,
        /// End of the partition (exclusive).
        until: Nanos,
    },
}

impl FaultSpec {
    /// Whether this fault applies to the (unordered) host pair.
    pub fn touches(&self, x: u32, y: u32) -> bool {
        match self {
            FaultSpec::Derate { a, b, .. }
            | FaultSpec::Jitter { a, b, .. }
            | FaultSpec::LinkDown { a, b, .. } => (*a == x && *b == y) || (*a == y && *b == x),
            FaultSpec::Partition { hosts, .. } => {
                // A partition severs a link when it separates the pair:
                // exactly one endpoint inside the group.
                hosts.contains(&x) != hosts.contains(&y)
            }
        }
    }

    /// A short label for traces and logs, e.g. `fault.link_down 0-1`.
    pub fn label(&self) -> String {
        match self {
            FaultSpec::Derate { a, b, factor } => format!("fault.derate {a}-{b} x{factor:.2}"),
            FaultSpec::Jitter { a, b, max } => format!("fault.jitter {a}-{b} +{max}"),
            FaultSpec::LinkDown { a, b, .. } => format!("fault.link_down {a}-{b}"),
            FaultSpec::Partition { hosts, .. } => {
                let ids: Vec<String> = hosts.iter().map(|h| h.to_string()).collect();
                format!("fault.partition {{{}}}", ids.join(","))
            }
        }
    }

    /// The fault's active window, when it has one (derate and jitter are
    /// whole-run).
    pub fn window(&self) -> Option<(Nanos, Nanos)> {
        match self {
            FaultSpec::LinkDown { from, until, .. } | FaultSpec::Partition { from, until, .. } => {
                Some((*from, *until))
            }
            _ => None,
        }
    }
}

/// Outcome of shipping one bulk payload (e.g. a migrating KV prefix)
/// over a possibly-faulted link.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum TransferOutcome {
    /// The payload arrived; the receiving host owns it from `done_at`.
    Delivered {
        /// Virtual time the last byte lands.
        done_at: Nanos,
    },
    /// An outage window severed the link mid-transfer; the in-flight
    /// bytes are gone and the sender learns of the loss at `at`.
    Lost {
        /// Virtual time the link severed.
        at: Nanos,
    },
}

/// An ordered list of faults — the `schedule` half of a chaos config.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct FaultSchedule {
    /// The faults, in declaration order.
    pub specs: Vec<FaultSpec>,
}

impl FaultSchedule {
    /// Empty (fault-free) schedule.
    pub fn none() -> Self {
        FaultSchedule::default()
    }

    /// Generate a pseudo-random schedule over `hosts` host ids within a
    /// `horizon` of simulated time. Deterministic in `seed`: the same
    /// inputs always produce the same schedule. Roughly half the faults
    /// are degradations (derate/jitter), the rest outages (link-down or,
    /// occasionally, a one-host partition).
    pub fn generate(seed: u64, hosts: u32, horizon: Nanos, faults: usize) -> Self {
        let mut rng = XorShift64::new(seed);
        let mut specs = Vec::with_capacity(faults);
        for _ in 0..faults {
            let a = rng.next_below(hosts as u64) as u32;
            let mut b = rng.next_below(hosts as u64) as u32;
            if hosts > 1 && b == a {
                b = (a + 1) % hosts;
            }
            let from = Nanos(rng.next_below(horizon.0.max(1)));
            let len = Nanos(rng.next_below((horizon.0 / 4).max(1)) + 1);
            let until = Nanos((from + len).0.min(horizon.0));
            match rng.next_below(4) {
                0 => specs.push(FaultSpec::Derate {
                    a,
                    b,
                    // Derate to 10%..90% of line rate.
                    factor: 0.1 + 0.8 * rng.next_f64(),
                }),
                1 => specs.push(FaultSpec::Jitter {
                    a,
                    b,
                    max: Nanos(rng.next_below(horizon.0 / 100 + 1) + 1),
                }),
                2 => specs.push(FaultSpec::LinkDown { a, b, from, until }),
                _ => specs.push(FaultSpec::Partition {
                    hosts: vec![a],
                    from,
                    until,
                }),
            }
        }
        FaultSchedule { specs }
    }

    /// True when the schedule injects nothing.
    pub fn is_empty(&self) -> bool {
        self.specs.is_empty()
    }
}

/// A seeded fault schedule ready to apply to a fabric: the schedule plus
/// the RNG stream that drives per-transmission jitter draws.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    /// Seed the plan (and its jitter stream) was built from.
    pub seed: u64,
    /// The faults to inject.
    pub schedule: FaultSchedule,
}

impl FaultPlan {
    /// A plan with an explicit schedule.
    pub fn new(seed: u64, schedule: FaultSchedule) -> Self {
        FaultPlan { seed, schedule }
    }

    /// A fault-free plan (the oracle configuration).
    pub fn none() -> Self {
        FaultPlan {
            seed: 0,
            schedule: FaultSchedule::none(),
        }
    }

    /// Generate a pseudo-random plan — see [`FaultSchedule::generate`].
    pub fn generate(seed: u64, hosts: u32, horizon: Nanos, faults: usize) -> Self {
        FaultPlan {
            seed,
            schedule: FaultSchedule::generate(seed, hosts, horizon, faults),
        }
    }

    /// Faults affecting the (unordered) host pair.
    pub fn faults_for(&self, a: u32, b: u32) -> impl Iterator<Item = &FaultSpec> {
        self.schedule.specs.iter().filter(move |s| s.touches(a, b))
    }

    /// Simulate one bulk transfer of `bytes` from host `a` to host `b`
    /// starting at `start`, over a link of `bandwidth_bps` /
    /// `latency_s` (one-way). This is how the serving plane executes a
    /// KV-prefix migration as real simulated link traffic: whole-run
    /// derates stretch the serialization time, jitter faults draw
    /// seeded extra latency from `rng`, and any outage window
    /// (link-down or partition) overlapping the transfer interval
    /// severs it — the in-flight payload is lost at the window start
    /// (or at `start` when the window is already open).
    ///
    /// Deterministic: the outcome is a pure function of the plan, the
    /// RNG state, and the arguments.
    #[allow(clippy::too_many_arguments)]
    pub fn transfer_outcome(
        &self,
        rng: &mut XorShift64,
        a: u32,
        b: u32,
        bytes: u64,
        bandwidth_bps: f64,
        latency_s: f64,
        start: Nanos,
    ) -> TransferOutcome {
        let mut derate = 1.0f64;
        let mut jitter = 0.0f64;
        for fault in self.faults_for(a, b) {
            match fault {
                FaultSpec::Derate { factor, .. } => derate *= factor.max(1e-3),
                FaultSpec::Jitter { max, .. } => {
                    jitter += rng.next_f64() * max.as_secs_f64();
                }
                _ => {}
            }
        }
        let wire_s = latency_s + jitter + bytes as f64 * 8.0 / (bandwidth_bps * derate).max(1.0);
        let done_at = start + Nanos::from_secs_f64(wire_s);
        // The earliest outage window that overlaps [start, done_at)
        // severs the transfer.
        let mut severed: Option<Nanos> = None;
        for fault in self.faults_for(a, b) {
            if let Some((from, until)) = fault.window() {
                if from < done_at && until > start {
                    let at = from.max(start);
                    severed = Some(severed.map_or(at, |s: Nanos| s.min(at)));
                }
            }
        }
        match severed {
            Some(at) => TransferOutcome::Lost { at },
            None => TransferOutcome::Delivered { done_at },
        }
    }

    /// Whether the pair is inside any partition or link-down window at
    /// `now`.
    pub fn is_severed(&self, a: u32, b: u32, now: Nanos) -> bool {
        self.faults_for(a, b).any(|s| match s.window() {
            Some((from, until)) => now >= from && now < until,
            None => false,
        })
    }

    /// Project the plan onto scheduler-visible cluster state over `hosts`
    /// host ids: whole-run derates multiply into
    /// [`link_derate`](genie_cluster::ClusterState::link_derate), and any
    /// pair with an outage or partition window anywhere in the run is
    /// marked [`partitioned`](genie_cluster::ClusterState::is_partitioned)
    /// — a conservative planning view (the scheduler avoids paths that
    /// will sever at any point, rather than re-planning mid-window).
    pub fn project_onto_state(&self, state: &mut genie_cluster::ClusterState, hosts: u32) {
        for a in 0..hosts {
            for b in (a + 1)..hosts {
                for spec in self.faults_for(a, b) {
                    match spec {
                        FaultSpec::Derate { factor, .. } => {
                            let current = state.link_derate(a, b);
                            state.set_link_derate(a, b, current * factor);
                        }
                        FaultSpec::Jitter { .. } => {}
                        FaultSpec::LinkDown { .. } | FaultSpec::Partition { .. } => {
                            state.set_partitioned(a, b, true);
                        }
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xorshift_is_deterministic_and_bounded() {
        let mut a = XorShift64::new(42);
        let mut b = XorShift64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut r = XorShift64::new(7);
        for _ in 0..1000 {
            assert!(r.next_below(10) < 10);
            let f = r.next_f64();
            assert!((0.0..1.0).contains(&f));
        }
        assert_eq!(XorShift64::new(0), XorShift64::new(0));
        assert_ne!(XorShift64::new(0).next_u64(), 0);
    }

    #[test]
    fn generated_schedules_are_seed_deterministic() {
        let h = Nanos::from_secs_f64(10.0);
        let s1 = FaultSchedule::generate(99, 4, h, 8);
        let s2 = FaultSchedule::generate(99, 4, h, 8);
        assert_eq!(s1, s2);
        assert_eq!(s1.specs.len(), 8);
        let other = FaultSchedule::generate(100, 4, h, 8);
        assert_ne!(s1, other, "different seeds diverge");
    }

    #[test]
    fn partition_touches_only_severed_pairs() {
        let p = FaultSpec::Partition {
            hosts: vec![1, 2],
            from: Nanos::ZERO,
            until: Nanos(100),
        };
        assert!(p.touches(0, 1), "0 outside, 1 inside");
        assert!(p.touches(2, 3));
        assert!(!p.touches(1, 2), "both inside: intra-group link survives");
        assert!(!p.touches(0, 3), "both outside: unaffected");
    }

    #[test]
    fn severed_windows_respect_bounds() {
        let plan = FaultPlan::new(
            1,
            FaultSchedule {
                specs: vec![FaultSpec::LinkDown {
                    a: 0,
                    b: 1,
                    from: Nanos(10),
                    until: Nanos(20),
                }],
            },
        );
        assert!(!plan.is_severed(0, 1, Nanos(9)));
        assert!(plan.is_severed(0, 1, Nanos(10)));
        assert!(plan.is_severed(1, 0, Nanos(19)), "unordered pair");
        assert!(!plan.is_severed(0, 1, Nanos(20)), "window end exclusive");
        assert!(!plan.is_severed(0, 2, Nanos(15)), "other link untouched");
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(
            FaultSpec::LinkDown {
                a: 0,
                b: 1,
                from: Nanos::ZERO,
                until: Nanos(1)
            }
            .label(),
            "fault.link_down 0-1"
        );
        assert!(FaultSpec::Partition {
            hosts: vec![2],
            from: Nanos::ZERO,
            until: Nanos(1)
        }
        .label()
        .contains("{2}"));
    }

    #[test]
    fn projection_marks_scheduler_state() {
        let plan = FaultPlan::new(
            1,
            FaultSchedule {
                specs: vec![
                    FaultSpec::Derate {
                        a: 0,
                        b: 1,
                        factor: 0.5,
                    },
                    FaultSpec::Derate {
                        a: 0,
                        b: 1,
                        factor: 0.5,
                    },
                    FaultSpec::Partition {
                        hosts: vec![2],
                        from: Nanos(10),
                        until: Nanos(20),
                    },
                ],
            },
        );
        let mut state = genie_cluster::ClusterState::new();
        plan.project_onto_state(&mut state, 3);
        assert_eq!(state.link_derate(0, 1), 0.25, "derates multiply");
        assert!(state.is_partitioned(0, 2));
        assert!(state.is_partitioned(1, 2));
        assert!(!state.is_partitioned(0, 1));
    }

    #[test]
    fn plan_roundtrips_serde() {
        let plan = FaultPlan::generate(5, 3, Nanos::from_secs_f64(1.0), 6);
        let json = serde_json::to_string(&plan).unwrap();
        let back: FaultPlan = serde_json::from_str(&json).unwrap();
        assert_eq!(back, plan);
    }
}
