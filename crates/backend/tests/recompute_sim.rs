//! Integration: dynamic recomputation end to end — the scheduler marks a
//! congested transfer for recomputation, and the simulation backend
//! executes the replica instead of the wire, beating the transfer plan.

use genie_cluster::{ClusterState, DevId, ResidentObject, Topology};
use genie_frontend::capture::CaptureCtx;
use genie_netsim::RpcParams;
use genie_scheduler::recompute::{apply_recomputation, recomputation_candidates};
use genie_scheduler::{schedule, CostModel, Location, Policy, SemanticsAware};
use genie_srg::{ElemType, NodeId, Srg, TensorId};
use std::collections::BTreeMap;

/// A cheap, wide intermediate: act = relu(w) on d0 feeding a consumer
/// forced onto d1. `w` is a pinnable weight whose tensor id we return so
/// the test can make it resident on the consumer's device (making `act`
/// recomputable there).
fn split_graph() -> (Srg, NodeId, NodeId, TensorId) {
    let ctx = CaptureCtx::new("split");
    let w = ctx.parameter("w", [1024, 1024], ElemType::F32, None); // 4 MB
    let act = w.relu(); // cheap producer, 4 MB output
    let proj = ctx.parameter("proj", [1024, 4], ElemType::F32, None);
    let y = act.matmul(&proj);
    y.mark_output();
    let srg = ctx.finish().srg;
    (srg, act.node, y.node, w.tensor)
}

/// A policy wrapper that forces the producer and consumer apart.
struct ForcedSplit {
    producer: NodeId,
    consumer: NodeId,
}

impl Policy for ForcedSplit {
    fn name(&self) -> &'static str {
        "forced_split"
    }
    fn place(
        &self,
        srg: &Srg,
        view: &genie_scheduler::ClusterView<'_>,
    ) -> BTreeMap<NodeId, Location> {
        let devs = view.devices();
        let mut placements = SemanticsAware::new().place(srg, view);
        placements.insert(self.producer, Location::Device(devs[0]));
        placements.insert(self.consumer, Location::Device(devs[1]));
        placements
    }
}

#[test]
fn recomputation_beats_congested_transfer_in_simulation() {
    let (srg, producer, consumer, w_tensor) = split_graph();
    let topo = Topology::rack(2, 25e9);
    let mut state = ClusterState::new();
    // The weight is already resident on the consumer's device (a prior
    // session pinned it there) — which is what makes the cheap `relu`
    // recomputable at the consumer.
    state
        .register_resident(
            &topo,
            ResidentObject {
                key: w_tensor.0,
                device: DevId(1),
                bytes: 4 << 20,
                epoch: 1,
            },
        )
        .unwrap();
    // Congest every path severely.
    for a in 0..3u32 {
        for b in a + 1..3 {
            state.set_congestion(a, b, 0.98);
        }
    }
    let cost = CostModel::ideal_25g();
    let policy = ForcedSplit { producer, consumer };
    let plan = schedule(&srg, &topo, &state, &cost, &policy);

    // The producer→consumer edge crosses devices and must be a transfer.
    assert!(plan
        .transfers
        .iter()
        .any(|t| plan.srg.edge(t.edge).src == producer && !t.via_handle));

    // Congestion + local inputs make recomputation attractive.
    let candidates = recomputation_candidates(&plan, &topo, &state, &cost);
    assert!(
        candidates
            .iter()
            .any(|c| plan.srg.edge(c.edge).src == producer),
        "the 4 MB relu output must be a recompute candidate under 98% congestion"
    );

    // Simulate both plans on the congested fabric and compare.
    let run = |p: &genie_scheduler::ExecutionPlan| {
        let mut st = state.clone();
        let mut fabric = genie_netsim::Fabric::new(&topo, &st, RpcParams::rdma_zero_copy());
        genie_backend::SimBackend::new(&topo, &cost).execute(
            p,
            &mut st,
            &mut fabric,
            genie_netsim::Nanos::ZERO,
        )
    };
    let baseline = run(&plan);

    let mut optimized = plan.clone();
    let saved = apply_recomputation(&mut optimized, &candidates);
    assert!(saved > 0.0);
    let report = run(&optimized);

    assert!(
        report.makespan_s < baseline.makespan_s,
        "recompute {} vs transfer {}",
        report.makespan_s,
        baseline.makespan_s
    );
    assert!(report.network_bytes < baseline.network_bytes);
    // The replica kernel actually ran.
    assert!(report
        .trace
        .events()
        .iter()
        .any(|e| matches!(e, genie_netsim::TraceEvent::Kernel { label, .. } if label.starts_with("recompute:"))));
}
