//! Multi-device simulation: the vision pipeline placed across a rack
//! exercises the sim backend's device timelines and inter-host links.

use genie_backend::simulate_once;
use genie_cluster::{ClusterState, Topology};
use genie_frontend::capture::CaptureCtx;
use genie_models::{CnnConfig, SimpleCnn};
use genie_netsim::{RpcParams, TraceEvent};
use genie_scheduler::{schedule, CostModel, SemanticsAware};

fn vision_plan(topo: &Topology) -> genie_scheduler::ExecutionPlan {
    let m = SimpleCnn::new_spec(CnnConfig::resnet_like());
    let ctx = CaptureCtx::new("resnet");
    m.capture_inference(&ctx, 1, None).mark_output();
    let mut srg = ctx.finish().srg;
    genie_frontend::patterns::run_all(&mut srg);
    let state = ClusterState::new();
    schedule(
        &srg,
        topo,
        &state,
        &CostModel::paper_stack(),
        &SemanticsAware::new(),
    )
}

#[test]
fn pipeline_plan_simulates_across_devices() {
    let topo = Topology::rack(4, 25e9);
    let plan = vision_plan(&topo);
    assert!(plan.devices_used() >= 3, "stages spread over the rack");

    let cost = CostModel::paper_stack();
    let report = simulate_once(&plan, &topo, &cost, RpcParams::rdma_zero_copy());

    // Kernels ran on multiple devices.
    assert!(report.busy_s.len() >= 3, "{:?}", report.busy_s.keys());
    // Inter-server transfers happened (stage boundaries).
    let server_to_server = report
        .trace
        .events()
        .iter()
        .filter(|e| matches!(e, TraceEvent::Transfer { from, to, .. } if *from != 0 && *to != 0))
        .count();
    assert!(server_to_server > 0, "boundary tensors must cross servers");
    // Makespan covers at least the critical stage chain.
    assert!(report.makespan_s > 0.0);
    assert!(report.utilization > 0.0 && report.utilization <= 1.0);
}

#[test]
fn single_device_beats_ethernet_pipeline_in_makespan() {
    // The §3.3 pipelining analysis said 25 GbE pipelining loses for
    // single-image latency; the event-driven simulation must agree with
    // the analytical model's verdict.
    let rack = Topology::rack(4, 25e9);
    let single = Topology::paper_testbed();
    let cost = CostModel::paper_stack();

    let piped = simulate_once(
        &vision_plan(&rack),
        &rack,
        &cost,
        RpcParams::rdma_zero_copy(),
    );
    let local = simulate_once(
        &vision_plan(&single),
        &single,
        &cost,
        RpcParams::rdma_zero_copy(),
    );
    assert!(
        local.makespan_s < piped.makespan_s,
        "single device {} vs 25GbE pipeline {}",
        local.makespan_s,
        piped.makespan_s
    );
}

#[test]
fn simulation_is_deterministic() {
    let topo = Topology::rack(4, 25e9);
    let plan = vision_plan(&topo);
    let cost = CostModel::paper_stack();
    let a = simulate_once(&plan, &topo, &cost, RpcParams::rdma_zero_copy());
    let b = simulate_once(&plan, &topo, &cost, RpcParams::rdma_zero_copy());
    assert_eq!(a.makespan_s, b.makespan_s);
    assert_eq!(a.network_bytes, b.network_bytes);
    assert_eq!(a.trace.events().len(), b.trace.events().len());
}
