//! Local CPU backend: the "Local (Upper Bound)" execution mode of §4.
//!
//! Executes captured graphs with real arithmetic on the client, no
//! network involved. It is both the baseline of the evaluation and the
//! numerical oracle for every remote mode.

use genie_frontend::capture::CapturedGraph;
use genie_frontend::interp::{self, InterpError};
use genie_frontend::value::Value;
use genie_srg::NodeId;
use std::collections::HashMap;

/// The local backend. Stateless; exists as a type so call sites read the
/// same as the remote backend.
#[derive(Clone, Copy, Debug, Default)]
pub struct LocalBackend;

impl LocalBackend {
    /// Execute a captured graph, returning every node's value.
    pub fn execute(&self, cap: &CapturedGraph) -> Result<HashMap<NodeId, Value>, InterpError> {
        let _span = genie_telemetry::global().collector.span_with(
            "local.execute",
            "backend",
            genie_telemetry::SemAttrs::new().with("graph", cap.srg.name.clone()),
        );
        interp::execute(&cap.srg, &cap.values)
    }

    /// Execute and return the marked outputs in marking order.
    pub fn execute_outputs(&self, cap: &CapturedGraph) -> Result<Vec<Value>, InterpError> {
        let _span = genie_telemetry::global().collector.span_with(
            "local.execute",
            "backend",
            genie_telemetry::SemAttrs::new().with("graph", cap.srg.name.clone()),
        );
        interp::execute_outputs(&cap.srg, &cap.values, &cap.outputs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use genie_frontend::capture::CaptureCtx;
    use genie_srg::ElemType;
    use genie_tensor::init::randn;

    #[test]
    fn local_backend_runs_captures() {
        let ctx = CaptureCtx::new("g");
        let x = ctx.input("x", [2, 4], ElemType::F32, Some(randn([2, 4], 1)));
        let w = ctx.parameter("w", [4, 4], ElemType::F32, Some(randn([4, 4], 2)));
        let y = x.matmul(&w).gelu();
        y.mark_output();
        let cap = ctx.finish();
        let outs = LocalBackend.execute_outputs(&cap).unwrap();
        assert_eq!(outs.len(), 1);
        assert_eq!(outs[0].as_f("y").dims(), &[2, 4]);
    }

    #[test]
    fn missing_payload_errors_cleanly() {
        let ctx = CaptureCtx::new("g");
        let x = ctx.input("x", [2, 2], ElemType::F32, None);
        x.relu().mark_output();
        let cap = ctx.finish();
        assert!(LocalBackend.execute(&cap).is_err());
    }
}
