//! # genie-backend — executing the plan
//!
//! Backends realize a scheduler's plan on concrete substrates (§3.4).
//! Three are provided, one per plane of the reproduction:
//!
//! - [`local::LocalBackend`] — real arithmetic on the client CPU: the
//!   "Local (Upper Bound)" mode of §4 and the numerical oracle;
//! - [`remote::RemoteSession`] / [`remote::spawn_server`] — real remote
//!   execution over `genie-transport` TCP: pinned uploads, handle+epoch
//!   references ([`handle::RemoteHandle`]), per-step graph shipping, and
//!   crash injection for lineage tests;
//! - [`sim::SimBackend`] — discrete-event simulation at paper scale:
//!   kernels take roofline time on their placed device, transfers occupy
//!   FIFO links, pinned uploads register resident objects so follow-up
//!   plans run handle-only.
//!
//! The three backends consume the *same* SRG and plans — the portability
//! claim at the heart of the paper's architecture.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod decode;
pub mod handle;
pub mod local;
pub mod remote;
pub mod sim;

pub use decode::{batched_step_time, sharded_step_time, ShardPlan, StepCost, StepWork};
pub use handle::{HandleTable, RemoteHandle};
pub use local::LocalBackend;
pub use remote::{
    classify_error, spawn_chaotic_server, spawn_server, ErrorClass, GenieExecutor, RemoteSession,
};
pub use sim::{simulate_once, simulate_once_faulty, SimBackend, SimReport};
