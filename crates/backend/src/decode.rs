//! Simulated execution of batched decode steps (continuous batching).
//!
//! The serving runtime (`genie-serving`) advances a virtual clock one
//! *engine step* at a time: every resident request either prefills its
//! prompt or decodes one token. This module prices one such step with the
//! same roofline the §3.3 cost model uses for kernels — the point being
//! the paper's "How" argument (§3.6): tenants that share a model
//! fingerprint amortize the weight read, so a batched decode step costs
//! barely more than a single-request step.

use genie_cluster::GpuSpec;
use genie_models::TransformerConfig;

/// The work one engine step performs on one device lane.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StepWork {
    /// Requests prefilling this step.
    pub prefill_members: u64,
    /// Total prompt tokens processed by the prefilling members.
    pub prefill_tokens: u64,
    /// Requests decoding exactly one token this step.
    pub decode_members: u64,
    /// KV-cache tokens resident across all stepped members (attention
    /// reads them all).
    pub kv_resident_tokens: u64,
}

impl StepWork {
    /// True when the step has no members.
    pub fn is_empty(&self) -> bool {
        self.prefill_members == 0 && self.decode_members == 0
    }

    /// Number of requests touched this step.
    pub fn members(&self) -> u64 {
        self.prefill_members + self.decode_members
    }

    /// New tokens produced this step (one per member: prefill samples its
    /// first token, decode its next).
    pub fn tokens_produced(&self) -> u64 {
        self.members()
    }
}

/// Priced breakdown of one engine step.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct StepCost {
    /// Device-side roofline seconds.
    pub compute_s: f64,
    /// Network seconds (RPC rounds plus token/ID payloads).
    pub network_s: f64,
    /// Fixed round-trip component of `network_s` (RPC rounds × 2 ×
    /// one-way latency) — unaffected by link bandwidth.
    pub net_latency_s: f64,
    /// Serialization component of `network_s` (payload bytes over the
    /// link) — scales inversely with bandwidth, which is what causal
    /// what-if replays need to estimate a faster link.
    pub net_payload_s: f64,
}

impl StepCost {
    /// Total step seconds (the simulated device and the wire serialize:
    /// tokens must arrive before the step and return after it).
    pub fn total_s(&self) -> f64 {
        self.compute_s + self.network_s
    }
}

/// Price one engine step of `work` for `cfg` on `gpu` behind a link of
/// `link_bandwidth_bps` / `link_latency_s`.
///
/// `batched` is the continuous-batching switch: when true the whole step
/// is one fused kernel sweep (weights stream through the device once,
/// one RPC round covers every member); when false each member pays its
/// own weight read and its own RPC round — the Orca-style baseline the
/// §3.6 batching argument is measured against.
pub fn batched_step_time(
    cfg: &TransformerConfig,
    work: &StepWork,
    gpu: &GpuSpec,
    link_bandwidth_bps: f64,
    link_latency_s: f64,
    batched: bool,
) -> StepCost {
    if work.is_empty() {
        return StepCost::default();
    }
    let new_tokens = work.prefill_tokens + work.decode_members;
    let flops = new_tokens as f64 * cfg.flops_per_token();

    // Decode is memory-bound: the dominant cost is streaming the weights
    // through the device. Batching reads them once per step; the
    // unbatched baseline once per member.
    let weight_reads = if batched { 1 } else { work.members() };
    let kv_traffic =
        (work.kv_resident_tokens + new_tokens) as f64 * cfg.kv_bytes_per_token() as f64;
    let bytes = weight_reads as f64 * cfg.weight_bytes() as f64 + kv_traffic;
    let compute_s = gpu.kernel_time(flops, bytes);

    // Semantics-aware transport ships token IDs in and sampled IDs out —
    // 8 bytes each way per member, plus prompt IDs for prefills. The
    // batched step folds every member into one RPC round trip.
    let rpc_rounds = if batched { 1 } else { work.members() };
    let payload_bytes = (work.prefill_tokens + work.decode_members + work.members()) as f64 * 8.0;
    let net_latency_s = rpc_rounds as f64 * 2.0 * link_latency_s;
    let net_payload_s = payload_bytes / link_bandwidth_bps;

    StepCost {
        compute_s,
        network_s: net_latency_s + net_payload_s,
        net_latency_s,
        net_payload_s,
    }
}

/// How one serving lane's model is sharded across fabric-attached
/// devices, for step pricing. Mirrors `genie_srg::shard::ShardSpec`
/// (pipeline stages × tensor-parallel ranks) plus the inter-device
/// fabric the collectives ride — which may be a different link than the
/// client↔server path `batched_step_time` prices.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ShardPlan {
    /// Pipeline stages (contiguous layer blocks), ≥ 1.
    pub pipeline_stages: u32,
    /// Tensor-parallel ranks per stage, ≥ 1.
    pub tensor_parallel: u32,
    /// Device↔device fabric bandwidth in bits/s.
    pub fabric_bandwidth_bps: f64,
    /// Device↔device one-way fabric latency in seconds.
    pub fabric_latency_s: f64,
}

impl ShardPlan {
    /// Total devices the plan occupies.
    pub fn shards(&self) -> u32 {
        self.pipeline_stages * self.tensor_parallel
    }
}

/// Price one engine step of `work` when the lane's model is sharded per
/// `plan`. Returns the per-device [`StepCost`] (compute is the pipeline
/// barrier; network is the unchanged client link) plus the collective
/// seconds the fabric adds — all_gather/all_reduce rounds for tensor
/// parallelism, activation hops for pipeline stages.
///
/// The compute model matches the functional sharded capture
/// (`genie-models`): weights split `shards` ways (each device streams
/// `1/shards` of them), KV splits across pipeline stages (each stage
/// holds its own layers' caches) but not across tensor ranks, and a
/// pipeline only overlaps across in-flight members — one resident
/// request fills a single stage at a time and gets no speedup.
#[allow(clippy::too_many_arguments)]
pub fn sharded_step_time(
    cfg: &TransformerConfig,
    work: &StepWork,
    gpu: &GpuSpec,
    link_bandwidth_bps: f64,
    link_latency_s: f64,
    batched: bool,
    plan: &ShardPlan,
) -> (StepCost, f64) {
    let base = batched_step_time(cfg, work, gpu, link_bandwidth_bps, link_latency_s, batched);
    let shards = plan.shards() as f64;
    if work.is_empty() || plan.shards() <= 1 {
        return (base, 0.0);
    }
    let pp = plan.pipeline_stages as f64;
    let tp = plan.tensor_parallel as f64;
    let new_tokens = work.prefill_tokens + work.decode_members;
    let flops = new_tokens as f64 * cfg.flops_per_token();
    let weight_reads = if batched { 1 } else { work.members() } as f64;
    let kv_traffic =
        (work.kv_resident_tokens + new_tokens) as f64 * cfg.kv_bytes_per_token() as f64;

    // One stage's kernel sweep: 1/shards of the weight stream and flops,
    // 1/pp of the KV reads (caches live with their layers).
    let stage_bytes = weight_reads * cfg.weight_bytes() as f64 / shards + kv_traffic / pp;
    let stage_compute = gpu.kernel_time(flops / shards, stage_bytes);
    // Pipeline fill/drain bubbles: `b` in-flight members keep at most
    // `b` stages busy, so the per-step barrier is the classic
    // (pp - 1 + b) / b microbatch factor (b = 1 → ×pp, no speedup).
    let b = work.members().max(1) as f64;
    let compute_s = stage_compute * (pp - 1.0 + b) / b;

    // Collectives per step: tensor parallelism runs one all_gather
    // (attention output) and one all_reduce-shaped chain (MLP row
    // partials) per layer, each moving (tp-1)/tp of the activation;
    // pipeline parallelism ships the activation across pp-1 stage hops.
    let act_bytes = new_tokens as f64 * cfg.d_model as f64 * cfg.elem.size_bytes() as f64;
    let mut collective_bytes = 0.0f64;
    let mut collective_rounds = 0u64;
    if plan.tensor_parallel > 1 {
        let rounds = 2 * cfg.layers as u64;
        collective_bytes += rounds as f64 * act_bytes * (tp - 1.0) / tp;
        collective_rounds += rounds;
    }
    if plan.pipeline_stages > 1 {
        let hops = plan.pipeline_stages as u64 - 1;
        collective_bytes += hops as f64 * act_bytes;
        collective_rounds += hops;
    }
    let collective_s = collective_bytes / plan.fabric_bandwidth_bps
        + collective_rounds as f64 * plan.fabric_latency_s;

    (
        StepCost {
            compute_s,
            network_s: base.network_s,
            net_latency_s: base.net_latency_s,
            net_payload_s: base.net_payload_s,
        },
        collective_s,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gptj_step(decode_members: u64, batched: bool) -> StepCost {
        let cfg = TransformerConfig::gptj_6b();
        let work = StepWork {
            prefill_members: 0,
            prefill_tokens: 0,
            decode_members,
            kv_resident_tokens: decode_members * 64,
        };
        batched_step_time(&cfg, &work, &GpuSpec::a100_80gb(), 25e9, 250e-6, batched)
    }

    #[test]
    fn batched_decode_amortizes_the_weight_read() {
        let one = gptj_step(1, true);
        let eight = gptj_step(8, true);
        // Eight tenants decode in barely more time than one: the weight
        // stream dominates and is shared.
        assert!(
            eight.total_s() < one.total_s() * 1.5,
            "{eight:?} vs {one:?}"
        );
        // The unbatched baseline pays the stream per member.
        let eight_unbatched = gptj_step(8, false);
        assert!(
            eight_unbatched.compute_s > eight.compute_s * 6.0,
            "{} vs {}",
            eight_unbatched.compute_s,
            eight.compute_s
        );
        assert!(eight_unbatched.network_s > eight.network_s * 6.0);
    }

    #[test]
    fn network_split_sums_to_network_total() {
        let c = gptj_step(8, true);
        assert!(
            (c.net_latency_s + c.net_payload_s - c.network_s).abs() < 1e-12,
            "{c:?}"
        );
        assert!(c.net_latency_s > 0.0 && c.net_payload_s > 0.0);
    }

    #[test]
    fn decode_step_is_memory_bound_on_a100() {
        // One GPT-J decode step ≈ weights / HBM bandwidth ≈ 6 ms.
        let one = gptj_step(1, true);
        assert!(
            (4e-3..10e-3).contains(&one.compute_s),
            "step {}",
            one.compute_s
        );
    }

    fn sharded_gptj(pp: u32, tp: u32, fabric_bw: f64) -> (StepCost, f64) {
        let cfg = TransformerConfig::gptj_6b();
        let work = StepWork {
            prefill_members: 0,
            prefill_tokens: 0,
            decode_members: 8,
            kv_resident_tokens: 8 * 64,
        };
        sharded_step_time(
            &cfg,
            &work,
            &GpuSpec::a100_80gb(),
            25e9,
            250e-6,
            true,
            &ShardPlan {
                pipeline_stages: pp,
                tensor_parallel: tp,
                fabric_bandwidth_bps: fabric_bw,
                fabric_latency_s: 5e-6,
            },
        )
    }

    #[test]
    fn single_shard_matches_batched_pricing() {
        let (cost, coll) = sharded_gptj(1, 1, 100e9);
        let base = gptj_step(8, true);
        assert_eq!(cost, base);
        assert_eq!(coll, 0.0);
    }

    #[test]
    fn tensor_parallel_splits_the_weight_stream() {
        let base = gptj_step(8, true);
        let (tp2, coll) = sharded_gptj(1, 2, 100e9);
        // Decode is weight-stream bound; two ranks stream half each.
        assert!(tp2.compute_s < base.compute_s * 0.6, "{tp2:?} vs {base:?}");
        assert!(coll > 0.0);
        // Two devices beat one on wall clock at a 100 Gbps fabric.
        assert!(tp2.compute_s + coll < base.compute_s);
    }

    #[test]
    fn collective_time_shrinks_with_fabric_bandwidth() {
        let (_, slow) = sharded_gptj(1, 2, 10e9);
        let (_, fast) = sharded_gptj(1, 2, 100e9);
        assert!(slow > fast, "{slow} vs {fast}");
    }

    #[test]
    fn pipeline_needs_in_flight_members_to_overlap() {
        let cfg = TransformerConfig::gptj_6b();
        let one = StepWork {
            prefill_members: 0,
            prefill_tokens: 0,
            decode_members: 1,
            kv_resident_tokens: 64,
        };
        let plan = ShardPlan {
            pipeline_stages: 2,
            tensor_parallel: 1,
            fabric_bandwidth_bps: 100e9,
            fabric_latency_s: 5e-6,
        };
        let gpu = GpuSpec::a100_80gb();
        let (solo, _) = sharded_step_time(&cfg, &one, &gpu, 25e9, 250e-6, true, &plan);
        let base = batched_step_time(&cfg, &one, &gpu, 25e9, 250e-6, true);
        // One member fills one stage at a time: no compute speedup.
        assert!(
            (solo.compute_s - base.compute_s).abs() < base.compute_s * 0.05,
            "{} vs {}",
            solo.compute_s,
            base.compute_s
        );
        // Eight members keep both stages busy.
        let eight = StepWork {
            decode_members: 8,
            kv_resident_tokens: 8 * 64,
            ..one
        };
        let (busy, _) = sharded_step_time(&cfg, &eight, &gpu, 25e9, 250e-6, true, &plan);
        let base8 = batched_step_time(&cfg, &eight, &gpu, 25e9, 250e-6, true);
        assert!(busy.compute_s < base8.compute_s * 0.7);
    }

    #[test]
    fn empty_step_is_free_and_prefill_counts_tokens() {
        assert_eq!(
            batched_step_time(
                &TransformerConfig::tiny(),
                &StepWork::default(),
                &GpuSpec::a100_80gb(),
                25e9,
                250e-6,
                true,
            )
            .total_s(),
            0.0
        );
        let cfg = TransformerConfig::tiny();
        let prefill = StepWork {
            prefill_members: 1,
            prefill_tokens: 64,
            decode_members: 0,
            kv_resident_tokens: 0,
        };
        let decode = StepWork {
            prefill_members: 0,
            prefill_tokens: 0,
            decode_members: 1,
            kv_resident_tokens: 64,
        };
        let gpu = GpuSpec::a100_80gb();
        let p = batched_step_time(&cfg, &prefill, &gpu, 25e9, 250e-6, true);
        let d = batched_step_time(&cfg, &decode, &gpu, 25e9, 250e-6, true);
        assert!(p.compute_s > d.compute_s, "prefill does 64x the flops");
    }
}
