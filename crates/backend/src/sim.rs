//! The simulation backend: executes an [`ExecutionPlan`] against the
//! discrete-event network model, producing a timing/traffic trace.
//!
//! This is the performance plane. Kernels take their cost-model roofline
//! time on the placed device; every scheduled transfer occupies the FIFO
//! link between the endpoints' hosts; pinned uploads happen once up
//! front and register resident objects in the cluster state, so the next
//! plan over the same session sees them as handles.

use genie_cluster::{ClusterState, DevId, ResidentObject, Topology};
use genie_netsim::{Fabric, FaultPlan, Nanos, RpcParams, Trace, TraceEvent};
use genie_scheduler::{CostModel, ExecutionPlan, Location};
use genie_srg::NodeId;
use std::collections::BTreeMap;

/// Summary of one simulated plan execution.
#[derive(Clone, Debug)]
pub struct SimReport {
    /// Wall-clock makespan in seconds.
    pub makespan_s: f64,
    /// Total network payload bytes moved.
    pub network_bytes: u64,
    /// Kernel-busy seconds per device.
    pub busy_s: BTreeMap<DevId, f64>,
    /// The paper's "effective GPU utilization": total kernel time over
    /// wall clock, for the busiest device.
    pub utilization: f64,
    /// Full event trace.
    pub trace: Trace,
}

/// The simulation backend.
pub struct SimBackend<'a> {
    /// Cluster topology.
    pub topo: &'a Topology,
    /// Cost model used for kernel times.
    pub cost: &'a CostModel,
}

impl<'a> SimBackend<'a> {
    /// Construct a backend.
    pub fn new(topo: &'a Topology, cost: &'a CostModel) -> Self {
        SimBackend { topo, cost }
    }

    /// Simulate `plan`, starting at `start`. Mutates `state` (resident
    /// registrations) and `fabric` (link occupancy, traffic counters) so
    /// multi-step sessions compose.
    pub fn execute(
        &self,
        plan: &ExecutionPlan,
        state: &mut ClusterState,
        fabric: &mut Fabric,
        start: Nanos,
    ) -> SimReport {
        let mut trace = Trace::new();
        let client = self.topo.client_host();
        let mut network_bytes: u64 = 0;
        let plan_label = plan.label();
        let faults_before = fabric.faults_injected();

        let telemetry = genie_telemetry::global();
        // When a causal trace context is installed (serving admission, or
        // a transport handler that adopted the wire context), attribute
        // the whole execution and every trace event to that request.
        let trace_req = genie_telemetry::causal::current().map(|c| c.request);
        let tag = |ev: TraceEvent| match trace_req {
            Some(r) => ev.with_request(r),
            None => ev,
        };
        let mut attrs = genie_telemetry::SemAttrs::new().plan(plan_label.clone());
        if let Some(r) = trace_req {
            attrs = attrs.request(r);
        }
        let mut span = telemetry
            .collector
            .span_with("sim.execute", "backend", attrs);
        let kernel_hist = telemetry.metrics.histogram(
            "genie_sim_kernel_seconds",
            &[],
            &genie_telemetry::DEFAULT_TIME_BOUNDS,
        );
        let queue_hist = telemetry.metrics.histogram(
            "genie_sim_queue_delay_seconds",
            &[],
            &genie_telemetry::DEFAULT_TIME_BOUNDS,
        );
        let mut kernels_n: u64 = 0;
        let mut transfers_n: u64 = 0;
        // Scheduled (non-recompute) kernel seconds per device: the cost
        // model's view of what each device should spend, against which the
        // simulated busy time (which includes recompute replicas and
        // serialization) is compared as a skew ratio.
        let mut kernel_estimate: BTreeMap<DevId, f64> = BTreeMap::new();

        // Session establishment on every channel this plan touches.
        let mut session_ready = start;
        let mut touched_hosts: Vec<genie_cluster::HostId> = Vec::new();
        for loc in plan.placements.values() {
            if let Some(dev) = loc.device() {
                let host = self.topo.device(dev).host;
                if !touched_hosts.contains(&host) {
                    touched_hosts.push(host);
                }
            }
        }
        for &host in &touched_hosts {
            let t = fabric.channel(client, host).ensure_session(start);
            session_ready = session_ready.max(t);
        }

        // One-time pinned uploads (weights, cache seeds).
        let mut pin_ready: BTreeMap<DevId, Nanos> = BTreeMap::new();
        for (tensor, dev, bytes) in &plan.pinned_uploads {
            let host = self.topo.device(*dev).host;
            let timing = {
                let ch = fabric.channel(client, host);
                let issue = session_ready + ch.params.per_call_overhead;
                ch.send_oneway_timed(issue, *bytes)
            };
            let delivered = timing.delivered;
            network_bytes += *bytes;
            transfers_n += 1;
            queue_hist.observe(timing.queue_delay.as_secs_f64());
            trace.push(tag(TraceEvent::transfer(
                client.0,
                host.0,
                *bytes,
                session_ready,
                delivered,
            )
            .with_plan(plan_label.clone())
            .with_queue_delay(timing.queue_delay)));
            let _ = state.register_resident(
                self.topo,
                ResidentObject {
                    key: tensor.0,
                    device: *dev,
                    bytes: *bytes,
                    epoch: 1,
                },
            );
            let e = pin_ready.entry(*dev).or_insert(delivered);
            *e = (*e).max(delivered);
        }

        // Per-node earliest finish times.
        let mut finish: BTreeMap<NodeId, Nanos> = BTreeMap::new();
        let mut device_free: BTreeMap<DevId, Nanos> = BTreeMap::new();
        // Transfer delivery per edge id.
        let mut delivered_at: BTreeMap<genie_srg::EdgeId, Nanos> = BTreeMap::new();
        // Finish time of recomputed replicas, per (producer, device).
        let mut recompute_finish: BTreeMap<(NodeId, DevId), Nanos> = BTreeMap::new();

        let order = genie_srg::traverse::topo_order(&plan.srg).expect("valid plan graph");
        for &id in &order {
            let node = plan.srg.node(id);
            let loc = plan.location(id);

            // Data readiness: producer finish plus any scheduled transfer
            // — or the local recomputed replica, when the scheduler chose
            // recomputation over a congested transfer (§3.3).
            let mut ready = session_ready;
            for edge in plan.srg.in_edges(id) {
                let p = finish.get(&edge.src).copied().unwrap_or(session_ready);
                let arrival = match loc
                    .device()
                    .and_then(|d| recompute_finish.get(&(edge.src, d)))
                {
                    Some(&replica) => replica,
                    None => delivered_at.get(&edge.id).copied().unwrap_or(p),
                };
                ready = ready.max(arrival).max(p);
            }
            if let Some(dev) = loc.device() {
                if let Some(&t) = pin_ready.get(&dev) {
                    ready = ready.max(t);
                }
            }

            // Execute the node.
            let end = match loc {
                Location::ClientCpu => ready, // client glue is free at sim scale
                Location::Device(dev) => {
                    if node.op.is_source() || node.op.is_metadata_only() {
                        ready
                    } else {
                        let gpu = &self.topo.device(dev).spec;
                        let dur = Nanos::from_secs_f64(self.cost.kernel_time(node, gpu));
                        let begin =
                            ready.max(device_free.get(&dev).copied().unwrap_or(session_ready));
                        let end = begin + dur;
                        device_free.insert(dev, end);
                        kernels_n += 1;
                        kernel_hist.observe(dur.as_secs_f64());
                        *kernel_estimate.entry(dev).or_insert(0.0) +=
                            self.cost.kernel_time(node, gpu);
                        trace.push(tag(TraceEvent::kernel(
                            dev.0,
                            node.name.clone(),
                            begin,
                            end,
                        )
                        .with_node(id)
                        .with_plan(plan_label.clone())));
                        end
                    }
                }
            };
            finish.insert(id, end);

            // Execute recomputed replicas on their target devices: the
            // producer re-runs where its consumer lives, replacing the
            // dropped transfer.
            if let Some(target) = node.attrs.get("recompute_on") {
                if let Some(dev) = self
                    .topo
                    .devices()
                    .iter()
                    .map(|d| d.id)
                    .find(|d| d.to_string() == *target)
                {
                    let gpu = &self.topo.device(dev).spec;
                    let dur = Nanos::from_secs_f64(self.cost.kernel_time(node, gpu));
                    let begin = ready.max(device_free.get(&dev).copied().unwrap_or(session_ready));
                    let rend = begin + dur;
                    device_free.insert(dev, rend);
                    kernels_n += 1;
                    kernel_hist.observe(dur.as_secs_f64());
                    trace.push(tag(TraceEvent::kernel(
                        dev.0,
                        format!("recompute:{}", node.name),
                        begin,
                        rend,
                    )
                    .with_node(id)
                    .with_plan(plan_label.clone())));
                    recompute_finish.insert((id, dev), rend);
                }
            }

            // Issue this node's outbound scheduled transfers.
            for t in plan
                .transfers
                .iter()
                .filter(|t| plan.srg.edge(t.edge).src == id && !t.via_handle)
            {
                let from_host = match t.from {
                    Location::ClientCpu => client,
                    Location::Device(d) => self.topo.device(d).host,
                };
                let to_host = match t.to {
                    Location::ClientCpu => client,
                    Location::Device(d) => self.topo.device(d).host,
                };
                if from_host == to_host {
                    delivered_at.insert(t.edge, end);
                    continue;
                }
                let timing = {
                    let ch = fabric.channel(from_host, to_host);
                    let issue = end + ch.params.per_call_overhead;
                    ch.send_oneway_timed(issue, t.bytes)
                };
                network_bytes += t.bytes;
                transfers_n += 1;
                queue_hist.observe(timing.queue_delay.as_secs_f64());
                trace.push(tag(TraceEvent::transfer(
                    from_host.0,
                    to_host.0,
                    t.bytes,
                    end,
                    timing.delivered,
                )
                .with_node(id)
                .with_plan(plan_label.clone())
                .with_queue_delay(timing.queue_delay)));
                delivered_at.insert(t.edge, timing.delivered);
            }
        }

        let makespan = trace
            .makespan()
            .max(finish.values().copied().max().unwrap_or(start));
        let span_s = (makespan - start).as_secs_f64();
        let mut busy_s = BTreeMap::new();
        for dev in self.topo.devices() {
            let b = trace.device_busy_seconds(dev.id.0);
            if b > 0.0 {
                busy_s.insert(dev.id, b);
            }
        }
        let utilization = if span_s > 0.0 {
            busy_s.values().copied().fold(0.0, f64::max) / span_s
        } else {
            0.0
        };

        telemetry
            .metrics
            .counter("genie_sim_kernels_total", &[])
            .add(kernels_n);
        telemetry
            .metrics
            .counter("genie_sim_transfers_total", &[])
            .add(transfers_n);
        for (dev, busy) in &busy_s {
            let dev_label = dev.to_string();
            let labels = [("device", dev_label.as_str())];
            telemetry
                .metrics
                .gauge("genie_sim_device_busy_seconds", &labels)
                .set(*busy);
            let est = kernel_estimate.get(dev).copied().unwrap_or(0.0);
            telemetry
                .metrics
                .gauge("genie_sim_device_estimate_seconds", &labels)
                .set(est);
            if est > 0.0 {
                let skew = *busy / est;
                telemetry
                    .metrics
                    .gauge("genie_sim_kernel_skew_ratio", &labels)
                    .set(skew);
                telemetry
                    .metrics
                    .histogram("genie_sim_kernel_skew", &[], &genie_telemetry::RATIO_BOUNDS)
                    .observe(skew);
            }
        }
        // Transmissions perturbed by the installed fault plan during this
        // execution (netsim itself is telemetry-free, so the backend owns
        // the counter).
        let faults_injected = fabric.faults_injected() - faults_before;
        if faults_injected > 0 {
            telemetry
                .metrics
                .counter("genie_fault_injected_total", &[])
                .add(faults_injected);
        }
        span.annotate(|a| {
            a.extra.push(("makespan_s".into(), format!("{span_s:.6}")));
            a.extra
                .push(("network_bytes".into(), network_bytes.to_string()));
            if faults_injected > 0 {
                a.extra
                    .push(("faults_injected".into(), faults_injected.to_string()));
            }
        });
        SimReport {
            makespan_s: span_s,
            network_bytes,
            busy_s,
            utilization,
            trace,
        }
    }
}

/// Convenience: build a fabric with the given transport and simulate one
/// plan from time zero on fresh state.
pub fn simulate_once(
    plan: &ExecutionPlan,
    topo: &Topology,
    cost: &CostModel,
    params: RpcParams,
) -> SimReport {
    let mut state = ClusterState::new();
    let mut fabric = Fabric::new(topo, &state, params);
    SimBackend::new(topo, cost).execute(plan, &mut state, &mut fabric, Nanos::ZERO)
}

/// [`simulate_once`] with an installed fault plan: links degrade, jitter,
/// and go down per the plan's seeded schedule, and the plan's fault
/// windows are merged into the report's trace so exports attribute them.
pub fn simulate_once_faulty(
    plan: &ExecutionPlan,
    topo: &Topology,
    cost: &CostModel,
    params: RpcParams,
    faults: &FaultPlan,
) -> SimReport {
    let mut state = ClusterState::new();
    let mut fabric = Fabric::new(topo, &state, params);
    fabric.apply_fault_plan(faults);
    let mut report =
        SimBackend::new(topo, cost).execute(plan, &mut state, &mut fabric, Nanos::ZERO);
    for event in fabric.fault_events() {
        report.trace.push(event.clone());
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use genie_frontend::capture::CaptureCtx;
    use genie_models::{KvState, TransformerConfig, TransformerLm};
    use genie_scheduler::{schedule, RoundRobin, SemanticsAware};
    use genie_srg::ElemType;

    fn decode_plan(policy: &dyn genie_scheduler::Policy) -> (ExecutionPlan, Topology) {
        let m = TransformerLm::new_spec(TransformerConfig::gptj_6b());
        let ctx = CaptureCtx::new("decode");
        let cap = m.capture_decode_step(&ctx, 0, &KvState::default());
        cap.logits.sample().mark_output();
        let srg = ctx.finish().srg;
        let topo = Topology::paper_testbed();
        let state = ClusterState::new();
        let cost = CostModel::paper_stack();
        let plan = schedule(&srg, &topo, &state, &cost, policy);
        (plan, topo)
    }

    #[test]
    fn semantics_aware_decode_simulates_sanely() {
        let (plan, topo) = decode_plan(&SemanticsAware::new());
        let cost = CostModel::paper_stack();
        let report = simulate_once(&plan, &topo, &cost, RpcParams::rdma_zero_copy());
        // Weights (~12 GB) dominate the one-time traffic.
        assert!(report.network_bytes > 11_000_000_000);
        assert!(report.makespan_s > 0.0);
        assert!(!report.busy_s.is_empty());
        assert!(report.utilization > 0.0 && report.utilization <= 1.0);
    }

    #[test]
    fn second_step_reuses_residents() {
        let (plan, topo) = decode_plan(&SemanticsAware::new());
        let cost = CostModel::paper_stack();
        let mut state = ClusterState::new();
        let mut fabric = Fabric::new(&topo, &state, RpcParams::rdma_zero_copy());
        let backend = SimBackend::new(&topo, &cost);
        let r1 = backend.execute(&plan, &mut state, &mut fabric, Nanos::ZERO);

        // Re-plan with the updated state: weights now resident.
        let plan2 = schedule(&plan.srg, &topo, &state, &cost, &SemanticsAware::new());
        let r2 = backend.execute(
            &plan2,
            &mut state,
            &mut fabric,
            Nanos::from_secs_f64(r1.makespan_s),
        );
        assert!(
            r2.network_bytes < r1.network_bytes / 1000,
            "steady state {} vs first {}",
            r2.network_bytes,
            r1.network_bytes
        );
        assert!(r2.makespan_s < r1.makespan_s);
    }

    #[test]
    fn blind_policy_ships_more_and_takes_longer() {
        let cost = CostModel::paper_stack();
        let (aware_plan, topo) = decode_plan(&SemanticsAware::new());
        let (blind_plan, _) = decode_plan(&RoundRobin);
        let aware = simulate_once(&aware_plan, &topo, &cost, RpcParams::tensorpipe_python());
        let blind = simulate_once(&blind_plan, &topo, &cost, RpcParams::tensorpipe_python());
        // Same single device in the paper testbed, but round-robin still
        // bounces activations through the client.
        assert!(blind.network_bytes >= aware.network_bytes);
        assert!(blind.makespan_s >= aware.makespan_s);
    }

    #[test]
    fn simulation_reports_skew_metrics() {
        let (plan, topo) = decode_plan(&SemanticsAware::new());
        let cost = CostModel::paper_stack();
        let _ = simulate_once(&plan, &topo, &cost, RpcParams::rdma_zero_copy());
        let snap = genie_telemetry::global().metrics.snapshot();
        assert!(snap.counter("genie_sim_kernels_total", &[]).unwrap_or(0) > 0);
        // Every busy device reports its cost-model estimate and the
        // estimate-vs-actual skew ratio.
        let busy = snap
            .gauges
            .iter()
            .find(|g| g.name == "genie_sim_device_busy_seconds")
            .expect("busy gauge");
        let dev = busy
            .labels
            .iter()
            .find(|(k, _)| k == "device")
            .expect("device label")
            .1
            .clone();
        let labels = [("device", dev.as_str())];
        let est = snap
            .gauge("genie_sim_device_estimate_seconds", &labels)
            .expect("estimate gauge");
        assert!(est > 0.0);
        let skew = snap
            .gauge("genie_sim_kernel_skew_ratio", &labels)
            .expect("skew gauge");
        assert!(skew > 0.0);
    }

    #[test]
    fn faulty_simulation_is_slower_counted_and_attributed() {
        use genie_netsim::{FaultSchedule, FaultSpec};
        let (plan, topo) = decode_plan(&SemanticsAware::new());
        let cost = CostModel::paper_stack();
        let oracle = simulate_once(&plan, &topo, &cost, RpcParams::rdma_zero_copy());

        let metric = || {
            genie_telemetry::global()
                .metrics
                .snapshot()
                .counter("genie_fault_injected_total", &[])
                .unwrap_or(0)
        };
        let before = metric();
        // Derate the client link to 10%: the 12 GB weight upload slows ~10x.
        let faults = FaultPlan::new(
            3,
            FaultSchedule {
                specs: vec![FaultSpec::Derate {
                    a: 0,
                    b: 1,
                    factor: 0.1,
                }],
            },
        );
        let degraded =
            simulate_once_faulty(&plan, &topo, &cost, RpcParams::rdma_zero_copy(), &faults);
        assert!(
            degraded.makespan_s > oracle.makespan_s * 2.0,
            "degraded {} vs oracle {}",
            degraded.makespan_s,
            oracle.makespan_s
        );
        assert_eq!(degraded.network_bytes, oracle.network_bytes);
        assert!(metric() > before, "fault injections counted");
        assert!(
            degraded.trace.events().iter().any(
                |e| matches!(e, TraceEvent::Mark { label, .. } if label.starts_with("fault."))
            ),
            "fault windows attributed in the trace"
        );
        // Same seed, same timeline.
        let again = simulate_once_faulty(&plan, &topo, &cost, RpcParams::rdma_zero_copy(), &faults);
        assert_eq!(again.makespan_s, degraded.makespan_s);
    }

    #[test]
    fn trace_records_kernels_and_transfers() {
        let ctx = CaptureCtx::new("tiny");
        let x = ctx.input("x", [64, 64], ElemType::F32, None);
        let w = ctx.parameter("w", [64, 64], ElemType::F32, None);
        x.matmul(&w).mark_output();
        let srg = ctx.finish().srg;
        let topo = Topology::paper_testbed();
        let cost = CostModel::ideal_25g();
        let state = ClusterState::new();
        let plan = schedule(&srg, &topo, &state, &cost, &SemanticsAware::new());
        let report = simulate_once(&plan, &topo, &cost, RpcParams::rdma_zero_copy());
        let kernels = report
            .trace
            .events()
            .iter()
            .filter(|e| matches!(e, TraceEvent::Kernel { .. }))
            .count();
        let transfers = report
            .trace
            .events()
            .iter()
            .filter(|e| matches!(e, TraceEvent::Transfer { .. }))
            .count();
        assert_eq!(kernels, 1, "one matmul");
        assert!(transfers >= 2, "input + weight upload");
    }
}
