//! Remote execution over real sockets.
//!
//! The server side ([`GenieExecutor`]) plugs Genie's remote-executor
//! semantics into `genie-transport`: a resident-object store with epochs,
//! SRG execution via the reference interpreter, and a `Crash` hook that
//! loses all device state (for lineage testing). The client side
//! ([`RemoteSession`]) uploads pinnable state once, then drives per-step
//! graphs whose stateful inputs are handle references — the
//! semantics-aware execution mode of §4 running on an actual TCP stack.

use crate::handle::{HandleTable, RemoteHandle};
use genie_frontend::capture::CapturedGraph;
use genie_frontend::value::Value;
use genie_srg::NodeId;
use genie_tensor::{IndexTensor, Tensor};
use genie_transport::{
    Client, PayloadKind, RequestBody, ResponseBody, RetryPolicy, Server, TensorPayload,
    TransportError,
};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::net::SocketAddr;
use std::sync::Arc;

/// Server-side resident store shared across connections.
#[derive(Debug, Default)]
struct Store {
    objects: HashMap<u64, (Value, u64)>,
    epoch: u64,
}

/// The server-side executor state (wrap in [`spawn_server`]).
#[derive(Clone, Default)]
pub struct GenieExecutor {
    store: Arc<Mutex<Store>>,
}

impl GenieExecutor {
    /// Fresh executor.
    pub fn new() -> Self {
        GenieExecutor::default()
    }

    /// Number of resident objects (test observability).
    pub fn resident_count(&self) -> usize {
        self.store.lock().objects.len()
    }

    /// Current epoch.
    pub fn epoch(&self) -> u64 {
        self.store.lock().epoch
    }

    fn handle_body(&self, body: RequestBody) -> ResponseBody {
        match body {
            RequestBody::Ping => ResponseBody::Pong,
            RequestBody::Upload { key, tensor } => {
                let value = match payload_to_value(&tensor) {
                    Ok(v) => v,
                    Err(e) => return ResponseBody::Error(e),
                };
                let mut store = self.store.lock();
                let epoch = store.epoch;
                store.objects.insert(key, (value, epoch));
                ResponseBody::Handle { key, epoch }
            }
            RequestBody::Fetch { key } => {
                let store = self.store.lock();
                match store.objects.get(&key) {
                    Some((v, _)) => ResponseBody::Tensors(vec![value_to_payload(v)]),
                    None => ResponseBody::Error(format!("no resident object {key}")),
                }
            }
            RequestBody::Release { key } => {
                self.store.lock().objects.remove(&key);
                ResponseBody::Ok
            }
            RequestBody::Crash => {
                let mut store = self.store.lock();
                store.objects.clear();
                store.epoch += 1;
                ResponseBody::Ok
            }
            RequestBody::Execute {
                srg_json,
                bindings,
                handle_bindings,
                fetch,
                pin,
            } => self.execute(&srg_json, bindings, handle_bindings, fetch, pin),
        }
    }

    fn execute(
        &self,
        srg_json: &str,
        bindings: Vec<(u32, TensorPayload)>,
        handle_bindings: Vec<(u32, u64, u64)>,
        fetch: Vec<u32>,
        pin: Vec<(u32, u64)>,
    ) -> ResponseBody {
        let srg = match genie_srg::serialize::from_json(srg_json) {
            Ok(g) => g,
            Err(e) => return ResponseBody::Error(format!("bad graph: {e}")),
        };
        let mut values: HashMap<NodeId, Value> = HashMap::new();
        for (node, payload) in &bindings {
            match payload_to_value(payload) {
                Ok(v) => {
                    values.insert(NodeId::new(*node), v);
                }
                Err(e) => return ResponseBody::Error(e),
            }
        }
        {
            let store = self.store.lock();
            for (node, key, expected_epoch) in &handle_bindings {
                match store.objects.get(key) {
                    Some((v, epoch)) if epoch == expected_epoch => {
                        values.insert(NodeId::new(*node), v.clone());
                    }
                    Some((_, epoch)) => {
                        return ResponseBody::Error(format!(
                            "stale handle {key}: epoch {expected_epoch} != {epoch}"
                        ))
                    }
                    None => return ResponseBody::Error(format!("dangling handle {key}")),
                }
            }
        }
        let all = match genie_frontend::interp::execute(&srg, &values) {
            Ok(v) => v,
            Err(e) => return ResponseBody::Error(format!("execution failed: {e}")),
        };
        let mut tensors = Vec::with_capacity(fetch.len());
        for node in &fetch {
            match all.get(&NodeId::new(*node)) {
                Some(v) => tensors.push(value_to_payload(v)),
                None => return ResponseBody::Error(format!("fetch of unknown node {node}")),
            }
        }
        let mut handles = Vec::with_capacity(pin.len());
        {
            let mut store = self.store.lock();
            let epoch = store.epoch;
            for (node, key) in &pin {
                match all.get(&NodeId::new(*node)) {
                    Some(v) => {
                        store.objects.insert(*key, (v.clone(), epoch));
                        handles.push((*key, epoch));
                    }
                    None => return ResponseBody::Error(format!("pin of unknown node {node}")),
                }
            }
        }
        ResponseBody::ExecuteResult { tensors, handles }
    }
}

/// Spawn a remote-executor server. Returns the server (shut down on drop)
/// and the shared executor for test observability.
pub fn spawn_server() -> genie_transport::Result<(Server, GenieExecutor)> {
    let executor = GenieExecutor::new();
    let exec2 = executor.clone();
    let server = Server::spawn(move || {
        let exec = exec2.clone();
        move |body: RequestBody| exec.handle_body(body)
    })?;
    Ok((server, executor))
}

/// [`spawn_server`] behind a chaotic transport: every request executes
/// normally, then the reply is stalled or dropped per `policy`. Pair with
/// [`RemoteSession::connect_with`] to exercise the retry + request-id
/// dedup path under seeded hostility.
pub fn spawn_chaotic_server(
    policy: genie_transport::ChaosPolicy,
) -> genie_transport::Result<(Server, GenieExecutor)> {
    let executor = GenieExecutor::new();
    let exec2 = executor.clone();
    let server = Server::spawn_chaotic(
        move || {
            let exec = exec2.clone();
            move |body: RequestBody| exec.handle_body(body)
        },
        policy,
    )?;
    Ok((server, executor))
}

/// How a remote error should be handled, from the lineage runtime's
/// point of view.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ErrorClass {
    /// Transient transport trouble — the retry layer already did (or can
    /// do) its best; no remote state was lost.
    Retryable,
    /// Remote state is gone (crash, epoch bump, severed session):
    /// recovery must replay lineage before continuing.
    StateLoss,
    /// A programming or protocol error retries cannot fix.
    Fatal,
}

/// Classify a transport error for the recovery path. `Exhausted` is
/// classified by its final error: a retry budget spent against a dead
/// server is state loss (the session, and with it the server's view of
/// our handles, may be gone), while an exhausted budget over timeouts
/// alone stays retryable — the server may simply be slow.
pub fn classify_error(error: &TransportError) -> ErrorClass {
    match error {
        TransportError::Timeout { .. } => ErrorClass::Retryable,
        TransportError::Io(_) | TransportError::ConnectionClosed => ErrorClass::StateLoss,
        TransportError::Remote(msg) => {
            if msg.contains("stale handle") || msg.contains("dangling handle") {
                ErrorClass::StateLoss
            } else {
                ErrorClass::Fatal
            }
        }
        TransportError::Exhausted { last, .. } => classify_error(last),
        _ => ErrorClass::Fatal,
    }
}

/// A client session against a remote executor.
pub struct RemoteSession {
    client: Client,
    retry: Option<RetryPolicy>,
    /// Named handle table for this session's pinned state.
    pub handles: HandleTable,
}

impl RemoteSession {
    /// Connect to a remote executor (default deadline, no retries).
    pub fn connect(addr: SocketAddr) -> genie_transport::Result<RemoteSession> {
        Ok(RemoteSession {
            client: Client::connect(addr)?,
            retry: None,
            handles: HandleTable::new(),
        })
    }

    /// Connect with a retry policy: every call is issued under the
    /// policy's deadline and re-sent (same request id, server-side
    /// dedup) on transient transport errors.
    pub fn connect_with(
        addr: SocketAddr,
        policy: RetryPolicy,
    ) -> genie_transport::Result<RemoteSession> {
        Ok(RemoteSession {
            client: Client::connect_with_deadline(addr, Some(policy.deadline))?,
            retry: Some(policy),
            handles: HandleTable::new(),
        })
    }

    /// The active retry policy, if any.
    pub fn retry_policy(&self) -> Option<&RetryPolicy> {
        self.retry.as_ref()
    }

    fn call(&mut self, body: RequestBody) -> genie_transport::Result<ResponseBody> {
        match &self.retry {
            Some(policy) => self.client.call_retry(body, policy),
            None => self.client.call(body),
        }
    }

    /// Upload a value and pin it under `name`.
    pub fn upload_pinned(
        &mut self,
        name: &str,
        value: &Value,
    ) -> genie_transport::Result<RemoteHandle> {
        let key = self.handles.fresh_key();
        let payload = value_to_payload(value);
        let bytes = payload.size_bytes() as u64;
        match self.call(RequestBody::Upload {
            key,
            tensor: payload,
        })? {
            ResponseBody::Handle { key, epoch } => {
                let handle = RemoteHandle { key, epoch, bytes };
                self.handles.bind(name, handle);
                Ok(handle)
            }
            other => Err(TransportError::Codec(format!(
                "unexpected upload response {other:?}"
            ))),
        }
    }

    /// Execute a captured graph remotely.
    ///
    /// - nodes named in `handle_inputs` are bound to this session's
    ///   pinned objects instead of shipping payloads;
    /// - every other bound value in `cap.values` ships inline;
    /// - `fetch` values return inline; `pin` values stay remote under the
    ///   given names (existing bindings are reused so pinned state keeps
    ///   its key across steps).
    pub fn execute(
        &mut self,
        cap: &CapturedGraph,
        handle_inputs: &[(NodeId, &str)],
        fetch: &[NodeId],
        pin: &[(NodeId, &str)],
    ) -> genie_transport::Result<Vec<Value>> {
        let _span = genie_telemetry::global().collector.span_with(
            "remote.execute",
            "backend",
            genie_telemetry::SemAttrs::new()
                .with("graph", cap.srg.name.clone())
                .with("handle_inputs", handle_inputs.len().to_string())
                .with("fetch", fetch.len().to_string())
                .with("pin", pin.len().to_string()),
        );
        let srg_json = genie_srg::serialize::to_json(&cap.srg)
            .map_err(|e| TransportError::Codec(e.to_string()))?;

        let handle_bound: std::collections::HashSet<NodeId> =
            handle_inputs.iter().map(|(n, _)| *n).collect();
        let mut bindings = Vec::new();
        for (node, value) in &cap.values {
            if !handle_bound.contains(node) {
                bindings.push((node.0, value_to_payload(value)));
            }
        }
        bindings.sort_by_key(|(n, _)| *n);

        let mut handle_bindings = Vec::new();
        for (node, name) in handle_inputs {
            let handle = self
                .handles
                .get(name)
                .ok_or_else(|| TransportError::Codec(format!("no handle named {name}")))?;
            handle_bindings.push((node.0, handle.key, handle.epoch));
        }

        let mut pin_keys = Vec::new();
        for (node, name) in pin {
            let key = match self.handles.get(name) {
                Some(h) => h.key,
                None => self.handles.fresh_key(),
            };
            pin_keys.push((node.0, key, name.to_string()));
        }

        let body = RequestBody::Execute {
            srg_json,
            bindings,
            handle_bindings,
            fetch: fetch.iter().map(|n| n.0).collect(),
            pin: pin_keys.iter().map(|(n, k, _)| (*n, *k)).collect(),
        };
        match self.call(body)? {
            ResponseBody::ExecuteResult { tensors, handles } => {
                for ((_, _, name), (key, epoch)) in pin_keys.iter().zip(&handles) {
                    self.handles.bind(
                        name.clone(),
                        RemoteHandle {
                            key: *key,
                            epoch: *epoch,
                            bytes: 0,
                        },
                    );
                }
                tensors
                    .iter()
                    .map(|p| payload_to_value(p).map_err(TransportError::Codec))
                    .collect()
            }
            other => Err(TransportError::Codec(format!(
                "unexpected execute response {other:?}"
            ))),
        }
    }

    /// Fetch a pinned object back to the client.
    pub fn fetch(&mut self, name: &str) -> genie_transport::Result<Value> {
        let handle = self
            .handles
            .get(name)
            .ok_or_else(|| TransportError::Codec(format!("no handle named {name}")))?;
        match self.call(RequestBody::Fetch { key: handle.key })? {
            ResponseBody::Tensors(mut ts) if ts.len() == 1 => {
                payload_to_value(&ts.remove(0)).map_err(TransportError::Codec)
            }
            other => Err(TransportError::Codec(format!(
                "unexpected fetch response {other:?}"
            ))),
        }
    }

    /// Inject a device loss: the server drops all resident state and
    /// bumps its epoch; every local handle is invalidated. Returns the
    /// lost bindings for lineage recovery.
    pub fn inject_crash(&mut self) -> genie_transport::Result<Vec<(String, RemoteHandle)>> {
        self.call(RequestBody::Crash)?;
        Ok(self.handles.invalidate_all())
    }

    /// Measure one real round-trip time over the socket with a ping —
    /// the live signal §3.3's "runtime hint adaptation" consumes.
    pub fn probe_rtt(&mut self) -> genie_transport::Result<std::time::Duration> {
        let start = std::time::Instant::now();
        match self.call(RequestBody::Ping)? {
            ResponseBody::Pong => Ok(start.elapsed()),
            other => Err(TransportError::Codec(format!(
                "unexpected ping response {other:?}"
            ))),
        }
    }

    /// Total bytes over the socket in both directions.
    pub fn traffic_bytes(&self) -> u64 {
        self.client.total_bytes()
    }

    /// Completed calls.
    pub fn calls(&self) -> u64 {
        self.client.calls
    }
}

/// Convert a runtime value to a wire payload.
pub fn value_to_payload(v: &Value) -> TensorPayload {
    match v {
        Value::F(t) => TensorPayload::from_f32(t.dims().to_vec(), t.data()),
        Value::I(t) => TensorPayload::from_i64(t.shape().dims().to_vec(), t.data()),
    }
}

/// Convert a wire payload to a runtime value.
pub fn payload_to_value(p: &TensorPayload) -> Result<Value, String> {
    match p.kind {
        PayloadKind::F32 => {
            let data =
                genie_transport::wire::bytes_to_f32s(p.data.clone()).map_err(|e| e.to_string())?;
            if data.len() != p.dims.iter().product::<usize>() {
                return Err("payload length does not match dims".into());
            }
            Ok(Value::F(Tensor::from_vec(p.dims.clone(), data)))
        }
        PayloadKind::I64 => {
            let data =
                genie_transport::wire::bytes_to_i64s(p.data.clone()).map_err(|e| e.to_string())?;
            if data.len() != p.dims.iter().product::<usize>() {
                return Err("payload length does not match dims".into());
            }
            Ok(Value::I(IndexTensor::from_vec(p.dims.clone(), data)))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use genie_frontend::capture::CaptureCtx;
    use genie_srg::ElemType;
    use genie_tensor::init::randn;

    #[test]
    fn remote_matches_local_numerically() {
        let (server, _exec) = spawn_server().unwrap();
        let mut session = RemoteSession::connect(server.addr()).unwrap();

        let x = randn([2, 4], 1);
        let w = randn([4, 4], 2);
        let eager = genie_tensor::ops::gelu(&genie_tensor::ops::matmul(&x, &w));

        let ctx = CaptureCtx::new("g");
        let lx = ctx.input("x", [2, 4], ElemType::F32, Some(x));
        let lw = ctx.parameter("w", [4, 4], ElemType::F32, Some(w));
        let y = lx.matmul(&lw).gelu();
        y.mark_output();
        let cap = ctx.finish();

        let outs = session.execute(&cap, &[], &[y.node], &[]).unwrap();
        assert!(outs[0].as_f("y").approx_eq(&eager, 1e-6));
        drop(server);
    }

    #[test]
    fn pinned_weights_avoid_reshipping() {
        let (server, exec) = spawn_server().unwrap();
        let mut session = RemoteSession::connect(server.addr()).unwrap();

        let w = randn([64, 64], 3);
        session.upload_pinned("w", &Value::F(w.clone())).unwrap();
        assert_eq!(exec.resident_count(), 1);
        let after_upload = session.traffic_bytes();

        // Two steps referencing the pinned weight by handle.
        let mut last = 0;
        for step in 0..2 {
            let ctx = CaptureCtx::new(format!("step{step}"));
            let lx = ctx.input("x", [1, 64], ElemType::F32, Some(randn([1, 64], step)));
            let lw = ctx.parameter("w", [64, 64], ElemType::F32, None); // handle-bound
            let y = lx.matmul(&lw);
            y.mark_output();
            let cap = ctx.finish();
            let outs = session
                .execute(&cap, &[(lw.node, "w")], &[y.node], &[])
                .unwrap();
            assert_eq!(outs[0].as_f("y").dims(), &[1, 64]);
            last = session.traffic_bytes();
        }
        // Steady-state steps ship ~(64 + 64)·4 bytes plus protocol, far
        // less than the 16 KB weight.
        let per_step = (last - after_upload) / 2;
        assert!(per_step < w.size_bytes() as u64 / 2, "per step {per_step}");
    }

    #[test]
    fn kv_cache_grows_remotely_via_pins() {
        let (server, _exec) = spawn_server().unwrap();
        let mut session = RemoteSession::connect(server.addr()).unwrap();

        // Seed the cache remotely.
        session
            .upload_pinned("kv", &Value::F(Tensor::zeros(vec![0usize, 4])))
            .unwrap();

        for step in 0..3 {
            let cached = step;
            let ctx = CaptureCtx::new(format!("append{step}"));
            let cache = if cached > 0 {
                ctx.input("kv", [cached, 4], ElemType::F32, None)
            } else {
                ctx.empty_cache("kv", 4, ElemType::F32)
            };
            let row = ctx.input(
                "row",
                [1, 4],
                ElemType::F32,
                Some(Tensor::full([1, 4], step as f32)),
            );
            let grown = cache.kv_append(&row);
            grown.mark_output();
            let mut cap = ctx.finish();
            // Cache comes from the remote handle, not an inline payload.
            cap.values.remove(&cache.node);
            session
                .execute(&cap, &[(cache.node, "kv")], &[], &[(grown.node, "kv")])
                .unwrap();
        }
        let cache = session.fetch("kv").unwrap();
        let t = cache.as_f("kv");
        assert_eq!(t.dims(), &[3, 4]);
        assert_eq!(t.at(&[2, 0]), 2.0);
        drop(server);
    }

    #[test]
    fn crash_invalidates_epochs() {
        let (server, exec) = spawn_server().unwrap();
        let mut session = RemoteSession::connect(server.addr()).unwrap();
        session
            .upload_pinned("w", &Value::F(randn([4, 4], 1)))
            .unwrap();
        let stale = session.handles.get("w").unwrap();
        let lost = session.inject_crash().unwrap();
        assert_eq!(lost.len(), 1);
        assert_eq!(exec.resident_count(), 0);
        assert_eq!(exec.epoch(), 1);

        // Using the stale handle must fail loudly.
        let ctx = CaptureCtx::new("stale");
        let lw = ctx.parameter("w", [4, 4], ElemType::F32, None);
        let y = lw.relu();
        y.mark_output();
        let cap = ctx.finish();
        session.handles.bind("w", stale);
        let err = session
            .execute(&cap, &[(lw.node, "w")], &[y.node], &[])
            .unwrap_err();
        assert!(matches!(err, TransportError::Remote(msg) if msg.contains("handle")));
        drop(server);
    }

    #[test]
    fn error_classification_feeds_recovery() {
        assert_eq!(
            classify_error(&TransportError::Timeout {
                after: std::time::Duration::from_secs(1)
            }),
            ErrorClass::Retryable
        );
        assert_eq!(
            classify_error(&TransportError::ConnectionClosed),
            ErrorClass::StateLoss
        );
        assert_eq!(
            classify_error(&TransportError::Remote("stale handle 3".into())),
            ErrorClass::StateLoss
        );
        assert_eq!(
            classify_error(&TransportError::Remote("execution failed: shape".into())),
            ErrorClass::Fatal
        );
        // Exhausted inherits the class of its final error.
        assert_eq!(
            classify_error(&TransportError::Exhausted {
                attempts: 3,
                last: Box::new(TransportError::ConnectionClosed),
            }),
            ErrorClass::StateLoss
        );
        assert_eq!(
            classify_error(&TransportError::Exhausted {
                attempts: 3,
                last: Box::new(TransportError::Timeout {
                    after: std::time::Duration::from_secs(1)
                }),
            }),
            ErrorClass::Retryable
        );
    }

    #[test]
    fn session_with_retry_policy_works_end_to_end() {
        let (server, _exec) = spawn_server().unwrap();
        let mut session = RemoteSession::connect_with(server.addr(), RetryPolicy::fast()).unwrap();
        session
            .upload_pinned("w", &Value::F(randn([4, 4], 1)))
            .unwrap();
        let v = session.fetch("w").unwrap();
        assert_eq!(v.as_f("w").dims(), &[4, 4]);
        drop(server);
    }

    #[test]
    fn payload_value_roundtrip() {
        let f = Value::F(randn([3, 2], 9));
        assert_eq!(payload_to_value(&value_to_payload(&f)).unwrap(), f);
        let i = Value::I(IndexTensor::from_slice(&[5, -3]));
        assert_eq!(payload_to_value(&value_to_payload(&i)).unwrap(), i);
    }
}
