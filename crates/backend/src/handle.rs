//! Client-side bookkeeping for remote-resident objects.
//!
//! Remote state (weights, KV caches) is referenced by opaque handles with
//! epochs (§3.4, §3.5). The epoch changes whenever the backing state is
//! re-materialized after a failure; a stale-epoch reference is detected at
//! the server rather than silently reading reborn state.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

/// A reference to a remote-resident object.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct RemoteHandle {
    /// Server-side object key.
    pub key: u64,
    /// Epoch at which this reference was minted.
    pub epoch: u64,
    /// Payload size in bytes (client-side accounting).
    pub bytes: u64,
}

/// Allocates keys and tracks live handles for one session.
#[derive(Debug, Default)]
pub struct HandleTable {
    next_key: AtomicU64,
    live: HashMap<String, RemoteHandle>,
}

impl HandleTable {
    /// Fresh table.
    pub fn new() -> Self {
        HandleTable {
            next_key: AtomicU64::new(1),
            live: HashMap::new(),
        }
    }

    /// Allocate a fresh object key.
    pub fn fresh_key(&self) -> u64 {
        self.next_key.fetch_add(1, Ordering::Relaxed)
    }

    /// Bind a named object (e.g. `"wte"`, `"k_cache_3"`) to a handle.
    pub fn bind(&mut self, name: impl Into<String>, handle: RemoteHandle) {
        self.live.insert(name.into(), handle);
    }

    /// Look up a handle by name.
    pub fn get(&self, name: &str) -> Option<RemoteHandle> {
        self.live.get(name).copied()
    }

    /// Remove a binding.
    pub fn unbind(&mut self, name: &str) -> Option<RemoteHandle> {
        self.live.remove(name)
    }

    /// Invalidate every handle (device lost): clears the table and
    /// returns what was lost, for lineage recovery to replay.
    pub fn invalidate_all(&mut self) -> Vec<(String, RemoteHandle)> {
        let mut lost: Vec<_> = self.live.drain().collect();
        lost.sort_by(|a, b| a.0.cmp(&b.0));
        lost
    }

    /// Number of live handles.
    pub fn len(&self) -> usize {
        self.live.len()
    }

    /// Whether no handles are live.
    pub fn is_empty(&self) -> bool {
        self.live.is_empty()
    }

    /// Total bytes pinned remotely.
    pub fn pinned_bytes(&self) -> u64 {
        self.live.values().map(|h| h.bytes).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keys_are_unique() {
        let t = HandleTable::new();
        let a = t.fresh_key();
        let b = t.fresh_key();
        assert_ne!(a, b);
    }

    #[test]
    fn bind_lookup_unbind() {
        let mut t = HandleTable::new();
        let h = RemoteHandle {
            key: 5,
            epoch: 1,
            bytes: 100,
        };
        t.bind("wte", h);
        assert_eq!(t.get("wte"), Some(h));
        assert_eq!(t.pinned_bytes(), 100);
        assert_eq!(t.unbind("wte"), Some(h));
        assert!(t.is_empty());
    }

    #[test]
    fn invalidate_returns_sorted_losses() {
        let mut t = HandleTable::new();
        for (i, name) in ["k0", "v0", "a"].iter().enumerate() {
            t.bind(
                *name,
                RemoteHandle {
                    key: i as u64,
                    epoch: 1,
                    bytes: 10,
                },
            );
        }
        let lost = t.invalidate_all();
        assert_eq!(lost.len(), 3);
        assert_eq!(lost[0].0, "a");
        assert!(t.is_empty());
    }
}
