//! # genie-srg — the Semantically-Rich Graph
//!
//! The SRG is the "narrow waist" of the Genie platform: a portable,
//! declarative DAG that captures *what* an AI application intends to
//! compute together with the high-level semantics — execution phases, data
//! residency, modality, cost hints, criticality — that are lost when
//! computation descends to driver- or PCIe-level interfaces.
//!
//! Frontends (see `genie-frontend`) construct SRGs by intercepting
//! framework operations; schedulers (`genie-scheduler`) consume them as a
//! declarative specification and return placement-annotated copies;
//! backends (`genie-backend`) execute the plan. This crate defines the data
//! model and the graph algorithms everything else shares:
//!
//! - [`Srg`], [`Node`], [`Edge`] and the §3.1 annotation schema
//!   ([`Phase`], [`Residency`], [`Modality`], [`CostHints`],
//!   [`TensorMeta`], [`Rate`], [`Criticality`]);
//! - traversal and analysis: [`traverse::topo_order`], [`traverse::levels`],
//!   [`critical_path::critical_path`], [`stats::GraphStats`];
//! - lineage support: [`cut::replay_cut`] computes minimal recomputation
//!   sets for fault recovery (§3.5);
//! - validation ([`validate::validate`]) and portable serialization
//!   ([`serialize::to_json`], [`dot::to_dot`]).
//!
//! ## Example
//!
//! ```
//! use genie_srg::{Srg, Node, OpKind, NodeId, Phase, Residency, TensorMeta, ElemType};
//!
//! let mut g = Srg::new("tiny_decode_step");
//! let w = g.add_node(
//!     Node::new(NodeId::new(0), OpKind::Parameter, "wte")
//!         .with_residency(Residency::PersistentWeight),
//! );
//! let x = g.add_node(
//!     Node::new(NodeId::new(0), OpKind::Input, "token")
//!         .with_residency(Residency::ModelInput),
//! );
//! let mm = g.add_node(
//!     Node::new(NodeId::new(0), OpKind::MatMul, "logits").with_phase(Phase::LlmDecode),
//! );
//! g.connect(w, mm, TensorMeta::new([50400, 4096], ElemType::F16));
//! g.connect(x, mm, TensorMeta::new([1, 4096], ElemType::F16));
//!
//! assert!(genie_srg::validate::validate(&g).is_empty());
//! let order = genie_srg::traverse::topo_order(&g).unwrap();
//! assert_eq!(order.len(), 3);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod annotations;
pub mod critical_path;
pub mod cut;
pub mod dot;
pub mod edge;
pub mod graph;
pub mod ids;
pub mod node;
pub mod redact;
pub mod serialize;
pub mod shard;
pub mod stats;
pub mod traverse;
pub mod validate;

pub use annotations::{
    CostHints, Criticality, ElemType, Layout, Modality, Phase, Rate, Residency, TensorMeta,
};
pub use edge::Edge;
pub use graph::Srg;
pub use ids::{DeviceId, EdgeId, NodeId, TensorId};
pub use node::{Node, OpKind};
pub use shard::{Partition, ShardSpec, ShardedGraph};
