//! Privacy-preserving graph sharing (§5, "Trust and verifiability").
//!
//! Semantic graphs submitted to a fleet scheduler describe proprietary
//! model architectures. Redaction strips everything identifying — names,
//! module paths, free-form attributes — while keeping exactly the §3.1
//! schema a scheduler needs (phases, residency, modality, costs, shapes).
//! A content fingerprint survives redaction so the scheduler can still
//! batch tenants running the same public model (§3.6 "How") without ever
//! seeing what the model is.

use crate::annotations::Phase;
use crate::graph::Srg;
use crate::node::OpKind;
use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};

/// Attribute keys that carry scheduling semantics and survive redaction.
const SEMANTIC_ATTRS: [&str; 2] = ["pipeline_stage", "recompute_on"];

/// Produce a redacted copy of `g`: node names become `"op{i}"`, module
/// paths and non-semantic attributes are dropped, custom phase/kernel
/// names are hashed. Structure, shapes, costs, and the schema annotations
/// are untouched.
pub fn redact(g: &Srg) -> Srg {
    let mut out = g.clone();
    out.name = format!("redacted-{:016x}", fingerprint(g));
    for node in out.nodes_mut() {
        node.name = format!("op{}", node.id.index());
        node.module_path.clear();
        node.attrs
            .retain(|k, _| SEMANTIC_ATTRS.contains(&k.as_str()));
        if let Phase::Custom(name) = &node.phase {
            node.phase = Phase::Custom(format!("{:016x}", hash_str(name)));
        }
        if let OpKind::CustomKernel(name) = &node.op {
            node.op = OpKind::CustomKernel(format!("{:016x}", hash_str(name)));
        }
    }
    out
}

/// A structural fingerprint: hashes the graph's shape — operator kinds,
/// annotations, edges, and tensor metadata — but none of the identifying
/// strings. Two captures of the same architecture fingerprint equal; the
/// fingerprint is stable across redaction, so a scheduler can group
/// same-model tenants from redacted graphs alone.
pub fn fingerprint(g: &Srg) -> u64 {
    let mut h = DefaultHasher::new();
    for node in g.nodes() {
        // Custom names are identifying; hash their *kind* only so the
        // fingerprint is invariant under redaction.
        match &node.op {
            OpKind::CustomKernel(_) => "custom_kernel".hash(&mut h),
            other => other.mnemonic().hash(&mut h),
        }
        match &node.phase {
            Phase::Custom(_) => "custom_phase".hash(&mut h),
            other => other.label().hash(&mut h),
        }
        node.residency.label().hash(&mut h);
        node.modality.label().hash(&mut h);
        node.cost.flops.to_bits().hash(&mut h);
    }
    for edge in g.edges() {
        edge.src.hash(&mut h);
        edge.dst.hash(&mut h);
        edge.dst_slot.hash(&mut h);
        edge.meta.shape.hash(&mut h);
        edge.meta.elem.label().hash(&mut h);
    }
    h.finish()
}

fn hash_str(s: &str) -> u64 {
    let mut h = DefaultHasher::new();
    s.hash(&mut h);
    h.finish()
}

/// How much identifying text redaction removed, in bytes — a simple
/// leakage measure for reports.
pub fn identifying_bytes(g: &Srg) -> usize {
    g.nodes()
        .map(|n| {
            n.name.len()
                + n.module_path.len()
                + n.attrs
                    .iter()
                    .filter(|(k, _)| !SEMANTIC_ATTRS.contains(&k.as_str()))
                    .map(|(k, v)| k.len() + v.len())
                    .sum::<usize>()
        })
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::annotations::{ElemType, Residency, TensorMeta};
    use crate::ids::NodeId;
    use crate::node::Node;

    fn secret_graph(secret: &str) -> Srg {
        let mut g = Srg::new(format!("{secret}-model"));
        let w = g.add_node(
            Node::new(
                NodeId::new(0),
                OpKind::Parameter,
                format!("{secret}_weights"),
            )
            .with_module_path(format!("{secret}.attn"))
            .with_residency(Residency::PersistentWeight)
            .with_attr("trade_secret", "sauce"),
        );
        let k = g.add_node(
            Node::new(
                NodeId::new(0),
                OpKind::CustomKernel(format!("{secret}_flash")),
                "custom",
            )
            .with_phase(Phase::Custom(format!("{secret}_phase")))
            .with_attr("pipeline_stage", "3"),
        );
        g.connect(w, k, TensorMeta::new([8, 8], ElemType::F16));
        g
    }

    #[test]
    fn redaction_strips_all_identifying_text() {
        let g = secret_graph("acme");
        let r = redact(&g);
        let json = crate::serialize::to_json(&r).unwrap();
        assert!(!json.contains("acme"), "secret leaked: {json}");
        assert!(!json.contains("trade_secret"));
        assert_eq!(
            identifying_bytes(&r),
            r.nodes().map(|n| n.name.len()).sum::<usize>()
        );
    }

    #[test]
    fn redaction_keeps_scheduling_semantics() {
        let g = secret_graph("acme");
        let r = redact(&g);
        assert_eq!(r.node_count(), g.node_count());
        assert_eq!(r.edge_count(), g.edge_count());
        let w = r.nodes().find(|n| n.op == OpKind::Parameter).unwrap();
        assert_eq!(w.residency, Residency::PersistentWeight);
        let k = r
            .nodes()
            .find(|n| matches!(n.op, OpKind::CustomKernel(_)))
            .unwrap();
        assert_eq!(k.attrs.get("pipeline_stage").map(String::as_str), Some("3"));
        assert!(matches!(&k.phase, Phase::Custom(h) if h.len() == 16));
    }

    #[test]
    fn fingerprint_survives_redaction_and_separates_models() {
        let a = secret_graph("acme");
        let b = secret_graph("globex"); // same architecture, different names
                                        // Same structure ⇒ same fingerprint even with different secrets.
        assert_eq!(fingerprint(&a), fingerprint(&redact(&a)));
        assert_eq!(fingerprint(&a), fingerprint(&b));
        // A structural change separates.
        let mut c = secret_graph("acme");
        let extra = c.add_node(Node::new(NodeId::new(0), OpKind::Relu, "r"));
        c.connect(
            NodeId::new(1),
            extra,
            TensorMeta::new([8, 8], ElemType::F16),
        );
        assert_ne!(fingerprint(&a), fingerprint(&c));
    }

    #[test]
    fn redacted_graph_still_validates() {
        let g = secret_graph("acme");
        assert!(crate::validate::validate(&redact(&g)).is_empty());
    }
}
