//! Portable serialization of SRGs.
//!
//! The SRG is Genie's interchange format between frontends, schedulers, and
//! backends — possibly across processes and languages (§3.1 "portable
//! abstraction"). JSON is the reference encoding; it is self-describing and
//! diffable, which matters for a format meant to outlive any one framework.

use crate::graph::Srg;

/// Serialization/deserialization failure.
#[derive(Debug)]
pub struct SerError(serde_json::Error);

impl std::fmt::Display for SerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "SRG serialization error: {}", self.0)
    }
}

impl std::error::Error for SerError {}

/// Encode a graph as compact JSON.
pub fn to_json(g: &Srg) -> Result<String, SerError> {
    serde_json::to_string(g).map_err(SerError)
}

/// Encode a graph as pretty-printed JSON (for artifacts and debugging).
pub fn to_json_pretty(g: &Srg) -> Result<String, SerError> {
    serde_json::to_string_pretty(g).map_err(SerError)
}

/// Decode a graph from JSON produced by [`to_json`].
pub fn from_json(json: &str) -> Result<Srg, SerError> {
    serde_json::from_str(json).map_err(SerError)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::annotations::{ElemType, Phase, TensorMeta};
    use crate::ids::NodeId;
    use crate::node::{Node, OpKind};

    fn sample() -> Srg {
        let mut g = Srg::new("sample");
        let a = g.add_node(Node::new(NodeId::new(0), OpKind::Input, "a"));
        let b = g
            .add_node(Node::new(NodeId::new(0), OpKind::MatMul, "b").with_phase(Phase::LlmPrefill));
        g.connect(a, b, TensorMeta::new([3, 3], ElemType::F32));
        g
    }

    #[test]
    fn json_roundtrip_preserves_structure() {
        let g = sample();
        let json = to_json(&g).unwrap();
        let back = from_json(&json).unwrap();
        assert_eq!(back.name, "sample");
        assert_eq!(back.node_count(), 2);
        assert_eq!(back.edge_count(), 1);
        assert_eq!(back.node(NodeId::new(1)).phase, Phase::LlmPrefill);
        assert_eq!(back.in_degree(NodeId::new(1)), 1);
    }

    #[test]
    fn pretty_json_is_multiline() {
        let g = sample();
        assert!(to_json_pretty(&g).unwrap().contains('\n'));
    }

    #[test]
    fn malformed_json_errors() {
        let err = from_json("{not json").unwrap_err();
        assert!(err.to_string().contains("serialization error"));
    }

    #[test]
    fn roundtrip_is_stable() {
        // Serializing twice must yield identical bytes (deterministic).
        let g = sample();
        let j1 = to_json(&g).unwrap();
        let j2 = to_json(&from_json(&j1).unwrap()).unwrap();
        assert_eq!(j1, j2);
    }
}
