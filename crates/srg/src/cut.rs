//! Replay-cut computation for lineage-based fault tolerance (§3.5).
//!
//! When remote state is lost (a device fails, a handle's epoch is
//! invalidated), the runtime must recompute exactly the subgraph whose
//! outputs are gone, re-reading only surviving inputs. `replay_cut` computes
//! that minimal subgraph from the SRG — the SRG *is* the lineage.

use crate::graph::Srg;
use crate::ids::NodeId;
use crate::traverse::ancestors;
use std::collections::BTreeSet;

/// The minimal recomputation plan after losing the outputs of `lost`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ReplayCut {
    /// Nodes that must re-execute, in ascending id order (a valid relative
    /// execution order is obtained by topo-sorting the induced subgraph).
    pub replay: BTreeSet<NodeId>,
    /// Frontier nodes *outside* the replay set whose (surviving) outputs
    /// feed the replay set — the data that must be re-fetched, not
    /// recomputed.
    pub frontier: BTreeSet<NodeId>,
}

/// Compute the replay cut: all lost nodes plus every ancestor whose output
/// is not in `available` (the set of nodes whose outputs survive, e.g.
/// because they are client-side inputs or checkpointed on a healthy
/// device).
///
/// Walks backward from `lost`, stopping at available nodes; those become
/// the frontier.
pub fn replay_cut(g: &Srg, lost: &BTreeSet<NodeId>, available: &BTreeSet<NodeId>) -> ReplayCut {
    let mut replay: BTreeSet<NodeId> = BTreeSet::new();
    let mut frontier: BTreeSet<NodeId> = BTreeSet::new();
    let mut stack: Vec<NodeId> = lost.iter().copied().collect();

    while let Some(n) = stack.pop() {
        if replay.contains(&n) {
            continue;
        }
        if available.contains(&n) && !lost.contains(&n) {
            frontier.insert(n);
            continue;
        }
        replay.insert(n);
        for edge in g.in_edges(n) {
            stack.push(edge.src);
        }
    }

    ReplayCut { replay, frontier }
}

/// The full downstream impact of losing `lost`: every node whose output is
/// transitively derived from lost state. Used to decide which in-flight
/// results must be discarded before replay.
pub fn tainted_downstream(g: &Srg, lost: &BTreeSet<NodeId>) -> BTreeSet<NodeId> {
    crate::traverse::descendants(g, &lost.iter().copied().collect::<Vec<_>>())
}

/// Fraction of total graph cost (flops) that the replay cut saves versus
/// re-running the whole graph. This is the headline win of lineage-based
/// recovery over restart.
pub fn replay_savings(g: &Srg, cut: &ReplayCut) -> f64 {
    let total: f64 = g.total_flops();
    if total <= 0.0 {
        return 0.0;
    }
    let replayed: f64 = cut.replay.iter().map(|&n| g.node(n).cost.flops).sum();
    1.0 - replayed / total
}

/// Ancestor closure helper re-exported for recovery planning: everything
/// that must exist before `targets` can run.
pub fn required_ancestors(g: &Srg, targets: &BTreeSet<NodeId>) -> BTreeSet<NodeId> {
    ancestors(g, &targets.iter().copied().collect::<Vec<_>>())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::annotations::{CostHints, ElemType, TensorMeta};
    use crate::node::{Node, OpKind};

    fn meta() -> TensorMeta {
        TensorMeta::new([2], ElemType::F32)
    }

    /// input(0) → a(1) → b(2) → c(3) → out(4), with a second input(5) → c.
    fn pipeline() -> Srg {
        let mut g = Srg::new("p");
        let i = g.add_node(Node::new(NodeId::new(0), OpKind::Input, "in"));
        let a = g.add_node(
            Node::new(NodeId::new(0), OpKind::MatMul, "a")
                .with_cost(CostHints::new(10.0, 0.0, 0.0)),
        );
        let b = g.add_node(
            Node::new(NodeId::new(0), OpKind::Relu, "b").with_cost(CostHints::new(20.0, 0.0, 0.0)),
        );
        let c = g.add_node(
            Node::new(NodeId::new(0), OpKind::Add, "c").with_cost(CostHints::new(30.0, 0.0, 0.0)),
        );
        let o = g.add_node(Node::new(NodeId::new(0), OpKind::Output, "out"));
        let i2 = g.add_node(Node::new(NodeId::new(0), OpKind::Input, "in2"));
        g.connect(i, a, meta());
        g.connect(a, b, meta());
        g.connect(b, c, meta());
        g.connect(c, o, meta());
        g.connect(i2, c, meta());
        g
    }

    fn set(ids: &[u32]) -> BTreeSet<NodeId> {
        ids.iter().map(|&i| NodeId::new(i)).collect()
    }

    #[test]
    fn cut_stops_at_available_nodes() {
        let g = pipeline();
        // Lost: c. Available: b's output survives, inputs survive.
        let cut = replay_cut(&g, &set(&[3]), &set(&[0, 2, 5]));
        assert_eq!(cut.replay, set(&[3]));
        assert_eq!(cut.frontier, set(&[2, 5]));
    }

    #[test]
    fn cut_extends_through_unavailable_ancestors() {
        let g = pipeline();
        // Lost: c. Only raw inputs available → must replay a, b, c.
        let cut = replay_cut(&g, &set(&[3]), &set(&[0, 5]));
        assert_eq!(cut.replay, set(&[1, 2, 3]));
        assert_eq!(cut.frontier, set(&[0, 5]));
    }

    #[test]
    fn lost_node_replays_even_if_listed_available() {
        // A node can be stale-available (old epoch); losing it wins.
        let g = pipeline();
        let cut = replay_cut(&g, &set(&[2]), &set(&[0, 2, 5]));
        assert!(cut.replay.contains(&NodeId::new(2)));
    }

    #[test]
    fn savings_reflect_skipped_flops() {
        let g = pipeline();
        let cut = replay_cut(&g, &set(&[3]), &set(&[0, 2, 5]));
        // total = 60 flops, replayed = 30 → 50% saved.
        let savings = replay_savings(&g, &cut);
        assert!((savings - 0.5).abs() < 1e-9);
    }

    #[test]
    fn tainted_downstream_includes_outputs() {
        let g = pipeline();
        let tainted = tainted_downstream(&g, &set(&[1]));
        assert_eq!(tainted, set(&[1, 2, 3, 4]));
    }

    #[test]
    fn empty_loss_is_a_noop() {
        let g = pipeline();
        let cut = replay_cut(&g, &BTreeSet::new(), &set(&[0, 5]));
        assert!(cut.replay.is_empty());
        assert!(cut.frontier.is_empty());
        assert_eq!(replay_savings(&g, &cut), 1.0);
    }
}
