//! The SRG annotation schema (§3.1 of the paper).
//!
//! Nodes carry [`Phase`], [`Residency`], [`Modality`], and [`CostHints`];
//! edges carry [`TensorMeta`], [`Rate`], and [`Criticality`]. This schema is
//! the *contract* between frontends and schedulers: it is everything a
//! scheduler may rely on, and nothing framework-specific.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Execution-phase tag. Phases partition a workload into regions with
/// distinct resource profiles (e.g. LLM prefill is compute-bound and
/// parallelizable; decode is memory-bound and sequential).
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default)]
pub enum Phase {
    /// No phase information is available (the default for raw captures).
    #[default]
    Unknown,
    /// LLM prompt processing: compute-bound, parallelizable across tokens.
    LlmPrefill,
    /// LLM autoregressive generation: memory-bound, sequential, depends on a
    /// growing KV cache.
    LlmDecode,
    /// Vision feature extraction (convolutional / patch-embedding stages).
    VisionEncode,
    /// Sparse embedding lookup (recommendation models).
    EmbeddingLookup,
    /// Dense interaction / MLP portion of a recommendation model.
    DenseInteraction,
    /// Cross-modal fusion in multimodal models.
    ModalityFusion,
    /// Forward pass of training.
    TrainForward,
    /// Backward pass of training.
    TrainBackward,
    /// A phase named by an explicit developer hook
    /// (`genie.annotate_phase(...)` in the paper's API).
    Custom(String),
}

impl Phase {
    /// Whether this phase is known to be memory-bandwidth-bound.
    pub fn is_memory_bound(&self) -> bool {
        matches!(self, Phase::LlmDecode | Phase::EmbeddingLookup)
    }

    /// Whether this phase is known to be compute-bound.
    pub fn is_compute_bound(&self) -> bool {
        matches!(
            self,
            Phase::LlmPrefill | Phase::VisionEncode | Phase::DenseInteraction
        )
    }

    /// Whether operations in this phase are safely parallelizable across
    /// devices without serializing on carried state.
    pub fn is_parallelizable(&self) -> bool {
        matches!(
            self,
            Phase::LlmPrefill | Phase::VisionEncode | Phase::EmbeddingLookup
        )
    }

    /// Short label used in reports and DOT output.
    pub fn label(&self) -> &str {
        match self {
            Phase::Unknown => "unknown",
            Phase::LlmPrefill => "llm_prefill",
            Phase::LlmDecode => "llm_decode",
            Phase::VisionEncode => "vision_encode",
            Phase::EmbeddingLookup => "embedding_lookup",
            Phase::DenseInteraction => "dense_interaction",
            Phase::ModalityFusion => "modality_fusion",
            Phase::TrainForward => "train_forward",
            Phase::TrainBackward => "train_backward",
            Phase::Custom(name) => name,
        }
    }
}

impl fmt::Display for Phase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Intended lifetime and reuse properties of a data product. Residency is
/// the single most valuable cue for a disaggregation scheduler: it separates
/// a 12 GB reusable weight from a 1 MB one-shot activation.
#[derive(
    Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub enum Residency {
    /// Unclassified (the default for raw captures).
    #[default]
    Unknown,
    /// Immutable model parameters: upload once, reuse forever.
    PersistentWeight,
    /// Intermediate activation consumed within the same graph execution.
    EphemeralActivation,
    /// Mutable per-session state that grows across steps (the LLM KV cache).
    StatefulKvCache,
    /// Input fed by the client for this request.
    ModelInput,
    /// Output returned to the client for this request.
    ModelOutput,
    /// Embedding-table shard with skewed (hot/cold) access.
    EmbeddingTable,
    /// Optimizer state (training workloads).
    OptimizerState,
}

impl Residency {
    /// Whether data of this residency should be pinned near compute across
    /// invocations rather than re-shipped.
    pub fn prefers_remote_pinning(self) -> bool {
        matches!(
            self,
            Residency::PersistentWeight
                | Residency::StatefulKvCache
                | Residency::EmbeddingTable
                | Residency::OptimizerState
        )
    }

    /// Whether data of this residency is immutable once materialized.
    pub fn is_immutable(self) -> bool {
        matches!(self, Residency::PersistentWeight | Residency::ModelInput)
    }

    /// Short label used in reports and DOT output.
    pub fn label(self) -> &'static str {
        match self {
            Residency::Unknown => "unknown",
            Residency::PersistentWeight => "persistent_weight",
            Residency::EphemeralActivation => "ephemeral_activation",
            Residency::StatefulKvCache => "stateful_kv_cache",
            Residency::ModelInput => "model_input",
            Residency::ModelOutput => "model_output",
            Residency::EmbeddingTable => "embedding_table",
            Residency::OptimizerState => "optimizer_state",
        }
    }
}

impl fmt::Display for Residency {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Data modality processed by an operation, enabling placement on
/// specialized accelerators (§3.1, §3.6 "heterogeneous placement").
#[derive(
    Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub enum Modality {
    /// Unclassified.
    #[default]
    Unknown,
    /// Natural-language tokens.
    Text,
    /// Images / video frames.
    Vision,
    /// Audio waveforms or spectrograms.
    Audio,
    /// Tabular / categorical features (recommendation).
    Tabular,
    /// Output of cross-modal fusion.
    Mixed,
}

impl Modality {
    /// Short label used in reports and DOT output.
    pub fn label(self) -> &'static str {
        match self {
            Modality::Unknown => "unknown",
            Modality::Text => "text",
            Modality::Vision => "vision",
            Modality::Audio => "audio",
            Modality::Tabular => "tabular",
            Modality::Mixed => "mixed",
        }
    }
}

impl fmt::Display for Modality {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Profiling- or model-based cost estimates attached to a node.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize, Default)]
pub struct CostHints {
    /// Estimated floating-point operations for one invocation.
    pub flops: f64,
    /// Estimated bytes read from device memory.
    pub bytes_read: f64,
    /// Estimated bytes written to device memory.
    pub bytes_written: f64,
}

impl CostHints {
    /// A zero-cost hint (metadata-only operations).
    pub const ZERO: CostHints = CostHints {
        flops: 0.0,
        bytes_read: 0.0,
        bytes_written: 0.0,
    };

    /// Construct hints from flops and total memory traffic split.
    pub fn new(flops: f64, bytes_read: f64, bytes_written: f64) -> Self {
        Self {
            flops,
            bytes_read,
            bytes_written,
        }
    }

    /// Total device-memory traffic in bytes.
    pub fn bytes_total(&self) -> f64 {
        self.bytes_read + self.bytes_written
    }

    /// Operational intensity in FLOP/byte; `None` when no memory traffic is
    /// recorded (pure-metadata ops).
    pub fn operational_intensity(&self) -> Option<f64> {
        let bytes = self.bytes_total();
        if bytes > 0.0 {
            Some(self.flops / bytes)
        } else {
            None
        }
    }

    /// Sum of two hint sets (used when fusing nodes).
    pub fn combine(&self, other: &CostHints) -> CostHints {
        CostHints {
            flops: self.flops + other.flops,
            bytes_read: self.bytes_read + other.bytes_read,
            bytes_written: self.bytes_written + other.bytes_written,
        }
    }
}

/// Element types for tensors flowing along edges.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ElemType {
    /// 32-bit IEEE float.
    F32,
    /// 16-bit IEEE float.
    F16,
    /// bfloat16.
    Bf16,
    /// 8-bit signed integer (quantized inference).
    I8,
    /// 32-bit signed integer (token ids, indices).
    I32,
    /// 64-bit signed integer (embedding indices).
    I64,
    /// Single-byte boolean masks.
    Bool,
}

impl ElemType {
    /// Size of one element in bytes.
    pub const fn size_bytes(self) -> usize {
        match self {
            ElemType::F32 | ElemType::I32 => 4,
            ElemType::F16 | ElemType::Bf16 => 2,
            ElemType::I8 | ElemType::Bool => 1,
            ElemType::I64 => 8,
        }
    }

    /// Short label used in reports and DOT output.
    pub fn label(self) -> &'static str {
        match self {
            ElemType::F32 => "f32",
            ElemType::F16 => "f16",
            ElemType::Bf16 => "bf16",
            ElemType::I8 => "i8",
            ElemType::I32 => "i32",
            ElemType::I64 => "i64",
            ElemType::Bool => "bool",
        }
    }
}

impl fmt::Display for ElemType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Memory layout of a tensor as it crosses an edge. Layout mismatches force
/// a repack, which the cost model charges for.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum Layout {
    /// Row-major, innermost dimension contiguous (the default).
    #[default]
    RowMajor,
    /// Column-major.
    ColMajor,
    /// Channels-last image layout (NHWC).
    ChannelsLast,
    /// Blocked/tiled layout produced by some kernels.
    Blocked,
}

/// Shape, precision, and layout of the data flowing along an edge.
#[derive(Clone, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct TensorMeta {
    /// Dimension sizes, outermost first. Empty means scalar.
    pub shape: Vec<usize>,
    /// Element type.
    pub elem: ElemType,
    /// Memory layout.
    pub layout: Layout,
}

impl TensorMeta {
    /// Construct row-major metadata.
    pub fn new(shape: impl Into<Vec<usize>>, elem: ElemType) -> Self {
        Self {
            shape: shape.into(),
            elem,
            layout: Layout::RowMajor,
        }
    }

    /// Number of elements.
    pub fn num_elements(&self) -> usize {
        self.shape.iter().product()
    }

    /// Payload size in bytes.
    pub fn size_bytes(&self) -> usize {
        self.num_elements() * self.elem.size_bytes()
    }

    /// Rank (number of dimensions).
    pub fn rank(&self) -> usize {
        self.shape.len()
    }
}

/// Data-volume change between producer and consumer (e.g. a sampling
/// operator that keeps 1 of 50,400 logits). The scheduler uses rates for
/// network bandwidth reservation (§3.1).
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct Rate {
    /// Bytes produced per invocation of the producer.
    pub produced_bytes: f64,
    /// Bytes actually consumed per invocation of the consumer.
    pub consumed_bytes: f64,
}

impl Rate {
    /// A pass-through rate for a tensor of `bytes` bytes.
    pub fn passthrough(bytes: f64) -> Self {
        Self {
            produced_bytes: bytes,
            consumed_bytes: bytes,
        }
    }

    /// Ratio of consumed to produced volume (1.0 = pass-through).
    pub fn reduction_factor(&self) -> f64 {
        if self.produced_bytes > 0.0 {
            self.consumed_bytes / self.produced_bytes
        } else {
            1.0
        }
    }
}

impl Default for Rate {
    fn default() -> Self {
        Rate {
            produced_bytes: 0.0,
            consumed_bytes: 0.0,
        }
    }
}

/// Whether a data dependency sits on the critical path of execution.
#[derive(
    Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub enum Criticality {
    /// Transfer can be deferred or overlapped freely.
    Background,
    /// Ordinary dependency (the default).
    #[default]
    Normal,
    /// On the critical path: the scheduler should prioritize this transfer.
    Critical,
}

impl Criticality {
    /// Short label used in reports and DOT output.
    pub fn label(self) -> &'static str {
        match self {
            Criticality::Background => "background",
            Criticality::Normal => "normal",
            Criticality::Critical => "critical",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phase_properties() {
        assert!(Phase::LlmDecode.is_memory_bound());
        assert!(!Phase::LlmDecode.is_compute_bound());
        assert!(Phase::LlmPrefill.is_compute_bound());
        assert!(Phase::LlmPrefill.is_parallelizable());
        assert!(!Phase::LlmDecode.is_parallelizable());
    }

    #[test]
    fn custom_phase_label() {
        let p = Phase::Custom("speculative_draft".into());
        assert_eq!(p.label(), "speculative_draft");
        assert_eq!(format!("{p}"), "speculative_draft");
    }

    #[test]
    fn residency_pinning_preferences() {
        assert!(Residency::PersistentWeight.prefers_remote_pinning());
        assert!(Residency::StatefulKvCache.prefers_remote_pinning());
        assert!(!Residency::EphemeralActivation.prefers_remote_pinning());
        assert!(Residency::PersistentWeight.is_immutable());
        assert!(!Residency::StatefulKvCache.is_immutable());
    }

    #[test]
    fn cost_hints_intensity() {
        let h = CostHints::new(100.0, 40.0, 10.0);
        assert_eq!(h.bytes_total(), 50.0);
        assert_eq!(h.operational_intensity(), Some(2.0));
        assert_eq!(CostHints::ZERO.operational_intensity(), None);
    }

    #[test]
    fn cost_hints_combine() {
        let a = CostHints::new(1.0, 2.0, 3.0);
        let b = CostHints::new(10.0, 20.0, 30.0);
        let c = a.combine(&b);
        assert_eq!(c.flops, 11.0);
        assert_eq!(c.bytes_read, 22.0);
        assert_eq!(c.bytes_written, 33.0);
    }

    #[test]
    fn tensor_meta_sizes() {
        let m = TensorMeta::new([2, 3, 4], ElemType::F16);
        assert_eq!(m.num_elements(), 24);
        assert_eq!(m.size_bytes(), 48);
        assert_eq!(m.rank(), 3);
        let scalar = TensorMeta::new(Vec::new(), ElemType::F32);
        assert_eq!(scalar.num_elements(), 1);
        assert_eq!(scalar.size_bytes(), 4);
    }

    #[test]
    fn rate_reduction() {
        let r = Rate {
            produced_bytes: 50_400.0 * 4.0,
            consumed_bytes: 4.0,
        };
        assert!(r.reduction_factor() < 1e-4);
        assert_eq!(Rate::passthrough(8.0).reduction_factor(), 1.0);
    }

    #[test]
    fn elem_sizes() {
        assert_eq!(ElemType::F32.size_bytes(), 4);
        assert_eq!(ElemType::F16.size_bytes(), 2);
        assert_eq!(ElemType::I64.size_bytes(), 8);
        assert_eq!(ElemType::Bool.size_bytes(), 1);
    }

    #[test]
    fn criticality_ordering() {
        assert!(Criticality::Background < Criticality::Normal);
        assert!(Criticality::Normal < Criticality::Critical);
    }

    #[test]
    fn annotation_serde_roundtrip() {
        let meta = TensorMeta::new([72, 4096], ElemType::F16);
        let json = serde_json::to_string(&meta).unwrap();
        let back: TensorMeta = serde_json::from_str(&json).unwrap();
        assert_eq!(back, meta);

        let phase = Phase::Custom("x".into());
        let json = serde_json::to_string(&phase).unwrap();
        let back: Phase = serde_json::from_str(&json).unwrap();
        assert_eq!(back, phase);
    }
}
