//! Critical-path analysis over cost-annotated SRGs.
//!
//! The scheduler uses the critical path twice: to tag edges with
//! [`Criticality::Critical`](crate::annotations::Criticality) so the
//! backend prioritizes their transfers, and to lower-bound the makespan of
//! any placement.

use crate::annotations::Criticality;
use crate::graph::Srg;
use crate::ids::NodeId;
use crate::traverse::{topo_order, CycleError};
use std::collections::BTreeSet;

/// Result of a critical-path computation.
#[derive(Clone, Debug, PartialEq)]
pub struct CriticalPath {
    /// Nodes on the longest weighted path, in execution order.
    pub path: Vec<NodeId>,
    /// Total weight along the path (same unit as the weight function).
    pub length: f64,
    /// Earliest-start time per node under infinite parallelism.
    pub earliest_start: Vec<f64>,
}

/// Compute the critical path where each node costs `node_weight(node)` and
/// each edge costs `edge_weight(edge)` (typically estimated compute seconds
/// and transfer seconds respectively).
pub fn critical_path(
    g: &Srg,
    mut node_weight: impl FnMut(&crate::node::Node) -> f64,
    mut edge_weight: impl FnMut(&crate::edge::Edge) -> f64,
) -> Result<CriticalPath, CycleError> {
    let order = topo_order(g)?;
    let n = g.node_count();
    let mut start = vec![0.0f64; n];
    let mut finish = vec![0.0f64; n];
    let mut pred: Vec<Option<NodeId>> = vec![None; n];

    for &id in &order {
        let w = node_weight(g.node(id));
        finish[id.index()] = start[id.index()] + w;
        for edge in g.out_edges(id) {
            let arrive = finish[id.index()] + edge_weight(edge);
            let d = edge.dst.index();
            if arrive > start[d] {
                start[d] = arrive;
                pred[d] = Some(id);
            }
        }
    }

    let (end, &length) = match finish
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.partial_cmp(b.1).expect("weights must not be NaN"))
    {
        Some(x) => x,
        None => {
            return Ok(CriticalPath {
                path: Vec::new(),
                length: 0.0,
                earliest_start: Vec::new(),
            })
        }
    };

    let mut path = vec![NodeId::new(end as u32)];
    while let Some(p) = pred[path.last().expect("path non-empty").index()] {
        path.push(p);
    }
    path.reverse();

    Ok(CriticalPath {
        path,
        length,
        earliest_start: start,
    })
}

/// Compute the critical path using the SRG's own cost hints: node weight =
/// flops (as a unitless proxy), edge weight = payload bytes scaled by
/// `bytes_per_flop` to express the relative expense of moving versus
/// computing.
pub fn critical_path_by_hints(g: &Srg, bytes_per_flop: f64) -> Result<CriticalPath, CycleError> {
    critical_path(g, |n| n.cost.flops, |e| e.transfer_bytes() * bytes_per_flop)
}

/// Tag every edge along the critical path as
/// [`Criticality::Critical`](crate::annotations::Criticality::Critical) and
/// edges with no slack above `background_slack` as `Background`. Returns
/// the set of critical nodes.
pub fn mark_criticality(g: &mut Srg, bytes_per_flop: f64) -> Result<BTreeSet<NodeId>, CycleError> {
    let cp = critical_path_by_hints(g, bytes_per_flop)?;
    let on_path: BTreeSet<NodeId> = cp.path.iter().copied().collect();
    let edge_ids: Vec<crate::ids::EdgeId> = g.edges().map(|e| e.id).collect();
    for id in edge_ids {
        let (src, dst) = {
            let e = g.edge(id);
            (e.src, e.dst)
        };
        if on_path.contains(&src) && on_path.contains(&dst) {
            g.edge_mut(id).criticality = Criticality::Critical;
        }
    }
    Ok(on_path)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::annotations::{CostHints, ElemType, TensorMeta};
    use crate::node::{Node, OpKind};

    fn meta(elems: usize) -> TensorMeta {
        TensorMeta::new([elems], ElemType::F32)
    }

    /// a → b (heavy) → d and a → c (light) → d.
    fn weighted_diamond() -> Srg {
        let mut g = Srg::new("wd");
        let a = g.add_node(
            Node::new(NodeId::new(0), OpKind::Input, "a").with_cost(CostHints::new(1.0, 0.0, 0.0)),
        );
        let b = g.add_node(
            Node::new(NodeId::new(0), OpKind::MatMul, "b")
                .with_cost(CostHints::new(100.0, 0.0, 0.0)),
        );
        let c = g.add_node(
            Node::new(NodeId::new(0), OpKind::Relu, "c").with_cost(CostHints::new(1.0, 0.0, 0.0)),
        );
        let d = g.add_node(
            Node::new(NodeId::new(0), OpKind::Add, "d").with_cost(CostHints::new(1.0, 0.0, 0.0)),
        );
        g.connect(a, b, meta(4));
        g.connect(a, c, meta(4));
        g.connect(b, d, meta(4));
        g.connect(c, d, meta(4));
        g
    }

    #[test]
    fn heavy_branch_is_critical() {
        let g = weighted_diamond();
        let cp = critical_path_by_hints(&g, 0.0).unwrap();
        assert_eq!(
            cp.path,
            vec![NodeId::new(0), NodeId::new(1), NodeId::new(3)]
        );
        assert_eq!(cp.length, 102.0);
    }

    #[test]
    fn edge_weight_can_flip_the_path() {
        let mut g = weighted_diamond();
        // Make the a→b edge enormous so the light branch wins:
        // path cost via b = 1 + 4*4*w + 100 + 1; via c = 1 + 1 + 1.
        let heavy_edge = g.edges().find(|e| e.dst == NodeId::new(1)).unwrap().id;
        g.edge_mut(heavy_edge).meta = meta(1_000_000);
        g.edge_mut(heavy_edge).rate = crate::annotations::Rate::passthrough(4_000_000.0);
        let cp = critical_path_by_hints(&g, 1.0).unwrap();
        assert!(cp.path.contains(&NodeId::new(1)));
        assert!(cp.length > 4_000_000.0);
    }

    #[test]
    fn earliest_start_respects_dependencies() {
        let g = weighted_diamond();
        let cp = critical_path_by_hints(&g, 0.0).unwrap();
        // d starts after b finishes (1 + 100).
        assert_eq!(cp.earliest_start[3], 101.0);
        // c starts after a finishes.
        assert_eq!(cp.earliest_start[2], 1.0);
    }

    #[test]
    fn mark_criticality_tags_path_edges() {
        let mut g = weighted_diamond();
        let critical = mark_criticality(&mut g, 0.0).unwrap();
        assert!(critical.contains(&NodeId::new(1)));
        let crit_edges: Vec<_> = g
            .edges()
            .filter(|e| e.criticality == Criticality::Critical)
            .map(|e| (e.src.index(), e.dst.index()))
            .collect();
        assert_eq!(crit_edges, vec![(0, 1), (1, 3)]);
    }

    #[test]
    fn empty_graph_has_zero_length() {
        let g = Srg::new("empty");
        let cp = critical_path_by_hints(&g, 1.0).unwrap();
        assert!(cp.path.is_empty());
        assert_eq!(cp.length, 0.0);
    }
}
