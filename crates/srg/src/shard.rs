//! Sharding planner over the SRG: partition a captured graph into
//! pipeline stages × tensor-parallel ranks, then splice first-class
//! collective nodes onto every cut edge.
//!
//! This is the graph-level half of multi-device execution, the natural
//! companion to [`crate::cut`]: where `replay_cut` walks *backward* from
//! lost state, the planner walks *forward* over a [`ShardSpec`],
//! producing (a) a total assignment of nodes to shards, (b) the set of
//! edges the assignment cuts, and (c) a [`ShardedGraph`] in which each
//! cut edge `src → dst` is re-routed `src → collective → dst`. The
//! collective kind is chosen from the producer's tensor-parallel
//! annotations: a partial-sum producer gets an [`OpKind::AllReduce`], a
//! sliced producer an [`OpKind::AllGather`], and everything else a
//! point-to-point [`OpKind::SendActivation`]. The scheduler then places
//! shards on distinct devices and the spliced collectives become real
//! link traffic priced by the cost model.
//!
//! The transformation is exactly invertible: [`recompose`] strips the
//! collectives and restores the original topology bit-for-bit
//! (`cut_props.rs` pins cover-exactly-once, cut-edges ≡ collectives,
//! and the round trip as properties).

use crate::annotations::Residency;
use crate::graph::Srg;
use crate::ids::{EdgeId, NodeId};
use crate::node::{Node, OpKind};
use crate::traverse::topo_order;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet, HashMap};

/// How to shard a model: `pipeline_stages` contiguous layer blocks,
/// each split over `tensor_parallel` ranks. The linear shard id of
/// `(stage, rank)` is `stage * tensor_parallel + rank`; shard 0 is the
/// single-device case when both factors are 1.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ShardSpec {
    /// Number of pipeline stages (contiguous layer blocks), ≥ 1.
    pub pipeline_stages: u32,
    /// Tensor-parallel ranks per stage (row/column-split matmuls), ≥ 1.
    pub tensor_parallel: u32,
}

impl ShardSpec {
    /// The unsharded single-device spec.
    pub fn single() -> Self {
        ShardSpec {
            pipeline_stages: 1,
            tensor_parallel: 1,
        }
    }

    /// Pure pipeline parallelism over `stages` stages.
    pub fn pipeline(stages: u32) -> Self {
        ShardSpec {
            pipeline_stages: stages,
            tensor_parallel: 1,
        }
    }

    /// Pure tensor parallelism over `ranks` ranks.
    pub fn tensor(ranks: u32) -> Self {
        ShardSpec {
            pipeline_stages: 1,
            tensor_parallel: ranks,
        }
    }

    /// Combined pipeline × tensor parallelism.
    pub fn new(pipeline_stages: u32, tensor_parallel: u32) -> Self {
        ShardSpec {
            pipeline_stages,
            tensor_parallel,
        }
    }

    /// Total shard (device) count.
    pub fn shards(&self) -> u32 {
        self.pipeline_stages * self.tensor_parallel
    }

    /// Linear shard id of `(stage, rank)`.
    pub fn shard_id(&self, stage: u32, rank: u32) -> u32 {
        stage * self.tensor_parallel + rank
    }

    /// Stage of a linear shard id.
    pub fn stage_of(&self, shard: u32) -> u32 {
        shard / self.tensor_parallel
    }

    /// Tensor-parallel rank of a linear shard id.
    pub fn rank_of(&self, shard: u32) -> u32 {
        shard % self.tensor_parallel
    }

    /// Whether this is the degenerate single-device spec.
    pub fn is_single(&self) -> bool {
        self.shards() == 1
    }

    /// Both factors must be ≥ 1.
    pub fn validate(&self) -> Result<(), String> {
        if self.pipeline_stages == 0 || self.tensor_parallel == 0 {
            return Err(format!(
                "ShardSpec factors must be >= 1, got {} x {}",
                self.pipeline_stages, self.tensor_parallel
            ));
        }
        Ok(())
    }

    /// Compact label for reports: `"pp2xtp4"`.
    pub fn label(&self) -> String {
        format!("pp{}xtp{}", self.pipeline_stages, self.tensor_parallel)
    }
}

/// Producer-side attribute marking a tensor-parallel *partial sum*
/// (a row-split matmul's contribution); a cut edge leaving such a node
/// becomes an [`OpKind::AllReduce`].
pub const ATTR_TP_PARTIAL: &str = "tp_partial";
/// Producer-side attribute naming the dimension a tensor-parallel
/// *slice* was split along (a column-split matmul's output); a cut edge
/// leaving such a node becomes an [`OpKind::AllGather`] over that dim.
pub const ATTR_TP_SLICE_DIM: &str = "tp_slice_dim";
/// Attribute carrying a node's tensor-parallel rank within its stage.
pub const ATTR_TP_RANK: &str = "tp_rank";
/// Attribute on spliced collectives: the original cut edge id.
pub const ATTR_CUT_EDGE: &str = "cut_edge";
/// Attribute on spliced collectives: producing shard.
pub const ATTR_FROM_SHARD: &str = "from_shard";
/// Attribute on spliced collectives: consuming shard.
pub const ATTR_TO_SHARD: &str = "to_shard";

/// A total assignment of every node to exactly one linear shard id.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Partition {
    /// The spec this partition realizes.
    pub spec: ShardSpec,
    /// Node → linear shard id; total over the partitioned graph.
    pub assignment: BTreeMap<NodeId, u32>,
}

impl Partition {
    /// Nodes assigned to `shard`, ascending.
    pub fn shard_nodes(&self, shard: u32) -> BTreeSet<NodeId> {
        self.assignment
            .iter()
            .filter(|&(_, &s)| s == shard)
            .map(|(&n, _)| n)
            .collect()
    }

    /// True when every node of `g` is assigned exactly once and every
    /// assigned shard id is in range — the cover property `cut_props.rs`
    /// pins for arbitrary graphs.
    pub fn covers_exactly_once(&self, g: &Srg) -> bool {
        g.node_count() == self.assignment.len()
            && g.node_ids().all(|n| {
                self.assignment
                    .get(&n)
                    .is_some_and(|&s| s < self.spec.shards())
            })
    }
}

/// Layer index parsed from a module path like `"h.3.attn.q"` or
/// `"transformer.h.17.mlp"`: the numeric segment following an `"h"`
/// segment.
fn layer_of(module_path: &str) -> Option<u32> {
    let mut parts = module_path.split('.');
    while let Some(seg) = parts.next() {
        if seg == "h" {
            if let Some(next) = parts.next() {
                if let Ok(l) = next.parse::<u32>() {
                    return Some(l);
                }
            }
        }
    }
    None
}

/// Partition `g` under `spec`.
///
/// Stage assignment walks the topological order carrying the stage of
/// the most recent layer-tagged node (module paths `h.<i>`): layer `l`
/// of `L` maps to stage `l * stages / L`, pre-layer nodes (embedding)
/// ride stage 0, post-layer nodes (head, sampling) ride the last
/// stage touched. Rank assignment reads the producer's
/// [`ATTR_TP_RANK`] annotation (0 when absent), so a capture that
/// split its matmuls row/column-wise lands each split on its own rank
/// while un-split graphs collapse onto rank 0. The result is total:
/// every node gets exactly one shard.
pub fn partition(g: &Srg, spec: &ShardSpec) -> Partition {
    spec.validate().expect("valid ShardSpec");
    let layers: u32 = g
        .nodes()
        .filter_map(|n| layer_of(&n.module_path))
        .max()
        .map_or(0, |l| l + 1);
    let stages = spec.pipeline_stages;
    let stage_of_layer = |l: u32| -> u32 {
        if layers == 0 {
            0
        } else {
            (((l as u64) * stages as u64) / layers as u64).min(stages as u64 - 1) as u32
        }
    };
    let order = topo_order(g).expect("partition requires an acyclic SRG");
    let mut assignment = BTreeMap::new();
    let mut current_stage = 0u32;
    for n in order {
        let node = g.node(n);
        if let Some(l) = layer_of(&node.module_path) {
            current_stage = stage_of_layer(l);
        }
        let rank = node
            .attrs
            .get(ATTR_TP_RANK)
            .and_then(|r| r.parse::<u32>().ok())
            .unwrap_or(0)
            .min(spec.tensor_parallel - 1);
        assignment.insert(n, spec.shard_id(current_stage, rank));
    }
    Partition {
        spec: *spec,
        assignment,
    }
}

/// Edges whose producer and consumer land on different shards,
/// ascending by edge id. Every one of these becomes exactly one
/// collective in [`insert_collectives`].
pub fn cut_edges(g: &Srg, part: &Partition) -> Vec<EdgeId> {
    g.edges()
        .filter(|e| part.assignment[&e.src] != part.assignment[&e.dst])
        .map(|e| e.id)
        .collect()
}

/// The graph with collectives spliced onto every cut edge, plus the
/// books needed to invert the transformation and to place shards.
#[derive(Clone, Debug)]
pub struct ShardedGraph {
    /// The rewritten graph. Original nodes keep their ids (they are
    /// copied in id order); collectives are appended after them.
    pub srg: Srg,
    /// Original-graph node count (ids below this are original nodes).
    pub original_nodes: usize,
    /// Original cut edge → the collective spliced onto it.
    pub collectives: BTreeMap<EdgeId, NodeId>,
    /// Shard of every node in `srg`, collectives included (a collective
    /// executes on the consuming shard).
    pub assignment: BTreeMap<NodeId, u32>,
    /// The spec this graph was sharded under.
    pub spec: ShardSpec,
}

impl ShardedGraph {
    /// Ids of the spliced collective nodes, ascending.
    pub fn collective_nodes(&self) -> BTreeSet<NodeId> {
        self.collectives.values().copied().collect()
    }

    /// Total bytes every collective moves over the fabric (the payload
    /// of each original cut edge).
    pub fn collective_bytes(&self) -> u64 {
        self.collectives
            .keys()
            .map(|&e| {
                let orig = self.srg.in_edges(self.collectives[&e]).next();
                orig.map_or(0, |edge| edge.meta.size_bytes() as u64)
            })
            .sum()
    }
}

/// Splice a collective onto every cut edge of `part`, re-routing
/// `src → dst` as `src → collective → dst`. Node ids of the original
/// graph are preserved; relative edge order is preserved, so slots and
/// tensor ids survive and [`recompose`] can restore the input exactly.
pub fn insert_collectives(g: &Srg, part: &Partition) -> ShardedGraph {
    let mut out = Srg::new(format!("{}.{}", g.name, part.spec.label()));
    for id in g.node_ids() {
        out.add_node(g.node(id).clone());
    }
    let mut collectives = BTreeMap::new();
    let mut assignment: BTreeMap<NodeId, u32> = part.assignment.clone();
    for edge in g.edges() {
        let (src_shard, dst_shard) = (part.assignment[&edge.src], part.assignment[&edge.dst]);
        if src_shard == dst_shard {
            out.add_edge(edge.clone());
            continue;
        }
        let producer = g.node(edge.src);
        let (op, mnemonic) = if producer.attrs.contains_key(ATTR_TP_PARTIAL) {
            (OpKind::AllReduce, "all_reduce")
        } else if producer.attrs.contains_key(ATTR_TP_SLICE_DIM) {
            (OpKind::AllGather, "all_gather")
        } else {
            (OpKind::SendActivation, "send")
        };
        let bytes = edge.meta.size_bytes() as f64;
        let mut coll = Node::new(
            NodeId::new(0),
            op,
            format!("{mnemonic}.{}->{}", src_shard, dst_shard),
        )
        .with_phase(producer.phase.clone())
        .with_residency(Residency::EphemeralActivation)
        .with_module_path(producer.module_path.clone())
        .with_cost(crate::annotations::CostHints::new(0.0, bytes, bytes))
        .with_attr(ATTR_CUT_EDGE, edge.id.to_string())
        .with_attr(ATTR_FROM_SHARD, src_shard.to_string())
        .with_attr(ATTR_TO_SHARD, dst_shard.to_string());
        if let Some(dim) = producer.attrs.get(ATTR_TP_SLICE_DIM) {
            coll.attrs.insert("dim".into(), dim.clone());
        }
        let c = out.add_node(coll);
        // src → collective carries the producer's tensor; collective →
        // dst delivers a fresh tensor into the consumer's original slot
        // with the original rate/criticality, so transfer pricing is
        // unchanged.
        out.connect_tensor(edge.src, c, edge.tensor, edge.meta.clone());
        let delivered = out.fresh_tensor();
        let mut hop = crate::edge::Edge::new(
            crate::ids::EdgeId::new(0),
            c,
            edge.dst,
            delivered,
            edge.meta.clone(),
        )
        .with_slot(edge.dst_slot)
        .with_rate(edge.rate)
        .with_criticality(edge.criticality);
        hop.id = crate::ids::EdgeId::new(0); // renumbered by add_edge
        out.add_edge(hop);
        collectives.insert(edge.id, c);
        assignment.insert(c, dst_shard);
    }
    ShardedGraph {
        srg: out,
        original_nodes: g.node_count(),
        collectives,
        assignment,
        spec: part.spec,
    }
}

/// Invert [`insert_collectives`]: strip the spliced collectives and
/// reconnect each cut edge directly, restoring the original topology
/// (same node ids, ops, attrs; same edge endpoints, slots, tensors, in
/// the same relative order).
pub fn recompose(sh: &ShardedGraph) -> Srg {
    let colls = sh.collective_nodes();
    let mut out = Srg::new(
        sh.srg
            .name
            .rsplit_once('.')
            .map(|(base, _)| base.to_string())
            .unwrap_or_else(|| sh.srg.name.clone()),
    );
    for id in sh.srg.node_ids().take(sh.original_nodes) {
        out.add_node(sh.srg.node(id).clone());
    }
    for edge in sh.srg.edges() {
        if colls.contains(&edge.dst) {
            // First hop into a collective: dropped, its payload is
            // restored when the second hop is reconnected below.
            continue;
        }
        if colls.contains(&edge.src) {
            let inbound = sh
                .srg
                .in_edges(edge.src)
                .next()
                .expect("collective has exactly one producer");
            let mut restored = edge.clone();
            restored.src = inbound.src;
            restored.tensor = inbound.tensor;
            out.add_edge(restored);
            continue;
        }
        out.add_edge(edge.clone());
    }
    out
}

/// Structural equality: same nodes (id order, op, name, attrs, cost)
/// and same edges (endpoints, slots, tensors, metas, in order). Used by
/// the round-trip property; `Srg` itself intentionally has no `Eq`.
pub fn same_structure(a: &Srg, b: &Srg) -> bool {
    a.node_count() == b.node_count()
        && a.edge_count() == b.edge_count()
        && a.nodes().zip(b.nodes()).all(|(x, y)| x == y)
        && a.edges().zip(b.edges()).all(|(x, y)| x == y)
}

/// Per-shard induced subgraphs (shard id ascending), each with its
/// old→new node map — the per-device views a backend executes.
pub fn shard_subgraphs(g: &Srg, part: &Partition) -> Vec<(Srg, HashMap<NodeId, NodeId>)> {
    (0..part.spec.shards())
        .map(|s| g.induced_subgraph(&part.shard_nodes(s)))
        .collect()
}

/// Lineage recovery for a severed shard: the replay cut when every
/// node on `shard` loses its outputs and everything on surviving
/// shards is still available. Bridges the planner to
/// [`crate::cut::replay_cut`] for chaos recovery of distributed plans.
pub fn shard_loss_replay(g: &Srg, part: &Partition, shard: u32) -> crate::cut::ReplayCut {
    let lost = part.shard_nodes(shard);
    let available: BTreeSet<NodeId> = g.node_ids().filter(|n| !lost.contains(n)).collect();
    crate::cut::replay_cut(g, &lost, &available)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::annotations::{ElemType, TensorMeta};

    fn meta() -> TensorMeta {
        TensorMeta::new([2, 4], ElemType::F32)
    }

    /// input → h.0.mm → h.1.mm → out
    fn layered() -> Srg {
        let mut g = Srg::new("layered");
        let i = g.add_node(Node::new(NodeId::new(0), OpKind::Input, "in"));
        let a = g
            .add_node(Node::new(NodeId::new(0), OpKind::MatMul, "mm0").with_module_path("h.0.mlp"));
        let b = g
            .add_node(Node::new(NodeId::new(0), OpKind::MatMul, "mm1").with_module_path("h.1.mlp"));
        let o = g.add_node(Node::new(NodeId::new(0), OpKind::Output, "out"));
        g.connect(i, a, meta());
        g.connect(a, b, meta());
        g.connect(b, o, meta());
        g
    }

    #[test]
    fn spec_arithmetic() {
        let s = ShardSpec::new(2, 4);
        assert_eq!(s.shards(), 8);
        assert_eq!(s.shard_id(1, 3), 7);
        assert_eq!(s.stage_of(7), 1);
        assert_eq!(s.rank_of(7), 3);
        assert!(ShardSpec::single().is_single());
        assert!(ShardSpec::new(0, 2).validate().is_err());
        assert_eq!(s.label(), "pp2xtp4");
    }

    #[test]
    fn pipeline_partition_cuts_between_layers() {
        let g = layered();
        let part = partition(&g, &ShardSpec::pipeline(2));
        assert!(part.covers_exactly_once(&g));
        // in + h.0 on stage 0; h.1 + out on stage 1.
        assert_eq!(part.assignment[&NodeId::new(0)], 0);
        assert_eq!(part.assignment[&NodeId::new(1)], 0);
        assert_eq!(part.assignment[&NodeId::new(2)], 1);
        assert_eq!(part.assignment[&NodeId::new(3)], 1);
        let cuts = cut_edges(&g, &part);
        assert_eq!(cuts.len(), 1, "exactly the h.0→h.1 edge");
    }

    #[test]
    fn collectives_match_cut_edges_and_round_trip() {
        let g = layered();
        let part = partition(&g, &ShardSpec::pipeline(2));
        let cuts = cut_edges(&g, &part);
        let sh = insert_collectives(&g, &part);
        assert_eq!(sh.collectives.len(), cuts.len());
        assert_eq!(sh.srg.node_count(), g.node_count() + cuts.len());
        for &c in sh.collectives.values() {
            assert_eq!(sh.srg.node(c).op, OpKind::SendActivation);
        }
        assert!(topo_order(&sh.srg).is_ok(), "splice keeps the DAG acyclic");
        let back = recompose(&sh);
        assert!(same_structure(&g, &back));
    }

    #[test]
    fn tp_attrs_pick_collective_kinds() {
        let mut g = Srg::new("tp");
        let p = g.add_node(
            Node::new(NodeId::new(0), OpKind::MatMul, "partial")
                .with_attr(ATTR_TP_PARTIAL, "sum")
                .with_attr(ATTR_TP_RANK, "1"),
        );
        let s = g.add_node(
            Node::new(NodeId::new(0), OpKind::MatMul, "slice").with_attr(ATTR_TP_SLICE_DIM, "1"),
        );
        let sink = g.add_node(Node::new(NodeId::new(0), OpKind::Add, "sum"));
        g.connect(p, sink, meta());
        g.connect(s, sink, meta());
        let part = partition(&g, &ShardSpec::tensor(2));
        // rank 1 producer lands on shard 1, rank-0 nodes on shard 0.
        assert_eq!(part.assignment[&p], 1);
        assert_eq!(part.assignment[&sink], 0);
        let sh = insert_collectives(&g, &part);
        let kinds: Vec<OpKind> = sh
            .collectives
            .values()
            .map(|&c| sh.srg.node(c).op.clone())
            .collect();
        assert!(kinds.contains(&OpKind::AllReduce));
        assert!(sh.collective_bytes() > 0);
    }

    #[test]
    fn shard_loss_replays_only_the_lost_stage_cone() {
        let g = layered();
        let part = partition(&g, &ShardSpec::pipeline(2));
        let cut = shard_loss_replay(&g, &part, 1);
        // Losing stage 1 replays h.1 + out, fetching h.0's output.
        assert!(cut.replay.contains(&NodeId::new(2)));
        assert!(cut.frontier.contains(&NodeId::new(1)));
        assert!(!cut.replay.contains(&NodeId::new(1)));
    }
}
