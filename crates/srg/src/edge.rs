//! SRG edges: data dependencies annotated with movement costs.

use crate::annotations::{Criticality, Rate, TensorMeta};
use crate::ids::{EdgeId, NodeId, TensorId};
use serde::{Deserialize, Serialize};

/// A directed data dependency between two nodes. Edges carry everything the
/// scheduler needs to price a potential network transfer: payload metadata,
/// producer/consumer rates, and criticality (§3.1).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Edge {
    /// Id within the owning graph.
    pub id: EdgeId,
    /// Producing node.
    pub src: NodeId,
    /// Consuming node.
    pub dst: NodeId,
    /// Logical tensor flowing along this edge. Multiple edges share a
    /// `TensorId` when one value fans out to several consumers — the
    /// scheduler must ship it only once per destination device.
    pub tensor: TensorId,
    /// Shape / precision / layout of the payload.
    pub meta: TensorMeta,
    /// Data-volume change between producer and consumer.
    pub rate: Rate,
    /// Critical-path tag.
    pub criticality: Criticality,
    /// Which input slot of `dst` this edge feeds (operands are ordered).
    pub dst_slot: u8,
}

impl Edge {
    /// Construct a pass-through edge for the given payload.
    pub fn new(id: EdgeId, src: NodeId, dst: NodeId, tensor: TensorId, meta: TensorMeta) -> Self {
        let bytes = meta.size_bytes() as f64;
        Edge {
            id,
            src,
            dst,
            tensor,
            meta,
            rate: Rate::passthrough(bytes),
            criticality: Criticality::Normal,
            dst_slot: 0,
        }
    }

    /// Builder-style criticality annotation.
    pub fn with_criticality(mut self, criticality: Criticality) -> Self {
        self.criticality = criticality;
        self
    }

    /// Builder-style destination-slot annotation.
    pub fn with_slot(mut self, slot: u8) -> Self {
        self.dst_slot = slot;
        self
    }

    /// Builder-style rate annotation.
    pub fn with_rate(mut self, rate: Rate) -> Self {
        self.rate = rate;
        self
    }

    /// Bytes that must cross the network if `src` and `dst` land on
    /// different devices.
    pub fn transfer_bytes(&self) -> f64 {
        // The consumer-side volume is what must arrive; a reducing edge
        // (e.g. sampling) can apply the reduction producer-side.
        self.rate.consumed_bytes.min(self.rate.produced_bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::annotations::ElemType;

    fn edge() -> Edge {
        Edge::new(
            EdgeId::new(0),
            NodeId::new(0),
            NodeId::new(1),
            TensorId::new(9),
            TensorMeta::new([4, 8], ElemType::F32),
        )
    }

    #[test]
    fn passthrough_rate_matches_meta() {
        let e = edge();
        assert_eq!(e.meta.size_bytes(), 128);
        assert_eq!(e.rate.produced_bytes, 128.0);
        assert_eq!(e.transfer_bytes(), 128.0);
    }

    #[test]
    fn reducing_edge_transfers_consumer_volume() {
        let e = edge().with_rate(Rate {
            produced_bytes: 201_600.0,
            consumed_bytes: 4.0,
        });
        assert_eq!(e.transfer_bytes(), 4.0);
    }

    #[test]
    fn builder_annotations() {
        let e = edge().with_criticality(Criticality::Critical).with_slot(1);
        assert_eq!(e.criticality, Criticality::Critical);
        assert_eq!(e.dst_slot, 1);
    }

    #[test]
    fn edge_serde_roundtrip() {
        let e = edge().with_criticality(Criticality::Background);
        let json = serde_json::to_string(&e).unwrap();
        let back: Edge = serde_json::from_str(&json).unwrap();
        assert_eq!(back, e);
    }
}
