//! Graphviz DOT export for SRG inspection and debugging.

use crate::annotations::{Criticality, Phase};
use crate::graph::Srg;
use std::fmt::Write as _;

/// Render the graph in Graphviz DOT syntax. Nodes are clustered by phase
/// and colored by residency so the semantic structure is visible at a
/// glance — the human-readable view of what a semantically-blind layer
/// cannot see.
pub fn to_dot(g: &Srg) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "digraph \"{}\" {{", escape(&g.name));
    let _ = writeln!(out, "  rankdir=TB;");
    let _ = writeln!(out, "  node [shape=box, fontname=\"monospace\"];");

    // Group nodes by phase into clusters for readability.
    let phases = g.phases();
    for (ci, phase) in phases.iter().enumerate() {
        let members = g.nodes_in_phase(phase);
        let clustered = *phase != Phase::Unknown;
        if clustered {
            let _ = writeln!(out, "  subgraph cluster_{ci} {{");
            let _ = writeln!(out, "    label=\"{}\";", escape(phase.label()));
            let _ = writeln!(out, "    style=dashed;");
        }
        for id in members {
            let node = g.node(id);
            let color = match node.residency {
                crate::annotations::Residency::PersistentWeight => "lightblue",
                crate::annotations::Residency::StatefulKvCache => "lightsalmon",
                crate::annotations::Residency::EphemeralActivation => "white",
                crate::annotations::Residency::ModelInput => "lightgreen",
                crate::annotations::Residency::ModelOutput => "gold",
                crate::annotations::Residency::EmbeddingTable => "plum",
                crate::annotations::Residency::OptimizerState => "gray80",
                crate::annotations::Residency::Unknown => "gray95",
            };
            let indent = if clustered { "    " } else { "  " };
            let _ = writeln!(
                out,
                "{indent}{} [label=\"{}\\n{}\", style=filled, fillcolor={color}];",
                node.id.index(),
                escape(&node.name),
                node.op.mnemonic(),
            );
        }
        if clustered {
            let _ = writeln!(out, "  }}");
        }
    }

    for edge in g.edges() {
        let style = match edge.criticality {
            Criticality::Critical => " [color=red, penwidth=2]",
            Criticality::Background => " [style=dotted]",
            Criticality::Normal => "",
        };
        let _ = writeln!(
            out,
            "  {} -> {}{};",
            edge.src.index(),
            edge.dst.index(),
            style
        );
    }

    let _ = writeln!(out, "}}");
    out
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::annotations::{ElemType, Residency, TensorMeta};
    use crate::ids::NodeId;
    use crate::node::{Node, OpKind};

    #[test]
    fn dot_output_contains_structure() {
        let mut g = Srg::new("demo");
        let a = g.add_node(
            Node::new(NodeId::new(0), OpKind::Parameter, "weights")
                .with_residency(Residency::PersistentWeight)
                .with_phase(Phase::LlmDecode),
        );
        let b = g.add_node(Node::new(NodeId::new(0), OpKind::MatMul, "proj"));
        g.connect(a, b, TensorMeta::new([2, 2], ElemType::F16));
        let dot = to_dot(&g);
        assert!(dot.starts_with("digraph \"demo\""));
        assert!(dot.contains("0 -> 1;"));
        assert!(dot.contains("lightblue"));
        assert!(dot.contains("cluster_"));
        assert!(dot.contains("llm_decode"));
        assert!(dot.ends_with("}\n"));
    }

    #[test]
    fn critical_edges_highlighted() {
        let mut g = Srg::new("crit");
        let a = g.add_node(Node::new(NodeId::new(0), OpKind::Input, "a"));
        let b = g.add_node(Node::new(NodeId::new(0), OpKind::Relu, "b"));
        let e = g.connect(a, b, TensorMeta::new([2], ElemType::F32));
        g.edge_mut(e).criticality = Criticality::Critical;
        assert!(to_dot(&g).contains("color=red"));
    }

    #[test]
    fn names_are_escaped() {
        let mut g = Srg::new("quo\"te");
        g.add_node(Node::new(NodeId::new(0), OpKind::Input, "x\"y"));
        let dot = to_dot(&g);
        assert!(dot.contains("quo\\\"te"));
        assert!(dot.contains("x\\\"y"));
    }
}
