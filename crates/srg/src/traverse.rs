//! Graph traversal algorithms: topological order, reachability, levels.

use crate::graph::Srg;
use crate::ids::NodeId;
use std::collections::{BTreeSet, VecDeque};

/// Error returned when an SRG contains a cycle (and therefore is not a
/// valid dataflow graph).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CycleError {
    /// A node known to participate in (or be downstream of) a cycle.
    pub witness: NodeId,
}

impl std::fmt::Display for CycleError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "graph contains a cycle through {}", self.witness)
    }
}

impl std::error::Error for CycleError {}

/// Kahn's algorithm. Returns node ids in a deterministic topological order
/// (ties broken by ascending id), or a [`CycleError`].
pub fn topo_order(g: &Srg) -> Result<Vec<NodeId>, CycleError> {
    let n = g.node_count();
    let mut in_deg: Vec<usize> = (0..n).map(|i| g.in_degree(NodeId::new(i as u32))).collect();
    // BTreeSet gives deterministic smallest-id-first ordering.
    let mut ready: BTreeSet<NodeId> = g.node_ids().filter(|&id| in_deg[id.index()] == 0).collect();
    let mut order = Vec::with_capacity(n);
    while let Some(&next) = ready.iter().next() {
        ready.remove(&next);
        order.push(next);
        for edge in g.out_edges(next) {
            let d = edge.dst;
            in_deg[d.index()] -= 1;
            if in_deg[d.index()] == 0 {
                ready.insert(d);
            }
        }
    }
    if order.len() == n {
        Ok(order)
    } else {
        let witness = g
            .node_ids()
            .find(|&id| in_deg[id.index()] > 0)
            .expect("cycle implies a node with residual in-degree");
        Err(CycleError { witness })
    }
}

/// All nodes reachable from `roots` following edges forward, including the
/// roots themselves.
pub fn descendants(g: &Srg, roots: &[NodeId]) -> BTreeSet<NodeId> {
    reach(g, roots, false)
}

/// All nodes reachable from `roots` following edges backward, including the
/// roots themselves.
pub fn ancestors(g: &Srg, roots: &[NodeId]) -> BTreeSet<NodeId> {
    reach(g, roots, true)
}

fn reach(g: &Srg, roots: &[NodeId], backward: bool) -> BTreeSet<NodeId> {
    let mut seen: BTreeSet<NodeId> = roots.iter().copied().collect();
    let mut queue: VecDeque<NodeId> = roots.iter().copied().collect();
    while let Some(n) = queue.pop_front() {
        let nexts: Vec<NodeId> = if backward {
            g.in_edges(n).map(|e| e.src).collect()
        } else {
            g.out_edges(n).map(|e| e.dst).collect()
        };
        for next in nexts {
            if seen.insert(next) {
                queue.push_back(next);
            }
        }
    }
    seen
}

/// Assign each node its longest-path depth from any source (level 0 =
/// sources). Nodes at the same level are mutually independent given all
/// prior levels have run — the basis for the scheduler's parallelism
/// analysis and pipelining.
pub fn levels(g: &Srg) -> Result<Vec<usize>, CycleError> {
    let order = topo_order(g)?;
    let mut level = vec![0usize; g.node_count()];
    for &n in &order {
        for edge in g.out_edges(n) {
            let d = edge.dst.index();
            level[d] = level[d].max(level[n.index()] + 1);
        }
    }
    Ok(level)
}

/// Maximum number of mutually-independent nodes at any level — a cheap
/// upper bound on exploitable operator parallelism.
pub fn max_width(g: &Srg) -> Result<usize, CycleError> {
    let lv = levels(g)?;
    let mut counts = std::collections::HashMap::new();
    for l in lv {
        *counts.entry(l).or_insert(0usize) += 1;
    }
    Ok(counts.values().copied().max().unwrap_or(0))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::annotations::{ElemType, TensorMeta};
    use crate::node::{Node, OpKind};

    fn meta() -> TensorMeta {
        TensorMeta::new([2], ElemType::F32)
    }

    fn chain(n: usize) -> Srg {
        let mut g = Srg::new("chain");
        let mut prev = None;
        for i in 0..n {
            let id = g.add_node(Node::new(NodeId::new(0), OpKind::Relu, format!("n{i}")));
            if let Some(p) = prev {
                g.connect(p, id, meta());
            }
            prev = Some(id);
        }
        g
    }

    #[test]
    fn topo_of_chain_is_identity() {
        let g = chain(5);
        let order = topo_order(&g).unwrap();
        assert_eq!(order, (0..5).map(NodeId::new).collect::<Vec<_>>());
    }

    #[test]
    fn topo_respects_edges_not_insertion() {
        // Insert c before b, but wire a→b→c.
        let mut g = Srg::new("ooo");
        let a = g.add_node(Node::new(NodeId::new(0), OpKind::Input, "a"));
        let c = g.add_node(Node::new(NodeId::new(0), OpKind::Output, "c"));
        let b = g.add_node(Node::new(NodeId::new(0), OpKind::Relu, "b"));
        g.connect(a, b, meta());
        g.connect(b, c, meta());
        let order = topo_order(&g).unwrap();
        let pos = |n: NodeId| order.iter().position(|&x| x == n).unwrap();
        assert!(pos(a) < pos(b));
        assert!(pos(b) < pos(c));
    }

    #[test]
    fn cycle_detected() {
        let mut g = chain(3);
        // close the loop 2 → 0
        g.connect(NodeId::new(2), NodeId::new(0), meta());
        let err = topo_order(&g).unwrap_err();
        assert!(err.witness.index() < 3);
        assert!(err.to_string().contains("cycle"));
    }

    #[test]
    fn reachability() {
        let g = chain(4);
        let desc = descendants(&g, &[NodeId::new(1)]);
        assert_eq!(
            desc,
            [1, 2, 3]
                .map(NodeId::new)
                .into_iter()
                .collect::<BTreeSet<_>>()
        );
        let anc = ancestors(&g, &[NodeId::new(2)]);
        assert_eq!(
            anc,
            [0, 1, 2]
                .map(NodeId::new)
                .into_iter()
                .collect::<BTreeSet<_>>()
        );
    }

    #[test]
    fn levels_and_width_of_diamond() {
        let mut g = Srg::new("d");
        let a = g.add_node(Node::new(NodeId::new(0), OpKind::Input, "a"));
        let b = g.add_node(Node::new(NodeId::new(0), OpKind::Relu, "b"));
        let c = g.add_node(Node::new(NodeId::new(0), OpKind::Relu, "c"));
        let d = g.add_node(Node::new(NodeId::new(0), OpKind::Add, "d"));
        g.connect(a, b, meta());
        g.connect(a, c, meta());
        g.connect(b, d, meta());
        g.connect(c, d, meta());
        assert_eq!(levels(&g).unwrap(), vec![0, 1, 1, 2]);
        assert_eq!(max_width(&g).unwrap(), 2);
    }

    #[test]
    fn empty_graph() {
        let g = Srg::new("empty");
        assert!(topo_order(&g).unwrap().is_empty());
        assert_eq!(max_width(&g).unwrap(), 0);
    }
}
