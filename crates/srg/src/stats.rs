//! Aggregate statistics over SRGs.
//!
//! These summaries drive the Table-1 workload characterization: given only
//! a captured SRG, `GraphStats` recovers each workload family's
//! computation pattern and memory-access profile — evidence that the
//! framework layer sees what lower layers cannot.

use crate::annotations::{Modality, Phase, Residency};
use crate::graph::Srg;
use crate::node::OpKind;
use crate::traverse::{levels, max_width, CycleError};
use serde::{Deserialize, Serialize};

/// Summary statistics of one SRG.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct GraphStats {
    /// Number of nodes.
    pub nodes: usize,
    /// Number of edges.
    pub edges: usize,
    /// Longest-path depth (levels).
    pub depth: usize,
    /// Maximum number of mutually independent nodes at one level.
    pub max_width: usize,
    /// `max_width / depth`: > 1 indicates a parallel-friendly graph, « 1 a
    /// sequential chain.
    pub parallelism_ratio: f64,
    /// Total FLOPs across nodes.
    pub total_flops: f64,
    /// Total device-memory traffic across nodes (bytes).
    pub total_bytes: f64,
    /// Aggregate operational intensity (FLOP/byte); `None` if no traffic.
    pub operational_intensity: Option<f64>,
    /// Bytes held in persistent weights.
    pub weight_bytes: f64,
    /// Bytes held in stateful caches (KV, embedding).
    pub stateful_bytes: f64,
    /// Bytes in ephemeral activations crossing edges.
    pub activation_bytes: f64,
    /// Distinct phases present (labels).
    pub phases: Vec<String>,
    /// Distinct modalities present (labels).
    pub modalities: Vec<String>,
    /// Count of sparse gather ops (embedding lookups).
    pub sparse_ops: usize,
    /// Count of dense compute ops (matmul / conv / attention).
    pub dense_ops: usize,
    /// Count of KV-cache append ops.
    pub kv_appends: usize,
}

impl GraphStats {
    /// Compute statistics for a graph.
    pub fn of(g: &Srg) -> Result<GraphStats, CycleError> {
        let depth = levels(g)?.into_iter().max().map_or(0, |d| d + 1);
        let width = max_width(g)?;
        let total_flops = g.total_flops();
        let total_bytes: f64 = g.nodes().map(|n| n.cost.bytes_total()).sum();

        let mut weight_bytes = 0.0;
        let mut stateful_bytes = 0.0;
        let mut activation_bytes = 0.0;
        let mut counted = std::collections::BTreeSet::new();
        for edge in g.edges() {
            if !counted.insert(edge.tensor) {
                continue;
            }
            let bytes = edge.meta.size_bytes() as f64;
            match g.node(edge.src).residency {
                Residency::PersistentWeight => weight_bytes += bytes,
                Residency::StatefulKvCache | Residency::EmbeddingTable => stateful_bytes += bytes,
                Residency::EphemeralActivation | Residency::Unknown => activation_bytes += bytes,
                _ => {}
            }
        }

        let mut sparse_ops = 0;
        let mut dense_ops = 0;
        let mut kv_appends = 0;
        for node in g.nodes() {
            match node.op {
                OpKind::EmbeddingGather => sparse_ops += 1,
                OpKind::MatMul | OpKind::Conv2d | OpKind::Attention => dense_ops += 1,
                OpKind::KvAppend => kv_appends += 1,
                _ => {}
            }
        }

        let phases: Vec<String> = g
            .phases()
            .iter()
            .filter(|p| **p != Phase::Unknown)
            .map(|p| p.label().to_string())
            .collect();
        let mut modalities: Vec<String> = Vec::new();
        for node in g.nodes() {
            if node.modality != Modality::Unknown {
                let label = node.modality.label().to_string();
                if !modalities.contains(&label) {
                    modalities.push(label);
                }
            }
        }

        Ok(GraphStats {
            nodes: g.node_count(),
            edges: g.edge_count(),
            depth,
            max_width: width,
            parallelism_ratio: if depth > 0 {
                width as f64 / depth as f64
            } else {
                0.0
            },
            total_flops,
            total_bytes,
            operational_intensity: if total_bytes > 0.0 {
                Some(total_flops / total_bytes)
            } else {
                None
            },
            weight_bytes,
            stateful_bytes,
            activation_bytes,
            phases,
            modalities,
            sparse_ops,
            dense_ops,
            kv_appends,
        })
    }

    /// Heuristic classification of the computation pattern, mirroring the
    /// vocabulary of Table 1 in the paper.
    pub fn computation_pattern(&self) -> &'static str {
        if self.kv_appends > 0
            && self
                .phases
                .iter()
                .any(|p| p == Phase::LlmDecode.label() || p == Phase::LlmPrefill.label())
        {
            "sequential, phased (prefill/decode)"
        } else if self.modalities.len() > 1 {
            "cross-modal fusion"
        } else if self.sparse_ops > 0 && self.dense_ops > 0 {
            "sparse + dense mix"
        } else if self.parallelism_ratio < 0.2 && self.depth > 8 {
            "layer-sequential, regular"
        } else {
            "layer-parallel, regular"
        }
    }

    /// Heuristic classification of the dominant memory-access profile.
    pub fn memory_access_profile(&self) -> &'static str {
        if self.stateful_bytes > 0.0 && self.kv_appends > 0 {
            "streaming KV cache"
        } else if self.modalities.len() > 1 {
            "heterogeneous patterns"
        } else if self.sparse_ops > 0 {
            "hot/cold embeddings"
        } else {
            "predictable feature maps"
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::annotations::{CostHints, ElemType, TensorMeta};
    use crate::ids::NodeId;
    use crate::node::Node;

    #[test]
    fn stats_of_llm_like_graph() {
        let mut g = Srg::new("llm");
        let w = g.add_node(
            Node::new(NodeId::new(0), OpKind::Parameter, "w")
                .with_residency(Residency::PersistentWeight),
        );
        let x = g.add_node(
            Node::new(NodeId::new(0), OpKind::Input, "x").with_residency(Residency::ModelInput),
        );
        let mm = g.add_node(
            Node::new(NodeId::new(0), OpKind::MatMul, "mm")
                .with_phase(Phase::LlmDecode)
                .with_cost(CostHints::new(1000.0, 100.0, 100.0)),
        );
        let kv = g.add_node(
            Node::new(NodeId::new(0), OpKind::KvAppend, "kv")
                .with_phase(Phase::LlmDecode)
                .with_residency(Residency::StatefulKvCache),
        );
        g.connect(w, mm, TensorMeta::new([64, 64], ElemType::F16));
        g.connect(x, mm, TensorMeta::new([1, 64], ElemType::F16));
        g.connect(mm, kv, TensorMeta::new([1, 64], ElemType::F16));
        let s = GraphStats::of(&g).unwrap();
        assert_eq!(s.nodes, 4);
        assert_eq!(s.kv_appends, 1);
        assert_eq!(s.weight_bytes, 64.0 * 64.0 * 2.0);
        assert_eq!(
            s.computation_pattern(),
            "sequential, phased (prefill/decode)"
        );
        assert_eq!(s.memory_access_profile(), "predictable feature maps"); // stateful bytes counted on kv's *output* edges
        assert_eq!(s.phases, vec!["llm_decode"]);
    }

    #[test]
    fn recsys_pattern_detected() {
        let mut g = Srg::new("rec");
        let t = g.add_node(
            Node::new(NodeId::new(0), OpKind::Parameter, "table")
                .with_residency(Residency::EmbeddingTable),
        );
        let gather = g.add_node(Node::new(NodeId::new(0), OpKind::EmbeddingGather, "g"));
        let mlp = g.add_node(Node::new(NodeId::new(0), OpKind::MatMul, "mlp"));
        g.connect(t, gather, TensorMeta::new([1000, 16], ElemType::F32));
        g.connect(gather, mlp, TensorMeta::new([8, 16], ElemType::F32));
        let s = GraphStats::of(&g).unwrap();
        assert_eq!(s.computation_pattern(), "sparse + dense mix");
        assert_eq!(s.memory_access_profile(), "hot/cold embeddings");
    }

    #[test]
    fn intensity_none_without_traffic() {
        let g = Srg::new("empty");
        let s = GraphStats::of(&g).unwrap();
        assert_eq!(s.operational_intensity, None);
        assert_eq!(s.depth, 0);
    }
}
