//! SRG nodes: operations with the common annotation schema.

use crate::annotations::{CostHints, Modality, Phase, Residency};
use crate::ids::{DeviceId, NodeId};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// The operation a node performs. Genie's scheduler never needs framework
/// internals, but it does benefit from knowing the operator *family* (a
/// matmul has different roofline behaviour than a gather), so the SRG keeps
/// a coarse, framework-neutral vocabulary plus an escape hatch for opaque
/// custom kernels (§3.7).
#[derive(Clone, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum OpKind {
    /// Dense matrix multiply (including batched).
    MatMul,
    /// Fused scaled-dot-product attention.
    Attention,
    /// Layer normalization.
    LayerNorm,
    /// RMS normalization.
    RmsNorm,
    /// Softmax.
    Softmax,
    /// GELU activation.
    Gelu,
    /// ReLU activation.
    Relu,
    /// SiLU/Swish activation.
    Silu,
    /// Embedding-table gather.
    EmbeddingGather,
    /// 2-D convolution.
    Conv2d,
    /// Pooling (max/avg).
    Pool2d,
    /// Batch normalization.
    BatchNorm,
    /// Elementwise add.
    Add,
    /// Elementwise multiply.
    Mul,
    /// Concatenate along a dimension.
    Concat,
    /// Slice / narrow.
    Slice,
    /// Reshape / view (metadata only).
    Reshape,
    /// Transpose / permute.
    Transpose,
    /// Reduction (sum/mean/max over dims).
    Reduce,
    /// Append a (key, value) block to a KV cache — the signature operation
    /// of LLM decode.
    KvAppend,
    /// Sample / argmax over logits, collapsing a vocab-sized tensor to one
    /// token id.
    Sample,
    /// Collective sum over per-shard partials (fixed rank order, so the
    /// reduction is deterministic and bit-reproducible).
    AllReduce,
    /// Collective concatenation of per-shard slices along a dimension,
    /// in ascending rank order.
    AllGather,
    /// Point-to-point activation send between pipeline stages.
    SendActivation,
    /// Matmul that continues a carried accumulator: `init + a @ b`,
    /// folding `a @ b`'s reduction on top of `init` element-by-element.
    /// The building block of bit-exact row-parallel sharding.
    MatMulAcc,
    /// Graph input placeholder.
    Input,
    /// Materialized parameter (weight) placeholder.
    Parameter,
    /// Graph output marker.
    Output,
    /// A fused region produced by the scheduler's rewrite pre-pass; carries
    /// the number of original nodes it absorbed.
    Fused(u32),
    /// Opaque user kernel: the frontend captured its I/O signature only and
    /// relies on developer-provided cost annotations.
    CustomKernel(String),
}

impl OpKind {
    /// Whether this op only manipulates metadata (no device work).
    pub fn is_metadata_only(&self) -> bool {
        matches!(self, OpKind::Reshape | OpKind::Transpose)
    }

    /// Whether this node introduces data into the graph rather than
    /// computing on predecessors.
    pub fn is_source(&self) -> bool {
        matches!(self, OpKind::Input | OpKind::Parameter)
    }

    /// Short mnemonic used in reports and DOT output.
    pub fn mnemonic(&self) -> &str {
        match self {
            OpKind::MatMul => "matmul",
            OpKind::Attention => "attention",
            OpKind::LayerNorm => "layer_norm",
            OpKind::RmsNorm => "rms_norm",
            OpKind::Softmax => "softmax",
            OpKind::Gelu => "gelu",
            OpKind::Relu => "relu",
            OpKind::Silu => "silu",
            OpKind::EmbeddingGather => "embedding",
            OpKind::Conv2d => "conv2d",
            OpKind::Pool2d => "pool2d",
            OpKind::BatchNorm => "batch_norm",
            OpKind::Add => "add",
            OpKind::Mul => "mul",
            OpKind::Concat => "concat",
            OpKind::Slice => "slice",
            OpKind::Reshape => "reshape",
            OpKind::Transpose => "transpose",
            OpKind::Reduce => "reduce",
            OpKind::KvAppend => "kv_append",
            OpKind::Sample => "sample",
            OpKind::AllReduce => "all_reduce",
            OpKind::AllGather => "all_gather",
            OpKind::SendActivation => "send",
            OpKind::MatMulAcc => "matmul_acc",
            OpKind::Input => "input",
            OpKind::Parameter => "parameter",
            OpKind::Output => "output",
            OpKind::Fused(_) => "fused",
            OpKind::CustomKernel(name) => name,
        }
    }
}

impl fmt::Display for OpKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

/// One operation in the SRG, annotated per the §3.1 schema.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Node {
    /// Id within the owning graph.
    pub id: NodeId,
    /// Operator family.
    pub op: OpKind,
    /// Human-readable name (usually derived from the module hierarchy).
    pub name: String,
    /// Dotted path in the source model's module hierarchy, e.g.
    /// `"transformer.h.17.attn"`. Filled by the structural annotation pass.
    pub module_path: String,
    /// Execution phase this node belongs to.
    pub phase: Phase,
    /// Residency classification of this node's *output*.
    pub residency: Residency,
    /// Modality of the data this node processes.
    pub modality: Modality,
    /// Cost estimates for one invocation.
    pub cost: CostHints,
    /// Device binding assigned by the scheduler; `None` until planned.
    pub device: Option<DeviceId>,
    /// Free-form key/value metadata (kept ordered for deterministic
    /// serialization).
    pub attrs: BTreeMap<String, String>,
}

impl Node {
    /// Create a minimally-annotated node. Frontends fill the rest via the
    /// tiered annotation pipeline.
    pub fn new(id: NodeId, op: OpKind, name: impl Into<String>) -> Self {
        Node {
            id,
            op,
            name: name.into(),
            module_path: String::new(),
            phase: Phase::Unknown,
            residency: Residency::Unknown,
            modality: Modality::Unknown,
            cost: CostHints::ZERO,
            device: None,
            attrs: BTreeMap::new(),
        }
    }

    /// Builder-style phase annotation.
    pub fn with_phase(mut self, phase: Phase) -> Self {
        self.phase = phase;
        self
    }

    /// Builder-style residency annotation.
    pub fn with_residency(mut self, residency: Residency) -> Self {
        self.residency = residency;
        self
    }

    /// Builder-style modality annotation.
    pub fn with_modality(mut self, modality: Modality) -> Self {
        self.modality = modality;
        self
    }

    /// Builder-style cost annotation.
    pub fn with_cost(mut self, cost: CostHints) -> Self {
        self.cost = cost;
        self
    }

    /// Builder-style module path annotation.
    pub fn with_module_path(mut self, path: impl Into<String>) -> Self {
        self.module_path = path.into();
        self
    }

    /// Builder-style attribute.
    pub fn with_attr(mut self, key: impl Into<String>, value: impl Into<String>) -> Self {
        self.attrs.insert(key.into(), value.into());
        self
    }

    /// Whether the node has been bound to a device by the scheduler.
    pub fn is_placed(&self) -> bool {
        self.device.is_some()
    }

    /// Number of semantic annotations present beyond the raw dependency
    /// structure. Used by the Figure-1 "semantic visibility" analysis.
    pub fn semantic_annotation_count(&self) -> usize {
        let mut count = 0;
        if self.phase != Phase::Unknown {
            count += 1;
        }
        if self.residency != Residency::Unknown {
            count += 1;
        }
        if self.modality != Modality::Unknown {
            count += 1;
        }
        if self.cost != CostHints::ZERO {
            count += 1;
        }
        if !self.module_path.is_empty() {
            count += 1;
        }
        count
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_style_annotations() {
        let n = Node::new(NodeId::new(0), OpKind::MatMul, "q_proj")
            .with_phase(Phase::LlmPrefill)
            .with_residency(Residency::EphemeralActivation)
            .with_modality(Modality::Text)
            .with_module_path("h.0.attn.q")
            .with_attr("heads", "16");
        assert_eq!(n.phase, Phase::LlmPrefill);
        assert_eq!(n.residency, Residency::EphemeralActivation);
        assert_eq!(n.attrs["heads"], "16");
        assert_eq!(n.semantic_annotation_count(), 4);
    }

    #[test]
    fn fresh_node_has_no_semantics() {
        let n = Node::new(NodeId::new(1), OpKind::Add, "add");
        assert_eq!(n.semantic_annotation_count(), 0);
        assert!(!n.is_placed());
    }

    #[test]
    fn op_kind_classification() {
        assert!(OpKind::Reshape.is_metadata_only());
        assert!(!OpKind::MatMul.is_metadata_only());
        assert!(OpKind::Parameter.is_source());
        assert!(OpKind::Input.is_source());
        assert!(!OpKind::Output.is_source());
    }

    #[test]
    fn custom_kernel_mnemonic() {
        let op = OpKind::CustomKernel("my_flash_attn".into());
        assert_eq!(op.mnemonic(), "my_flash_attn");
    }

    #[test]
    fn node_serde_roundtrip() {
        let n = Node::new(NodeId::new(3), OpKind::KvAppend, "kv")
            .with_phase(Phase::LlmDecode)
            .with_residency(Residency::StatefulKvCache);
        let json = serde_json::to_string(&n).unwrap();
        let back: Node = serde_json::from_str(&json).unwrap();
        assert_eq!(back, n);
    }
}
