//! Strongly-typed identifiers used throughout the SRG.
//!
//! Every entity in a [`crate::Srg`] is referred to by a small copyable id
//! rather than a reference, which keeps the graph representation flat and
//! serializable — a requirement for the SRG's role as a *portable*
//! interchange format between frontends, schedulers, and backends.

use serde::{Deserialize, Serialize};
use std::fmt;

macro_rules! define_id {
    ($(#[$doc:meta])* $name:ident, $prefix:expr) => {
        $(#[$doc])*
        #[derive(
            Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
        )]
        #[serde(transparent)]
        pub struct $name(pub u32);

        impl $name {
            /// Construct an id from a raw index.
            pub const fn new(raw: u32) -> Self {
                Self(raw)
            }

            /// The raw index backing this id.
            pub const fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl From<u32> for $name {
            fn from(raw: u32) -> Self {
                Self(raw)
            }
        }
    };
}

define_id!(
    /// Identifies a node (operation) within a single SRG.
    NodeId,
    "n"
);

define_id!(
    /// Identifies an edge (data dependency) within a single SRG.
    EdgeId,
    "e"
);

define_id!(
    /// Identifies a device (accelerator) in a cluster, as referenced by an
    /// annotated SRG's placement bindings. The scheduler assigns these; the
    /// SRG crate treats them as opaque.
    DeviceId,
    "d"
);

/// Identifies a logical tensor value flowing through the graph. Unlike
/// [`EdgeId`], a single tensor may feed several consumers (several edges
/// share one `TensorId`).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default)]
#[serde(transparent)]
pub struct TensorId(pub u64);

impl TensorId {
    /// Construct a tensor id from a raw value.
    pub const fn new(raw: u64) -> Self {
        Self(raw)
    }
}

impl fmt::Debug for TensorId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

impl fmt::Display for TensorId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_id_roundtrip() {
        let id = NodeId::new(42);
        assert_eq!(id.index(), 42);
        assert_eq!(format!("{id}"), "n42");
        assert_eq!(format!("{id:?}"), "n42");
    }

    #[test]
    fn ids_are_ordered_by_index() {
        assert!(NodeId::new(1) < NodeId::new(2));
        assert!(EdgeId::new(0) < EdgeId::new(10));
    }

    #[test]
    fn tensor_id_display() {
        assert_eq!(format!("{}", TensorId::new(7)), "t7");
    }

    #[test]
    fn serde_transparent() {
        let id = NodeId::new(5);
        let json = serde_json::to_string(&id).unwrap();
        assert_eq!(json, "5");
        let back: NodeId = serde_json::from_str(&json).unwrap();
        assert_eq!(back, id);
    }
}
