//! Structural validation of SRGs.
//!
//! A frontend must emit a *well-formed* SRG before handing it to a
//! scheduler; `validate` is the gate. It checks the invariants the rest of
//! the platform relies on so downstream code can index freely.

use crate::graph::Srg;
use crate::ids::{EdgeId, NodeId};
use crate::traverse::topo_order;
use std::fmt;

/// A violated SRG invariant.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ValidationError {
    /// An edge references a node id outside the graph. Checked first:
    /// every other invariant (and most of the platform) indexes endpoint
    /// nodes freely and would panic on such an edge.
    DanglingEdge {
        /// The offending edge.
        edge: EdgeId,
        /// Its (possibly out-of-range) producer.
        src: NodeId,
        /// Its (possibly out-of-range) consumer.
        dst: NodeId,
    },
    /// The graph contains a cycle.
    Cycle {
        /// A node participating in the cycle.
        witness: NodeId,
    },
    /// A source-kind node (`Input`/`Parameter`) has incoming edges.
    SourceWithInputs {
        /// The offending node.
        node: NodeId,
    },
    /// A non-source node has no incoming edges (it could never produce a
    /// value).
    OrphanCompute {
        /// The offending node.
        node: NodeId,
    },
    /// Two edges deliver to the same (node, slot) pair.
    DuplicateSlot {
        /// The consuming node.
        node: NodeId,
        /// The contested operand slot.
        slot: u8,
    },
    /// An edge payload has zero bytes but its producer is not
    /// metadata-only; data must actually flow.
    EmptyPayload {
        /// The offending edge's producer.
        src: NodeId,
        /// The offending edge's consumer.
        dst: NodeId,
    },
    /// The same logical tensor is produced by two different nodes.
    TensorMultiplyProduced {
        /// First producer observed.
        first: NodeId,
        /// Conflicting second producer.
        second: NodeId,
    },
}

impl fmt::Display for ValidationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ValidationError::DanglingEdge { edge, src, dst } => {
                write!(f, "edge {edge} ({src}->{dst}) references a missing node")
            }
            ValidationError::Cycle { witness } => {
                write!(f, "cycle through {witness}")
            }
            ValidationError::SourceWithInputs { node } => {
                write!(f, "source node {node} has incoming edges")
            }
            ValidationError::OrphanCompute { node } => {
                write!(f, "compute node {node} has no inputs")
            }
            ValidationError::DuplicateSlot { node, slot } => {
                write!(f, "node {node} receives two edges on slot {slot}")
            }
            ValidationError::EmptyPayload { src, dst } => {
                write!(f, "edge {src}->{dst} carries an empty payload")
            }
            ValidationError::TensorMultiplyProduced { first, second } => {
                write!(f, "tensor produced by both {first} and {second}")
            }
        }
    }
}

impl std::error::Error for ValidationError {}

/// Validate all SRG invariants, returning every violation found (empty =
/// valid). Deterministic ordering.
pub fn validate(g: &Srg) -> Vec<ValidationError> {
    let mut errors = Vec::new();

    // Dangling endpoints make every node-indexing check below (and
    // `topo_order` itself) unsound, so detect them and stop early.
    for edge in g.edges() {
        if edge.src.index() >= g.node_count() || edge.dst.index() >= g.node_count() {
            errors.push(ValidationError::DanglingEdge {
                edge: edge.id,
                src: edge.src,
                dst: edge.dst,
            });
        }
    }
    if !errors.is_empty() {
        return errors;
    }

    if let Err(e) = topo_order(g) {
        errors.push(ValidationError::Cycle { witness: e.witness });
    }

    for node in g.nodes() {
        let in_deg = g.in_degree(node.id);
        if node.op.is_source() && in_deg > 0 {
            errors.push(ValidationError::SourceWithInputs { node: node.id });
        }
        if !node.op.is_source() && in_deg == 0 {
            errors.push(ValidationError::OrphanCompute { node: node.id });
        }
        // Slot uniqueness among incoming edges.
        let mut slots_seen = std::collections::BTreeSet::new();
        for edge in g.in_edges(node.id) {
            if !slots_seen.insert(edge.dst_slot) {
                errors.push(ValidationError::DuplicateSlot {
                    node: node.id,
                    slot: edge.dst_slot,
                });
            }
        }
    }

    for edge in g.edges() {
        // Empty payloads are ill-formed except for stateful-cache seeds: a
        // KV cache legitimately starts at shape [0, d] before the first
        // append.
        let src_node = g.node(edge.src);
        let is_cache_seed = src_node.residency == crate::annotations::Residency::StatefulKvCache;
        if edge.meta.size_bytes() == 0 && !src_node.op.is_metadata_only() && !is_cache_seed {
            errors.push(ValidationError::EmptyPayload {
                src: edge.src,
                dst: edge.dst,
            });
        }
    }

    // Single-producer property for logical tensors.
    let mut producer: std::collections::BTreeMap<crate::ids::TensorId, NodeId> =
        std::collections::BTreeMap::new();
    for edge in g.edges() {
        match producer.get(&edge.tensor) {
            Some(&p) if p != edge.src => {
                errors.push(ValidationError::TensorMultiplyProduced {
                    first: p,
                    second: edge.src,
                });
            }
            _ => {
                producer.insert(edge.tensor, edge.src);
            }
        }
    }

    errors
}

/// Convenience wrapper: `Ok(())` if valid, else the first error.
pub fn validate_ok(g: &Srg) -> Result<(), ValidationError> {
    match validate(g).into_iter().next() {
        None => Ok(()),
        Some(e) => Err(e),
    }
}

/// Every violation found in one graph, displayable as a single
/// `;`-joined message — the error type of [`Srg::validate_all`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ValidationErrors(pub Vec<ValidationError>);

impl fmt::Display for ValidationErrors {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let msgs: Vec<String> = self.0.iter().map(|e| e.to_string()).collect();
        write!(f, "{}", msgs.join("; "))
    }
}

impl std::error::Error for ValidationErrors {}

impl Srg {
    /// Validate every structural invariant, returning the complete list of
    /// violations as one joinable error (`Ok(())` when well-formed).
    pub fn validate_all(&self) -> Result<(), ValidationErrors> {
        let errors = validate(self);
        if errors.is_empty() {
            Ok(())
        } else {
            Err(ValidationErrors(errors))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::annotations::{ElemType, TensorMeta};
    use crate::node::{Node, OpKind};

    fn meta() -> TensorMeta {
        TensorMeta::new([2], ElemType::F32)
    }

    fn valid_graph() -> Srg {
        let mut g = Srg::new("ok");
        let a = g.add_node(Node::new(NodeId::new(0), OpKind::Input, "a"));
        let b = g.add_node(Node::new(NodeId::new(0), OpKind::Relu, "b"));
        g.connect(a, b, meta());
        g
    }

    #[test]
    fn valid_graph_passes() {
        assert!(validate(&valid_graph()).is_empty());
        assert!(validate_ok(&valid_graph()).is_ok());
    }

    #[test]
    fn orphan_compute_detected() {
        let mut g = valid_graph();
        g.add_node(Node::new(NodeId::new(0), OpKind::MatMul, "floating"));
        let errs = validate(&g);
        assert!(errs
            .iter()
            .any(|e| matches!(e, ValidationError::OrphanCompute { node } if node.index() == 2)));
    }

    #[test]
    fn source_with_inputs_detected() {
        let mut g = valid_graph();
        let p = g.add_node(Node::new(NodeId::new(0), OpKind::Parameter, "w"));
        g.connect(NodeId::new(1), p, meta());
        let errs = validate(&g);
        assert!(errs
            .iter()
            .any(|e| matches!(e, ValidationError::SourceWithInputs { .. })));
    }

    #[test]
    fn cycle_detected() {
        let mut g = valid_graph();
        g.connect(NodeId::new(1), NodeId::new(1), meta());
        let errs = validate(&g);
        assert!(errs
            .iter()
            .any(|e| matches!(e, ValidationError::Cycle { .. })));
    }

    #[test]
    fn empty_payload_detected() {
        let mut g = Srg::new("empty-payload");
        let a = g.add_node(Node::new(NodeId::new(0), OpKind::Input, "a"));
        let b = g.add_node(Node::new(NodeId::new(0), OpKind::Relu, "b"));
        g.connect(a, b, TensorMeta::new([0], ElemType::F32));
        let errs = validate(&g);
        assert!(errs
            .iter()
            .any(|e| matches!(e, ValidationError::EmptyPayload { .. })));
    }

    #[test]
    fn empty_cache_seed_is_legal() {
        use crate::annotations::Residency;
        let mut g = Srg::new("kv-seed");
        let seed = g.add_node(
            Node::new(NodeId::new(0), OpKind::Input, "kv")
                .with_residency(Residency::StatefulKvCache),
        );
        let app = g.add_node(Node::new(NodeId::new(0), OpKind::KvAppend, "append"));
        let row = g.add_node(Node::new(NodeId::new(0), OpKind::Input, "row"));
        g.connect(seed, app, TensorMeta::new([0, 4], ElemType::F32));
        g.connect(row, app, TensorMeta::new([1, 4], ElemType::F32));
        assert!(validate(&g).is_empty());
    }

    #[test]
    fn multiply_produced_tensor_detected() {
        let mut g = Srg::new("multi-prod");
        let a = g.add_node(Node::new(NodeId::new(0), OpKind::Input, "a"));
        let b = g.add_node(Node::new(NodeId::new(0), OpKind::Input, "b"));
        let c = g.add_node(Node::new(NodeId::new(0), OpKind::Add, "c"));
        let t = g.fresh_tensor();
        g.connect_tensor(a, c, t, meta());
        g.connect_tensor(b, c, t, meta());
        let errs = validate(&g);
        assert!(errs
            .iter()
            .any(|e| matches!(e, ValidationError::TensorMultiplyProduced { .. })));
    }

    #[test]
    fn error_display_messages() {
        let e = ValidationError::OrphanCompute {
            node: NodeId::new(7),
        };
        assert_eq!(e.to_string(), "compute node n7 has no inputs");
        let e = ValidationError::DanglingEdge {
            edge: EdgeId::new(0),
            src: NodeId::new(1),
            dst: NodeId::new(99),
        };
        assert_eq!(e.to_string(), "edge e0 (n1->n99) references a missing node");
    }

    /// `connect_tensor` asserts endpoint bounds, so a dangling edge can
    /// only arrive from outside — e.g. a corrupted serialized graph.
    fn tampered_graph() -> Srg {
        let mut json = serde_json::to_value(valid_graph()).unwrap();
        json["edges"][0]["dst"] = serde_json::Value::from(99u32);
        serde_json::from_value(json).unwrap()
    }

    #[test]
    fn dangling_edge_detected_without_panicking() {
        let errs = validate(&tampered_graph());
        assert_eq!(
            errs,
            vec![ValidationError::DanglingEdge {
                edge: EdgeId::new(0),
                src: NodeId::new(0),
                dst: NodeId::new(99),
            }]
        );
    }

    #[test]
    fn validate_all_joins_every_violation() {
        let mut g = valid_graph();
        g.add_node(Node::new(NodeId::new(0), OpKind::MatMul, "floating"));
        g.connect(NodeId::new(1), NodeId::new(1), meta());
        let err = g.validate_all().expect_err("two violations");
        assert!(err.0.len() >= 2, "{err:?}");
        let msg = err.to_string();
        assert!(msg.contains("; "), "{msg}");
        assert!(msg.contains("cycle"), "{msg}");
        assert!(msg.contains("no inputs"), "{msg}");
        assert!(valid_graph().validate_all().is_ok());
    }
}
