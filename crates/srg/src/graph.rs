//! The Semantically-Rich Graph container.

use crate::annotations::{Phase, TensorMeta};
use crate::edge::Edge;
use crate::ids::{EdgeId, NodeId, TensorId};
use crate::node::{Node, OpKind};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeSet, HashMap};

/// A Semantically-Rich Graph: a DAG of operations (nodes) connected by data
/// dependencies (edges), each carrying the §3.1 annotation schema.
///
/// The SRG is *declarative*: it specifies what the application intends to
/// compute, not how or where. Schedulers consume it and return an annotated
/// copy with device bindings and transfer schedules; backends execute that
/// plan. Nodes and edges are stored in flat vectors indexed by their ids so
/// the whole structure serializes cheaply and deterministically.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct Srg {
    /// Human-readable graph name (e.g. `"gptj.decode.step17"`).
    pub name: String,
    nodes: Vec<Node>,
    edges: Vec<Edge>,
    /// Outgoing edge ids per node, parallel to `nodes`.
    out_adj: Vec<Vec<EdgeId>>,
    /// Incoming edge ids per node, parallel to `nodes`.
    in_adj: Vec<Vec<EdgeId>>,
    next_tensor: u64,
}

impl Srg {
    /// Create an empty graph.
    pub fn new(name: impl Into<String>) -> Self {
        Srg {
            name: name.into(),
            ..Default::default()
        }
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of edges.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Whether the graph has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Append a node built by `f`, which receives the id the node will get.
    pub fn add_node_with(&mut self, f: impl FnOnce(NodeId) -> Node) -> NodeId {
        let id = NodeId::new(self.nodes.len() as u32);
        let node = f(id);
        debug_assert_eq!(node.id, id, "node id must match its slot");
        self.nodes.push(node);
        self.out_adj.push(Vec::new());
        self.in_adj.push(Vec::new());
        id
    }

    /// Append a pre-built node, renumbering its id to the next slot.
    pub fn add_node(&mut self, mut node: Node) -> NodeId {
        let id = NodeId::new(self.nodes.len() as u32);
        node.id = id;
        self.nodes.push(node);
        self.out_adj.push(Vec::new());
        self.in_adj.push(Vec::new());
        id
    }

    /// Allocate a fresh logical tensor id.
    pub fn fresh_tensor(&mut self) -> TensorId {
        let id = TensorId::new(self.next_tensor);
        self.next_tensor += 1;
        id
    }

    /// Connect `src → dst` with the given payload metadata, allocating a
    /// fresh tensor id for the value.
    pub fn connect(&mut self, src: NodeId, dst: NodeId, meta: TensorMeta) -> EdgeId {
        let tensor = self.fresh_tensor();
        self.connect_tensor(src, dst, tensor, meta)
    }

    /// Connect `src → dst` carrying an existing logical tensor (fan-out).
    pub fn connect_tensor(
        &mut self,
        src: NodeId,
        dst: NodeId,
        tensor: TensorId,
        meta: TensorMeta,
    ) -> EdgeId {
        assert!(src.index() < self.nodes.len(), "src {src} out of bounds");
        assert!(dst.index() < self.nodes.len(), "dst {dst} out of bounds");
        let id = EdgeId::new(self.edges.len() as u32);
        let slot = self.in_adj[dst.index()].len() as u8;
        let edge = Edge::new(id, src, dst, tensor, meta).with_slot(slot);
        self.out_adj[src.index()].push(id);
        self.in_adj[dst.index()].push(id);
        self.edges.push(edge);
        id
    }

    /// Add a fully-specified edge (used when splicing graphs). The edge id
    /// is renumbered; adjacency is updated.
    pub fn add_edge(&mut self, mut edge: Edge) -> EdgeId {
        assert!(edge.src.index() < self.nodes.len());
        assert!(edge.dst.index() < self.nodes.len());
        let id = EdgeId::new(self.edges.len() as u32);
        edge.id = id;
        self.out_adj[edge.src.index()].push(id);
        self.in_adj[edge.dst.index()].push(id);
        self.next_tensor = self.next_tensor.max(edge.tensor.0 + 1);
        self.edges.push(edge);
        id
    }

    /// Immutable node access.
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.index()]
    }

    /// Mutable node access.
    pub fn node_mut(&mut self, id: NodeId) -> &mut Node {
        &mut self.nodes[id.index()]
    }

    /// Immutable edge access.
    pub fn edge(&self, id: EdgeId) -> &Edge {
        &self.edges[id.index()]
    }

    /// Mutable edge access.
    pub fn edge_mut(&mut self, id: EdgeId) -> &mut Edge {
        &mut self.edges[id.index()]
    }

    /// Fallible node access.
    pub fn try_node(&self, id: NodeId) -> Option<&Node> {
        self.nodes.get(id.index())
    }

    /// All nodes in id order.
    pub fn nodes(&self) -> impl Iterator<Item = &Node> {
        self.nodes.iter()
    }

    /// All node ids in order.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.nodes.len() as u32).map(NodeId::new)
    }

    /// All edges in id order.
    pub fn edges(&self) -> impl Iterator<Item = &Edge> {
        self.edges.iter()
    }

    /// All edges, mutably (used by annotation passes).
    pub fn edges_mut(&mut self) -> impl Iterator<Item = &mut Edge> {
        self.edges.iter_mut()
    }

    /// All nodes, mutably (used by annotation passes).
    pub fn nodes_mut(&mut self) -> impl Iterator<Item = &mut Node> {
        self.nodes.iter_mut()
    }

    /// Outgoing edges of a node.
    pub fn out_edges(&self, id: NodeId) -> impl Iterator<Item = &Edge> {
        self.out_adj[id.index()]
            .iter()
            .map(|e| &self.edges[e.index()])
    }

    /// Incoming edges of a node, ordered by destination slot.
    pub fn in_edges(&self, id: NodeId) -> impl Iterator<Item = &Edge> {
        self.in_adj[id.index()]
            .iter()
            .map(|e| &self.edges[e.index()])
    }

    /// Direct predecessors (deduplicated, in slot order).
    pub fn predecessors(&self, id: NodeId) -> Vec<NodeId> {
        let mut seen = BTreeSet::new();
        self.in_edges(id)
            .map(|e| e.src)
            .filter(|s| seen.insert(*s))
            .collect()
    }

    /// Direct successors (deduplicated).
    pub fn successors(&self, id: NodeId) -> Vec<NodeId> {
        let mut seen = BTreeSet::new();
        self.out_edges(id)
            .map(|e| e.dst)
            .filter(|d| seen.insert(*d))
            .collect()
    }

    /// In-degree counted in edges.
    pub fn in_degree(&self, id: NodeId) -> usize {
        self.in_adj[id.index()].len()
    }

    /// Out-degree counted in edges.
    pub fn out_degree(&self, id: NodeId) -> usize {
        self.out_adj[id.index()].len()
    }

    /// Nodes with no incoming edges (graph inputs / parameters).
    pub fn sources(&self) -> Vec<NodeId> {
        self.node_ids()
            .filter(|&n| self.in_degree(n) == 0)
            .collect()
    }

    /// Nodes with no outgoing edges (graph outputs).
    pub fn sinks(&self) -> Vec<NodeId> {
        self.node_ids()
            .filter(|&n| self.out_degree(n) == 0)
            .collect()
    }

    /// The distinct phases present, in first-appearance order.
    pub fn phases(&self) -> Vec<Phase> {
        let mut out: Vec<Phase> = Vec::new();
        for node in &self.nodes {
            if !out.contains(&node.phase) {
                out.push(node.phase.clone());
            }
        }
        out
    }

    /// Ids of nodes belonging to the given phase.
    pub fn nodes_in_phase(&self, phase: &Phase) -> Vec<NodeId> {
        self.nodes
            .iter()
            .filter(|n| &n.phase == phase)
            .map(|n| n.id)
            .collect()
    }

    /// Histogram of operator mnemonics, deterministic ordering.
    pub fn op_histogram(&self) -> Vec<(String, usize)> {
        let mut counts: HashMap<String, usize> = HashMap::new();
        for node in &self.nodes {
            *counts.entry(node.op.mnemonic().to_string()).or_default() += 1;
        }
        let mut out: Vec<_> = counts.into_iter().collect();
        out.sort();
        out
    }

    /// Total bytes of all `Parameter` node outputs — the model's weight
    /// footprint as observable from the graph.
    pub fn parameter_bytes(&self) -> f64 {
        let mut total = 0.0;
        let mut counted: BTreeSet<TensorId> = BTreeSet::new();
        for node in &self.nodes {
            if node.op == OpKind::Parameter {
                for edge in self.out_edges(node.id) {
                    if counted.insert(edge.tensor) {
                        total += edge.meta.size_bytes() as f64;
                    }
                }
            }
        }
        total
    }

    /// Total flops across all nodes.
    pub fn total_flops(&self) -> f64 {
        self.nodes.iter().map(|n| n.cost.flops).sum()
    }

    /// Extract the subgraph induced by `keep`, remapping ids densely.
    /// Returns the new graph and the old→new node id mapping. Edges whose
    /// endpoints are not both kept are dropped.
    pub fn induced_subgraph(&self, keep: &BTreeSet<NodeId>) -> (Srg, HashMap<NodeId, NodeId>) {
        let mut sub = Srg::new(format!("{}.sub", self.name));
        let mut remap: HashMap<NodeId, NodeId> = HashMap::new();
        for &old in keep {
            let mut node = self.node(old).clone();
            let new_id = NodeId::new(sub.nodes.len() as u32);
            node.id = new_id;
            sub.nodes.push(node);
            sub.out_adj.push(Vec::new());
            sub.in_adj.push(Vec::new());
            remap.insert(old, new_id);
        }
        for edge in &self.edges {
            if let (Some(&s), Some(&d)) = (remap.get(&edge.src), remap.get(&edge.dst)) {
                let mut e = edge.clone();
                e.src = s;
                e.dst = d;
                sub.add_edge(e);
            }
        }
        sub.next_tensor = self.next_tensor;
        (sub, remap)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::annotations::ElemType;

    fn diamond() -> Srg {
        // a → b, a → c, b → d, c → d
        let mut g = Srg::new("diamond");
        let meta = TensorMeta::new([2, 2], ElemType::F32);
        let a = g.add_node(Node::new(NodeId::new(0), OpKind::Input, "a"));
        let b = g.add_node(Node::new(NodeId::new(0), OpKind::MatMul, "b"));
        let c = g.add_node(Node::new(NodeId::new(0), OpKind::Relu, "c"));
        let d = g.add_node(Node::new(NodeId::new(0), OpKind::Add, "d"));
        g.connect(a, b, meta.clone());
        g.connect(a, c, meta.clone());
        g.connect(b, d, meta.clone());
        g.connect(c, d, meta);
        g
    }

    #[test]
    fn adjacency_bookkeeping() {
        let g = diamond();
        assert_eq!(g.node_count(), 4);
        assert_eq!(g.edge_count(), 4);
        let a = NodeId::new(0);
        let d = NodeId::new(3);
        assert_eq!(g.out_degree(a), 2);
        assert_eq!(g.in_degree(d), 2);
        assert_eq!(g.sources(), vec![a]);
        assert_eq!(g.sinks(), vec![d]);
        assert_eq!(g.successors(a), vec![NodeId::new(1), NodeId::new(2)]);
        assert_eq!(g.predecessors(d), vec![NodeId::new(1), NodeId::new(2)]);
    }

    #[test]
    fn slots_assigned_in_connection_order() {
        let g = diamond();
        let d = NodeId::new(3);
        let slots: Vec<u8> = g.in_edges(d).map(|e| e.dst_slot).collect();
        assert_eq!(slots, vec![0, 1]);
    }

    #[test]
    fn fan_out_shares_tensor_id() {
        let mut g = Srg::new("fanout");
        let meta = TensorMeta::new([4], ElemType::F32);
        let p = g.add_node(Node::new(NodeId::new(0), OpKind::Parameter, "w"));
        let x = g.add_node(Node::new(NodeId::new(0), OpKind::MatMul, "x"));
        let y = g.add_node(Node::new(NodeId::new(0), OpKind::MatMul, "y"));
        let t = g.fresh_tensor();
        g.connect_tensor(p, x, t, meta.clone());
        g.connect_tensor(p, y, t, meta);
        let tensors: BTreeSet<TensorId> = g.edges().map(|e| e.tensor).collect();
        assert_eq!(tensors.len(), 1);
    }

    #[test]
    fn parameter_bytes_deduplicates_fanout() {
        let mut g = Srg::new("params");
        let meta = TensorMeta::new([1024], ElemType::F32); // 4096 bytes
        let p = g.add_node(Node::new(NodeId::new(0), OpKind::Parameter, "w"));
        let x = g.add_node(Node::new(NodeId::new(0), OpKind::MatMul, "x"));
        let y = g.add_node(Node::new(NodeId::new(0), OpKind::MatMul, "y"));
        let t = g.fresh_tensor();
        g.connect_tensor(p, x, t, meta.clone());
        g.connect_tensor(p, y, t, meta);
        assert_eq!(g.parameter_bytes(), 4096.0);
    }

    #[test]
    fn induced_subgraph_remaps_densely() {
        let g = diamond();
        let keep: BTreeSet<NodeId> = [NodeId::new(0), NodeId::new(1), NodeId::new(3)]
            .into_iter()
            .collect();
        let (sub, remap) = g.induced_subgraph(&keep);
        assert_eq!(sub.node_count(), 3);
        // a→b survives, b→d survives; a→c and c→d dropped.
        assert_eq!(sub.edge_count(), 2);
        assert_eq!(remap[&NodeId::new(0)], NodeId::new(0));
        assert_eq!(remap[&NodeId::new(3)], NodeId::new(2));
        assert_eq!(sub.node(NodeId::new(2)).name, "d");
    }

    #[test]
    fn phases_in_first_appearance_order() {
        let mut g = diamond();
        g.node_mut(NodeId::new(1)).phase = Phase::LlmPrefill;
        g.node_mut(NodeId::new(2)).phase = Phase::LlmDecode;
        let phases = g.phases();
        assert_eq!(
            phases,
            vec![Phase::Unknown, Phase::LlmPrefill, Phase::LlmDecode]
        );
        assert_eq!(g.nodes_in_phase(&Phase::LlmDecode), vec![NodeId::new(2)]);
    }

    #[test]
    fn op_histogram_sorted() {
        let g = diamond();
        let hist = g.op_histogram();
        assert_eq!(
            hist,
            vec![
                ("add".to_string(), 1),
                ("input".to_string(), 1),
                ("matmul".to_string(), 1),
                ("relu".to_string(), 1),
            ]
        );
    }

    #[test]
    fn graph_serde_roundtrip() {
        let g = diamond();
        let json = serde_json::to_string(&g).unwrap();
        let back: Srg = serde_json::from_str(&json).unwrap();
        assert_eq!(back.node_count(), g.node_count());
        assert_eq!(back.edge_count(), g.edge_count());
        assert_eq!(
            back.successors(NodeId::new(0)),
            g.successors(NodeId::new(0))
        );
    }
}
