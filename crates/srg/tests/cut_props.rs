//! Property suite for the sharding planner (`genie_srg::shard`):
//! random layered DAGs and transformer-shaped graphs, arbitrary
//! `ShardSpec`s, three invariants.
//!
//! 1. **Cover exactly once** — `partition` assigns every node exactly
//!    one in-range shard id.
//! 2. **Cuts ≡ collectives** — `insert_collectives` splices exactly one
//!    collective per cut edge, keeps the graph acyclic, and places each
//!    collective on the consuming shard.
//! 3. **Round trip** — `recompose` restores the original graph
//!    structure bit-for-bit.

use genie_srg::shard::{
    cut_edges, insert_collectives, partition, recompose, same_structure, shard_subgraphs,
    ShardSpec, ATTR_TP_RANK,
};
use genie_srg::traverse::topo_order;
use genie_srg::{ElemType, Node, NodeId, OpKind, Srg, TensorMeta};
use proptest::prelude::*;

fn meta(cols: usize) -> TensorMeta {
    TensorMeta::new([2, cols.max(1)], ElemType::F32)
}

/// A random layered DAG shaped like a captured model: an input, then
/// `layers` blocks tagged `h.<i>`, each with `width` nodes carrying
/// tensor-parallel ranks, wired forward (within-layer fan-in plus a
/// skip edge now and then), then an output.
fn layered_dag(layers: usize, width: usize, ranks: u32, edge_bits: u64) -> Srg {
    let mut g = Srg::new("prop");
    let input = g.add_node(Node::new(NodeId::new(0), OpKind::Input, "in"));
    let mut prev: Vec<NodeId> = vec![input];
    let mut bits = edge_bits;
    for l in 0..layers {
        let mut cur = Vec::new();
        for w in 0..width {
            let rank = (w as u32) % ranks.max(1);
            let n = g.add_node(
                Node::new(NodeId::new(0), OpKind::MatMul, format!("mm{l}_{w}"))
                    .with_module_path(format!("h.{l}.mlp"))
                    .with_attr(ATTR_TP_RANK, rank.to_string()),
            );
            // Always at least one in-edge from the previous layer;
            // extra fan-in decided by the bit stream.
            g.connect(prev[w % prev.len()], n, meta(w + 1));
            if prev.len() > 1 && (bits & 1) == 1 {
                g.connect(prev[(w + 1) % prev.len()], n, meta(w + 2));
            }
            bits = bits.rotate_right(1);
            cur.push(n);
        }
        prev = cur;
    }
    let out = g.add_node(Node::new(NodeId::new(0), OpKind::Output, "out"));
    for (i, &n) in prev.iter().enumerate() {
        if i == 0 || (bits >> i) & 1 == 1 {
            g.connect(n, out, meta(i + 1));
        }
    }
    g
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn partition_covers_every_node_exactly_once(
        layers in 1usize..6,
        width in 1usize..5,
        pp in 1u32..5,
        tp in 1u32..5,
        edge_bits in any::<u64>(),
    ) {
        let g = layered_dag(layers, width, tp, edge_bits);
        let spec = ShardSpec::new(pp, tp);
        let part = partition(&g, &spec);
        prop_assert!(part.covers_exactly_once(&g));
        // The per-shard node sets tile the graph: disjoint by
        // construction of a map, and their sizes sum to the total.
        let total: usize = (0..spec.shards())
            .map(|s| part.shard_nodes(s).len())
            .sum();
        prop_assert_eq!(total, g.node_count());
        // Induced subgraphs agree with the assignment.
        let subs = shard_subgraphs(&g, &part);
        prop_assert_eq!(subs.len(), spec.shards() as usize);
        let sub_total: usize = subs.iter().map(|(sg, _)| sg.node_count()).sum();
        prop_assert_eq!(sub_total, g.node_count());
    }

    #[test]
    fn collectives_are_exactly_the_cut_edges(
        layers in 1usize..6,
        width in 1usize..5,
        pp in 1u32..5,
        tp in 1u32..5,
        edge_bits in any::<u64>(),
    ) {
        let g = layered_dag(layers, width, tp, edge_bits);
        let part = partition(&g, &ShardSpec::new(pp, tp));
        let cuts = cut_edges(&g, &part);
        let sh = insert_collectives(&g, &part);
        // One collective per cut edge, no extras, DAG preserved.
        prop_assert_eq!(sh.collectives.len(), cuts.len());
        prop_assert_eq!(sh.srg.node_count(), g.node_count() + cuts.len());
        prop_assert_eq!(
            sh.srg.edge_count(),
            g.edge_count() + cuts.len(),
            "each cut edge becomes two hops"
        );
        prop_assert!(topo_order(&sh.srg).is_ok());
        for (&cut, &coll) in &sh.collectives {
            prop_assert!(cuts.contains(&cut));
            // The collective runs on the consuming shard and bridges
            // exactly the shards of the original endpoints.
            let hop_out = sh.srg.edges().find(|e| e.src == coll).unwrap();
            prop_assert_eq!(sh.assignment[&coll], sh.assignment[&hop_out.dst]);
            let hop_in = sh.srg.in_edges(coll).next().unwrap();
            prop_assert!(
                part.assignment[&hop_in.src] != sh.assignment[&coll],
                "collective must bridge distinct shards"
            );
        }
        // Single-device spec: nothing to cut, nothing spliced.
        if pp == 1 && tp == 1 {
            prop_assert!(sh.collectives.is_empty());
        }
    }

    #[test]
    fn recompose_round_trips_bit_for_bit(
        layers in 1usize..6,
        width in 1usize..5,
        pp in 1u32..5,
        tp in 1u32..5,
        edge_bits in any::<u64>(),
    ) {
        let g = layered_dag(layers, width, tp, edge_bits);
        let part = partition(&g, &ShardSpec::new(pp, tp));
        let sh = insert_collectives(&g, &part);
        let back = recompose(&sh);
        prop_assert!(
            same_structure(&g, &back),
            "recompose(insert_collectives(g)) != g"
        );
        // Idempotence through a second trip.
        let part2 = partition(&back, &ShardSpec::new(pp, tp));
        prop_assert_eq!(&part.assignment, &part2.assignment);
    }
}
