//! `genie-top`: a human-readable summary of a telemetry capture.
//!
//! Renders the metrics snapshot plus the span stream as the kind of
//! at-a-glance table an operator would watch — per-device busy/estimate/
//! skew, link traffic and queueing, and the hottest span names by
//! cumulative time.

use crate::metrics::MetricsSnapshot;
use crate::span::{SpanKind, SpanRecord};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Render the `genie-top` table from a metrics snapshot and span stream.
pub fn render_top(snapshot: &MetricsSnapshot, records: &[SpanRecord]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "=== genie-top ===");

    // --- Devices: busy vs estimate, skew ---------------------------------
    let mut devices: BTreeMap<String, (f64, f64, f64)> = BTreeMap::new();
    for g in &snapshot.gauges {
        let Some(dev) = g
            .labels
            .iter()
            .find(|(k, _)| k == "device")
            .map(|(_, v)| v.clone())
        else {
            continue;
        };
        let entry = devices.entry(dev).or_insert((0.0, 0.0, 0.0));
        match g.name.as_str() {
            "genie_sim_device_busy_seconds" => entry.0 = g.value,
            "genie_sim_device_estimate_seconds" => entry.1 = g.value,
            "genie_sim_kernel_skew_ratio" => entry.2 = g.value,
            _ => {}
        }
    }
    if !devices.is_empty() {
        let _ = writeln!(
            out,
            "\n{:<8} {:>12} {:>12} {:>8}",
            "DEVICE", "BUSY(s)", "EST(s)", "SKEW"
        );
        for (dev, (busy, est, skew)) in &devices {
            let _ = writeln!(out, "{dev:<8} {busy:>12.4} {est:>12.4} {skew:>7.2}x");
        }
    }

    // --- Counters worth a line -------------------------------------------
    let interesting = [
        "genie_capture_ops_total",
        "genie_schedule_plans_total",
        "genie_schedule_transfers_total",
        "genie_schedule_pinned_uploads_total",
        "genie_schedule_lint_findings_total",
        "genie_sim_kernels_total",
        "genie_sim_transfers_total",
        "genie_transport_calls_total",
        "genie_transport_bytes_total",
        "genie_transport_errors_total",
        "genie_tensor_kernel_dispatch_total",
    ];
    let mut any = false;
    for c in &snapshot.counters {
        if !interesting.contains(&c.name.as_str()) || c.value == 0 {
            continue;
        }
        if !any {
            let _ = writeln!(out, "\n{:<44} {:>14}", "COUNTER", "VALUE");
            any = true;
        }
        let labels = if c.labels.is_empty() {
            String::new()
        } else {
            let inner: Vec<String> = c.labels.iter().map(|(k, v)| format!("{k}={v}")).collect();
            format!("{{{}}}", inner.join(","))
        };
        let _ = writeln!(out, "{:<44} {:>14}", format!("{}{labels}", c.name), c.value);
    }

    // --- Kernel dispatch tiers -------------------------------------------
    // Roll the per-(op,path) dispatch counters up by path so the tier
    // mix (scalar/blocked/parallel/simd/int8/fp16) reads at a glance.
    let mut tiers: BTreeMap<&str, u64> = BTreeMap::new();
    for c in &snapshot.counters {
        if c.name != "genie_tensor_kernel_dispatch_total" || c.value == 0 {
            continue;
        }
        if let Some((_, path)) = c.labels.iter().find(|(k, _)| k == "path") {
            *tiers.entry(path.as_str()).or_insert(0) += c.value;
        }
    }
    if !tiers.is_empty() {
        let _ = writeln!(out, "\n{:<12} {:>14}", "TIER", "DISPATCHES");
        for (path, n) in &tiers {
            let _ = writeln!(out, "{path:<12} {n:>14}");
        }
    }

    // --- Scalar gauges worth a line --------------------------------------
    for g in &snapshot.gauges {
        if g.name == "genie_cost_cache_hit_rate" {
            let _ = writeln!(
                out,
                "\ncost-model cache hit rate: {:>5.1}%",
                g.value * 100.0
            );
        }
        if g.name == "genie_worker_pool_busy" {
            let _ = writeln!(out, "\nworker pool busy (peak jobs): {:.0}", g.value);
        }
    }

    // --- Latency histograms ----------------------------------------------
    let mut any_hist = false;
    for h in &snapshot.histograms {
        if h.count == 0 {
            continue;
        }
        if !any_hist {
            let _ = writeln!(
                out,
                "\n{:<36} {:>8} {:>12} {:>12} {:>12} {:>12}",
                "HISTOGRAM", "COUNT", "MEAN", "P50", "P99", "SUM"
            );
            any_hist = true;
        }
        let _ = writeln!(
            out,
            "{:<36} {:>8} {:>12.6} {:>12.6} {:>12.6} {:>12.6}",
            h.name,
            h.count,
            h.mean(),
            h.quantile(0.50),
            h.quantile(0.99),
            h.sum
        );
    }

    // --- Hot spans by cumulative time ------------------------------------
    let mut by_name: BTreeMap<&str, (u64, u64)> = BTreeMap::new();
    for r in records {
        if r.kind == SpanKind::Instant {
            continue;
        }
        let e = by_name.entry(&r.name).or_insert((0, 0));
        e.0 += 1;
        e.1 += r.dur_ns;
    }
    if !by_name.is_empty() {
        let mut hot: Vec<(&str, u64, u64)> =
            by_name.into_iter().map(|(n, (c, d))| (n, c, d)).collect();
        hot.sort_by_key(|h| std::cmp::Reverse(h.2));
        let _ = writeln!(out, "\n{:<36} {:>8} {:>14}", "SPAN", "COUNT", "TOTAL(ms)");
        for (name, count, dur_ns) in hot.into_iter().take(12) {
            let _ = writeln!(out, "{name:<36} {count:>8} {:>14.3}", dur_ns as f64 / 1e6);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::MetricsRegistry;
    use crate::span::{SemAttrs, Track};

    #[test]
    fn top_renders_devices_counters_and_spans() {
        let reg = MetricsRegistry::new();
        reg.gauge("genie_sim_device_busy_seconds", &[("device", "d0")])
            .set(1.5);
        reg.gauge("genie_sim_device_estimate_seconds", &[("device", "d0")])
            .set(1.0);
        reg.gauge("genie_sim_kernel_skew_ratio", &[("device", "d0")])
            .set(1.5);
        reg.counter("genie_sim_kernels_total", &[]).add(12);
        reg.counter(
            "genie_tensor_kernel_dispatch_total",
            &[("op", "matmul"), ("path", "blocked")],
        )
        .add(3);
        reg.counter(
            "genie_tensor_kernel_dispatch_total",
            &[("op", "attention"), ("path", "simd")],
        )
        .add(5);
        reg.counter(
            "genie_tensor_kernel_dispatch_total",
            &[("op", "matmul"), ("path", "simd")],
        )
        .add(2);
        reg.gauge("genie_cost_cache_hit_rate", &[]).set(0.875);
        reg.gauge("genie_worker_pool_busy", &[]).set(3.0);
        reg.histogram("genie_schedule_seconds", &[], &[0.1, 1.0])
            .observe(0.05);
        let records = vec![SpanRecord {
            id: 1,
            parent: None,
            name: "schedule".into(),
            category: "scheduler".into(),
            kind: SpanKind::Span,
            track: Track::Runtime,
            start_ns: 0,
            dur_ns: 2_000_000,
            attrs: SemAttrs::new(),
            thread: 1,
            seq: 0,
        }];
        let top = render_top(&reg.snapshot(), &records);
        assert!(top.contains("genie-top"), "{top}");
        assert!(top.contains("d0"), "{top}");
        assert!(top.contains("1.50x"), "{top}");
        assert!(top.contains("genie_sim_kernels_total"), "{top}");
        assert!(
            top.contains("genie_tensor_kernel_dispatch_total{op=matmul,path=blocked}"),
            "{top}"
        );
        assert!(top.contains("cost-model cache hit rate:  87.5%"), "{top}");
        assert!(top.contains("worker pool busy (peak jobs): 3"), "{top}");
        // Tier rollup sums per-op counters that share a path label.
        assert!(top.contains("TIER"), "{top}");
        assert!(top.contains(&format!("{:<12} {:>14}", "simd", 7)), "{top}");
        assert!(top.contains("genie_schedule_seconds"), "{top}");
        assert!(top.contains("schedule"), "{top}");
        // The histogram row carries interpolated quantiles, not proxies.
        assert!(top.contains("P50"), "{top}");
        assert!(top.contains("P99"), "{top}");
    }

    #[test]
    fn empty_capture_renders_header_only() {
        let top = render_top(&MetricsSnapshot::default(), &[]);
        assert!(top.starts_with("=== genie-top ==="));
    }
}
