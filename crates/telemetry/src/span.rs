//! Spans and instants: the event vocabulary of the telemetry layer.
//!
//! A [`SpanRecord`] is one timed (or instantaneous) event with the
//! *semantic* attributes Genie's thesis revolves around: which SRG node
//! caused it, in which phase, on which device, under which plan. Records
//! are plain serde data so they round-trip through JSON artifacts and
//! merge across processes.

use genie_srg::NodeId;
use serde::{Deserialize, Serialize};

/// Which display track an event belongs to. The Chrome/Perfetto exporter
/// maps tracks to process/thread rows: one row per device, one per link,
/// and one per runtime thread.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum Track {
    /// Host-side runtime work measured on the wall clock (capture,
    /// scheduling, transport, local execution).
    #[default]
    Runtime,
    /// A simulated accelerator, by device index.
    Device(u32),
    /// A simulated host-pair link.
    Link {
        /// Source host index.
        from: u32,
        /// Destination host index.
        to: u32,
    },
}

/// Whether an event has duration.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum SpanKind {
    /// A timed interval.
    #[default]
    Span,
    /// A zero-duration marker (policy decision, lint finding, failure).
    Instant,
}

/// Semantic attributes carried by every span. All fields are optional —
/// a transport frame counter knows nothing about SRG nodes — but the
/// point of the layer is that most execution events *can* name the graph
/// entity that caused them.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct SemAttrs {
    /// The SRG node that caused this event.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub node: Option<NodeId>,
    /// Execution phase (e.g. `llm_decode`), from the node's annotation.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub phase: Option<String>,
    /// Data modality (text / vision / tabular / …).
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub modality: Option<String>,
    /// Device index the event ran on.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub device: Option<u32>,
    /// Plan label (`<graph>@<policy>`) this event executed under.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub plan: Option<String>,
    /// Serving-request id this event is causally attributed to.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub request: Option<u64>,
    /// Span id of the causal parent *across* threads or layers (the
    /// `parent` field on [`SpanRecord`] only links same-thread nesting).
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub cause: Option<u64>,
    /// Free-form key/value attributes.
    #[serde(default, skip_serializing_if = "Vec::is_empty")]
    pub extra: Vec<(String, String)>,
}

impl SemAttrs {
    /// Empty attribute set.
    pub fn new() -> Self {
        SemAttrs::default()
    }

    /// Attach the causing SRG node.
    pub fn node(mut self, id: NodeId) -> Self {
        self.node = Some(id);
        self
    }

    /// Attach the phase annotation.
    pub fn phase(mut self, phase: impl Into<String>) -> Self {
        self.phase = Some(phase.into());
        self
    }

    /// Attach the modality annotation.
    pub fn modality(mut self, modality: impl Into<String>) -> Self {
        self.modality = Some(modality.into());
        self
    }

    /// Attach the executing device.
    pub fn device(mut self, device: u32) -> Self {
        self.device = Some(device);
        self
    }

    /// Attach the plan label.
    pub fn plan(mut self, plan: impl Into<String>) -> Self {
        self.plan = Some(plan.into());
        self
    }

    /// Attach the causing serving request.
    pub fn request(mut self, request: u64) -> Self {
        self.request = Some(request);
        self
    }

    /// Attach the cross-layer causal parent span id.
    pub fn cause(mut self, span_id: u64) -> Self {
        self.cause = Some(span_id);
        self
    }

    /// Attach a free-form attribute.
    pub fn with(mut self, key: impl Into<String>, value: impl Into<String>) -> Self {
        self.extra.push((key.into(), value.into()));
        self
    }
}

/// One recorded event.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct SpanRecord {
    /// Process-unique span id.
    pub id: u64,
    /// Enclosing span, when one was active on the recording thread.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub parent: Option<u64>,
    /// Event name (span taxonomy: `capture`, `schedule`, `sim.kernel`, …).
    pub name: String,
    /// Coarse category used for filtering and Chrome's `cat` field.
    pub category: String,
    /// Interval or marker.
    #[serde(default)]
    pub kind: SpanKind,
    /// Display track.
    #[serde(default)]
    pub track: Track,
    /// Start time in nanoseconds. Runtime tracks measure from the
    /// collector's epoch on the wall clock; simulated tracks carry
    /// simulation time. The exporter keeps the clock domains on separate
    /// process rows so they never visually interleave.
    pub start_ns: u64,
    /// Duration in nanoseconds (zero for instants).
    pub dur_ns: u64,
    /// Semantic attributes.
    #[serde(default)]
    pub attrs: SemAttrs,
    /// Recording thread (hashed os id), for runtime track rows.
    #[serde(default)]
    pub thread: u64,
    /// Collector-assigned monotone sequence number; used by tests to
    /// assert lossless collection under contention.
    #[serde(default)]
    pub seq: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_roundtrips_through_json() {
        let rec = SpanRecord {
            id: 7,
            parent: Some(3),
            name: "sim.kernel".into(),
            category: "backend".into(),
            kind: SpanKind::Span,
            track: Track::Device(2),
            start_ns: 1_000,
            dur_ns: 500,
            attrs: SemAttrs::new()
                .node(NodeId::new(42))
                .phase("llm_decode")
                .device(2)
                .plan("decode@semantics_aware")
                .with("label", "matmul"),
            thread: 1,
            seq: 9,
        };
        let json = serde_json::to_string(&rec).unwrap();
        let back: SpanRecord = serde_json::from_str(&json).unwrap();
        assert_eq!(back, rec);
        assert_eq!(back.attrs.node, Some(NodeId::new(42)));
    }

    #[test]
    fn optional_fields_are_omitted_and_defaulted() {
        let rec = SpanRecord {
            id: 1,
            parent: None,
            name: "capture".into(),
            category: "frontend".into(),
            kind: SpanKind::Instant,
            track: Track::Runtime,
            start_ns: 0,
            dur_ns: 0,
            attrs: SemAttrs::new(),
            thread: 0,
            seq: 0,
        };
        let json = serde_json::to_string(&rec).unwrap();
        assert!(!json.contains("\"node\""), "{json}");
        assert!(!json.contains("\"parent\""), "{json}");
        // A minimal document still parses (serde defaults fill the rest).
        let min = r#"{"id":1,"name":"x","category":"c","start_ns":0,"dur_ns":0}"#;
        let back: SpanRecord = serde_json::from_str(min).unwrap();
        assert_eq!(back.kind, SpanKind::Span);
        assert_eq!(back.track, Track::Runtime);
    }

    #[test]
    fn request_attribution_roundtrips_and_is_omitted_when_absent() {
        let attrs = SemAttrs::new().request(42).cause(7);
        let json = serde_json::to_string(&attrs).unwrap();
        let back: SemAttrs = serde_json::from_str(&json).unwrap();
        assert_eq!(back.request, Some(42));
        assert_eq!(back.cause, Some(7));
        let bare = serde_json::to_string(&SemAttrs::new()).unwrap();
        assert!(!bare.contains("\"request\""), "{bare}");
        assert!(!bare.contains("\"cause\""), "{bare}");
    }

    #[test]
    fn link_track_roundtrip() {
        let t = Track::Link { from: 0, to: 3 };
        let json = serde_json::to_string(&t).unwrap();
        assert_eq!(serde_json::from_str::<Track>(&json).unwrap(), t);
    }
}
