//! Causal request tracing and critical-path blame analysis.
//!
//! This module is the "why was it slow?" layer on top of the span
//! collector. It has three parts:
//!
//! 1. **[`TraceCtx`]** — a request-scoped trace context (request id +
//!    causal parent span) carried in a thread-local and propagated in
//!    the transport wire envelope, so spans and sim-trace events
//!    recorded anywhere in the stack can be attributed to the serving
//!    request that caused them.
//! 2. **A neutral causal trace document** ([`CausalTraceDoc`]) —
//!    request lifecycle events plus per-lane [`StepSlice`] time
//!    decompositions on the virtual clock. The serving engine emits
//!    it; this module only consumes it, so the dependency arrow stays
//!    `serving -> telemetry`.
//! 3. **[`analyze`]** — reconstructs each request's causal chain,
//!    extracts its critical path, and produces an exact integer-ns
//!    blame breakdown (queue / compute / transfer / fault /
//!    re-prefill) whose segments tile `[arrival, finished]` with no
//!    gaps, so blamed time sums to the observed TTLT *exactly*.
//!    [`WhatIf`] replays a critical path under hypothetical changes
//!    (faster link, zero faults, infinite lanes) to bound speedup.
//!
//! The blame taxonomy: every nanosecond of a request's lifetime is in
//! exactly one bucket. Queue-wait covers both pre-admission waiting
//! and intra-step synchronization residue (time a lane spent waiting
//! for the slowest lane of a barrier step, plus integer-rounding
//! residue). Fault covers derate inflation, jitter, and outage stalls.
//! A re-prefill step's compute *and* transfer are blamed to
//! `reprefill`: that work exists only because an eviction destroyed
//! KV state.

use std::cell::Cell;
use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

// ---------------------------------------------------------------------------
// Trace context propagation
// ---------------------------------------------------------------------------

/// Request-scoped causal context, propagated across layer boundaries
/// (and serialized into the transport wire envelope).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceCtx {
    /// Serving-request id this work is performed on behalf of.
    pub request: u64,
    /// Span id of the causal parent, or 0 when unknown.
    pub parent_span: u64,
}

impl TraceCtx {
    /// Context for `request` with no known parent span.
    pub fn for_request(request: u64) -> Self {
        TraceCtx {
            request,
            parent_span: 0,
        }
    }
}

thread_local! {
    static CURRENT: Cell<Option<TraceCtx>> = const { Cell::new(None) };
}

/// The ambient trace context of the calling thread, if any.
pub fn current() -> Option<TraceCtx> {
    CURRENT.with(|c| c.get())
}

/// Replace the calling thread's ambient trace context, returning the
/// previous one (pass it back to restore, or use [`with_ctx`]).
pub fn set_current(ctx: Option<TraceCtx>) -> Option<TraceCtx> {
    CURRENT.with(|c| c.replace(ctx))
}

/// RAII guard restoring the previous ambient context on drop.
pub struct CtxGuard {
    prev: Option<TraceCtx>,
}

impl Drop for CtxGuard {
    fn drop(&mut self) {
        set_current(self.prev.take());
    }
}

/// Install `ctx` as the calling thread's ambient context for the
/// lifetime of the returned guard.
pub fn with_ctx(ctx: TraceCtx) -> CtxGuard {
    CtxGuard {
        prev: set_current(Some(ctx)),
    }
}

// ---------------------------------------------------------------------------
// Causal trace document
// ---------------------------------------------------------------------------

/// Request lifecycle transition kinds, mirrored (dependency-free) from
/// the serving engine's event log.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum CausalEventKind {
    /// Request entered the admission queue.
    Arrive,
    /// Request was admitted onto a lane.
    Admit {
        /// Lane index the request was admitted onto.
        lane: u32,
    },
    /// Request was evicted mid-decode and re-queued.
    Preempt,
    /// Request rebuilt evicted KV state from prompt + prefix.
    Reprefill,
    /// The request's KV prefix started migrating between hosts
    /// (prefill/decode disaggregation).
    MigrateStart {
        /// Source lane (host) index.
        from: u32,
        /// Destination lane (host) index.
        to: u32,
    },
    /// The migrating KV prefix landed on the destination host.
    MigrateDone,
    /// The migration was severed mid-flight; the KV prefix is lost and
    /// the request falls back to lineage re-prefill.
    MigrateFail,
    /// Request finished its final token.
    Complete,
    /// Request was shed without completing.
    Shed,
}

/// A single request lifecycle transition on the virtual clock.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct CausalEvent {
    /// Virtual-clock timestamp in nanoseconds.
    pub at_ns: u64,
    /// Serving-request id.
    pub request: u64,
    /// What happened.
    pub kind: CausalEventKind,
}

/// The phase a batch member was in during one engine step.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum MemberPhase {
    /// First KV build over the prompt.
    Prefill,
    /// KV rebuild after eviction (prompt + generated prefix).
    Reprefill,
    /// Steady-state single-token decode.
    Decode,
}

/// One request's participation in one step.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct StepMember {
    /// Serving-request id.
    pub request: u64,
    /// The phase this member was in for this step.
    pub phase: MemberPhase,
}

/// Per-lane time decomposition of one barrier step, in integer
/// nanoseconds on the virtual clock.
///
/// `end_ns - start_ns` is the *global* step duration (all lanes sync
/// at the barrier); `compute_ns + net_latency_ns + net_payload_ns +
/// fault_ns <= end_ns - start_ns`, and the residue is synchronization
/// wait (blamed to queue). Produced via [`StepSlice::from_secs`],
/// which clamps so the invariant holds bit-stably.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct StepSlice {
    /// Lane (device) index this slice describes.
    pub lane: u32,
    /// Engine step index (0-based).
    pub step: u64,
    /// Step start on the virtual clock, ns.
    pub start_ns: u64,
    /// Global (barrier) step end on the virtual clock, ns.
    pub end_ns: u64,
    /// Roofline compute time of this lane's batch, ns.
    pub compute_ns: u64,
    /// Fixed per-RPC link latency (rounds x 2 x one-way), ns.
    pub net_latency_ns: u64,
    /// Serialization time of the step payload on the link, ns.
    pub net_payload_ns: u64,
    /// Fault-induced time: derate inflation + jitter + outage stall, ns.
    pub fault_ns: u64,
    /// Collective time: all_reduce / all_gather / activation-send link
    /// traffic of a sharded tenant's step, ns. Zero for unsharded runs
    /// (and for traces recorded before sharding existed).
    #[serde(default)]
    pub collective_ns: u64,
    /// Batch members resident on this lane for this step.
    pub members: Vec<StepMember>,
}

impl StepSlice {
    /// Build a slice from f64 second components, converting to integer
    /// ns with deterministic clamping: components are rounded in a
    /// fixed order (compute, latency, payload, fault) and each is
    /// capped by the nanoseconds still unassigned inside the step, so
    /// the sum can never exceed the step duration regardless of
    /// float rounding.
    #[allow(clippy::too_many_arguments)]
    pub fn from_secs(
        lane: u32,
        step: u64,
        start_ns: u64,
        end_ns: u64,
        compute_s: f64,
        net_latency_s: f64,
        net_payload_s: f64,
        fault_s: f64,
        members: Vec<StepMember>,
    ) -> Self {
        let dur = end_ns.saturating_sub(start_ns);
        let mut left = dur;
        let mut take = |secs: f64| -> u64 {
            let ns = ((secs.max(0.0)) * 1e9).round() as u64;
            let got = ns.min(left);
            left -= got;
            got
        };
        let compute_ns = take(compute_s);
        let net_latency_ns = take(net_latency_s);
        let net_payload_ns = take(net_payload_s);
        let fault_ns = take(fault_s);
        StepSlice {
            lane,
            step,
            start_ns,
            end_ns,
            compute_ns,
            net_latency_ns,
            net_payload_ns,
            fault_ns,
            collective_ns: 0,
            members,
        }
    }

    /// Assign `secs` of this step to collective traffic, clamped (like
    /// every other component) by the nanoseconds still unassigned, so
    /// the tiling invariant survives float rounding.
    pub fn with_collective(mut self, secs: f64) -> Self {
        let ns = ((secs.max(0.0)) * 1e9).round() as u64;
        self.collective_ns = ns.min(self.sync_ns());
        self
    }

    /// Synchronization residue: step time not assigned to any
    /// component (waiting for the slowest lane at the barrier).
    pub fn sync_ns(&self) -> u64 {
        (self.end_ns - self.start_ns)
            - self.compute_ns
            - self.net_latency_ns
            - self.net_payload_ns
            - self.fault_ns
            - self.collective_ns
    }
}

/// The full causal record of one serving run: lifecycle events plus
/// per-step slices. Everything [`analyze`] needs, nothing more.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CausalTraceDoc {
    /// Request lifecycle transitions, in virtual-clock order.
    pub events: Vec<CausalEvent>,
    /// Per-lane step decompositions, in step order.
    pub slices: Vec<StepSlice>,
}

// ---------------------------------------------------------------------------
// Blame analysis
// ---------------------------------------------------------------------------

/// Exact integer-ns blame totals for one request. The six buckets
/// tile `[arrival, finished]`: their sum equals the observed TTLT.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct BlameBreakdown {
    /// Admission-queue wait + barrier synchronization wait, ns.
    pub queue_ns: u64,
    /// Compute in prefill-phase steps, ns.
    pub compute_prefill_ns: u64,
    /// Compute in decode-phase steps, ns.
    pub compute_decode_ns: u64,
    /// Fixed link latency in non-reprefill steps, ns.
    pub net_latency_ns: u64,
    /// Payload serialization in non-reprefill steps, ns.
    pub net_payload_ns: u64,
    /// Fault-induced time (derate, jitter, outage stall), ns.
    pub fault_ns: u64,
    /// Compute + transfer of re-prefill steps (work that exists only
    /// because an eviction destroyed KV state), ns.
    pub reprefill_ns: u64,
    /// KV-prefix migration time between prefill and decode hosts
    /// (disaggregated serving): the interval between `MigrateStart`
    /// and `MigrateDone`/`MigrateFail`, ns.
    pub migrate_ns: u64,
    /// Collective time (all_reduce / all_gather / activation sends) of
    /// sharded steps, ns.
    #[serde(default)]
    pub collective_ns: u64,
}

impl BlameBreakdown {
    /// Total blamed nanoseconds (equals TTLT by construction).
    pub fn total_ns(&self) -> u64 {
        self.queue_ns
            + self.compute_prefill_ns
            + self.compute_decode_ns
            + self.net_latency_ns
            + self.net_payload_ns
            + self.fault_ns
            + self.reprefill_ns
            + self.migrate_ns
            + self.collective_ns
    }

    /// Link-transfer nanoseconds (latency + payload).
    pub fn transfer_ns(&self) -> u64 {
        self.net_latency_ns + self.net_payload_ns
    }

    /// Collapse to the six headline fractions (summing to 1 ± a few
    /// float ulps). A zero-duration request is all queue by fiat.
    pub fn fractions(&self) -> BlameFractions {
        let total = self.total_ns();
        if total == 0 {
            return BlameFractions {
                queue: 1.0,
                compute: 0.0,
                transfer: 0.0,
                fault: 0.0,
                reprefill: 0.0,
                migrate: 0.0,
                collective: 0.0,
            };
        }
        let t = total as f64;
        BlameFractions {
            queue: self.queue_ns as f64 / t,
            compute: (self.compute_prefill_ns + self.compute_decode_ns) as f64 / t,
            transfer: self.transfer_ns() as f64 / t,
            fault: self.fault_ns as f64 / t,
            reprefill: self.reprefill_ns as f64 / t,
            migrate: self.migrate_ns as f64 / t,
            collective: self.collective_ns as f64 / t,
        }
    }
}

/// Headline blame fractions of one request (or an aggregate profile).
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct BlameFractions {
    /// Queue-wait share (admission queue + barrier sync).
    pub queue: f64,
    /// Compute share (prefill + decode roofline time).
    pub compute: f64,
    /// Link-transfer share (latency + payload).
    pub transfer: f64,
    /// Fault-induced share (derate, jitter, outage stall).
    pub fault: f64,
    /// KV re-prefill share (eviction-induced rework).
    pub reprefill: f64,
    /// KV-migration share (prefill→decode prefix shipping).
    pub migrate: f64,
    /// Collective share (sharded all_reduce / all_gather / sends).
    #[serde(default)]
    pub collective: f64,
}

impl BlameFractions {
    /// Sum of the fractions (should be ~1.0 for a real request).
    pub fn sum(&self) -> f64 {
        self.queue
            + self.compute
            + self.transfer
            + self.fault
            + self.reprefill
            + self.migrate
            + self.collective
    }
}

/// What a critical-path segment was doing.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum SegmentKind {
    /// Waiting in the admission queue (or re-queued after eviction).
    Wait,
    /// Member of a prefill-phase step.
    Prefill,
    /// Member of a decode-phase step.
    Decode,
    /// Member of a re-prefill step (eviction recovery).
    Reprefill,
    /// KV prefix in flight between prefill and decode hosts.
    Migrate,
}

/// One contiguous span of a request's critical path. Segments tile
/// `[arrival, finished]` in order with no gaps.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct CriticalSegment {
    /// What the request was doing.
    pub kind: SegmentKind,
    /// Segment start, virtual-clock ns.
    pub start_ns: u64,
    /// Segment end, virtual-clock ns.
    pub end_ns: u64,
    /// Lane the step ran on (None for queue waits).
    pub lane: Option<u32>,
}

/// Full per-request analysis: critical path + exact blame.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct RequestBlame {
    /// Serving-request id.
    pub request: u64,
    /// Arrival on the virtual clock, ns.
    pub arrival_ns: u64,
    /// Final-token completion on the virtual clock, ns.
    pub finished_ns: u64,
    /// Time-to-last-token: `finished_ns - arrival_ns`.
    pub ttlt_ns: u64,
    /// Exact integer-ns blame totals (sum == `ttlt_ns`).
    pub blame: BlameBreakdown,
    /// Headline fractions of `blame`.
    pub fractions: BlameFractions,
    /// The request's critical path, tiling `[arrival, finished]`.
    pub critical_path: Vec<CriticalSegment>,
}

/// Aggregate result of [`analyze`]: per-request blame plus p50/p99
/// blame profiles across all completed requests.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct BlameReport {
    /// Completed requests in id order.
    pub requests: Vec<RequestBlame>,
    /// Requests shed without completing (no blame assigned).
    pub shed: u64,
    /// Per-dimension median of request fractions. Dimensions are
    /// ranked independently, so a profile row need not sum to 1.
    pub profile_p50: BlameFractions,
    /// Per-dimension p99 of request fractions.
    pub profile_p99: BlameFractions,
}

/// Nearest-rank percentile of an unsorted sample (p in [0,1]).
fn percentile(values: &mut [f64], p: f64) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    values.sort_by(|a, b| a.partial_cmp(b).expect("blame fractions are finite"));
    let idx = ((p * (values.len() as f64 - 1.0)).round() as usize).min(values.len() - 1);
    values[idx]
}

fn profile(requests: &[RequestBlame], p: f64) -> BlameFractions {
    let dim = |f: &dyn Fn(&BlameFractions) -> f64| -> f64 {
        let mut vs: Vec<f64> = requests.iter().map(|r| f(&r.fractions)).collect();
        percentile(&mut vs, p)
    };
    BlameFractions {
        queue: dim(&|f| f.queue),
        compute: dim(&|f| f.compute),
        transfer: dim(&|f| f.transfer),
        fault: dim(&|f| f.fault),
        reprefill: dim(&|f| f.reprefill),
        migrate: dim(&|f| f.migrate),
        collective: dim(&|f| f.collective),
    }
}

/// Tile the gap `[from, to)` of a request's timeline: portions covered
/// by a KV-migration interval are blamed (and path-segmented) as
/// `Migrate`, the rest as queue wait. `intervals` must be sorted by
/// start and non-overlapping (the engine serializes migrations per
/// request).
fn fill_gap(
    from: u64,
    to: u64,
    intervals: &[(u64, u64)],
    blame: &mut BlameBreakdown,
    path: &mut Vec<CriticalSegment>,
) {
    let mut cursor = from;
    for &(ms, me) in intervals {
        let s = ms.max(cursor);
        let e = me.min(to);
        if e <= cursor || s >= to {
            continue;
        }
        if s > cursor {
            blame.queue_ns += s - cursor;
            path.push(CriticalSegment {
                kind: SegmentKind::Wait,
                start_ns: cursor,
                end_ns: s,
                lane: None,
            });
        }
        blame.migrate_ns += e - s;
        path.push(CriticalSegment {
            kind: SegmentKind::Migrate,
            start_ns: s,
            end_ns: e,
            lane: None,
        });
        cursor = e;
    }
    if cursor < to {
        blame.queue_ns += to - cursor;
        path.push(CriticalSegment {
            kind: SegmentKind::Wait,
            start_ns: cursor,
            end_ns: to,
            lane: None,
        });
    }
}

/// Reconstruct every completed request's causal chain from `doc`,
/// extract its critical path, and compute exact blame.
///
/// Panics if the document is internally inconsistent (a request's
/// step slices overlap or extend past its completion): the engine
/// emits contiguous barrier steps, so any gap is a bug worth
/// surfacing loudly rather than absorbing.
pub fn analyze(doc: &CausalTraceDoc) -> BlameReport {
    // Arrival / completion / shed per request.
    let mut arrival: BTreeMap<u64, u64> = BTreeMap::new();
    let mut finished: BTreeMap<u64, u64> = BTreeMap::new();
    let mut shed = 0u64;
    // Per-request KV-migration intervals [start, done/fail), paired up
    // in log order (the engine serializes migrations per request).
    let mut migrations: BTreeMap<u64, Vec<(u64, u64)>> = BTreeMap::new();
    let mut open_migration: BTreeMap<u64, u64> = BTreeMap::new();
    for ev in &doc.events {
        match ev.kind {
            CausalEventKind::Arrive => {
                arrival.entry(ev.request).or_insert(ev.at_ns);
            }
            CausalEventKind::Complete => {
                finished.insert(ev.request, ev.at_ns);
            }
            CausalEventKind::Shed => shed += 1,
            CausalEventKind::MigrateStart { .. } => {
                open_migration.insert(ev.request, ev.at_ns);
            }
            CausalEventKind::MigrateDone | CausalEventKind::MigrateFail => {
                if let Some(start) = open_migration.remove(&ev.request) {
                    migrations
                        .entry(ev.request)
                        .or_default()
                        .push((start, ev.at_ns.max(start)));
                }
            }
            _ => {}
        }
    }
    for ivals in migrations.values_mut() {
        ivals.sort_unstable();
    }

    // Per-request step participation, in step order.
    let mut steps: BTreeMap<u64, Vec<(&StepSlice, MemberPhase)>> = BTreeMap::new();
    for slice in &doc.slices {
        for m in &slice.members {
            steps.entry(m.request).or_default().push((slice, m.phase));
        }
    }

    let mut requests = Vec::new();
    for (&request, &finished_ns) in &finished {
        let arrival_ns = *arrival
            .get(&request)
            .unwrap_or_else(|| panic!("request {request} completed without arriving"));
        let mut blame = BlameBreakdown::default();
        let mut path: Vec<CriticalSegment> = Vec::new();
        let mut cursor = arrival_ns;
        let mut chain = steps.remove(&request).unwrap_or_default();
        chain.sort_by_key(|(s, _)| s.start_ns);
        let no_migrations: Vec<(u64, u64)> = Vec::new();
        let ivals: &[(u64, u64)] = migrations
            .get(&request)
            .map(|v| v.as_slice())
            .unwrap_or(&no_migrations);
        for (slice, phase) in chain {
            assert!(
                slice.start_ns >= cursor && slice.end_ns <= finished_ns,
                "request {request}: step slice [{}, {}] escapes [{cursor}, {finished_ns}]",
                slice.start_ns,
                slice.end_ns,
            );
            if slice.start_ns > cursor {
                fill_gap(cursor, slice.start_ns, ivals, &mut blame, &mut path);
            }
            blame.queue_ns += slice.sync_ns();
            blame.fault_ns += slice.fault_ns;
            blame.collective_ns += slice.collective_ns;
            let kind = match phase {
                MemberPhase::Reprefill => {
                    blame.reprefill_ns +=
                        slice.compute_ns + slice.net_latency_ns + slice.net_payload_ns;
                    SegmentKind::Reprefill
                }
                MemberPhase::Prefill => {
                    blame.compute_prefill_ns += slice.compute_ns;
                    blame.net_latency_ns += slice.net_latency_ns;
                    blame.net_payload_ns += slice.net_payload_ns;
                    SegmentKind::Prefill
                }
                MemberPhase::Decode => {
                    blame.compute_decode_ns += slice.compute_ns;
                    blame.net_latency_ns += slice.net_latency_ns;
                    blame.net_payload_ns += slice.net_payload_ns;
                    SegmentKind::Decode
                }
            };
            path.push(CriticalSegment {
                kind,
                start_ns: slice.start_ns,
                end_ns: slice.end_ns,
                lane: Some(slice.lane),
            });
            cursor = slice.end_ns;
        }
        if cursor < finished_ns {
            // Trailing gap: migration transfers land between steps, so a
            // request that migrated right before completing (or whose
            // completion was recorded after the last barrier) spends this
            // window in Migrate and/or Wait.
            fill_gap(cursor, finished_ns, ivals, &mut blame, &mut path);
        }
        let ttlt_ns = finished_ns - arrival_ns;
        assert_eq!(
            blame.total_ns(),
            ttlt_ns,
            "request {request}: blamed time must tile TTLT exactly"
        );
        requests.push(RequestBlame {
            request,
            arrival_ns,
            finished_ns,
            ttlt_ns,
            fractions: blame.fractions(),
            blame,
            critical_path: path,
        });
    }

    let profile_p50 = profile(&requests, 0.50);
    let profile_p99 = profile(&requests, 0.99);
    BlameReport {
        requests,
        shed,
        profile_p50,
        profile_p99,
    }
}

// ---------------------------------------------------------------------------
// What-if estimation
// ---------------------------------------------------------------------------

/// A hypothetical deployment change to replay a critical path under.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct WhatIf {
    /// Multiply link bandwidth by this factor (payload time divides).
    pub link_bandwidth_x: f64,
    /// Remove all fault-induced time (derate, jitter, outage stall).
    pub zero_faults: bool,
    /// Remove all queue-wait (admission queue + barrier sync), as if
    /// every request had a dedicated lane.
    pub infinite_lanes: bool,
}

impl Default for WhatIf {
    fn default() -> Self {
        WhatIf {
            link_bandwidth_x: 1.0,
            zero_faults: false,
            infinite_lanes: false,
        }
    }
}

impl WhatIf {
    /// The identity scenario (predicts the observed latency).
    pub fn observed() -> Self {
        WhatIf::default()
    }

    /// Scale link bandwidth by `x`.
    pub fn link_bandwidth(x: f64) -> Self {
        WhatIf {
            link_bandwidth_x: x,
            ..WhatIf::default()
        }
    }

    /// Remove all fault-induced time.
    pub fn zero_faults() -> Self {
        WhatIf {
            zero_faults: true,
            ..WhatIf::default()
        }
    }

    /// Remove all queue-wait.
    pub fn infinite_lanes() -> Self {
        WhatIf {
            infinite_lanes: true,
            ..WhatIf::default()
        }
    }

    /// Replay `r`'s critical path under this scenario, returning the
    /// predicted TTLT in ns. Monotone: removing time can only shrink
    /// the prediction, so `zero_faults` always predicts `<= ttlt_ns`.
    pub fn replay(&self, r: &RequestBlame) -> u64 {
        let b = &r.blame;
        let queue = if self.infinite_lanes { 0 } else { b.queue_ns };
        let fault = if self.zero_faults { 0 } else { b.fault_ns };
        let x = self.link_bandwidth_x.max(1e-9);
        let payload = (b.net_payload_ns as f64 / x).round() as u64;
        // KV migration and collectives are pure link traffic, so they
        // scale with bandwidth the same way step payload does.
        let migrate = (b.migrate_ns as f64 / x).round() as u64;
        let collective = (b.collective_ns as f64 / x).round() as u64;
        queue
            + b.compute_prefill_ns
            + b.compute_decode_ns
            + b.net_latency_ns
            + payload
            + fault
            + b.reprefill_ns
            + migrate
            + collective
    }
}

/// One scenario's aggregate prediction across a blame report.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct WhatIfDelta {
    /// Human-readable scenario label.
    pub scenario: String,
    /// Mean observed TTLT across requests, ns.
    pub observed_mean_ns: u64,
    /// Mean predicted TTLT across requests, ns.
    pub predicted_mean_ns: u64,
    /// `observed_mean_ns / predicted_mean_ns` (>= 1 for time-removing
    /// scenarios; the achievable-speedup bound).
    pub speedup: f64,
}

/// Replay every request in `report` under `w` and aggregate.
pub fn what_if(report: &BlameReport, label: &str, w: &WhatIf) -> WhatIfDelta {
    let n = report.requests.len().max(1) as u64;
    let observed: u64 = report.requests.iter().map(|r| r.ttlt_ns).sum::<u64>() / n;
    let predicted: u64 = report.requests.iter().map(|r| w.replay(r)).sum::<u64>() / n;
    WhatIfDelta {
        scenario: label.to_string(),
        observed_mean_ns: observed,
        predicted_mean_ns: predicted,
        speedup: observed as f64 / predicted.max(1) as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn doc_one_request() -> CausalTraceDoc {
        // arrive at 0, admitted at 100 (queue 100), prefill step
        // [100, 300] (compute 120, lat 20, pay 30, fault 10, sync 20),
        // decode step [300, 400] (compute 80, lat 10, pay 5, fault 0,
        // sync 5), complete at 400.
        CausalTraceDoc {
            events: vec![
                CausalEvent {
                    at_ns: 0,
                    request: 1,
                    kind: CausalEventKind::Arrive,
                },
                CausalEvent {
                    at_ns: 100,
                    request: 1,
                    kind: CausalEventKind::Admit { lane: 0 },
                },
                CausalEvent {
                    at_ns: 400,
                    request: 1,
                    kind: CausalEventKind::Complete,
                },
            ],
            slices: vec![
                StepSlice {
                    lane: 0,
                    step: 0,
                    start_ns: 100,
                    end_ns: 300,
                    compute_ns: 120,
                    net_latency_ns: 20,
                    net_payload_ns: 30,
                    fault_ns: 10,
                    collective_ns: 0,
                    members: vec![StepMember {
                        request: 1,
                        phase: MemberPhase::Prefill,
                    }],
                },
                StepSlice {
                    lane: 0,
                    step: 1,
                    start_ns: 300,
                    end_ns: 400,
                    compute_ns: 80,
                    net_latency_ns: 10,
                    net_payload_ns: 5,
                    fault_ns: 0,
                    collective_ns: 0,
                    members: vec![StepMember {
                        request: 1,
                        phase: MemberPhase::Decode,
                    }],
                },
            ],
        }
    }

    #[test]
    fn collective_time_is_blamed_and_scales_with_bandwidth() {
        // One decode step: 100 ns total, 40 compute, 30 collective, the
        // remaining 30 sync → queue. Collective must tile TTLT, show up
        // in fractions, and shrink under a what-if bandwidth bump.
        let mut doc = CausalTraceDoc::default();
        doc.events.push(CausalEvent {
            at_ns: 0,
            request: 1,
            kind: CausalEventKind::Arrive,
        });
        doc.events.push(CausalEvent {
            at_ns: 100,
            request: 1,
            kind: CausalEventKind::Complete,
        });
        let slice = StepSlice::from_secs(
            0,
            0,
            0,
            100,
            40e-9,
            0.0,
            0.0,
            0.0,
            vec![StepMember {
                request: 1,
                phase: MemberPhase::Decode,
            }],
        )
        .with_collective(30e-9);
        assert_eq!(slice.collective_ns, 30);
        assert_eq!(slice.sync_ns(), 30);
        doc.slices.push(slice);

        let report = analyze(&doc);
        let r = &report.requests[0];
        assert_eq!(r.blame.collective_ns, 30);
        assert_eq!(r.blame.total_ns(), r.ttlt_ns, "collective tiles TTLT");
        assert!((r.fractions.collective - 0.30).abs() < 1e-9);
        assert!((r.fractions.sum() - 1.0).abs() < 1e-9);

        // 3x link bandwidth: 30 ns of collective traffic becomes 10.
        let predicted = WhatIf::link_bandwidth(3.0).replay(r);
        assert_eq!(predicted, r.ttlt_ns - 20);
    }

    #[test]
    fn with_collective_clamps_to_unassigned_time() {
        // Only 10 ns are unassigned: a 50 ns collective claim clamps.
        let slice = StepSlice::from_secs(0, 0, 0, 100, 90e-9, 0.0, 0.0, 0.0, Vec::new())
            .with_collective(50e-9);
        assert_eq!(slice.collective_ns, 10);
        assert_eq!(slice.sync_ns(), 0);
    }

    #[test]
    fn blame_tiles_ttlt_exactly() {
        let report = analyze(&doc_one_request());
        assert_eq!(report.requests.len(), 1);
        let r = &report.requests[0];
        assert_eq!(r.ttlt_ns, 400);
        assert_eq!(r.blame.total_ns(), 400);
        // queue = 100 (wait) + 20 + 5 (sync) = 125
        assert_eq!(r.blame.queue_ns, 125);
        assert_eq!(r.blame.compute_prefill_ns, 120);
        assert_eq!(r.blame.compute_decode_ns, 80);
        assert_eq!(r.blame.transfer_ns(), 65);
        assert_eq!(r.blame.fault_ns, 10);
        assert_eq!(r.blame.reprefill_ns, 0);
        assert!((r.fractions.sum() - 1.0).abs() < 1e-9);
        // Critical path tiles [arrival, finished].
        assert_eq!(r.critical_path.first().unwrap().start_ns, 0);
        assert_eq!(r.critical_path.last().unwrap().end_ns, 400);
        for w in r.critical_path.windows(2) {
            assert_eq!(w[0].end_ns, w[1].start_ns, "no gaps on the path");
        }
    }

    #[test]
    fn reprefill_steps_are_blamed_to_reprefill_not_compute() {
        let mut doc = doc_one_request();
        doc.slices[1].members[0].phase = MemberPhase::Reprefill;
        let report = analyze(&doc);
        let r = &report.requests[0];
        assert_eq!(r.blame.compute_decode_ns, 0);
        assert_eq!(r.blame.reprefill_ns, 80 + 10 + 5);
        assert_eq!(r.blame.total_ns(), r.ttlt_ns);
    }

    #[test]
    fn what_if_replay_is_monotone_and_exact() {
        let report = analyze(&doc_one_request());
        let r = &report.requests[0];
        assert_eq!(WhatIf::observed().replay(r), r.ttlt_ns);
        assert_eq!(WhatIf::zero_faults().replay(r), r.ttlt_ns - 10);
        assert_eq!(WhatIf::infinite_lanes().replay(r), r.ttlt_ns - 125);
        // 2x bandwidth halves payload time (35 -> 18 after rounding).
        assert_eq!(WhatIf::link_bandwidth(2.0).replay(r), r.ttlt_ns - 17);
        for w in [
            WhatIf::zero_faults(),
            WhatIf::infinite_lanes(),
            WhatIf::link_bandwidth(4.0),
        ] {
            assert!(w.replay(r) <= r.ttlt_ns);
        }
    }

    #[test]
    fn from_secs_clamps_rounding_into_the_step() {
        // Components that round to more ns than the step holds must be
        // clamped, never overflow.
        let s = StepSlice::from_secs(0, 0, 0, 100, 60e-9, 30e-9, 30e-9, 30e-9, vec![]);
        assert_eq!(
            s.compute_ns + s.net_latency_ns + s.net_payload_ns + s.fault_ns,
            100
        );
        assert_eq!(s.compute_ns, 60);
        assert_eq!(s.net_latency_ns, 30);
        assert_eq!(s.net_payload_ns, 10);
        assert_eq!(s.fault_ns, 0);
        assert_eq!(s.sync_ns(), 0);
    }

    #[test]
    fn ctx_guard_restores_previous_context() {
        assert_eq!(current(), None);
        {
            let _a = with_ctx(TraceCtx::for_request(7));
            assert_eq!(current().unwrap().request, 7);
            {
                let _b = with_ctx(TraceCtx {
                    request: 9,
                    parent_span: 3,
                });
                assert_eq!(current().unwrap().request, 9);
            }
            assert_eq!(current().unwrap().request, 7);
        }
        assert_eq!(current(), None);
    }

    /// Insert a migration interval [300, 380] into the inter-step gap of
    /// a widened doc: prefill [100, 300], migrate [300, 380], decode
    /// [400, 500], complete at 500.
    fn doc_with_migration() -> CausalTraceDoc {
        let mut doc = doc_one_request();
        doc.slices[1].start_ns = 400;
        doc.slices[1].end_ns = 500;
        doc.events[2].at_ns = 500; // Complete
        doc.events.push(CausalEvent {
            at_ns: 300,
            request: 1,
            kind: CausalEventKind::MigrateStart { from: 1, to: 0 },
        });
        doc.events.push(CausalEvent {
            at_ns: 380,
            request: 1,
            kind: CausalEventKind::MigrateDone,
        });
        doc
    }

    #[test]
    fn migration_blame_tiles_the_gap_and_ttlt() {
        let report = analyze(&doc_with_migration());
        let r = &report.requests[0];
        assert_eq!(r.ttlt_ns, 500);
        assert_eq!(r.blame.total_ns(), 500);
        assert_eq!(r.blame.migrate_ns, 80);
        // queue = 100 (admission wait) + 20 (migrate->decode gap)
        //       + 20 + 5 (sync) = 145
        assert_eq!(r.blame.queue_ns, 145);
        assert!((r.fractions.sum() - 1.0).abs() < 1e-9);
        // Critical path still tiles [arrival, finished] with a Migrate
        // segment in the inter-step gap.
        assert_eq!(r.critical_path.first().unwrap().start_ns, 0);
        assert_eq!(r.critical_path.last().unwrap().end_ns, 500);
        for w in r.critical_path.windows(2) {
            assert_eq!(w[0].end_ns, w[1].start_ns, "no gaps on the path");
        }
        assert!(r
            .critical_path
            .iter()
            .any(|s| s.kind == SegmentKind::Migrate && s.start_ns == 300 && s.end_ns == 380));
    }

    #[test]
    fn failed_migration_interval_is_still_blamed_to_migrate() {
        let mut doc = doc_with_migration();
        // Replace MigrateDone with MigrateFail at the same timestamp;
        // the wire time until the severance is still migration blame.
        let last = doc.events.len() - 1;
        doc.events[last].kind = CausalEventKind::MigrateFail;
        let report = analyze(&doc);
        let r = &report.requests[0];
        assert_eq!(r.blame.migrate_ns, 80);
        assert_eq!(r.blame.total_ns(), r.ttlt_ns);
    }

    #[test]
    fn what_if_bandwidth_scales_migration_time() {
        let report = analyze(&doc_with_migration());
        let r = &report.requests[0];
        assert_eq!(WhatIf::observed().replay(r), r.ttlt_ns);
        // 2x bandwidth halves payload (35 -> 18 rounded) and migrate
        // (80 -> 40).
        assert_eq!(WhatIf::link_bandwidth(2.0).replay(r), r.ttlt_ns - 17 - 40);
    }

    #[test]
    fn shed_requests_are_counted_but_not_blamed() {
        let mut doc = doc_one_request();
        doc.events.push(CausalEvent {
            at_ns: 50,
            request: 2,
            kind: CausalEventKind::Arrive,
        });
        doc.events.push(CausalEvent {
            at_ns: 90,
            request: 2,
            kind: CausalEventKind::Shed,
        });
        let report = analyze(&doc);
        assert_eq!(report.shed, 1);
        assert_eq!(report.requests.len(), 1);
    }
}
