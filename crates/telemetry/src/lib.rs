//! # genie-telemetry — cross-layer observability for the Genie stack
//!
//! The paper's thesis is that *semantic context must survive the trip
//! from framework to fabric*. This crate is the measurement substrate
//! that makes the claim checkable: every layer (capture, scheduling,
//! simulation, transport) records spans, instants, and metrics that
//! carry the SRG node, phase, modality, device, and plan that caused
//! them — so a byte on the wire can be traced back to the graph entity
//! it serves.
//!
//! Three pieces:
//!
//! - [`collector::Collector`] + [`span::SpanRecord`] — a sharded,
//!   lock-cheap span sink with RAII guards, parent links, and semantic
//!   attributes ([`span::SemAttrs`]);
//! - [`metrics::MetricsRegistry`] — counters, gauges, and fixed-bucket
//!   histograms, snapshottable to JSON and Prometheus text exposition;
//! - exporters — [`export::ChromeTrace`] (Perfetto / `chrome://tracing`
//!   loadable JSON, one track per device and link) and
//!   [`summary::render_top`] (a `genie-top`-style operator table).
//!
//! ```
//! use genie_telemetry::{global, SemAttrs};
//!
//! {
//!     let mut span = global().collector.span("schedule", "scheduler");
//!     span.annotate(|a| a.plan = Some("decode@semantics_aware".into()));
//! }
//! global().metrics.counter("genie_schedule_plans_total", &[]).inc();
//! assert!(global().collector.len() >= 1);
//! ```
//!
//! Instrumented crates call [`global()`]; the collector is enabled by
//! default and cheap enough to leave on (one atomic branch when
//! disabled, a sharded push when enabled). Tools that want an isolated
//! capture construct their own [`Collector`]/[`MetricsRegistry`].

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod causal;
pub mod collector;
pub mod export;
pub mod metrics;
pub mod span;
pub mod summary;

pub use causal::{
    BlameBreakdown, BlameFractions, BlameReport, CausalTraceDoc, RequestBlame, StepSlice, TraceCtx,
    WhatIf,
};
pub use collector::{Collector, SpanGuard};
pub use export::{ChromeEvent, ChromeTrace};
pub use metrics::{
    Counter, Gauge, Histogram, MetricsRegistry, MetricsSnapshot, DEFAULT_TIME_BOUNDS, RATIO_BOUNDS,
};
pub use span::{SemAttrs, SpanKind, SpanRecord, Track};
pub use summary::render_top;

use std::sync::OnceLock;

/// The process-wide telemetry sinks used by instrumented crates.
pub struct Telemetry {
    /// Span/event collector.
    pub collector: Collector,
    /// Metrics registry.
    pub metrics: MetricsRegistry,
}

static GLOBAL: OnceLock<Telemetry> = OnceLock::new();

/// The process-global telemetry instance (created on first use). The
/// collector's ring-buffer evictions are mirrored to the
/// `genie_telemetry_dropped_total` counter so capacity pressure is
/// visible in every metrics snapshot.
pub fn global() -> &'static Telemetry {
    GLOBAL.get_or_init(|| {
        let collector = Collector::new();
        let metrics = MetricsRegistry::new();
        collector.attach_drop_counter(metrics.counter("genie_telemetry_dropped_total", &[]));
        Telemetry { collector, metrics }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn global_is_shared_and_usable() {
        let before = global().collector.len();
        {
            let _s = global().collector.span("test.span", "test");
        }
        assert!(global().collector.len() > before);
        global()
            .metrics
            .counter("genie_test_global_total", &[])
            .inc();
        assert!(
            global()
                .metrics
                .snapshot()
                .counter("genie_test_global_total", &[])
                .unwrap()
                >= 1
        );
    }
}
