//! The span collector: a sharded, lock-cheap sink for [`SpanRecord`]s.
//!
//! Hot paths (per-op capture, per-kernel simulation, per-frame transport)
//! must not serialize on one mutex. The collector keeps one buffer per
//! shard, picks a shard from the recording thread's id, and hands out a
//! global monotone sequence number from an atomic — so concurrent
//! recorders contend only when they hash to the same shard, and a drain
//! can still prove losslessness by checking the sequence.

use crate::metrics::Counter;
use crate::span::{SemAttrs, SpanKind, SpanRecord, Track};
use parking_lot::Mutex;
use std::collections::hash_map::DefaultHasher;
use std::collections::VecDeque;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

const SHARDS: usize = 16;

/// Process-global span id source, shared by all collectors so parent
/// links never collide across collector instances.
static NEXT_SPAN_ID: AtomicU64 = AtomicU64::new(1);

thread_local! {
    /// Stack of active span ids on this thread (for parent links).
    static ACTIVE: std::cell::RefCell<Vec<u64>> = const { std::cell::RefCell::new(Vec::new()) };
}

fn thread_hash() -> u64 {
    let mut h = DefaultHasher::new();
    std::thread::current().id().hash(&mut h);
    h.finish()
}

/// A thread-safe span sink.
pub struct Collector {
    enabled: AtomicBool,
    seq: AtomicU64,
    len: AtomicUsize,
    dropped: AtomicU64,
    max_events: usize,
    shards: Vec<Mutex<VecDeque<SpanRecord>>>,
    drop_metric: OnceLock<Counter>,
    epoch: Instant,
}

impl Default for Collector {
    fn default() -> Self {
        Collector::new()
    }
}

impl Collector {
    /// New enabled collector with the default event cap (1M records).
    pub fn new() -> Self {
        Collector::with_capacity(1 << 20)
    }

    /// New collector retaining at most `max_events` records with ring
    /// semantics: once the cap is reached, each new record evicts the
    /// oldest buffered one, and every eviction is counted in
    /// [`dropped`](Self::dropped) (and mirrored to an attached
    /// `genie_telemetry_dropped_total` counter). Chaos and capacity
    /// sweeps therefore keep the *newest* window of events in bounded
    /// memory instead of growing without bound or going blind.
    pub fn with_capacity(max_events: usize) -> Self {
        Collector {
            enabled: AtomicBool::new(true),
            seq: AtomicU64::new(0),
            len: AtomicUsize::new(0),
            dropped: AtomicU64::new(0),
            max_events,
            shards: (0..SHARDS).map(|_| Mutex::new(VecDeque::new())).collect(),
            drop_metric: OnceLock::new(),
            epoch: Instant::now(),
        }
    }

    /// Mirror ring-buffer evictions to a metrics counter (the global
    /// telemetry handle attaches `genie_telemetry_dropped_total` here).
    /// The first attachment wins; later calls are ignored.
    pub fn attach_drop_counter(&self, counter: Counter) {
        let _ = self.drop_metric.set(counter);
    }

    /// Turn recording on or off. Disabled collectors make span guards
    /// no-ops (one atomic load on the hot path).
    pub fn set_enabled(&self, enabled: bool) {
        self.enabled.store(enabled, Ordering::Relaxed);
    }

    /// Whether recording is on.
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Nanoseconds since this collector was created (the runtime-track
    /// time base).
    pub fn now_ns(&self) -> u64 {
        self.epoch.elapsed().as_nanos() as u64
    }

    /// Number of records currently buffered.
    pub fn len(&self) -> usize {
        self.len.load(Ordering::Relaxed)
    }

    /// Whether no records are buffered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Records evicted because the cap was reached (ring overwrites).
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Open a timed span; the returned guard records on drop. The span
    /// nests under any span already active on this thread.
    pub fn span(&self, name: impl Into<String>, category: impl Into<String>) -> SpanGuard<'_> {
        self.span_with(name, category, SemAttrs::new())
    }

    /// [`span`](Self::span) with semantic attributes attached up front.
    pub fn span_with(
        &self,
        name: impl Into<String>,
        category: impl Into<String>,
        attrs: SemAttrs,
    ) -> SpanGuard<'_> {
        if !self.is_enabled() {
            return SpanGuard {
                collector: self,
                inner: None,
            };
        }
        let id = NEXT_SPAN_ID.fetch_add(1, Ordering::Relaxed);
        let parent = ACTIVE.with(|s| s.borrow().last().copied());
        ACTIVE.with(|s| s.borrow_mut().push(id));
        SpanGuard {
            collector: self,
            inner: Some(OpenSpan {
                id,
                parent,
                name: name.into(),
                category: category.into(),
                attrs,
                start_ns: self.now_ns(),
            }),
        }
    }

    /// Record a zero-duration marker event.
    pub fn instant(&self, name: impl Into<String>, category: impl Into<String>, attrs: SemAttrs) {
        if !self.is_enabled() {
            return;
        }
        let now = self.now_ns();
        self.push(SpanRecord {
            id: NEXT_SPAN_ID.fetch_add(1, Ordering::Relaxed),
            parent: ACTIVE.with(|s| s.borrow().last().copied()),
            name: name.into(),
            category: category.into(),
            kind: SpanKind::Instant,
            track: Track::Runtime,
            start_ns: now,
            dur_ns: 0,
            attrs,
            thread: thread_hash(),
            seq: 0,
        });
    }

    /// Record a fully-formed event (used to ingest simulation traces,
    /// whose times come from the event queue rather than the wall clock).
    /// At capacity the collector behaves as a ring: the new record is
    /// kept and the oldest buffered record is evicted and counted.
    pub fn push(&self, mut record: SpanRecord) {
        if !self.is_enabled() {
            return;
        }
        record.seq = self.seq.fetch_add(1, Ordering::Relaxed);
        if record.thread == 0 {
            record.thread = thread_hash();
        }
        let shard = (record.thread as usize) % SHARDS;
        if self.len.load(Ordering::Relaxed) >= self.max_events {
            // Evict the oldest reachable record: this thread's shard
            // first (cheap, already locked for the push), else the
            // first non-empty shard. `len` is unchanged on eviction.
            let evicted_here = {
                let mut own = self.shards[shard].lock();
                let e = own.pop_front().is_some();
                own.push_back(record);
                e
            };
            let evicted = evicted_here
                || (1..SHARDS).any(|i| {
                    self.shards[(shard + i) % SHARDS]
                        .lock()
                        .pop_front()
                        .is_some()
                });
            if evicted {
                self.dropped.fetch_add(1, Ordering::Relaxed);
                if let Some(c) = self.drop_metric.get() {
                    c.inc();
                }
            } else {
                self.len.fetch_add(1, Ordering::Relaxed);
            }
            return;
        }
        self.shards[shard].lock().push_back(record);
        self.len.fetch_add(1, Ordering::Relaxed);
    }

    /// Take every buffered record, ordered by sequence number.
    pub fn drain(&self) -> Vec<SpanRecord> {
        let mut all = Vec::with_capacity(self.len());
        for shard in &self.shards {
            all.extend(shard.lock().drain(..));
        }
        self.len.store(0, Ordering::Relaxed);
        all.sort_by_key(|r| r.seq);
        all
    }

    /// Copy every buffered record (sequence order) without clearing.
    pub fn snapshot(&self) -> Vec<SpanRecord> {
        let mut all = Vec::with_capacity(self.len());
        for shard in &self.shards {
            all.extend(shard.lock().iter().cloned());
        }
        all.sort_by_key(|r| r.seq);
        all
    }
}

struct OpenSpan {
    id: u64,
    parent: Option<u64>,
    name: String,
    category: String,
    attrs: SemAttrs,
    start_ns: u64,
}

/// RAII guard for a timed span: records the interval when dropped.
pub struct SpanGuard<'a> {
    collector: &'a Collector,
    inner: Option<OpenSpan>,
}

impl SpanGuard<'_> {
    /// Attach or overwrite attributes mid-span (e.g. a result computed
    /// after the span opened).
    pub fn annotate(&mut self, f: impl FnOnce(&mut SemAttrs)) {
        if let Some(open) = self.inner.as_mut() {
            f(&mut open.attrs);
        }
    }

    /// The span's id (0 when the collector is disabled).
    pub fn id(&self) -> u64 {
        self.inner.as_ref().map_or(0, |o| o.id)
    }
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        let Some(open) = self.inner.take() else {
            return;
        };
        ACTIVE.with(|s| {
            let mut stack = s.borrow_mut();
            if let Some(pos) = stack.iter().rposition(|&id| id == open.id) {
                stack.remove(pos);
            }
        });
        let end = self.collector.now_ns();
        self.collector.push(SpanRecord {
            id: open.id,
            parent: open.parent,
            name: open.name,
            category: open.category,
            kind: SpanKind::Span,
            track: Track::Runtime,
            start_ns: open.start_ns,
            dur_ns: end.saturating_sub(open.start_ns),
            attrs: open.attrs,
            thread: thread_hash(),
            seq: 0,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_nest_via_parent_links() {
        let c = Collector::new();
        {
            let _outer = c.span("schedule", "scheduler");
            let _inner = c.span("lint", "scheduler");
        }
        let recs = c.drain();
        assert_eq!(recs.len(), 2);
        // Inner drops first, so it appears first; its parent is the outer.
        let inner = recs.iter().find(|r| r.name == "lint").unwrap();
        let outer = recs.iter().find(|r| r.name == "schedule").unwrap();
        assert_eq!(inner.parent, Some(outer.id));
        assert_eq!(outer.parent, None);
        assert!(outer.dur_ns >= inner.dur_ns);
    }

    #[test]
    fn disabled_collector_records_nothing() {
        let c = Collector::new();
        c.set_enabled(false);
        {
            let _s = c.span("x", "y");
            c.instant("i", "y", SemAttrs::new());
        }
        assert!(c.is_empty());
        c.set_enabled(true);
        c.instant("i", "y", SemAttrs::new());
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn cap_drops_rather_than_grows() {
        let c = Collector::with_capacity(3);
        for _ in 0..5 {
            c.instant("i", "c", SemAttrs::new());
        }
        assert_eq!(c.len(), 3);
        assert_eq!(c.dropped(), 2);
    }

    #[test]
    fn ring_keeps_newest_and_mirrors_drop_counter() {
        let c = Collector::with_capacity(3);
        let counter = Counter::default();
        c.attach_drop_counter(counter.clone());
        for i in 0..5 {
            c.instant(format!("i{i}"), "c", SemAttrs::new());
        }
        assert_eq!(c.dropped(), 2);
        assert_eq!(counter.get(), 2, "metric mirrors ring evictions");
        let recs = c.drain();
        let names: Vec<String> = recs.iter().map(|r| r.name.clone()).collect();
        assert_eq!(names, vec!["i2", "i3", "i4"], "oldest were evicted");
    }

    #[test]
    fn concurrent_hammering_loses_nothing() {
        // The ISSUE's concurrency gate: 8 threads × 500 events each, no
        // lost events, no duplicated sequence numbers.
        let c = std::sync::Arc::new(Collector::new());
        let threads: Vec<_> = (0..8)
            .map(|t| {
                let c = c.clone();
                std::thread::spawn(move || {
                    for i in 0..500 {
                        if i % 3 == 0 {
                            c.instant(format!("t{t}.i{i}"), "stress", SemAttrs::new());
                        } else {
                            let _s = c.span(format!("t{t}.s{i}"), "stress");
                        }
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let recs = c.drain();
        assert_eq!(recs.len(), 8 * 500, "no lost events");
        let mut seqs: Vec<u64> = recs.iter().map(|r| r.seq).collect();
        seqs.sort_unstable();
        seqs.dedup();
        assert_eq!(seqs.len(), 8 * 500, "sequence numbers unique");
    }

    #[test]
    fn manual_push_preserves_sim_times() {
        let c = Collector::new();
        c.push(SpanRecord {
            id: 1,
            parent: None,
            name: "sim.kernel".into(),
            category: "backend".into(),
            kind: SpanKind::Span,
            track: Track::Device(0),
            start_ns: 5_000_000,
            dur_ns: 1_000_000,
            attrs: SemAttrs::new(),
            thread: 0,
            seq: 0,
        });
        let recs = c.drain();
        assert_eq!(recs[0].start_ns, 5_000_000);
        assert_eq!(recs[0].track, Track::Device(0));
    }
}
