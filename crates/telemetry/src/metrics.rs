//! The metrics registry: counters, gauges, and fixed-bucket histograms.
//!
//! Registration hands back cheap `Arc`-backed handles whose hot-path
//! operations are single atomic instructions; the registry itself is only
//! locked at registration and snapshot time. Snapshots are plain serde
//! data renderable as JSON (bench artifacts) or Prometheus text
//! exposition (scrape endpoints).

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// `(name, sorted labels)` — the identity of one time series.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
struct SeriesKey {
    name: String,
    labels: Vec<(String, String)>,
}

fn key(name: &str, labels: &[(&str, &str)]) -> SeriesKey {
    let mut labels: Vec<(String, String)> = labels
        .iter()
        .map(|(k, v)| (k.to_string(), v.to_string()))
        .collect();
    labels.sort();
    SeriesKey {
        name: name.to_string(),
        labels,
    }
}

/// A monotonically-increasing counter.
#[derive(Clone, Debug, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Add one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Add `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A settable floating-point gauge (stored as f64 bits in an atomic).
#[derive(Clone, Debug, Default)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    /// Set the value.
    pub fn set(&self, v: f64) {
        self.0.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Add to the value (CAS loop; gauges are not hot-path).
    pub fn add(&self, delta: f64) {
        let mut cur = self.0.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + delta).to_bits();
            match self
                .0
                .compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => return,
                Err(actual) => cur = actual,
            }
        }
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

/// A fixed-bucket histogram. Buckets are cumulative upper bounds
/// (Prometheus `le` semantics); an implicit `+Inf` bucket catches the
/// rest.
#[derive(Clone, Debug)]
pub struct Histogram {
    bounds: Arc<Vec<f64>>,
    counts: Arc<Vec<AtomicU64>>, // one per bound, plus +Inf at the end
    sum_bits: Arc<AtomicU64>,
    total: Arc<AtomicU64>,
}

/// Default exponential bounds in seconds: 1 µs … 100 s.
pub const DEFAULT_TIME_BOUNDS: [f64; 9] = [1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 0.1, 1.0, 10.0, 100.0];

/// Ratio bounds for skew-style histograms centered on 1.0.
pub const RATIO_BOUNDS: [f64; 9] = [0.25, 0.5, 0.8, 0.95, 1.05, 1.25, 2.0, 4.0, 10.0];

impl Histogram {
    fn new(bounds: &[f64]) -> Self {
        debug_assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must increase"
        );
        Histogram {
            bounds: Arc::new(bounds.to_vec()),
            counts: Arc::new((0..=bounds.len()).map(|_| AtomicU64::new(0)).collect()),
            sum_bits: Arc::new(AtomicU64::new(0f64.to_bits())),
            total: Arc::new(AtomicU64::new(0)),
        }
    }

    /// Record one observation.
    pub fn observe(&self, v: f64) {
        let idx = self
            .bounds
            .iter()
            .position(|&b| v <= b)
            .unwrap_or(self.bounds.len());
        self.counts[idx].fetch_add(1, Ordering::Relaxed);
        self.total.fetch_add(1, Ordering::Relaxed);
        // CAS float accumulation; histograms observe at span granularity,
        // not per-byte, so contention here is negligible.
        let mut cur = self.sum_bits.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + v).to_bits();
            match self.sum_bits.compare_exchange_weak(
                cur,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return,
                Err(actual) => cur = actual,
            }
        }
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.total.load(Ordering::Relaxed)
    }

    /// Sum of observations.
    pub fn sum(&self) -> f64 {
        f64::from_bits(self.sum_bits.load(Ordering::Relaxed))
    }

    /// Mean observation (0 when empty).
    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum() / n as f64
        }
    }
}

enum Metric {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

/// The registry: name+labels → live metric handles.
#[derive(Default)]
pub struct MetricsRegistry {
    series: Mutex<BTreeMap<SeriesKey, Metric>>,
}

impl MetricsRegistry {
    /// Empty registry.
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    /// Get or create a counter.
    pub fn counter(&self, name: &str, labels: &[(&str, &str)]) -> Counter {
        let mut series = self.series.lock();
        match series
            .entry(key(name, labels))
            .or_insert_with(|| Metric::Counter(Counter::default()))
        {
            Metric::Counter(c) => c.clone(),
            _ => panic!("metric {name} already registered with a different type"),
        }
    }

    /// Get or create a gauge.
    pub fn gauge(&self, name: &str, labels: &[(&str, &str)]) -> Gauge {
        let mut series = self.series.lock();
        match series
            .entry(key(name, labels))
            .or_insert_with(|| Metric::Gauge(Gauge::default()))
        {
            Metric::Gauge(g) => g.clone(),
            _ => panic!("metric {name} already registered with a different type"),
        }
    }

    /// Get or create a histogram with the given cumulative upper bounds.
    pub fn histogram(&self, name: &str, labels: &[(&str, &str)], bounds: &[f64]) -> Histogram {
        let mut series = self.series.lock();
        match series
            .entry(key(name, labels))
            .or_insert_with(|| Metric::Histogram(Histogram::new(bounds)))
        {
            Metric::Histogram(h) => h.clone(),
            _ => panic!("metric {name} already registered with a different type"),
        }
    }

    /// Point-in-time copy of every series.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let series = self.series.lock();
        let mut snap = MetricsSnapshot::default();
        for (k, m) in series.iter() {
            match m {
                Metric::Counter(c) => snap.counters.push(CounterSample {
                    name: k.name.clone(),
                    labels: k.labels.clone(),
                    value: c.get(),
                }),
                Metric::Gauge(g) => snap.gauges.push(GaugeSample {
                    name: k.name.clone(),
                    labels: k.labels.clone(),
                    value: g.get(),
                }),
                Metric::Histogram(h) => {
                    let mut cumulative = 0u64;
                    let mut buckets = Vec::with_capacity(h.bounds.len() + 1);
                    for (i, &b) in h.bounds.iter().enumerate() {
                        cumulative += h.counts[i].load(Ordering::Relaxed);
                        buckets.push(BucketSample {
                            le: b,
                            count: cumulative,
                        });
                    }
                    buckets.push(BucketSample {
                        le: f64::INFINITY,
                        count: h.count(),
                    });
                    snap.histograms.push(HistogramSample {
                        name: k.name.clone(),
                        labels: k.labels.clone(),
                        buckets,
                        sum: h.sum(),
                        count: h.count(),
                    });
                }
            }
        }
        snap
    }
}

/// One counter sample.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct CounterSample {
    /// Metric name.
    pub name: String,
    /// Sorted label pairs.
    pub labels: Vec<(String, String)>,
    /// Value.
    pub value: u64,
}

/// One gauge sample.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct GaugeSample {
    /// Metric name.
    pub name: String,
    /// Sorted label pairs.
    pub labels: Vec<(String, String)>,
    /// Value.
    pub value: f64,
}

/// One cumulative histogram bucket.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct BucketSample {
    /// Upper bound (`le`), `+Inf` for the last bucket. Serialized as the
    /// string `"+Inf"` in JSON (which has no infinity literal; plain
    /// serde would emit `null` and fail to round-trip).
    #[serde(with = "le_serde")]
    pub le: f64,
    /// Observations ≤ `le`.
    pub count: u64,
}

// Referenced via `#[serde(with = "le_serde")]`, which the
// typecheck-only derive stub does not expand — dead only under the
// stub, load-bearing against real serde.
#[allow(dead_code)]
mod le_serde {
    use serde::de::Error as _;
    use serde::{Deserialize, Deserializer, Serializer};

    pub fn serialize<S: Serializer>(v: &f64, s: S) -> Result<S::Ok, S::Error> {
        if v.is_infinite() {
            s.serialize_str("+Inf")
        } else {
            s.serialize_f64(*v)
        }
    }

    #[derive(Deserialize)]
    #[serde(untagged)]
    enum LeRepr {
        Num(f64),
        Str(String),
    }

    pub fn deserialize<'de, D: Deserializer<'de>>(d: D) -> Result<f64, D::Error> {
        match LeRepr::deserialize(d)? {
            LeRepr::Num(v) => Ok(v),
            LeRepr::Str(s) if s == "+Inf" => Ok(f64::INFINITY),
            LeRepr::Str(s) => Err(D::Error::custom(format!("invalid le bound: {s}"))),
        }
    }
}

/// One histogram sample.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct HistogramSample {
    /// Metric name.
    pub name: String,
    /// Sorted label pairs.
    pub labels: Vec<(String, String)>,
    /// Cumulative buckets, increasing `le`.
    pub buckets: Vec<BucketSample>,
    /// Sum of observations.
    pub sum: f64,
    /// Number of observations.
    pub count: u64,
}

impl HistogramSample {
    /// Mean observation (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Bucket-interpolated quantile, `q` in `[0, 1]` (Prometheus
    /// `histogram_quantile` semantics): locate the cumulative bucket
    /// containing the q-th observation and linearly interpolate
    /// between the previous bound (0 for the first bucket) and the
    /// bucket's upper bound. Returns 0 when empty; a rank landing in
    /// the `+Inf` bucket returns the highest finite bound, the best
    /// statement the histogram can make.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 || self.buckets.is_empty() {
            return 0.0;
        }
        let rank = q.clamp(0.0, 1.0) * self.count as f64;
        let mut prev_bound = 0.0_f64;
        let mut prev_count = 0u64;
        for b in &self.buckets {
            let in_bucket = b.count.saturating_sub(prev_count) as f64;
            if (b.count as f64) >= rank && in_bucket > 0.0 {
                if b.le.is_infinite() {
                    return prev_bound;
                }
                let frac = (rank - prev_count as f64).max(0.0) / in_bucket;
                return prev_bound + (b.le - prev_bound) * frac;
            }
            if !b.le.is_infinite() {
                prev_bound = b.le;
            }
            prev_count = b.count;
        }
        prev_bound
    }
}

/// A point-in-time copy of the whole registry.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct MetricsSnapshot {
    /// All counters, sorted by name/labels.
    pub counters: Vec<CounterSample>,
    /// All gauges.
    pub gauges: Vec<GaugeSample>,
    /// All histograms.
    pub histograms: Vec<HistogramSample>,
}

fn render_labels(labels: &[(String, String)]) -> String {
    if labels.is_empty() {
        return String::new();
    }
    let inner: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", v.replace('\\', "\\\\").replace('"', "\\\"")))
        .collect();
    format!("{{{}}}", inner.join(","))
}

impl MetricsSnapshot {
    /// Find a counter by name and label subset.
    pub fn counter(&self, name: &str, labels: &[(&str, &str)]) -> Option<u64> {
        self.counters
            .iter()
            .find(|c| c.name == name && labels_match(&c.labels, labels))
            .map(|c| c.value)
    }

    /// Find a gauge by name and label subset.
    pub fn gauge(&self, name: &str, labels: &[(&str, &str)]) -> Option<f64> {
        self.gauges
            .iter()
            .find(|g| g.name == name && labels_match(&g.labels, labels))
            .map(|g| g.value)
    }

    /// Find a histogram by name and label subset.
    pub fn histogram(&self, name: &str, labels: &[(&str, &str)]) -> Option<&HistogramSample> {
        self.histograms
            .iter()
            .find(|h| h.name == name && labels_match(&h.labels, labels))
    }

    /// Render as Prometheus text exposition format.
    pub fn render_prometheus(&self) -> String {
        let mut out = String::new();
        let mut last_name: Option<String> = None;
        let mut type_line = |out: &mut String, name: &str, kind: &str| {
            if last_name.as_deref() != Some(name) {
                out.push_str(&format!("# TYPE {name} {kind}\n"));
                last_name = Some(name.to_string());
            }
        };
        for c in &self.counters {
            type_line(&mut out, &c.name, "counter");
            out.push_str(&format!(
                "{}{} {}\n",
                c.name,
                render_labels(&c.labels),
                c.value
            ));
        }
        for g in &self.gauges {
            type_line(&mut out, &g.name, "gauge");
            out.push_str(&format!(
                "{}{} {}\n",
                g.name,
                render_labels(&g.labels),
                g.value
            ));
        }
        for h in &self.histograms {
            type_line(&mut out, &h.name, "histogram");
            for b in &h.buckets {
                let mut labels = h.labels.clone();
                let le = if b.le.is_infinite() {
                    "+Inf".to_string()
                } else {
                    format!("{}", b.le)
                };
                labels.push(("le".into(), le));
                out.push_str(&format!(
                    "{}_bucket{} {}\n",
                    h.name,
                    render_labels(&labels),
                    b.count
                ));
            }
            out.push_str(&format!(
                "{}_sum{} {}\n",
                h.name,
                render_labels(&h.labels),
                h.sum
            ));
            out.push_str(&format!(
                "{}_count{} {}\n",
                h.name,
                render_labels(&h.labels),
                h.count
            ));
        }
        out
    }

    /// Render as pretty JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("snapshot serializes")
    }
}

fn labels_match(have: &[(String, String)], want: &[(&str, &str)]) -> bool {
    want.iter()
        .all(|(k, v)| have.iter().any(|(hk, hv)| hk == k && hv == v))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_roundtrip() {
        let reg = MetricsRegistry::new();
        let c = reg.counter("genie_test_total", &[("dev", "d0")]);
        c.inc();
        c.add(4);
        // Re-registration returns the same series.
        reg.counter("genie_test_total", &[("dev", "d0")]).inc();
        assert_eq!(c.get(), 6);

        let g = reg.gauge("genie_test_gauge", &[]);
        g.set(2.5);
        g.add(0.5);
        assert_eq!(g.get(), 3.0);

        let snap = reg.snapshot();
        assert_eq!(snap.counter("genie_test_total", &[("dev", "d0")]), Some(6));
        assert_eq!(snap.gauge("genie_test_gauge", &[]), Some(3.0));
        assert_eq!(snap.counter("missing", &[]), None);
    }

    #[test]
    fn histogram_buckets_are_cumulative() {
        let reg = MetricsRegistry::new();
        let h = reg.histogram("genie_test_seconds", &[], &[0.1, 1.0, 10.0]);
        for v in [0.05, 0.5, 0.5, 5.0, 50.0] {
            h.observe(v);
        }
        assert_eq!(h.count(), 5);
        assert!((h.sum() - 56.05).abs() < 1e-9);
        let snap = reg.snapshot();
        let hs = snap.histogram("genie_test_seconds", &[]).unwrap();
        let counts: Vec<u64> = hs.buckets.iter().map(|b| b.count).collect();
        assert_eq!(counts, vec![1, 3, 4, 5]);
        assert!(hs.buckets.last().unwrap().le.is_infinite());
        assert!((hs.mean() - 56.05 / 5.0).abs() < 1e-9);
    }

    #[test]
    fn quantile_interpolates_within_buckets() {
        let reg = MetricsRegistry::new();
        let h = reg.histogram("genie_q_seconds", &[], &[0.1, 1.0, 10.0]);
        for v in [0.05, 0.5, 0.5, 5.0, 50.0] {
            h.observe(v);
        }
        let snap = reg.snapshot();
        let hs = snap.histogram("genie_q_seconds", &[]).unwrap();
        // rank 2.5 of cumulative [1, 3, 4, 5] lands in (0.1, 1.0]:
        // 0.1 + (1.0 - 0.1) * (2.5 - 1) / 2 = 0.775.
        assert!((hs.quantile(0.5) - 0.775).abs() < 1e-9);
        // rank 4.95 lands in the +Inf bucket: clamp to the last finite
        // bound instead of inventing a number.
        assert!((hs.quantile(0.99) - 10.0).abs() < 1e-9);
        // Degenerate cases stay finite and ordered.
        assert_eq!(hs.quantile(-1.0), hs.quantile(0.0));
        assert!(hs.quantile(0.25) <= hs.quantile(0.75));
        let empty = HistogramSample {
            name: "e".into(),
            labels: vec![],
            buckets: vec![],
            sum: 0.0,
            count: 0,
        };
        assert_eq!(empty.quantile(0.99), 0.0);
    }

    #[test]
    fn snapshot_roundtrips_through_json() {
        let reg = MetricsRegistry::new();
        reg.counter("genie_a_total", &[("k", "v")]).add(3);
        reg.gauge("genie_b", &[]).set(1.25);
        reg.histogram("genie_c_seconds", &[], &DEFAULT_TIME_BOUNDS)
            .observe(0.002);
        let snap = reg.snapshot();
        let json = snap.to_json();
        // The +Inf bucket serializes as the string "+Inf", not null.
        assert!(json.contains("\"+Inf\""), "{json}");
        let back: MetricsSnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(back, snap);
        assert!(back.histograms[0].buckets.last().unwrap().le.is_infinite());
    }

    #[test]
    fn prometheus_rendering_is_wellformed() {
        let reg = MetricsRegistry::new();
        reg.counter("genie_rpc_total", &[("role", "client")]).add(7);
        reg.histogram("genie_lat_seconds", &[], &[0.1, 1.0])
            .observe(0.5);
        let text = reg.snapshot().render_prometheus();
        assert!(text.contains("# TYPE genie_rpc_total counter"));
        assert!(text.contains("genie_rpc_total{role=\"client\"} 7"));
        assert!(text.contains("# TYPE genie_lat_seconds histogram"));
        assert!(text.contains("genie_lat_seconds_bucket{le=\"+Inf\"} 1"));
        assert!(text.contains("genie_lat_seconds_count 1"));
    }

    #[test]
    fn concurrent_counting_is_exact() {
        let reg = std::sync::Arc::new(MetricsRegistry::new());
        let threads: Vec<_> = (0..8)
            .map(|_| {
                let reg = reg.clone();
                std::thread::spawn(move || {
                    let c = reg.counter("genie_hammer_total", &[]);
                    let h = reg.histogram("genie_hammer_seconds", &[], &DEFAULT_TIME_BOUNDS);
                    for i in 0..1000 {
                        c.inc();
                        h.observe(i as f64 * 1e-6);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let snap = reg.snapshot();
        assert_eq!(snap.counter("genie_hammer_total", &[]), Some(8000));
        assert_eq!(
            snap.histogram("genie_hammer_seconds", &[]).unwrap().count,
            8000
        );
    }
}
