//! Chrome trace / Perfetto JSON export.
//!
//! Produces the `{"traceEvents": [...]}` object format that both
//! `chrome://tracing` and [ui.perfetto.dev](https://ui.perfetto.dev)
//! load directly. Tracks are mapped to process/thread rows:
//!
//! | pid | process row                     | tid                 |
//! |-----|---------------------------------|---------------------|
//! | 1   | `genie runtime (wall clock)`    | one per OS thread   |
//! | 2   | `simulated devices (sim time)`  | one per device      |
//! | 3   | `simulated links (sim time)`    | one per host pair   |
//!
//! The runtime rows and the simulated rows carry *different clock
//! domains* (wall nanoseconds since collector epoch vs. discrete-event
//! simulation time); keeping them on separate process rows means they
//! never visually interleave into a false ordering.
//!
//! When an [`Srg`] is supplied, events that carry a `node` attribution
//! are enriched at export time with the node's phase, modality, and
//! module path — the semantic context the paper argues must survive all
//! the way to the fabric.

use crate::span::{SpanKind, SpanRecord, Track};
use genie_netsim::{Trace, TraceEvent};
use genie_srg::Srg;
use serde::Serialize;
use std::collections::BTreeMap;

const PID_RUNTIME: u32 = 1;
const PID_DEVICES: u32 = 2;
const PID_LINKS: u32 = 3;

/// One Chrome-trace event (the subset of the format we emit).
#[derive(Clone, Debug, Serialize)]
pub struct ChromeEvent {
    /// Event name.
    pub name: String,
    /// Category (comma-separable in the UI).
    pub cat: String,
    /// Phase: `"X"` complete, `"i"` instant, `"M"` metadata.
    pub ph: String,
    /// Timestamp in microseconds.
    pub ts: f64,
    /// Duration in microseconds (`"X"` events only).
    #[serde(skip_serializing_if = "Option::is_none")]
    pub dur: Option<f64>,
    /// Process row.
    pub pid: u32,
    /// Thread row within the process.
    pub tid: u32,
    /// Instant scope (`"t"` thread) — required by the UI for `"i"`.
    #[serde(skip_serializing_if = "Option::is_none")]
    pub s: Option<String>,
    /// Key/value arguments shown in the detail pane.
    #[serde(skip_serializing_if = "BTreeMap::is_empty")]
    pub args: BTreeMap<String, serde_json::Value>,
}

/// The whole exportable trace document.
#[derive(Debug, Default, Serialize)]
pub struct ChromeTrace {
    /// All events, metadata first.
    #[serde(rename = "traceEvents")]
    pub events: Vec<ChromeEvent>,
    /// Display unit hint for the UI.
    #[serde(rename = "displayTimeUnit")]
    pub display_time_unit: &'static str,
}

impl ChromeTrace {
    /// Empty trace document.
    pub fn new() -> Self {
        ChromeTrace {
            events: Vec::new(),
            display_time_unit: "ms",
        }
    }

    fn meta(&mut self, pid: u32, tid: Option<u32>, name: &str) {
        let mut args = BTreeMap::new();
        args.insert("name".to_string(), serde_json::json!(name));
        self.events.push(ChromeEvent {
            name: if tid.is_some() {
                "thread_name".into()
            } else {
                "process_name".into()
            },
            cat: "__metadata".into(),
            ph: "M".into(),
            ts: 0.0,
            dur: None,
            pid,
            tid: tid.unwrap_or(0),
            s: None,
            args,
        });
    }

    /// Ingest collector records (runtime spans and instants, plus any
    /// manually-pushed device/link records). `srg` enriches node-
    /// attributed events with phase/modality/module context.
    pub fn push_records(&mut self, records: &[SpanRecord], srg: Option<&Srg>) {
        // Stable small tids for runtime threads, in order of appearance.
        let mut thread_tids: BTreeMap<u64, u32> = BTreeMap::new();
        for r in records {
            let (pid, tid) = match r.track {
                Track::Runtime => {
                    let next = thread_tids.len() as u32 + 1;
                    let tid = *thread_tids.entry(r.thread).or_insert(next);
                    (PID_RUNTIME, tid)
                }
                Track::Device(d) => (PID_DEVICES, d),
                Track::Link { from, to } => (PID_LINKS, link_tid(from, to)),
            };
            let mut args = BTreeMap::new();
            if let Some(node) = r.attrs.node {
                args.insert("node".into(), serde_json::json!(node.index() as u64));
                if let Some(n) = srg.and_then(|g| g.try_node(node)) {
                    args.entry("phase".into())
                        .or_insert_with(|| serde_json::json!(n.phase.label()));
                    if !n.module_path.is_empty() {
                        args.insert("module".into(), serde_json::json!(n.module_path));
                    }
                    args.entry("modality".into())
                        .or_insert_with(|| serde_json::json!(n.modality.label()));
                }
            }
            if let Some(p) = &r.attrs.phase {
                args.insert("phase".into(), serde_json::json!(p));
            }
            if let Some(m) = &r.attrs.modality {
                args.insert("modality".into(), serde_json::json!(m));
            }
            if let Some(d) = r.attrs.device {
                args.insert("device".into(), serde_json::json!(d));
            }
            if let Some(p) = &r.attrs.plan {
                args.insert("plan".into(), serde_json::json!(p));
            }
            if let Some(req) = r.attrs.request {
                args.insert("request".into(), serde_json::json!(req));
            }
            if let Some(c) = r.attrs.cause {
                args.insert("cause".into(), serde_json::json!(c));
            }
            for (k, v) in &r.attrs.extra {
                args.insert(k.clone(), serde_json::json!(v));
            }
            let instant = r.kind == SpanKind::Instant;
            self.events.push(ChromeEvent {
                name: r.name.clone(),
                cat: r.category.clone(),
                ph: if instant { "i" } else { "X" }.into(),
                ts: r.start_ns as f64 / 1_000.0,
                dur: if instant {
                    None
                } else {
                    Some(r.dur_ns as f64 / 1_000.0)
                },
                pid,
                tid,
                s: if instant { Some("t".into()) } else { None },
                args,
            });
        }
        self.meta(PID_RUNTIME, None, "genie runtime (wall clock)");
        for (thread, tid) in &thread_tids {
            self.meta(
                PID_RUNTIME,
                Some(*tid),
                &format!("thread-{:04x}", thread & 0xffff),
            );
        }
    }

    /// Ingest a simulation [`Trace`]: kernels become device-track slices,
    /// transfers become link-track slices (with queueing delay in `args`),
    /// RPCs and marks become instants. `srg` enriches node-attributed
    /// events; `plan` is the fallback plan label for unattributed events.
    pub fn push_sim_trace(&mut self, trace: &Trace, srg: Option<&Srg>, plan: Option<&str>) {
        let mut devices: Vec<u32> = Vec::new();
        let mut links: Vec<(u32, u32)> = Vec::new();
        for e in trace.events() {
            match e {
                TraceEvent::Kernel {
                    device,
                    label,
                    start,
                    end,
                    node,
                    plan: ev_plan,
                    request,
                } => {
                    if !devices.contains(device) {
                        devices.push(*device);
                    }
                    let mut args = BTreeMap::new();
                    if let Some(req) = request {
                        args.insert("request".into(), serde_json::json!(req));
                    }
                    if let Some(id) = node {
                        args.insert("node".into(), serde_json::json!(id.index() as u64));
                        if let Some(n) = srg.and_then(|g| g.try_node(*id)) {
                            args.insert("phase".into(), serde_json::json!(n.phase.label()));
                            args.insert("modality".into(), serde_json::json!(n.modality.label()));
                            if !n.module_path.is_empty() {
                                args.insert("module".into(), serde_json::json!(n.module_path));
                            }
                        }
                    }
                    if let Some(p) = ev_plan.as_deref().or(plan) {
                        args.insert("plan".into(), serde_json::json!(p));
                    }
                    self.events.push(ChromeEvent {
                        name: label.clone(),
                        cat: "sim.kernel".into(),
                        ph: "X".into(),
                        ts: start.0 as f64 / 1_000.0,
                        dur: Some((end.0 - start.0) as f64 / 1_000.0),
                        pid: PID_DEVICES,
                        tid: *device,
                        s: None,
                        args,
                    });
                }
                TraceEvent::Transfer {
                    from,
                    to,
                    bytes,
                    start,
                    end,
                    node,
                    plan: ev_plan,
                    queue_delay,
                    request,
                } => {
                    if !links.contains(&(*from, *to)) {
                        links.push((*from, *to));
                    }
                    let mut args = BTreeMap::new();
                    if let Some(req) = request {
                        args.insert("request".into(), serde_json::json!(req));
                    }
                    args.insert("bytes".into(), serde_json::json!(bytes));
                    args.insert(
                        "queue_delay_us".into(),
                        serde_json::json!(queue_delay.0 as f64 / 1_000.0),
                    );
                    if let Some(id) = node {
                        args.insert("node".into(), serde_json::json!(id.index() as u64));
                        if let Some(n) = srg.and_then(|g| g.try_node(*id)) {
                            args.insert("phase".into(), serde_json::json!(n.phase.label()));
                        }
                    }
                    if let Some(p) = ev_plan.as_deref().or(plan) {
                        args.insert("plan".into(), serde_json::json!(p));
                    }
                    self.events.push(ChromeEvent {
                        name: format!("xfer {bytes}B"),
                        cat: "sim.transfer".into(),
                        ph: "X".into(),
                        ts: start.0 as f64 / 1_000.0,
                        dur: Some((end.0 - start.0) as f64 / 1_000.0),
                        pid: PID_LINKS,
                        tid: link_tid(*from, *to),
                        s: None,
                        args,
                    });
                }
                TraceEvent::Rpc { label, start, end } => {
                    self.events.push(ChromeEvent {
                        name: label.clone(),
                        cat: "sim.rpc".into(),
                        ph: "X".into(),
                        ts: start.0 as f64 / 1_000.0,
                        dur: Some((end.0 - start.0) as f64 / 1_000.0),
                        pid: PID_LINKS,
                        tid: 0,
                        s: None,
                        args: BTreeMap::new(),
                    });
                }
                TraceEvent::Mark { label, at } => {
                    // Injected-fault marks get their own category so fault
                    // windows are filterable in the Perfetto UI.
                    let cat = if label.starts_with("fault.") {
                        "sim.fault"
                    } else {
                        "sim.mark"
                    };
                    self.events.push(ChromeEvent {
                        name: label.clone(),
                        cat: cat.into(),
                        ph: "i".into(),
                        ts: at.0 as f64 / 1_000.0,
                        dur: None,
                        pid: PID_DEVICES,
                        tid: devices.first().copied().unwrap_or(0),
                        s: Some("t".into()),
                        args: BTreeMap::new(),
                    });
                }
            }
        }
        self.meta(PID_DEVICES, None, "simulated devices (sim time)");
        devices.sort_unstable();
        for d in devices {
            self.meta(PID_DEVICES, Some(d), &format!("d{d}"));
        }
        self.meta(PID_LINKS, None, "simulated links (sim time)");
        links.sort_unstable();
        for (f, t) in links {
            self.meta(PID_LINKS, Some(link_tid(f, t)), &format!("h{f}→h{t}"));
        }
    }

    /// Serialize to the loadable JSON document.
    pub fn to_json_string(&self) -> String {
        serde_json::to_string(self).expect("chrome trace serializes")
    }

    /// Pretty-printed variant (for golden tests and human diffing).
    pub fn to_json_pretty(&self) -> String {
        serde_json::to_string_pretty(self).expect("chrome trace serializes")
    }
}

/// Deterministic link row id from a host pair (hosts are small indices).
fn link_tid(from: u32, to: u32) -> u32 {
    from * 1_000 + to
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::SemAttrs;
    use genie_netsim::Nanos;
    use genie_srg::{Node, NodeId, OpKind, Phase};

    fn tiny_srg() -> Srg {
        let mut g = Srg::new("tiny");
        g.add_node(
            Node::new(NodeId::new(0), OpKind::MatMul, "attn.qk")
                .with_phase(Phase::LlmDecode)
                .with_module_path("transformer.h.0.attn"),
        );
        g
    }

    #[test]
    fn sim_kernels_get_phase_enrichment() {
        let srg = tiny_srg();
        let mut trace = Trace::new();
        trace.push(
            TraceEvent::kernel(0, "attn.qk", Nanos::ZERO, Nanos::from_micros(5))
                .with_node(NodeId::new(0))
                .with_plan("tiny@semantics_aware"),
        );
        let mut ct = ChromeTrace::new();
        ct.push_sim_trace(&trace, Some(&srg), None);
        let kernel = ct.events.iter().find(|e| e.cat == "sim.kernel").unwrap();
        assert_eq!(kernel.ph, "X");
        assert_eq!(kernel.pid, PID_DEVICES);
        assert_eq!(kernel.args["phase"], serde_json::json!("llm_decode"));
        assert_eq!(
            kernel.args["module"],
            serde_json::json!("transformer.h.0.attn")
        );
        assert_eq!(
            kernel.args["plan"],
            serde_json::json!("tiny@semantics_aware")
        );
        assert_eq!(kernel.dur, Some(5.0));
        // Metadata rows for the device process exist.
        assert!(ct
            .events
            .iter()
            .any(|e| e.ph == "M" && e.pid == PID_DEVICES && e.name == "process_name"));
    }

    #[test]
    fn transfers_carry_queue_delay_and_bytes() {
        let mut trace = Trace::new();
        trace.push(
            TraceEvent::transfer(0, 1, 4096, Nanos::from_micros(10), Nanos::from_micros(30))
                .with_queue_delay(Nanos::from_micros(7)),
        );
        let mut ct = ChromeTrace::new();
        ct.push_sim_trace(&trace, None, Some("fallback@plan"));
        let xfer = ct.events.iter().find(|e| e.cat == "sim.transfer").unwrap();
        assert_eq!(xfer.args["bytes"], serde_json::json!(4096));
        assert_eq!(xfer.args["queue_delay_us"], serde_json::json!(7.0));
        assert_eq!(xfer.args["plan"], serde_json::json!("fallback@plan"));
        assert_eq!(xfer.pid, PID_LINKS);
        assert_eq!(xfer.tid, link_tid(0, 1));
    }

    #[test]
    fn runtime_records_map_to_pid_one() {
        let records = vec![
            SpanRecord {
                id: 1,
                parent: None,
                name: "schedule".into(),
                category: "scheduler".into(),
                kind: SpanKind::Span,
                track: Track::Runtime,
                start_ns: 2_000,
                dur_ns: 3_000,
                attrs: SemAttrs::new().plan("g@p"),
                thread: 42,
                seq: 0,
            },
            SpanRecord {
                id: 2,
                parent: None,
                name: "lint:GA101".into(),
                category: "scheduler".into(),
                kind: SpanKind::Instant,
                track: Track::Runtime,
                start_ns: 2_500,
                dur_ns: 0,
                attrs: SemAttrs::new(),
                thread: 42,
                seq: 1,
            },
        ];
        let mut ct = ChromeTrace::new();
        ct.push_records(&records, None);
        let span = ct.events.iter().find(|e| e.name == "schedule").unwrap();
        assert_eq!(span.pid, PID_RUNTIME);
        assert_eq!(span.ph, "X");
        assert_eq!(span.ts, 2.0);
        assert_eq!(span.dur, Some(3.0));
        let inst = ct.events.iter().find(|e| e.name == "lint:GA101").unwrap();
        assert_eq!(inst.ph, "i");
        assert_eq!(inst.s.as_deref(), Some("t"));
        // Both share the same runtime thread row.
        assert_eq!(span.tid, inst.tid);
    }

    #[test]
    fn document_is_loadable_json() {
        let mut ct = ChromeTrace::new();
        ct.push_sim_trace(&Trace::new(), None, None);
        let doc: serde_json::Value = serde_json::from_str(&ct.to_json_string()).unwrap();
        assert!(doc["traceEvents"].is_array());
        assert_eq!(doc["displayTimeUnit"], "ms");
    }
}
