//! Recovery orchestration: turning a replay set back into live state.
//!
//! Upon detecting a failure, the runtime invalidates affected handles,
//! rebinds to new resources, and replays only the subgraph on the cut
//! induced by the lost state (§3.5). The [`Replayer`] trait abstracts the
//! substrate a replay runs on — the in-memory replayer for tests, the
//! real [`genie_backend::RemoteSession`] for sockets.

use crate::replay::{LineageLog, Recipe};
use genie_backend::RemoteSession;
use genie_frontend::value::Value;
use genie_srg::NodeId;
use std::collections::{BTreeSet, HashMap};

/// Executes one recipe against some substrate, making `defines` live
/// again.
pub trait Replayer {
    /// Error type.
    type Error: std::fmt::Debug;

    /// Re-execute `recipe`; all of its handle inputs are live (either
    /// survived or already replayed).
    fn replay(&mut self, recipe: &Recipe) -> Result<(), Self::Error>;
}

/// Statistics of one recovery.
#[derive(Clone, Debug, PartialEq)]
pub struct RecoveryReport {
    /// Objects that were lost.
    pub lost: Vec<String>,
    /// Recipe indices replayed, in order.
    pub replayed: Vec<usize>,
    /// Fraction of logged work skipped versus replaying the whole log.
    pub savings: f64,
}

/// Recover the `lost` objects by replaying the minimal recipe set in
/// order.
pub fn recover<R: Replayer>(
    log: &LineageLog,
    lost: &[String],
    surviving: &BTreeSet<String>,
    replayer: &mut R,
) -> Result<RecoveryReport, R::Error> {
    let replay = log.replay_set(lost, surviving);
    for &idx in &replay {
        replayer.replay(&log.recipes()[idx])?;
    }
    Ok(RecoveryReport {
        lost: lost.to_vec(),
        replayed: replay.clone(),
        savings: log.replay_savings(&replay),
    })
}

/// In-memory replayer: executes recipes with the reference interpreter,
/// holding "remote" state in a map. The functional oracle for recovery
/// tests.
#[derive(Default)]
pub struct LocalReplayer {
    /// Live objects by name.
    pub store: HashMap<String, Value>,
}

impl LocalReplayer {
    /// Empty replayer.
    pub fn new() -> Self {
        LocalReplayer::default()
    }
}

impl Replayer for LocalReplayer {
    type Error = String;

    fn replay(&mut self, recipe: &Recipe) -> Result<(), String> {
        let mut bindings = recipe.cap.values.clone();
        for (node, name) in &recipe.handle_inputs {
            let value = self
                .store
                .get(name)
                .ok_or_else(|| format!("replay input {name} not live"))?;
            bindings.insert(*node, value.clone());
        }
        let all = genie_frontend::interp::execute(&recipe.cap.srg, &bindings)
            .map_err(|e| e.to_string())?;
        let out = all
            .get(&recipe.output)
            .ok_or_else(|| "recipe output missing".to_string())?;
        self.store.insert(recipe.defines.clone(), out.clone());
        Ok(())
    }
}

/// Socket-backed replayer: re-executes recipes on a fresh remote session,
/// re-pinning each object under its name with the new epoch.
pub struct RemoteReplayer<'a> {
    /// The (reconnected) session to rebuild state on.
    pub session: &'a mut RemoteSession,
}

impl Replayer for RemoteReplayer<'_> {
    type Error = genie_transport::TransportError;

    fn replay(&mut self, recipe: &Recipe) -> Result<(), Self::Error> {
        let handle_inputs: Vec<(NodeId, &str)> = recipe
            .handle_inputs
            .iter()
            .map(|(n, s)| (*n, s.as_str()))
            .collect();
        self.session.execute(
            &recipe.cap,
            &handle_inputs,
            &[],
            &[(recipe.output, recipe.defines.as_str())],
        )?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use genie_frontend::capture::CaptureCtx;
    use genie_srg::ElemType;
    use genie_tensor::Tensor;

    /// Build a log where each object is a deterministic function of
    /// client data, then verify recovery reproduces exact values.
    fn build_log() -> (LineageLog, LocalReplayer) {
        let mut log = LineageLog::new();
        let mut replayer = LocalReplayer::new();

        // base = [1, 2]
        let ctx = CaptureCtx::new("base");
        let x = ctx.input(
            "client",
            [2],
            ElemType::F32,
            Some(Tensor::from_vec([2], vec![1.0, 2.0])),
        );
        let y = x.relu();
        y.mark_output();
        let cap = ctx.finish();
        let r = Recipe {
            defines: "base".into(),
            cap,
            handle_inputs: vec![],
            output: y.node,
        };
        replayer.replay(&r).unwrap();
        log.record(r);

        // derived = base + base
        let ctx = CaptureCtx::new("derived");
        let b = ctx.input("base", [2], ElemType::F32, None);
        let y = b.add(&b);
        y.mark_output();
        let mut cap = ctx.finish();
        cap.values.remove(&b.node); // comes from lineage, not client
        let r = Recipe {
            defines: "derived".into(),
            cap,
            handle_inputs: vec![(b.node, "base".into())],
            output: y.node,
        };
        replayer.replay(&r).unwrap();
        log.record(r);

        (log, replayer)
    }

    #[test]
    fn recovery_reproduces_exact_values() {
        let (log, mut replayer) = build_log();
        let before = replayer.store["derived"].clone();

        // Lose everything.
        replayer.store.clear();
        let report = recover(
            &log,
            &["base".into(), "derived".into()],
            &BTreeSet::new(),
            &mut replayer,
        )
        .unwrap();
        assert_eq!(report.replayed, vec![0, 1]);
        assert_eq!(replayer.store["derived"], before, "bit-identical replay");
    }

    #[test]
    fn partial_loss_replays_partially() {
        let (log, mut replayer) = build_log();
        // Only `derived` lost; `base` survives in the store.
        replayer.store.remove("derived");
        let surviving: BTreeSet<String> = ["base".to_string()].into_iter().collect();
        let report = recover(&log, &["derived".into()], &surviving, &mut replayer).unwrap();
        assert_eq!(report.replayed, vec![1]);
        assert!(report.savings > 0.0);
        assert!(replayer.store.contains_key("derived"));
    }

    #[test]
    fn missing_dependency_is_an_error() {
        let (log, mut replayer) = build_log();
        replayer.store.clear();
        // Claim `base` survives when it does not: recipe 1 fails.
        let surviving: BTreeSet<String> = ["base".to_string()].into_iter().collect();
        let err = recover(&log, &["derived".into()], &surviving, &mut replayer).unwrap_err();
        assert!(err.contains("not live"));
    }
}
