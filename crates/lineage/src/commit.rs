//! Commit points and idempotent external output (§3.5).
//!
//! Replays may re-execute operators whose results were already observed.
//! Side effects are made safe by scoping them to `(handle, epoch)` and
//! materializing external outputs only after commit points: an output
//! produced twice under the same scope is emitted once.

use std::collections::BTreeSet;

/// A scoped external output: the value plus the `(key, epoch)` scope that
/// produced it.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PendingOutput<T> {
    /// Scope: resident-object key.
    pub key: u64,
    /// Scope: epoch at production time.
    pub epoch: u64,
    /// Monotone sequence within the scope (e.g. token index).
    pub seq: u64,
    /// The value to emit.
    pub value: T,
}

/// Buffers outputs until commit; deduplicates replays by scope.
#[derive(Debug)]
pub struct CommitLog<T> {
    pending: Vec<PendingOutput<T>>,
    emitted_scopes: BTreeSet<(u64, u64, u64)>,
    committed: Vec<T>,
}

impl<T> Default for CommitLog<T> {
    fn default() -> Self {
        CommitLog {
            pending: Vec::new(),
            emitted_scopes: BTreeSet::new(),
            committed: Vec::new(),
        }
    }
}

impl<T: Clone> CommitLog<T> {
    /// Empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Stage an output. Duplicate `(key, epoch, seq)` scopes — a replay
    /// reproducing an already-staged value — are dropped.
    pub fn stage(&mut self, output: PendingOutput<T>) -> bool {
        let scope = (output.key, output.epoch, output.seq);
        if self.emitted_scopes.contains(&scope)
            || self
                .pending
                .iter()
                .any(|p| (p.key, p.epoch, p.seq) == scope)
        {
            return false;
        }
        self.pending.push(output);
        true
    }

    /// Commit: externalize all pending outputs in sequence order. After
    /// commit, replays of the same scopes are ignored forever.
    pub fn commit(&mut self) -> Vec<T> {
        self.pending.sort_by_key(|p| (p.key, p.epoch, p.seq));
        let batch: Vec<T> = self.pending.iter().map(|p| p.value.clone()).collect();
        for p in self.pending.drain(..) {
            self.emitted_scopes.insert((p.key, p.epoch, p.seq));
            self.committed.push(p.value);
        }
        batch
    }

    /// Discard pending outputs (failure before commit: the replay will
    /// regenerate them).
    pub fn abort(&mut self) -> usize {
        let n = self.pending.len();
        self.pending.clear();
        n
    }

    /// Everything committed so far.
    pub fn committed(&self) -> &[T] {
        &self.committed
    }

    /// Number of staged-but-uncommitted outputs.
    pub fn pending_len(&self) -> usize {
        self.pending.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn out(seq: u64, value: i64) -> PendingOutput<i64> {
        PendingOutput {
            key: 1,
            epoch: 0,
            seq,
            value,
        }
    }

    #[test]
    fn commit_externalizes_in_order() {
        let mut log = CommitLog::new();
        assert!(log.stage(out(2, 20)));
        assert!(log.stage(out(1, 10)));
        let batch = log.commit();
        assert_eq!(batch, vec![10, 20]);
        assert_eq!(log.committed(), &[10, 20]);
    }

    #[test]
    fn replayed_outputs_are_dropped() {
        let mut log = CommitLog::new();
        log.stage(out(1, 10));
        log.commit();
        // Replay reproduces seq 1: dropped.
        assert!(!log.stage(out(1, 10)));
        // Double-stage before commit: dropped too.
        assert!(log.stage(out(2, 20)));
        assert!(!log.stage(out(2, 20)));
        log.commit();
        assert_eq!(log.committed(), &[10, 20]);
    }

    #[test]
    fn new_epoch_is_a_new_scope() {
        let mut log = CommitLog::new();
        log.stage(out(1, 10));
        log.commit();
        // Same seq, new epoch (state rebuilt after failure): legitimate.
        assert!(log.stage(PendingOutput {
            key: 1,
            epoch: 1,
            seq: 1,
            value: 11,
        }));
    }

    #[test]
    fn abort_discards_pending_only() {
        let mut log = CommitLog::new();
        log.stage(out(1, 10));
        log.commit();
        log.stage(out(2, 20));
        assert_eq!(log.abort(), 1);
        assert_eq!(log.pending_len(), 0);
        assert_eq!(log.committed(), &[10]);
        // The aborted scope may be staged again by the replay.
        assert!(log.stage(out(2, 21)));
    }
}
