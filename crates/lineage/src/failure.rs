//! Failure detection and injection.
//!
//! The runtime learns about failures from two signals: stale-handle
//! errors surfaced by the transport (the server's epoch moved on), and
//! device evictions in the simulated cluster. This module normalizes both
//! into a [`FailureEvent`] recovery can act on.

use genie_cluster::{ClusterState, DevId};

/// A detected failure.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FailureEvent {
    /// Device that failed (simulation plane) if known.
    pub device: Option<DevId>,
    /// Names/keys of objects lost with it.
    pub lost_keys: Vec<u64>,
    /// Epoch after which stale references fail.
    pub new_epoch: u64,
}

/// Whether a transport error indicates lost remote state (stale or
/// dangling handle, severed session) rather than a programming error or
/// transient slowness. Timeouts alone are *not* state loss — the server
/// may be slow but intact, and the retry layer owns that case; a spent
/// retry budget ([`Exhausted`](genie_transport::TransportError::Exhausted))
/// is classified by the final attempt's error.
pub fn is_state_loss(error: &genie_transport::TransportError) -> bool {
    use genie_transport::TransportError;
    match error {
        TransportError::Remote(msg) => {
            msg.contains("stale handle") || msg.contains("dangling handle")
        }
        TransportError::ConnectionClosed => true,
        TransportError::Io(e) => matches!(
            e.kind(),
            std::io::ErrorKind::ConnectionRefused
                | std::io::ErrorKind::ConnectionReset
                | std::io::ErrorKind::ConnectionAborted
                | std::io::ErrorKind::BrokenPipe
        ),
        TransportError::Timeout { .. } => false,
        TransportError::Exhausted { last, .. } => is_state_loss(last),
        _ => false,
    }
}

/// Simulation-plane injection: fail a device, evicting all resident
/// objects from the cluster state and reporting them.
pub fn inject_device_failure(state: &mut ClusterState, device: DevId, epoch: u64) -> FailureEvent {
    let evicted = state.evict_device(device);
    FailureEvent {
        device: Some(device),
        lost_keys: evicted.iter().map(|o| o.key).collect(),
        new_epoch: epoch + 1,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use genie_cluster::{GpuSpec, NicSpec, ResidentObject, Topology};

    #[test]
    fn stale_handle_is_state_loss() {
        let err = genie_transport::TransportError::Remote("stale handle 3: epoch 0 != 1".into());
        assert!(is_state_loss(&err));
        let err = genie_transport::TransportError::Remote("execution failed: shape".into());
        assert!(!is_state_loss(&err));
        assert!(is_state_loss(
            &genie_transport::TransportError::ConnectionClosed
        ));
    }

    #[test]
    fn transport_fault_taxonomy() {
        use genie_transport::TransportError;
        // Timeouts are transient, not state loss.
        assert!(!is_state_loss(&TransportError::Timeout {
            after: std::time::Duration::from_secs(1)
        }));
        // A reset connection means the session (and its epoch view) died.
        assert!(is_state_loss(&TransportError::Io(std::io::Error::new(
            std::io::ErrorKind::ConnectionReset,
            "rst"
        ))));
        assert!(!is_state_loss(&TransportError::Io(std::io::Error::new(
            std::io::ErrorKind::PermissionDenied,
            "no"
        ))));
        // Exhausted inherits its final error's classification.
        assert!(is_state_loss(&TransportError::Exhausted {
            attempts: 4,
            last: Box::new(TransportError::ConnectionClosed),
        }));
        assert!(!is_state_loss(&TransportError::Exhausted {
            attempts: 4,
            last: Box::new(TransportError::Timeout {
                after: std::time::Duration::from_millis(100)
            }),
        }));
    }

    #[test]
    fn device_failure_evicts_and_reports() {
        let mut topo = Topology::new();
        let h = topo.add_host("s", NicSpec::rnic_100g());
        let d = topo.add_device(h, GpuSpec::a100_80gb());
        let mut state = ClusterState::new();
        for key in [10, 11] {
            state
                .register_resident(
                    &topo,
                    ResidentObject {
                        key,
                        device: d,
                        bytes: 100,
                        epoch: 1,
                    },
                )
                .unwrap();
        }
        let event = inject_device_failure(&mut state, d, 1);
        assert_eq!(event.device, Some(d));
        assert_eq!(event.lost_keys.len(), 2);
        assert_eq!(event.new_epoch, 2);
        assert_eq!(state.mem_used(d), 0);
    }
}
