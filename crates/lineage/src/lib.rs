//! # genie-lineage — lineage-based fault tolerance
//!
//! The SRG is a complete, replayable lineage of the computation (§3.5):
//! nodes are deterministic operator invocations, edges explicit
//! dependencies, remote state is referenced by handle+epoch. This crate
//! turns that property into a recovery mechanism:
//!
//! - [`replay::LineageLog`] records a [`replay::Recipe`] per remote
//!   object and computes minimal ordered replay sets after a loss —
//!   lineage spans phases, so a long decode loop recovers without
//!   redoing prefill;
//! - [`recovery::recover`] drives a [`recovery::Replayer`] (in-memory
//!   oracle or the real socket-backed session) through the replay set and
//!   reports the savings versus restart;
//! - [`failure`] normalizes stale-handle errors and simulated device
//!   losses into events;
//! - [`commit::CommitLog`] makes external outputs idempotent by scoping
//!   them to `(handle, epoch, seq)` and emitting only at commit points.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod commit;
pub mod failure;
pub mod recovery;
pub mod replay;

pub use commit::{CommitLog, PendingOutput};
pub use failure::{inject_device_failure, is_state_loss, FailureEvent};
pub use recovery::{recover, LocalReplayer, RecoveryReport, RemoteReplayer, Replayer};
pub use replay::{LineageLog, Recipe};
