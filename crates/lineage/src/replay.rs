//! The lineage log: recipes for every remote-resident object.
//!
//! The SRG is the unit of lineage (§3.5): nodes are deterministic operator
//! invocations, edges are explicit dependencies. A [`Recipe`] records how
//! one named remote object was materialized — which captured graph, which
//! client-held inline inputs, which *other* named objects it consumed.
//! After a failure, [`LineageLog::replay_set`] computes the minimal
//! ordered subset of recipes that rebuilds exactly the lost state.

use genie_frontend::capture::CapturedGraph;
use genie_srg::NodeId;
use std::collections::BTreeSet;

/// How one named remote object is (re)materialized.
#[derive(Clone)]
pub struct Recipe {
    /// The object this recipe defines (e.g. `"k_cache_3"`).
    pub defines: String,
    /// The captured graph to execute. Its `values` hold the client-side
    /// inline inputs, which the client retains and can always re-ship.
    pub cap: CapturedGraph,
    /// Graph inputs bound to other named objects `(node, name)` — the
    /// cross-recipe lineage edges.
    pub handle_inputs: Vec<(NodeId, String)>,
    /// The node whose value becomes the object.
    pub output: NodeId,
}

/// Append-only log of recipes in execution order. A later recipe for the
/// same name supersedes earlier ones (a KV cache has one recipe per
/// append), and consumers reference the *latest definition before them*.
#[derive(Clone, Default)]
pub struct LineageLog {
    recipes: Vec<Recipe>,
}

impl LineageLog {
    /// Empty log.
    pub fn new() -> Self {
        LineageLog::default()
    }

    /// Record a recipe.
    pub fn record(&mut self, recipe: Recipe) {
        self.recipes.push(recipe);
    }

    /// Number of recorded recipes.
    pub fn len(&self) -> usize {
        self.recipes.len()
    }

    /// Whether the log is empty.
    pub fn is_empty(&self) -> bool {
        self.recipes.is_empty()
    }

    /// Recipes in order.
    pub fn recipes(&self) -> &[Recipe] {
        &self.recipes
    }

    /// Index of the defining recipe for `name` visible at position `at`
    /// (i.e. the latest definition strictly before `at`).
    fn definition_before(&self, name: &str, at: usize) -> Option<usize> {
        self.recipes[..at].iter().rposition(|r| r.defines == name)
    }

    /// The minimal, ordered set of recipe indices that must re-execute to
    /// rebuild `lost` objects.
    ///
    /// Versioning: names are redefined over time (a KV cache has one
    /// recipe per append), but a surviving object holds only its *latest*
    /// version. Two rules keep recovery exact:
    ///
    /// 1. a surviving input cuts the recursion **only** when the consumer
    ///    used the input's latest definition — an older version must be
    ///    recomputed even though the name "survives";
    /// 2. once any old definition of a name replays, every later
    ///    definition of that name replays too (forward closure), so the
    ///    store always ends at the latest version rather than a clobbered
    ///    intermediate.
    pub fn replay_set(&self, lost: &[String], surviving: &BTreeSet<String>) -> Vec<usize> {
        // Latest definition index per name.
        let mut last_def: std::collections::HashMap<&str, usize> = std::collections::HashMap::new();
        for (i, r) in self.recipes.iter().enumerate() {
            last_def.insert(r.defines.as_str(), i);
        }

        let mut needed: BTreeSet<usize> = BTreeSet::new();
        let mut stack: Vec<usize> = Vec::new();
        for name in lost {
            if let Some(idx) = self.definition_before(name, self.recipes.len()) {
                stack.push(idx);
            }
        }
        while let Some(idx) = stack.pop() {
            if !needed.insert(idx) {
                continue;
            }
            // Backward: dependencies (rule 1).
            for (_, input_name) in &self.recipes[idx].handle_inputs {
                let Some(dep) = self.definition_before(input_name, idx) else {
                    continue;
                };
                let is_latest = last_def.get(input_name.as_str()) == Some(&dep);
                if surviving.contains(input_name) && is_latest {
                    continue;
                }
                stack.push(dep);
            }
            // Forward closure: later definitions of this name (rule 2).
            let name = &self.recipes[idx].defines;
            for (j, r) in self.recipes.iter().enumerate().skip(idx + 1) {
                if &r.defines == name {
                    stack.push(j);
                }
            }
        }
        needed.into_iter().collect()
    }

    /// Fraction of the log's total recorded flops that a replay set
    /// skips — the headline savings of lineage recovery over restart.
    pub fn replay_savings(&self, replay: &[usize]) -> f64 {
        let total: f64 = self.recipes.iter().map(|r| r.cap.srg.total_flops()).sum();
        if total <= 0.0 {
            return 0.0;
        }
        let replayed: f64 = replay
            .iter()
            .map(|&i| self.recipes[i].cap.srg.total_flops())
            .sum();
        1.0 - replayed / total
    }
}

/// Resolve the replay inputs of recipe `idx`: names that must already be
/// rebuilt (or survive) before it runs.
pub fn recipe_dependencies(log: &LineageLog, idx: usize) -> Vec<String> {
    let mut deps: Vec<String> = log.recipes()[idx]
        .handle_inputs
        .iter()
        .map(|(_, n)| n.clone())
        .collect();
    deps.sort();
    deps.dedup();
    deps
}

#[cfg(test)]
mod tests {
    use super::*;
    use genie_frontend::capture::CaptureCtx;
    use genie_srg::ElemType;

    fn dummy_recipe(defines: &str, inputs: &[&str]) -> Recipe {
        let ctx = CaptureCtx::new(defines);
        let mut nodes = Vec::new();
        for (i, name) in inputs.iter().enumerate() {
            let lt = ctx.input(name, [1], ElemType::F32, None);
            nodes.push((lt.node, name.to_string()));
            let _ = i;
        }
        let x = ctx.input("client_data", [1], ElemType::F32, None);
        let y = x.relu();
        y.mark_output();
        let cap = ctx.finish();
        Recipe {
            defines: defines.to_string(),
            cap,
            handle_inputs: nodes,
            output: y.node,
        }
    }

    fn chain_log() -> LineageLog {
        // weights ← (client); kv0 ← weights; kv1 ← kv0, weights;
        // kv2 ← kv1, weights
        let mut log = LineageLog::new();
        log.record(dummy_recipe("weights", &[]));
        log.record(dummy_recipe("kv0", &["weights"]));
        log.record(dummy_recipe("kv1", &["kv0", "weights"]));
        log.record(dummy_recipe("kv2", &["kv1", "weights"]));
        log
    }

    #[test]
    fn losing_everything_replays_everything() {
        let log = chain_log();
        let replay = log.replay_set(&["weights".into(), "kv2".into()], &BTreeSet::new());
        assert_eq!(replay, vec![0, 1, 2, 3]);
    }

    #[test]
    fn surviving_inputs_cut_the_replay() {
        let log = chain_log();
        // Only kv2 lost; weights and kv1 survive (e.g. on another device).
        let surviving: BTreeSet<String> = ["weights".to_string(), "kv1".to_string()]
            .into_iter()
            .collect();
        let replay = log.replay_set(&["kv2".into()], &surviving);
        assert_eq!(replay, vec![3], "only the final append replays");
        assert!(log.replay_savings(&replay) > 0.5);
    }

    #[test]
    fn chain_loss_replays_in_order() {
        let log = chain_log();
        let surviving: BTreeSet<String> = ["weights".to_string()].into_iter().collect();
        let replay = log.replay_set(&["kv2".into()], &surviving);
        // kv2 needs kv1 needs kv0; weights survives.
        assert_eq!(replay, vec![1, 2, 3]);
    }

    #[test]
    fn superseding_definitions_use_latest_before_consumer() {
        let mut log = LineageLog::new();
        log.record(dummy_recipe("kv", &[]));
        log.record(dummy_recipe("kv", &["kv"])); // append step: kv@1 ← kv@0
        let replay = log.replay_set(&["kv".into()], &BTreeSet::new());
        assert_eq!(replay, vec![0, 1]);
    }

    #[test]
    fn empty_log_replays_nothing() {
        let log = LineageLog::new();
        assert!(log.replay_set(&["x".into()], &BTreeSet::new()).is_empty());
        assert_eq!(log.replay_savings(&[]), 0.0);
    }

    #[test]
    fn dependencies_are_sorted_and_deduped() {
        let log = chain_log();
        assert_eq!(
            recipe_dependencies(&log, 2),
            vec!["kv0".to_string(), "weights".to_string()]
        );
    }
}
