//! Chaos testing for lineage recovery: random recipe DAGs, random loss
//! sets, and the invariant that recovery always reproduces exactly the
//! state of an unfailed execution.

use genie_frontend::capture::CaptureCtx;
use genie_lineage::{recover, LineageLog, LocalReplayer, Recipe};
use genie_srg::ElemType;
use genie_tensor::Tensor;
use proptest::prelude::*;
use std::collections::BTreeSet;

/// Build a random chain of recipes over `objects` named objects. Each
/// recipe derives one object from client data and up to two previously
/// defined objects, with deterministic arithmetic.
fn random_log(objects: usize, steps: usize, seed: u64) -> (LineageLog, LocalReplayer) {
    let mut log = LineageLog::new();
    let mut replayer = LocalReplayer::new();
    let mut rng = seed;
    let mut next = || {
        rng = rng
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (rng >> 33) as usize
    };
    let mut defined: Vec<String> = Vec::new();

    for step in 0..steps {
        let name = format!("obj{}", next() % objects);
        let ctx = CaptureCtx::new(format!("step{step}"));
        let client = ctx.input(
            "client",
            [4],
            ElemType::F32,
            Some(Tensor::full([4], (step % 7) as f32 + 0.5)),
        );
        let mut acc = client.relu();
        let mut handle_inputs = Vec::new();
        if !defined.is_empty() {
            for _ in 0..(next() % 2 + usize::from(next() % 2 == 0)) {
                let dep = defined[next() % defined.len()].clone();
                let input = ctx.input(&format!("in_{dep}"), [4], ElemType::F32, None);
                acc = acc.add(&input);
                handle_inputs.push((input.node, dep));
            }
        }
        acc.mark_output();
        let mut cap = ctx.finish();
        for (node, _) in &handle_inputs {
            cap.values.remove(node);
        }
        let recipe = Recipe {
            defines: name.clone(),
            cap,
            handle_inputs,
            output: acc.node,
        };
        replayer.replay(&recipe).expect("forward execution");
        log.record(recipe);
        if !defined.contains(&name) {
            defined.push(name);
        }
    }
    (log, replayer)
}

use genie_lineage::Replayer;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn recovery_always_reproduces_lost_state(
        objects in 1usize..5,
        steps in 1usize..12,
        seed in any::<u64>(),
        loss_mask in any::<u32>(),
    ) {
        let (log, mut replayer) = random_log(objects, steps, seed);
        let oracle = replayer.store.clone();

        // Lose a random subset of live objects.
        let names: Vec<String> = {
            let mut v: Vec<String> = oracle.keys().cloned().collect();
            v.sort();
            v
        };
        let lost: Vec<String> = names
            .iter()
            .enumerate()
            .filter(|(i, _)| loss_mask >> (i % 32) & 1 == 1)
            .map(|(_, n)| n.clone())
            .collect();
        if lost.is_empty() {
            return Ok(());
        }
        for name in &lost {
            replayer.store.remove(name);
        }
        let surviving: BTreeSet<String> = replayer.store.keys().cloned().collect();

        let report = recover(&log, &lost, &surviving, &mut replayer).unwrap();
        // The whole store — lost AND surviving — matches the unfailed
        // oracle exactly after recovery.
        for (name, value) in &oracle {
            prop_assert_eq!(
                replayer.store.get(name),
                Some(value),
                "object {} diverged after recovery",
                name
            );
        }
        // Replay indices are sorted (execution order) and within range.
        let mut sorted = report.replayed.clone();
        sorted.sort_unstable();
        prop_assert_eq!(&sorted, &report.replayed);
        prop_assert!(report.replayed.iter().all(|&i| i < log.len()));
        // Savings are a valid fraction.
        prop_assert!((0.0..=1.0).contains(&report.savings));
    }

    #[test]
    fn surviving_state_is_never_recomputed_unnecessarily(
        steps in 2usize..10,
        seed in any::<u64>(),
    ) {
        // Lose only the LAST-defined object; everything else survives.
        let (log, mut replayer) = random_log(3, steps, seed);
        let last = log.recipes().last().unwrap().defines.clone();
        let oracle = replayer.store.clone();
        replayer.store.remove(&last);
        let surviving: BTreeSet<String> = replayer.store.keys().cloned().collect();

        let report = recover(&log, std::slice::from_ref(&last), &surviving, &mut replayer).unwrap();
        // Replay is bounded by the definitions reachable from the lost
        // object, and the WHOLE store ends identical to the unfailed run
        // — including surviving names the replay may have re-written.
        prop_assert!(!report.replayed.is_empty());
        prop_assert!(report.replayed.len() <= log.len());
        for (name, value) in &oracle {
            prop_assert_eq!(
                replayer.store.get(name),
                Some(value),
                "object {} diverged",
                name
            );
        }
    }
}
