//! Property suite for KV-prefix migration under disaggregated serving.
//!
//! Everything is asserted from the *event log and counters alone* — the
//! log is the engine's public contract, so these hold for any consumer
//! replaying it:
//!
//! 1. single residency: between a `MigrateStart` and its matching
//!    `MigrateDone`/`MigrateFail` the request is in flight — no tokens
//!    decode, no second migration starts, and exactly one resolution
//!    event follows every start;
//! 2. no KV bytes are lost or double-counted: resident-plus-in-flight
//!    bytes never exceed fleet capacity (every lane, prefill included),
//!    and the migration counters partition exactly
//!    (`migrations == completed + failed`, re-prefill causes partition
//!    the re-prefill total);
//! 3. exactly one terminal event per offered request, migrations or not;
//! 4. the loop is a pure function of (requests, config): same seed ⇒
//!    byte-identical logs, outcomes, and migration counters.

use genie_cluster::GpuSpec;
use genie_models::TransformerConfig;
use genie_netsim::Nanos;
use genie_serving::{
    ArrivalConfig, DisaggConfig, EventKind, MigrationPolicy, ServingConfig, ServingLoop,
    ServingModel,
};
use proptest::prelude::*;
use std::collections::BTreeMap;

fn config(
    lanes: u32,
    prefill_lanes: u32,
    max_batch: usize,
    kv_tokens: u64,
    policy: MigrationPolicy,
) -> ServingConfig {
    let cfg = TransformerConfig::tiny();
    let mut d = DisaggConfig::paper_testbed(prefill_lanes);
    d.policy = policy;
    ServingConfig {
        lanes,
        max_batch,
        batched: true,
        kv_capacity_bytes: kv_tokens * cfg.kv_bytes_per_token(),
        queue_budget: Nanos::from_millis(200),
        max_queue: 64,
        gpu: GpuSpec::a100_80gb(),
        link_bandwidth_bps: 25e9,
        link_latency_s: 250e-6,
        fault_plan: None,
        slo: genie_serving::SloConfig::paper_default(),
        record_telemetry: false,
        disagg: Some(d),
        shard: None,
    }
}

fn policy_of(idx: u8) -> MigrationPolicy {
    match idx % 3 {
        0 => MigrationPolicy::Planner,
        1 => MigrationPolicy::AlwaysShip,
        _ => MigrationPolicy::AlwaysReprefill,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn migration_invariants_hold(
        seed in any::<u64>(),
        rate in 20u32..100,
        lanes in 1u32..=2,
        prefill_lanes in 1u32..=2,
        max_batch in 1usize..=4,
        kv_tokens in 24u64..=96,
        policy_idx in 0u8..3,
    ) {
        let model = TransformerConfig::tiny();
        let requests = ArrivalConfig {
            seed,
            rate_per_s: f64::from(rate),
            horizon: Nanos::from_secs_f64(0.2),
            prompt_len: (1, 6),
            decode_tokens: (1, 6),
            vocab: model.vocab,
            tenants: 2,
        }
        .generate();
        let conf = config(lanes, prefill_lanes, max_batch, kv_tokens, policy_of(policy_idx));
        let report =
            ServingLoop::new(ServingModel::Spec(model.clone()), conf.clone()).run(&requests);

        // 1. Single residency through migration: the event log's
        //    migration state machine is Start → (Done | Fail), never
        //    nested, and nothing decodes while in flight.
        let mut in_flight: BTreeMap<u64, u32> = BTreeMap::new();
        let mut starts = 0u64;
        let mut resolutions = 0u64;
        for e in &report.events {
            match &e.kind {
                EventKind::MigrateStart { from, to, bytes } => {
                    prop_assert!(
                        !in_flight.contains_key(&e.request),
                        "request {} started a second migration mid-flight",
                        e.request
                    );
                    prop_assert!(from != to, "migration to the same lane");
                    prop_assert!(
                        u64::from(*from) >= u64::from(conf.lanes),
                        "migrations depart prefill lanes only (from {from})"
                    );
                    prop_assert!(
                        u64::from(*to) < u64::from(conf.lanes),
                        "migrations land on decode lanes only (to {to})"
                    );
                    prop_assert!(*bytes > 0, "empty migration payload");
                    in_flight.insert(e.request, *to);
                    starts += 1;
                }
                EventKind::MigrateDone { to } | EventKind::MigrateFail { to } => {
                    let expected = in_flight.remove(&e.request);
                    prop_assert_eq!(
                        expected, Some(*to),
                        "resolution without a matching start for request {}",
                        e.request
                    );
                    resolutions += 1;
                }
                EventKind::Token { .. } => {
                    prop_assert!(
                        !in_flight.contains_key(&e.request),
                        "request {} decoded while its KV was on the wire",
                        e.request
                    );
                }
                _ => {}
            }
        }
        prop_assert!(in_flight.is_empty(), "unresolved migrations at drain");
        prop_assert_eq!(starts, resolutions, "every start resolves exactly once");

        // 2. Bytes conserved: resident + in-flight never exceeds fleet
        //    capacity, and the counters partition exactly.
        let total_lanes = u64::from(conf.lanes)
            + u64::from(conf.disagg.as_ref().unwrap().prefill_lanes);
        let fleet_cap = conf.kv_capacity_bytes * total_lanes;
        for e in &report.events {
            prop_assert!(
                e.kv_resident_bytes <= fleet_cap,
                "resident {} > fleet capacity {} at {:?}",
                e.kv_resident_bytes,
                fleet_cap,
                e
            );
        }
        prop_assert!(report.peak_kv_bytes <= fleet_cap);
        prop_assert_eq!(
            report.migrations,
            report.migrations_completed + report.migrations_failed,
            "migration counters must partition"
        );
        prop_assert_eq!(starts, report.migrations);
        prop_assert_eq!(
            report.reprefills,
            report.reprefills_evicted + report.reprefills_migration + report.reprefills_planned,
            "re-prefill cause counters must partition the total"
        );
        if matches!(conf.disagg.as_ref().unwrap().policy, MigrationPolicy::AlwaysReprefill) {
            prop_assert_eq!(report.migrations, 0u64, "baseline never ships");
        }

        // 3. Exactly one terminal event per offered request.
        let mut terminals: BTreeMap<u64, usize> = BTreeMap::new();
        for e in &report.events {
            if matches!(e.kind, EventKind::Complete | EventKind::Shed(_)) {
                *terminals.entry(e.request).or_insert(0) += 1;
            }
        }
        prop_assert_eq!(terminals.len(), requests.len(), "every request must terminate");
        for (id, count) in &terminals {
            prop_assert_eq!(*count, 1usize, "request {} terminated {} times", id, count);
        }
        prop_assert_eq!(report.outcomes.len(), requests.len());

        // 4. Deterministic replay: identical inputs, identical log and
        //    migration accounting.
        let again = ServingLoop::new(ServingModel::Spec(model), conf).run(&requests);
        prop_assert_eq!(&report.events, &again.events);
        prop_assert_eq!(&report.outcomes, &again.outcomes);
        prop_assert_eq!(report.migrations, again.migrations);
        prop_assert_eq!(report.migrated_kv_bytes, again.migrated_kv_bytes);
    }
}
