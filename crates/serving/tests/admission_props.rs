//! Property suite for the serving loop's admission invariants.
//!
//! Everything is asserted from the *event log alone* — the log is the
//! engine's public contract, so the properties hold for any consumer
//! replaying it:
//!
//! 1. resident KV bytes never exceed fleet capacity (lanes × per-lane);
//! 2. no request is admitted after waiting past the SLO queue budget
//!    (stale waiters shed, with a typed reason, instead);
//! 3. every offered request gets exactly one terminal event;
//! 4. the loop is a pure function of (requests, config): same seed ⇒
//!    identical logs.

use genie_cluster::GpuSpec;
use genie_models::TransformerConfig;
use genie_netsim::Nanos;
use genie_serving::{ArrivalConfig, EventKind, ServingConfig, ServingLoop, ServingModel};
use proptest::prelude::*;
use std::collections::BTreeMap;

fn config(lanes: u32, max_batch: usize, kv_tokens: u64, budget_ms: u64) -> ServingConfig {
    let cfg = TransformerConfig::tiny();
    ServingConfig {
        lanes,
        max_batch,
        batched: true,
        kv_capacity_bytes: kv_tokens * cfg.kv_bytes_per_token(),
        queue_budget: Nanos::from_millis(budget_ms),
        max_queue: 32,
        gpu: GpuSpec::a100_80gb(),
        link_bandwidth_bps: 25e9,
        link_latency_s: 250e-6,
        fault_plan: None,
        slo: genie_serving::SloConfig::paper_default(),
        record_telemetry: false,
        disagg: None,
        shard: None,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn admission_invariants_hold(
        seed in any::<u64>(),
        rate in 20u32..100,
        lanes in 1u32..=2,
        max_batch in 1usize..=4,
        kv_tokens in 8u64..=64,
        budget_ms in 5u64..=60,
    ) {
        let model = TransformerConfig::tiny();
        let requests = ArrivalConfig {
            seed,
            rate_per_s: f64::from(rate),
            horizon: Nanos::from_secs_f64(0.2),
            prompt_len: (1, 6),
            decode_tokens: (1, 6),
            vocab: model.vocab,
            tenants: 2,
        }
        .generate();
        let conf = config(lanes, max_batch, kv_tokens, budget_ms);
        let report =
            ServingLoop::new(ServingModel::Spec(model.clone()), conf.clone()).run(&requests);

        // 1. Fleet-wide KV residency never exceeds capacity.
        let fleet_cap = conf.kv_capacity_bytes * u64::from(lanes);
        for e in &report.events {
            prop_assert!(
                e.kv_resident_bytes <= fleet_cap,
                "resident {} > capacity {} at {:?}",
                e.kv_resident_bytes,
                fleet_cap,
                e
            );
        }

        // 2. No admission after the SLO budget expired; waiting restarts
        //    at arrival and at each preemption.
        let mut enqueued: BTreeMap<u64, Nanos> = BTreeMap::new();
        for e in &report.events {
            match &e.kind {
                EventKind::Arrive | EventKind::Preempt => {
                    enqueued.insert(e.request, e.at);
                }
                EventKind::Admit { .. } => {
                    let since = enqueued[&e.request];
                    prop_assert!(
                        e.at.saturating_sub(since) <= conf.queue_budget,
                        "request {} admitted after {:?} > budget {:?}",
                        e.request,
                        e.at.saturating_sub(since),
                        conf.queue_budget
                    );
                }
                _ => {}
            }
        }

        // 3. Exactly one terminal event per offered request.
        let mut terminals: BTreeMap<u64, usize> = BTreeMap::new();
        for e in &report.events {
            if matches!(e.kind, EventKind::Complete | EventKind::Shed(_)) {
                *terminals.entry(e.request).or_insert(0) += 1;
            }
        }
        prop_assert_eq!(terminals.len(), requests.len(), "every request must terminate");
        for (id, count) in &terminals {
            prop_assert_eq!(*count, 1usize, "request {} terminated {} times", id, count);
        }
        prop_assert_eq!(report.outcomes.len(), requests.len());

        // 4. Deterministic replay: identical inputs, identical log.
        let again = ServingLoop::new(ServingModel::Spec(model), conf).run(&requests);
        prop_assert_eq!(&report.events, &again.events);
    }
}
