//! The continuous-batching serving loop.
//!
//! A deterministic discrete-event engine in the Orca/vLLM mold, scaled
//! to the repo's simulation plane: requests arrive on a virtual clock,
//! queue for admission under an SLO budget, and decode *together* —
//! every admitted request contributes one token per batched step, with
//! late arrivals joining mid-flight (continuous batching) instead of
//! waiting for the current batch to drain.
//!
//! Two execution planes share the one loop, mirroring the rest of the
//! repo:
//!
//! - **Functional** ([`ServingModel::Functional`]): a tiny
//!   [`TransformerLm`] with real weights; prefill and decode capture and
//!   execute real SRGs, so the loop's tokens can be pinned bit-for-bit
//!   against the sequential [`generate`](TransformerLm::generate)
//!   oracle.
//! - **Spec** ([`ServingModel::Spec`]): paper-scale configs (GPT-J-6B)
//!   where only the roofline cost of each batched step is simulated and
//!   tokens are synthesized deterministically.
//!
//! KV residency is explicit: each lane (device) has a byte capacity;
//! under pressure the least-recently-stepped request is evicted and
//! re-queued, and on readmission it *re-prefills* over prompt +
//! generated prefix — the lineage-style re-materialization the repo's
//! incremental-decode ≡ full-forward equivalence guarantees is exact.
//!
//! Determinism contract: no wall clock, no global RNG, `BTreeMap`
//! iteration everywhere ties break by request id. Same requests + same
//! config ⇒ byte-identical event log, a property the test suite replays.

use crate::kv::KvLedger;
use crate::report::ServingReport;
use crate::request::{EventKind, LogEvent, Outcome, ServingRequest, ShedReason};
use crate::slo::{SloConfig, SloTracker};
use genie_backend::{batched_step_time, sharded_step_time, ShardPlan, StepWork};
use genie_cluster::GpuSpec;
use genie_frontend::capture::CaptureCtx;
use genie_models::{KvState, TransformerConfig, TransformerLm};
use genie_netsim::{FaultPlan, FaultSpec, Nanos, TransferOutcome, XorShift64};
use genie_scheduler::{CostModel, KvMigrationPlanner, MigrationDecision};
use genie_srg::shard::ShardSpec;
use genie_telemetry::causal::{MemberPhase, StepMember, StepSlice};
use genie_telemetry::{SemAttrs, SpanKind, SpanRecord, Track, DEFAULT_TIME_BOUNDS};
use std::collections::{BTreeMap, VecDeque};

/// The model a serving loop executes.
#[derive(Clone, Debug)]
pub enum ServingModel {
    /// Tiny functional LM: real arithmetic, oracle-comparable tokens.
    Functional(TransformerLm),
    /// Paper-scale spec config: roofline costs, synthesized tokens.
    Spec(TransformerConfig),
}

impl ServingModel {
    /// The architecture config (either plane).
    pub fn config(&self) -> &TransformerConfig {
        match self {
            ServingModel::Functional(m) => &m.config,
            ServingModel::Spec(c) => c,
        }
    }

    /// Whether this plane executes real arithmetic.
    pub fn is_functional(&self) -> bool {
        matches!(self, ServingModel::Functional(_))
    }
}

/// How a finished prefill's KV prefix reaches the decode pool.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MigrationPolicy {
    /// Price ship-vs-reprefill per request with the calibrated
    /// [`KvMigrationPlanner`] and take the cheaper side.
    Planner,
    /// Always ship the prefix (falls back to re-prefill only when no
    /// decode lane has capacity).
    AlwaysShip,
    /// Never ship: every request re-prefills from lineage at the decode
    /// pool — the migration-free disaggregation baseline.
    AlwaysReprefill,
}

/// Prefill/decode disaggregation: dedicated prefill lanes feeding the
/// decode lanes through explicit KV-prefix migrations over the fabric.
#[derive(Clone, Debug)]
pub struct DisaggConfig {
    /// Lanes dedicated to prefill, *in addition to*
    /// [`ServingConfig::lanes`] decode lanes. Lane indices
    /// `lanes..lanes + prefill_lanes`; host ids follow the same
    /// `1 + lane` mapping as decode lanes.
    pub prefill_lanes: u32,
    /// Prefill↔decode fabric bandwidth in bits/s.
    pub migrate_bandwidth_bps: f64,
    /// Prefill↔decode one-way latency in seconds.
    pub migrate_latency_s: f64,
    /// Ship-vs-reprefill policy.
    pub policy: MigrationPolicy,
}

impl DisaggConfig {
    /// `prefill_lanes` prefill hosts on the paper's 25 Gbps / 250 µs
    /// fabric, planner-priced migrations.
    pub fn paper_testbed(prefill_lanes: u32) -> Self {
        DisaggConfig {
            prefill_lanes,
            migrate_bandwidth_bps: 25e9,
            migrate_latency_s: 250e-6,
            policy: MigrationPolicy::Planner,
        }
    }
}

/// Static configuration of one serving loop.
#[derive(Clone, Debug)]
pub struct ServingConfig {
    /// Decode lanes (devices serving replicas of the model).
    pub lanes: u32,
    /// Max requests batched per lane per step.
    pub max_batch: usize,
    /// Batched pricing (weights read once per step) vs. sequential
    /// per-member pricing — the ablation knob for the batching win.
    pub batched: bool,
    /// KV-cache byte capacity per lane.
    pub kv_capacity_bytes: u64,
    /// SLO budget: max time a request may sit queued before shedding.
    pub queue_budget: Nanos,
    /// Queue length cap; arrivals beyond it shed immediately.
    pub max_queue: usize,
    /// Accelerator executing each lane.
    pub gpu: GpuSpec,
    /// Client↔server link bandwidth in bits/s.
    pub link_bandwidth_bps: f64,
    /// Client↔server one-way link latency in seconds.
    pub link_latency_s: f64,
    /// Optional fault schedule; lane `l` maps to the link between host 0
    /// (client) and host `1 + l` (its server). Migrations between lanes
    /// `a` and `b` travel the `(1 + a, 1 + b)` link.
    pub fault_plan: Option<FaultPlan>,
    /// Prefill/decode disaggregation (colocated serving when `None`).
    pub disagg: Option<DisaggConfig>,
    /// Shard each lane's model across fabric-attached devices
    /// (`pipeline_stages × tensor_parallel`); `None` keeps one device
    /// per lane. Collective traffic rides the same link the lane uses
    /// and is blamed to the `collective` causal category.
    pub shard: Option<ShardSpec>,
    /// Per-tenant SLO policy for burn-rate accounting (TTFT target,
    /// error budget, rolling window, sampling).
    pub slo: SloConfig,
    /// Record `genie_serving_*` metrics and spans into the process-global
    /// telemetry sinks (the report always carries its own copies).
    pub record_telemetry: bool,
}

impl ServingConfig {
    /// One A100 lane behind the paper's 25 Gbps / 250 µs testbed link,
    /// batch 8, 8 GiB of KV, a 2 s queue budget.
    pub fn paper_testbed() -> Self {
        ServingConfig {
            lanes: 1,
            max_batch: 8,
            batched: true,
            kv_capacity_bytes: 8 << 30,
            queue_budget: Nanos::from_secs_f64(2.0),
            max_queue: 256,
            gpu: GpuSpec::a100_80gb(),
            link_bandwidth_bps: 25e9,
            link_latency_s: 250e-6,
            fault_plan: None,
            disagg: None,
            shard: None,
            slo: SloConfig::paper_default(),
            record_telemetry: true,
        }
    }
}

/// Why a job lost its KV and must re-prefill on its next step.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum ReprefillCause {
    /// LRU-evicted under KV pressure.
    Eviction,
    /// A fabric fault lost the migrating prefix.
    FailedMigration,
    /// The planner priced recompute below shipping (or no decode lane
    /// had capacity for the prefix).
    Planned,
}

/// Which lanes a queued job may admit onto.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Pool {
    /// Any prefill lane (fresh requests under disaggregation).
    Prefill,
    /// Any decode lane.
    Decode,
    /// Exactly this lane (the job's KV is already resident there).
    Lane(u32),
}

/// One request's in-flight state (queued or active).
#[derive(Clone, Debug)]
struct Job {
    req: ServingRequest,
    tokens: Vec<i64>,
    kv: Option<KvState>,
    ttft: Option<Nanos>,
    enqueued_at: Nanos,
    last_step: u64,
    lane: u32,
    /// The decode lane a migrated prefix landed on (queued jobs only;
    /// pins admission to that lane).
    landed: Option<u32>,
    /// Pending re-prefill attribution, consumed when the pass runs.
    reprefill_cause: Option<ReprefillCause>,
}

/// A KV prefix in transit between a prefill and a decode lane. The
/// outcome is resolved at departure (the fault schedule is static and
/// the RNG stream deterministic), but takes effect only when the
/// virtual clock reaches it.
#[derive(Clone, Debug)]
struct PendingMigration {
    job: Job,
    to: u32,
    bytes: u64,
    outcome: TransferOutcome,
}

impl PendingMigration {
    /// When the transfer resolves (lands or is reported lost).
    fn event_at(&self) -> Nanos {
        match self.outcome {
            TransferOutcome::Delivered { done_at } => done_at,
            TransferOutcome::Lost { at } => at,
        }
    }
}

impl Job {
    fn new(req: ServingRequest) -> Self {
        let enqueued_at = req.arrival;
        Job {
            req,
            tokens: Vec::new(),
            kv: None,
            ttft: None,
            enqueued_at,
            last_step: 0,
            lane: 0,
            landed: None,
            reprefill_cause: None,
        }
    }

    /// Resident KV tokens this job will hold after its next step: a
    /// resident job grows by one; a non-resident one (re)prefills over
    /// prompt + all-but-the-last generated token (the last token is the
    /// next decode input, its KV not yet written).
    fn next_resident_tokens(&self, resident_now: u64) -> u64 {
        if resident_now > 0 {
            resident_now + 1
        } else {
            (self.req.prompt.len() + self.tokens.len().saturating_sub(1)) as u64
        }
    }
}

/// The serving engine: construct once, [`run`](Self::run) a trace.
pub struct ServingLoop {
    model: ServingModel,
    config: ServingConfig,
}

impl ServingLoop {
    /// Build a loop for `model` under `config`.
    pub fn new(model: ServingModel, config: ServingConfig) -> Self {
        assert!(config.lanes >= 1, "need at least one lane");
        assert!(config.max_batch >= 1, "need batch capacity of at least 1");
        assert!(config.max_queue >= 1, "need queue capacity of at least 1");
        if let Some(d) = &config.disagg {
            assert!(d.prefill_lanes >= 1, "disaggregation needs a prefill lane");
            assert!(
                d.migrate_bandwidth_bps > 0.0,
                "migration link needs bandwidth"
            );
        }
        ServingLoop { model, config }
    }

    /// The configured model.
    pub fn model(&self) -> &ServingModel {
        &self.model
    }

    /// Drive `requests` (any order; sorted internally) to completion and
    /// return the full report. Every request ends with exactly one
    /// terminal outcome: completed or shed with a typed reason.
    pub fn run(&self, requests: &[ServingRequest]) -> ServingReport {
        let cfg = self.model.config().clone();
        let kv_bytes = cfg.kv_bytes_per_token();
        let decode_lanes = self.config.lanes as usize;
        let disagg = self.config.disagg.clone();
        let prefill_lanes = disagg.as_ref().map_or(0, |d| d.prefill_lanes as usize);
        let lanes = decode_lanes + prefill_lanes;
        // Ship-vs-reprefill pricing: the planner's network side is the
        // migration fabric, and its kernel side runs at unit efficiency
        // so its re-prefill estimate matches the engine's own roofline
        // step pricing (`batched_step_time` does not derate either).
        let planner = disagg.as_ref().map(|d| {
            let mut cost = CostModel::ideal_25g();
            cost.network_bandwidth = d.migrate_bandwidth_bps / 8.0;
            cost.network_latency_s = d.migrate_latency_s;
            cost.per_call_overhead_s = 0.0;
            KvMigrationPlanner::new(
                cost,
                self.config.gpu.clone(),
                kv_bytes,
                cfg.flops_per_token(),
                cfg.weight_bytes(),
            )
        });

        let mut pending: Vec<ServingRequest> = requests.to_vec();
        pending.sort_by_key(|r| (r.arrival, r.id));
        for r in &pending {
            assert!(!r.prompt.is_empty(), "request {} has empty prompt", r.id);
            assert!(r.total_tokens >= 1, "request {} asks for 0 tokens", r.id);
        }
        {
            let mut ids: Vec<u64> = pending.iter().map(|r| r.id).collect();
            ids.sort_unstable();
            ids.dedup();
            assert_eq!(ids.len(), pending.len(), "request ids must be unique");
        }
        let mut pending: VecDeque<ServingRequest> = pending.into();

        let mut ledger = KvLedger::new(lanes, self.config.kv_capacity_bytes, kv_bytes);
        let mut queue: VecDeque<Job> = VecDeque::new();
        let mut active: BTreeMap<u64, Job> = BTreeMap::new();
        let mut report = ServingReport::default();
        let mut now = Nanos::ZERO;
        let mut steps = 0u64;
        let mut span_id = 1u64;
        let mut chaos_rng = XorShift64::new(
            self.config
                .fault_plan
                .as_ref()
                .map_or(1, |p| p.seed ^ 0x5e21_1a7e),
        );
        let mut slo = SloTracker::new(self.config.slo.clone());
        let mut migrating: BTreeMap<u64, PendingMigration> = BTreeMap::new();

        loop {
            // 1. Pump arrivals and migration landings due by `now` into
            //    the queue, merged in virtual-time order (ties: arrivals
            //    first, then ascending request id) so queue FIFO order
            //    is the event-time order.
            loop {
                let next_arrival = pending
                    .front()
                    .filter(|r| r.arrival <= now)
                    .map(|r| r.arrival);
                let next_landing = migrating
                    .iter()
                    .filter(|(_, m)| m.event_at() <= now)
                    .map(|(id, m)| (m.event_at(), *id))
                    .min();
                let take_arrival = match (next_arrival, next_landing) {
                    (Some(a), Some((l, _))) => a <= l,
                    (Some(_), None) => true,
                    (None, Some(_)) => false,
                    (None, None) => break,
                };
                if take_arrival {
                    let req = pending.pop_front().expect("front checked");
                    push_event(&mut report, req.arrival, req.id, EventKind::Arrive, &ledger);
                    if queue.len() >= self.config.max_queue {
                        self.shed(
                            &mut report,
                            &ledger,
                            &mut slo,
                            req.id,
                            req.tenant,
                            ShedReason::QueueFull,
                            now,
                        );
                    } else {
                        queue.push_back(Job::new(req));
                    }
                    continue;
                }
                let (_, id) = next_landing.expect("landing checked");
                let m = migrating.remove(&id).expect("landing id present");
                let mut job = m.job;
                match m.outcome {
                    TransferOutcome::Delivered { done_at } => {
                        let (to, _) = ledger.complete_migration(id);
                        report.migrations_completed += 1;
                        report.migrated_kv_bytes += m.bytes;
                        job.landed = Some(to as u32);
                        job.enqueued_at = done_at;
                        push_event(
                            &mut report,
                            done_at,
                            id,
                            EventKind::MigrateDone { to: m.to },
                            &ledger,
                        );
                    }
                    TransferOutcome::Lost { at } => {
                        ledger.fail_migration(id);
                        report.migrations_failed += 1;
                        job.kv = None;
                        job.landed = None;
                        job.reprefill_cause = Some(ReprefillCause::FailedMigration);
                        job.enqueued_at = at;
                        push_event(
                            &mut report,
                            at,
                            id,
                            EventKind::MigrateFail { to: m.to },
                            &ledger,
                        );
                        if self.config.record_telemetry {
                            genie_telemetry::global()
                                .metrics
                                .counter("genie_serving_migration_failed_total", &[])
                                .inc();
                        }
                    }
                }
                queue.push_back(job);
            }

            // 2. Shed queued requests that already blew the SLO budget —
            //    *before* admission, so no admitted request has waited
            //    longer than the budget.
            let budget = self.config.queue_budget;
            let mut kept: VecDeque<Job> = VecDeque::new();
            while let Some(job) = queue.pop_front() {
                if now.saturating_sub(job.enqueued_at) > budget {
                    // A landed-but-never-admitted job still holds lane
                    // residency; release it before recording the shed.
                    if let Some(lane) = job.landed {
                        ledger.evict(lane as usize, job.req.id);
                    }
                    self.shed(
                        &mut report,
                        &ledger,
                        &mut slo,
                        job.req.id,
                        job.req.tenant,
                        ShedReason::QueueOverSlo,
                        now,
                    );
                } else {
                    kept.push_back(job);
                }
            }
            queue = kept;

            // 3. Admit FIFO onto the emptiest lane of each job's pool
            //    with batch headroom. Pools block independently
            //    (head-of-line blocking is per pool): with one pool
            //    (colocated) this is exactly the classic FIFO admit;
            //    under disaggregation a stalled decode pool cannot
            //    starve fresh prefills or vice versa. A job whose
            //    migrated prefix landed on a lane admits only there.
            let pool_of = |job: &Job| -> Pool {
                if disagg.is_none() {
                    Pool::Decode
                } else if let Some(lane) = job.landed {
                    Pool::Lane(lane)
                } else if job.tokens.is_empty() {
                    Pool::Prefill
                } else {
                    Pool::Decode
                }
            };
            let lane_range = |pool: Pool| -> (usize, usize) {
                match pool {
                    Pool::Decode => (0, decode_lanes),
                    Pool::Prefill => (decode_lanes, lanes),
                    Pool::Lane(l) => (l as usize, l as usize + 1),
                }
            };
            let mut blocked: Vec<Pool> = Vec::new();
            let mut kept: VecDeque<Job> = VecDeque::new();
            while let Some(mut job) = queue.pop_front() {
                let pool = pool_of(&job);
                if blocked.contains(&pool) {
                    kept.push_back(job);
                    continue;
                }
                if job.landed.is_none() {
                    let need = job.next_resident_tokens(0);
                    if need * kv_bytes > self.config.kv_capacity_bytes {
                        self.shed(
                            &mut report,
                            &ledger,
                            &mut slo,
                            job.req.id,
                            job.req.tenant,
                            ShedReason::KvCapacity,
                            now,
                        );
                        continue;
                    }
                }
                let (lo, hi) = lane_range(pool);
                let mut best: Option<(usize, u32)> = None;
                for lane in lo..hi {
                    let members = active.values().filter(|j| j.lane == lane as u32).count();
                    if members < self.config.max_batch && best.is_none_or(|(m, _)| members < m) {
                        best = Some((members, lane as u32));
                    }
                }
                match best {
                    Some((_, lane)) => {
                        job.lane = lane;
                        push_event(
                            &mut report,
                            now,
                            job.req.id,
                            EventKind::Admit { lane },
                            &ledger,
                        );
                        active.insert(job.req.id, job);
                    }
                    None => {
                        blocked.push(pool);
                        kept.push_back(job);
                    }
                }
            }
            queue = kept;

            // 4. Idle: jump the clock to the next arrival or migration
            //    landing, or drain out.
            if active.is_empty() {
                let next_arrival = pending.front().map(|r| r.arrival);
                let next_landing = migrating.values().map(PendingMigration::event_at).min();
                let next = match (next_arrival, next_landing) {
                    (Some(a), Some(l)) => Some(a.min(l)),
                    (a, l) => a.or(l),
                };
                if let Some(t) = next {
                    now = t;
                    continue;
                }
                // Unreachable in practice (an empty fleet always admits or
                // sheds the whole queue above), but guarantee termination
                // with a terminal outcome for every request regardless.
                while let Some(job) = queue.pop_front() {
                    if let Some(lane) = job.landed {
                        ledger.evict(lane as usize, job.req.id);
                    }
                    self.shed(
                        &mut report,
                        &ledger,
                        &mut slo,
                        job.req.id,
                        job.req.tenant,
                        ShedReason::QueueOverSlo,
                        now,
                    );
                }
                break;
            }

            // 5. Enforce per-lane KV capacity for the upcoming step: LRU
            //    eviction (least-recently-stepped, ties by id) until the
            //    after-step working set fits; a lone member that can
            //    never fit is shed.
            for lane in 0..lanes as u32 {
                loop {
                    // The lane's after-step working set: running members'
                    // growth, plus bytes pinned by inbound migration
                    // reservations and landed-but-queued prefixes.
                    let mut needed = ledger.reserved_tokens(lane as usize);
                    for j in queue.iter().filter(|j| j.landed == Some(lane)) {
                        needed += ledger.resident_tokens(lane as usize, j.req.id);
                    }
                    let mut members = 0usize;
                    for j in active.values().filter(|j| j.lane == lane) {
                        needed +=
                            j.next_resident_tokens(ledger.resident_tokens(lane as usize, j.req.id));
                        members += 1;
                    }
                    if needed * kv_bytes <= self.config.kv_capacity_bytes {
                        break;
                    }
                    // Displace an idle landed prefix (latest first)
                    // before preempting a running member: the queued job
                    // just falls back to lineage re-prefill.
                    let idle = queue
                        .iter()
                        .enumerate()
                        .filter(|(_, j)| j.landed == Some(lane))
                        .max_by_key(|(_, j)| (j.enqueued_at, j.req.id))
                        .map(|(i, _)| i);
                    if let Some(idx) = idle {
                        let job = &mut queue[idx];
                        let id = job.req.id;
                        ledger.evict(lane as usize, id);
                        job.kv = None;
                        job.landed = None;
                        job.reprefill_cause = Some(ReprefillCause::Eviction);
                        report.preemptions += 1;
                        push_event(&mut report, now, id, EventKind::Preempt, &ledger);
                        if self.config.record_telemetry {
                            genie_telemetry::global()
                                .metrics
                                .counter("genie_serving_preempt_total", &[])
                                .inc();
                        }
                        continue;
                    }
                    if members == 0 {
                        break;
                    }
                    if members == 1 {
                        let (id, tenant) = {
                            let j = active
                                .values()
                                .find(|j| j.lane == lane)
                                .expect("counted above");
                            (j.req.id, j.req.tenant)
                        };
                        active.remove(&id);
                        ledger.evict(lane as usize, id);
                        self.shed(
                            &mut report,
                            &ledger,
                            &mut slo,
                            id,
                            tenant,
                            ShedReason::KvCapacity,
                            now,
                        );
                        break;
                    }
                    let victim = active
                        .values()
                        .filter(|j| j.lane == lane)
                        .min_by_key(|j| (j.last_step, j.req.id))
                        .expect("members >= 2")
                        .req
                        .id;
                    let mut job = active.remove(&victim).expect("victim is active");
                    ledger.evict(lane as usize, victim);
                    job.kv = None;
                    job.landed = None;
                    job.enqueued_at = now;
                    job.reprefill_cause = Some(ReprefillCause::Eviction);
                    report.preemptions += 1;
                    push_event(&mut report, now, victim, EventKind::Preempt, &ledger);
                    if self.config.record_telemetry {
                        genie_telemetry::global()
                            .metrics
                            .counter("genie_serving_preempt_total", &[])
                            .inc();
                    }
                    queue.push_back(job);
                }
            }

            // Rosters: member ids per lane, ascending (BTreeMap order).
            let rosters: Vec<Vec<u64>> = (0..lanes as u32)
                .map(|lane| {
                    active
                        .values()
                        .filter(|j| j.lane == lane)
                        .map(|j| j.req.id)
                        .collect()
                })
                .collect();
            if rosters.iter().all(|r| r.is_empty()) {
                continue; // everything shed under KV pressure; re-admit
            }

            // 6. Price each lane's batched step on the roofline model,
            //    then degrade through the fault schedule: derates slow
            //    the wire, jitter adds seeded latency, and a severed link
            //    stalls the lane until its outage window closes.
            let mut lane_secs = vec![0.0f64; lanes];
            // Per-lane causal decomposition of this step: (compute,
            // net-latency, net-payload, fault) seconds plus the member
            // roster with phases, recorded as [`StepSlice`]s for blame
            // analysis.
            let mut lane_parts = vec![(0.0f64, 0.0f64, 0.0f64, 0.0f64, 0.0f64); lanes];
            let mut lane_members: Vec<Vec<StepMember>> = vec![Vec::new(); lanes];
            for (lane, roster) in rosters.iter().enumerate() {
                if roster.is_empty() {
                    continue;
                }
                let mut prefill_members = 0u64;
                let mut prefill_tokens = 0u64;
                let mut decode_members = 0u64;
                let mut kv_resident_tokens = 0u64;
                for id in roster {
                    let job = &active[id];
                    let resident = ledger.resident_tokens(lane, *id);
                    let phase = if resident > 0 {
                        decode_members += 1;
                        kv_resident_tokens += resident;
                        MemberPhase::Decode
                    } else {
                        prefill_members += 1;
                        prefill_tokens += job.next_resident_tokens(0);
                        if job.tokens.is_empty() {
                            MemberPhase::Prefill
                        } else {
                            MemberPhase::Reprefill
                        }
                    };
                    lane_members[lane].push(StepMember {
                        request: *id,
                        phase,
                    });
                }
                let work = StepWork {
                    prefill_members,
                    prefill_tokens,
                    decode_members,
                    kv_resident_tokens,
                };
                let (cost, collective_s) = match &self.config.shard {
                    Some(spec) if spec.shards() > 1 => sharded_step_time(
                        &cfg,
                        &work,
                        &self.config.gpu,
                        self.config.link_bandwidth_bps,
                        self.config.link_latency_s,
                        self.config.batched,
                        &ShardPlan {
                            pipeline_stages: spec.pipeline_stages,
                            tensor_parallel: spec.tensor_parallel,
                            fabric_bandwidth_bps: self.config.link_bandwidth_bps,
                            fabric_latency_s: self.config.link_latency_s,
                        },
                    ),
                    _ => (
                        batched_step_time(
                            &cfg,
                            &work,
                            &self.config.gpu,
                            self.config.link_bandwidth_bps,
                            self.config.link_latency_s,
                            self.config.batched,
                        ),
                        0.0,
                    ),
                };
                let clean_s = cost.total_s() + collective_s;
                let mut secs = clean_s;
                if let Some(plan) = &self.config.fault_plan {
                    let host = 1 + lane as u32;
                    let mut derate = 1.0f64;
                    let mut jitter = 0.0f64;
                    for fault in plan.faults_for(0, host) {
                        match fault {
                            FaultSpec::Derate { factor, .. } => derate *= factor.max(1e-3),
                            FaultSpec::Jitter { max, .. } => {
                                jitter += chaos_rng.next_f64() * max.as_secs_f64();
                            }
                            _ => {}
                        }
                    }
                    // Collectives ride the same derated fabric.
                    secs = cost.compute_s + (cost.network_s + collective_s) / derate + jitter;
                    // A severed link stalls the lane until every outage
                    // window containing the stall point has closed.
                    let mut resume = now;
                    loop {
                        let mut blocked: Option<Nanos> = None;
                        for fault in plan.faults_for(0, host) {
                            if let Some((from, until)) = fault.window() {
                                if resume >= from && resume < until {
                                    blocked = Some(blocked.map_or(until, |b: Nanos| b.max(until)));
                                }
                            }
                        }
                        match blocked {
                            Some(until) => resume = until,
                            None => break,
                        }
                    }
                    secs += resume.saturating_sub(now).as_secs_f64();
                }
                // Everything the fault schedule added over the clean
                // roofline cost (derate inflation, jitter, outage
                // stall) is fault-attributable time.
                let fault_s = (secs - clean_s).max(0.0);
                lane_parts[lane] = (
                    cost.compute_s,
                    cost.net_latency_s,
                    cost.net_payload_s,
                    fault_s,
                    collective_s,
                );
                lane_secs[lane] = secs;
            }

            // Lanes step in parallel; the loop ticks at the slowest lane.
            let step_secs = lane_secs.iter().copied().fold(0.0f64, f64::max);
            let step_dur = Nanos::from_secs_f64(step_secs);
            let step_end = now + step_dur;

            // Record each busy lane's causal slice against the *global*
            // barrier end: the unassigned residue inside a faster lane's
            // slice is synchronization wait, which blame analysis
            // charges to queue.
            for (lane, members) in lane_members.iter_mut().enumerate() {
                if members.is_empty() {
                    continue;
                }
                let (compute_s, net_latency_s, net_payload_s, fault_s, collective_s) =
                    lane_parts[lane];
                report.slices.push(
                    StepSlice::from_secs(
                        lane as u32,
                        steps,
                        now.0,
                        step_end.0,
                        compute_s,
                        net_latency_s,
                        net_payload_s,
                        fault_s,
                        std::mem::take(members),
                    )
                    .with_collective(collective_s),
                );
            }

            // 7. Execute every member: prefill (fresh or re-prefill) or
            //    one incremental decode step, in ascending request id.
            let mut finished: Vec<(u64, usize)> = Vec::new();
            for (lane, roster) in rosters.iter().enumerate() {
                for id in roster {
                    let resident = ledger.resident_tokens(lane, *id);
                    let job = active.get_mut(id).expect("rostered");
                    if resident == 0 {
                        let generated = job.tokens.len();
                        let mut seq = job.req.prompt.clone();
                        if generated > 0 {
                            seq.extend_from_slice(&job.tokens[..generated - 1]);
                            report.reprefills += 1;
                            match job
                                .reprefill_cause
                                .take()
                                .unwrap_or(ReprefillCause::Eviction)
                            {
                                ReprefillCause::Eviction => report.reprefills_evicted += 1,
                                ReprefillCause::FailedMigration => report.reprefills_migration += 1,
                                ReprefillCause::Planned => report.reprefills_planned += 1,
                            }
                            push_event(&mut report, now, *id, EventKind::Reprefill, &ledger);
                            if self.config.record_telemetry {
                                genie_telemetry::global()
                                    .metrics
                                    .counter("genie_serving_reprefill_total", &[])
                                    .inc();
                            }
                        }
                        match &self.model {
                            ServingModel::Functional(m) => {
                                let (token, kv) = prefill_exec(m, &seq);
                                job.kv = Some(kv);
                                if generated == 0 {
                                    job.tokens.push(token);
                                }
                                // A re-prefill's sampled token reproduces
                                // the already-generated prefix tail; the
                                // differential suite catches divergence.
                            }
                            ServingModel::Spec(_) => {
                                if generated == 0 {
                                    job.tokens.push(synth_token(&cfg, *id, 0));
                                }
                            }
                        }
                        ledger.set(lane, *id, seq.len() as u64);
                        if generated == 0 {
                            let ttft = step_end.saturating_sub(job.req.arrival);
                            job.ttft = Some(ttft);
                            let value = *job.tokens.last().expect("first token pushed");
                            push_event(
                                &mut report,
                                step_end,
                                *id,
                                EventKind::Token { value },
                                &ledger,
                            );
                            self.record_token(ttft.as_secs_f64(), step_secs, true);
                        }
                    } else {
                        let last = *job.tokens.last().expect("resident implies generated");
                        let token = match &self.model {
                            ServingModel::Functional(m) => {
                                let kv = job.kv.as_ref().expect("functional resident KV");
                                let (token, kv_next) = decode_exec(m, last, kv);
                                job.kv = Some(kv_next);
                                token
                            }
                            ServingModel::Spec(_) => synth_token(&cfg, *id, job.tokens.len()),
                        };
                        job.tokens.push(token);
                        ledger.set(lane, *id, resident + 1);
                        push_event(
                            &mut report,
                            step_end,
                            *id,
                            EventKind::Token { value: token },
                            &ledger,
                        );
                        self.record_token(0.0, step_secs, false);
                    }
                    job.last_step = steps + 1;
                    if job.tokens.len() >= job.req.total_tokens {
                        finished.push((*id, lane));
                    }
                }
            }

            // 8. Retire completions: free KV, record outcomes.
            for (id, lane) in finished {
                let job = active.remove(&id).expect("finished job is active");
                ledger.evict(lane, id);
                let ttft = job.ttft.expect("completed implies first token");
                slo.observe(job.req.tenant, ttft > self.config.slo.ttft_target);
                report.outcomes.insert(
                    id,
                    Outcome::Completed {
                        tokens: job.tokens,
                        ttft,
                        finished: step_end,
                    },
                );
                push_event(&mut report, step_end, id, EventKind::Complete, &ledger);
                if self.config.record_telemetry {
                    genie_telemetry::global()
                        .metrics
                        .counter("genie_serving_requests_total", &[("outcome", "completed")])
                        .inc();
                }
            }

            // 8b. Disaggregation: every request still active on a
            //     prefill lane finished its prefill this step. Price
            //     ship-vs-reprefill with the planner and either put the
            //     KV prefix on the fabric (real simulated link traffic,
            //     resolved through the fault schedule) or evict it and
            //     fall back to lineage re-prefill on the decode pool.
            if let (Some(d), Some(planner)) = (&disagg, &planner) {
                let leaving: Vec<u64> = active
                    .values()
                    .filter(|j| (j.lane as usize) >= decode_lanes)
                    .map(|j| j.req.id)
                    .collect();
                for id in leaving {
                    let mut job = active.remove(&id).expect("leaving job is active");
                    let from_lane = job.lane;
                    let tokens = ledger.resident_tokens(from_lane as usize, id);
                    // Destination: the decode lane with the most free
                    // capacity that fits the prefix (ties: lowest lane).
                    let mut best: Option<(u64, u32)> = None;
                    for lane in 0..decode_lanes {
                        if ledger.fits(lane, tokens) {
                            let free = self.config.kv_capacity_bytes - ledger.lane_bytes(lane);
                            if best.is_none_or(|(f, _)| free > f) {
                                best = Some((free, lane as u32));
                            }
                        }
                    }
                    let ship_to: Option<u32> = match d.policy {
                        MigrationPolicy::AlwaysReprefill => None,
                        MigrationPolicy::AlwaysShip => best.map(|(_, l)| l),
                        MigrationPolicy::Planner => best.map(|(_, l)| l).filter(|&l| {
                            planner.plan(id, from_lane, l, tokens).decision
                                == MigrationDecision::Ship
                        }),
                    };
                    let Some(to) = ship_to else {
                        // Re-prefill from lineage at the decode pool.
                        ledger.evict(from_lane as usize, id);
                        job.kv = None;
                        job.landed = None;
                        job.reprefill_cause = Some(ReprefillCause::Planned);
                        job.enqueued_at = step_end;
                        queue.push_back(job);
                        continue;
                    };
                    ledger.begin_migration(id, from_lane as usize, to as usize);
                    let bytes = tokens * kv_bytes;
                    let outcome = match &self.config.fault_plan {
                        Some(plan) => plan.transfer_outcome(
                            &mut chaos_rng,
                            1 + from_lane,
                            1 + to,
                            bytes,
                            d.migrate_bandwidth_bps,
                            d.migrate_latency_s,
                            step_end,
                        ),
                        None => TransferOutcome::Delivered {
                            done_at: step_end
                                + Nanos::from_secs_f64(
                                    d.migrate_latency_s
                                        + bytes as f64 * 8.0 / d.migrate_bandwidth_bps,
                                ),
                        },
                    };
                    report.migrations += 1;
                    push_event(
                        &mut report,
                        step_end,
                        id,
                        EventKind::MigrateStart {
                            from: from_lane,
                            to,
                            bytes,
                        },
                        &ledger,
                    );
                    let until = match outcome {
                        TransferOutcome::Delivered { done_at } => done_at,
                        TransferOutcome::Lost { at } => at,
                    };
                    let record = SpanRecord {
                        id: span_id,
                        parent: None,
                        name: "kv.migrate".into(),
                        category: "serving".into(),
                        kind: SpanKind::Span,
                        track: Track::Device(to),
                        start_ns: step_end.0,
                        dur_ns: until.saturating_sub(step_end).0,
                        attrs: SemAttrs::new()
                            .request(id)
                            .with("from_lane", from_lane.to_string())
                            .with("to_lane", to.to_string())
                            .with("bytes", bytes.to_string())
                            .with(
                                "outcome",
                                match outcome {
                                    TransferOutcome::Delivered { .. } => "delivered",
                                    TransferOutcome::Lost { .. } => "lost",
                                },
                            ),
                        thread: 1,
                        seq: span_id,
                    };
                    span_id += 1;
                    if self.config.record_telemetry {
                        genie_telemetry::global().collector.push(record.clone());
                        genie_telemetry::global()
                            .metrics
                            .counter("genie_serving_migration_total", &[])
                            .inc();
                    }
                    report.spans.push(record);
                    migrating.insert(
                        id,
                        PendingMigration {
                            job,
                            to,
                            bytes,
                            outcome,
                        },
                    );
                }
            }

            // 9. Emit one serving span per busy lane with deterministic
            //    ids on the lane's device track.
            for (lane, roster) in rosters.iter().enumerate() {
                if roster.is_empty() {
                    continue;
                }
                let record = SpanRecord {
                    id: span_id,
                    parent: None,
                    name: "serving.step".into(),
                    category: "serving".into(),
                    kind: SpanKind::Span,
                    track: Track::Device(lane as u32),
                    start_ns: now.0,
                    dur_ns: step_dur.0,
                    attrs: SemAttrs::new()
                        .phase("llm_decode")
                        .device(lane as u32)
                        .with("members", roster.len().to_string())
                        .with("step", steps.to_string()),
                    thread: 1,
                    seq: span_id,
                };
                span_id += 1;
                if self.config.record_telemetry {
                    genie_telemetry::global().collector.push(record.clone());
                }
                report.spans.push(record);
            }
            if self.config.record_telemetry {
                genie_telemetry::global()
                    .metrics
                    .counter("genie_serving_steps_total", &[])
                    .inc();
            }

            now = step_end;
            steps += 1;
            assert!(steps < 10_000_000, "serving loop failed to converge");
        }

        report.makespan = now;
        report.steps = steps;
        report.peak_kv_bytes = ledger.peak_bytes();
        report.slo = slo.stats();

        // Causal lifecycle instants: one per non-token event, each
        // carrying its request id and a `cause` edge to the request's
        // previous lifecycle instant. Category "causal" keeps them out
        // of the per-step serving-span contract.
        let mut last_causal: BTreeMap<u64, u64> = BTreeMap::new();
        let mut causal_spans: Vec<SpanRecord> = Vec::new();
        for ev in &report.events {
            let name = match &ev.kind {
                EventKind::Arrive => "request.arrive",
                EventKind::Admit { .. } => "request.admit",
                EventKind::Reprefill => "request.reprefill",
                EventKind::Preempt => "request.preempt",
                EventKind::MigrateStart { .. } => "request.migrate_start",
                EventKind::MigrateDone { .. } => "request.migrate_done",
                EventKind::MigrateFail { .. } => "request.migrate_fail",
                EventKind::Complete => "request.complete",
                EventKind::Shed(_) => "request.shed",
                EventKind::Token { .. } => continue,
            };
            let mut attrs = SemAttrs::new().request(ev.request);
            if let EventKind::Admit { lane } = &ev.kind {
                attrs = attrs.device(*lane);
            }
            if let Some(&prev) = last_causal.get(&ev.request) {
                attrs = attrs.cause(prev);
            }
            causal_spans.push(SpanRecord {
                id: span_id,
                parent: None,
                name: name.into(),
                category: "causal".into(),
                kind: SpanKind::Instant,
                track: Track::Runtime,
                start_ns: ev.at.0,
                dur_ns: 0,
                attrs,
                thread: 1,
                seq: span_id,
            });
            last_causal.insert(ev.request, span_id);
            span_id += 1;
        }
        if self.config.record_telemetry {
            let t = genie_telemetry::global();
            for r in &causal_spans {
                t.collector.push(r.clone());
            }
            for (tenant, s) in &report.slo.per_tenant {
                let label = tenant.to_string();
                t.metrics
                    .gauge("genie_slo_burn_rate", &[("tenant", label.as_str())])
                    .set(s.burn_rate);
            }
        }
        report.spans.extend(causal_spans);
        report
    }

    #[allow(clippy::too_many_arguments)]
    fn shed(
        &self,
        report: &mut ServingReport,
        ledger: &KvLedger,
        slo: &mut SloTracker,
        id: u64,
        tenant: u64,
        reason: ShedReason,
        at: Nanos,
    ) {
        slo.observe(tenant, true);
        report.outcomes.insert(id, Outcome::Shed { reason, at });
        push_event(report, at, id, EventKind::Shed(reason), ledger);
        if self.config.record_telemetry {
            let t = genie_telemetry::global();
            t.metrics
                .counter("genie_serving_requests_total", &[("outcome", "shed")])
                .inc();
            t.metrics
                .counter("genie_serving_shed_total", &[("reason", reason.as_str())])
                .inc();
        }
    }

    fn record_token(&self, ttft_s: f64, step_s: f64, first: bool) {
        if !self.config.record_telemetry {
            return;
        }
        let t = genie_telemetry::global();
        t.metrics.counter("genie_serving_tokens_total", &[]).inc();
        t.metrics
            .histogram(
                "genie_serving_token_latency_seconds",
                &[],
                &DEFAULT_TIME_BOUNDS,
            )
            .observe(step_s);
        if first {
            t.metrics
                .histogram("genie_serving_ttft_seconds", &[], &DEFAULT_TIME_BOUNDS)
                .observe(ttft_s);
        }
    }
}

fn push_event(
    report: &mut ServingReport,
    at: Nanos,
    request: u64,
    kind: EventKind,
    ledger: &KvLedger,
) {
    report.events.push(LogEvent {
        at,
        request,
        kind,
        kv_resident_bytes: ledger.total_bytes(),
    });
}

/// Deterministic synthetic token for the spec plane: a fixed mix of
/// request id and position, reduced into the vocabulary.
fn synth_token(cfg: &TransformerConfig, id: u64, position: usize) -> i64 {
    let mixed = id
        .wrapping_mul(0x9e37_79b9_7f4a_7c15)
        .wrapping_add(position as u64 * 31 + 7);
    (mixed % cfg.vocab as u64) as i64
}

/// Execute one prefill over `seq`: capture, run the interpreter, return
/// the sampled token and the materialized KV cache. Mirrors the capture
/// discipline of [`TransformerLm::generate`] exactly so the serving
/// loop's numerics are pinned to the sequential oracle.
fn prefill_exec(m: &TransformerLm, seq: &[i64]) -> (i64, KvState) {
    let ctx = CaptureCtx::new("serving.prefill");
    let cap = m.capture_prefill(&ctx, seq);
    let sampled = cap.logits.sample();
    sampled.mark_output();
    for (k, v) in cap.k_caches.iter().zip(&cap.v_caches) {
        k.mark_output();
        v.mark_output();
    }
    let captured = ctx.finish();
    let values = genie_frontend::interp::execute(&captured.srg, &captured.values)
        .expect("serving prefill executes");
    let token = values[&sampled.node].as_i("sampled token").data()[0];
    let kv = KvState {
        k: cap
            .k_caches
            .iter()
            .map(|lt| values[&lt.node].as_f("k cache").clone())
            .collect(),
        v: cap
            .v_caches
            .iter()
            .map(|lt| values[&lt.node].as_f("v cache").clone())
            .collect(),
    };
    (token, kv)
}

/// Execute one incremental decode step for `token` against `kv`,
/// returning the next token and the grown KV cache.
fn decode_exec(m: &TransformerLm, token: i64, kv: &KvState) -> (i64, KvState) {
    let ctx = CaptureCtx::new("serving.decode");
    let cap = m.capture_decode_step(&ctx, token, kv);
    let sampled = cap.logits.sample();
    sampled.mark_output();
    let captured = ctx.finish();
    let values = genie_frontend::interp::execute(&captured.srg, &captured.values)
        .expect("serving decode executes");
    let next = values[&sampled.node].as_i("sampled token").data()[0];
    let kv_next = KvState {
        k: cap
            .k_caches
            .iter()
            .map(|lt| values[&lt.node].as_f("k cache").clone())
            .collect(),
        v: cap
            .v_caches
            .iter()
            .map(|lt| values[&lt.node].as_f("v cache").clone())
            .collect(),
    };
    (next, kv_next)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arrivals::ArrivalConfig;

    fn burst(n: u64, prompt_len: usize, total: usize) -> Vec<ServingRequest> {
        (1..=n)
            .map(|id| ServingRequest {
                id,
                tenant: 0,
                arrival: Nanos::ZERO,
                prompt: (0..prompt_len)
                    .map(|i| (id as i64 + i as i64) % 32)
                    .collect(),
                total_tokens: total,
            })
            .collect()
    }

    fn spec_config() -> ServingConfig {
        let mut c = ServingConfig::paper_testbed();
        c.record_telemetry = false;
        c
    }

    #[test]
    fn spec_burst_completes_everyone() {
        let cfg = TransformerConfig::gptj_6b();
        let reqs = burst(6, 16, 8);
        let report = ServingLoop::new(ServingModel::Spec(cfg), spec_config()).run(&reqs);
        assert_eq!(report.completed(), 6);
        assert_eq!(report.shed(), 0);
        assert_eq!(report.tokens_generated(), 6 * 8);
        assert!(report.makespan > Nanos::ZERO);
        assert!(report.steps >= 8, "8 decode rounds minimum");
        for id in 1..=6 {
            assert_eq!(report.tokens_for(id).map(<[i64]>::len), Some(8));
        }
    }

    #[test]
    fn causal_slices_and_slo_are_recorded() {
        let cfg = TransformerConfig::gptj_6b();
        let reqs = burst(4, 16, 8);
        let report = ServingLoop::new(ServingModel::Spec(cfg), spec_config()).run(&reqs);
        assert!(!report.slices.is_empty(), "busy lanes record slices");
        let blame = genie_telemetry::causal::analyze(&report.causal_doc());
        assert_eq!(blame.requests.len(), 4);
        for r in &blame.requests {
            assert!(
                (r.fractions.sum() - 1.0).abs() < 1e-6,
                "blame fractions tile: {:?}",
                r.fractions
            );
        }
        let slo = &report.slo.per_tenant[&0];
        assert_eq!(slo.observed, 4, "every completion observed");
        assert!(
            report
                .spans
                .iter()
                .any(|s| s.category == "causal" && s.attrs.request.is_some()),
            "lifecycle instants attributed to requests"
        );
    }

    #[test]
    fn batched_pricing_beats_sequential() {
        let cfg = TransformerConfig::gptj_6b();
        let reqs = burst(8, 16, 16);
        let batched = ServingLoop::new(ServingModel::Spec(cfg.clone()), spec_config()).run(&reqs);
        let mut seq_cfg = spec_config();
        seq_cfg.batched = false;
        let sequential = ServingLoop::new(ServingModel::Spec(cfg), seq_cfg).run(&reqs);
        assert!(
            batched.tokens_per_s() > 2.0 * sequential.tokens_per_s(),
            "batching must amortize weight reads: {} vs {}",
            batched.tokens_per_s(),
            sequential.tokens_per_s()
        );
    }

    #[test]
    fn sharded_lane_records_collective_blame_and_beats_one_device() {
        // A fast local fabric (100 Gbps / 5 µs) where 2-way tensor
        // parallelism should win despite the collective tax.
        let fast = |shard: Option<ShardSpec>| {
            let mut c = spec_config();
            c.link_bandwidth_bps = 100e9;
            c.link_latency_s = 5e-6;
            c.shard = shard;
            c
        };
        let reqs = burst(8, 16, 16);
        let cfg = TransformerConfig::gptj_6b();
        let sharded = ServingLoop::new(
            ServingModel::Spec(cfg.clone()),
            fast(Some(ShardSpec::tensor(2))),
        )
        .run(&reqs);
        let flat = ServingLoop::new(ServingModel::Spec(cfg), fast(None)).run(&reqs);
        assert_eq!(sharded.completed(), 8);

        // Collective time is recorded on the slices and surfaces as its
        // own blame category, with the tiling invariant intact.
        assert!(
            sharded.slices.iter().any(|s| s.collective_ns > 0),
            "sharded steps must attribute collective time"
        );
        assert!(flat.slices.iter().all(|s| s.collective_ns == 0));
        let blame = genie_telemetry::causal::analyze(&sharded.causal_doc());
        let mut saw_collective = false;
        for r in &blame.requests {
            assert!(
                (r.fractions.sum() - 1.0).abs() < 1e-6,
                "blame fractions tile: {:?}",
                r.fractions
            );
            saw_collective |= r.fractions.collective > 0.0;
        }
        assert!(saw_collective, "collective blame must be attributed");

        // Two devices stream half the weights each: faster end-to-end.
        assert!(
            sharded.makespan < flat.makespan,
            "2-way TP on a fast fabric must beat one device: {:?} vs {:?}",
            sharded.makespan,
            flat.makespan
        );
    }

    #[test]
    fn paper_fabric_latency_erodes_the_sharding_win() {
        // Same sweep on the paper's 25 Gbps / 250 µs testbed: every
        // per-layer collective pays the fabric round trip, so 2-way TP
        // loses more to latency than it gains from the split weight
        // stream — the paper's disaggregation-tax argument, quantified.
        let reqs = burst(8, 16, 16);
        let cfg = TransformerConfig::gptj_6b();
        let mut conf = spec_config();
        conf.shard = Some(ShardSpec::tensor(2));
        let sharded = ServingLoop::new(ServingModel::Spec(cfg.clone()), conf).run(&reqs);
        let flat = ServingLoop::new(ServingModel::Spec(cfg), spec_config()).run(&reqs);
        assert!(
            sharded.makespan > flat.makespan,
            "250 µs collectives must erase the TP win: {:?} vs {:?}",
            sharded.makespan,
            flat.makespan
        );
    }

    #[test]
    fn queue_full_and_slo_shedding_are_typed() {
        let cfg = TransformerConfig::gptj_6b();
        let mut conf = spec_config();
        conf.max_batch = 1;
        conf.max_queue = 2;
        conf.queue_budget = Nanos::from_millis(1);
        let reqs = burst(8, 16, 64);
        let report = ServingLoop::new(ServingModel::Spec(cfg), conf).run(&reqs);
        assert_eq!(report.outcomes.len(), 8, "every request terminal");
        assert!(report.shed() >= 5, "overload must shed: {}", report.shed());
        let reasons: Vec<ShedReason> = report
            .outcomes
            .values()
            .filter_map(|o| match o {
                Outcome::Shed { reason, .. } => Some(*reason),
                Outcome::Completed { .. } => None,
            })
            .collect();
        assert!(reasons.contains(&ShedReason::QueueFull));
    }

    #[test]
    fn oversized_request_sheds_for_kv_capacity() {
        let cfg = TransformerConfig::gptj_6b();
        let mut conf = spec_config();
        // Capacity below even one request's prompt KV.
        conf.kv_capacity_bytes = cfg.kv_bytes_per_token() * 4;
        let reqs = burst(2, 16, 4);
        let report = ServingLoop::new(ServingModel::Spec(cfg), conf).run(&reqs);
        assert_eq!(report.completed(), 0);
        assert!(report.outcomes.values().all(|o| matches!(
            o,
            Outcome::Shed {
                reason: ShedReason::KvCapacity,
                ..
            }
        )));
    }

    #[test]
    fn kv_pressure_preempts_and_recovers_in_spec_plane() {
        let cfg = TransformerConfig::gptj_6b();
        let mut conf = spec_config();
        conf.max_batch = 2;
        // Both requests fit at admission, but their KV grows past the
        // capacity mid-decode: the LRU evictor must preempt one *after*
        // it has generated tokens, forcing a genuine re-prefill later.
        conf.kv_capacity_bytes = cfg.kv_bytes_per_token() * 20;
        conf.queue_budget = Nanos::from_secs_f64(30.0);
        let capacity = conf.kv_capacity_bytes;
        let reqs = burst(2, 4, 16);
        let report = ServingLoop::new(ServingModel::Spec(cfg), conf).run(&reqs);
        assert_eq!(report.completed(), 2, "{:?}", report.outcomes);
        assert!(report.preemptions >= 1, "pressure must evict");
        assert!(report.reprefills >= 1, "evictees must re-prefill");
        assert!(report.peak_kv_bytes <= capacity, "ledger bound");
    }

    #[test]
    fn same_seed_replays_identically() {
        let arr = ArrivalConfig {
            seed: 11,
            rate_per_s: 40.0,
            horizon: Nanos::from_secs_f64(0.5),
            prompt_len: (4, 12),
            decode_tokens: (2, 8),
            vocab: 50400,
            tenants: 3,
        };
        let cfg = TransformerConfig::gptj_6b();
        let reqs = arr.generate();
        let a = ServingLoop::new(ServingModel::Spec(cfg.clone()), spec_config()).run(&reqs);
        let b = ServingLoop::new(ServingModel::Spec(cfg), spec_config()).run(&reqs);
        assert_eq!(a.events, b.events);
        assert_eq!(a.outcomes, b.outcomes);
        assert_eq!(a.spans.len(), b.spans.len());
    }

    fn disagg_config(policy: MigrationPolicy) -> ServingConfig {
        let mut c = spec_config();
        c.lanes = 1;
        let mut d = DisaggConfig::paper_testbed(1);
        d.policy = policy;
        c.disagg = Some(d);
        c
    }

    #[test]
    fn disagg_ships_every_prefix_and_completes() {
        let cfg = TransformerConfig::gptj_6b();
        let reqs = burst(6, 64, 8);
        let report = ServingLoop::new(
            ServingModel::Spec(cfg),
            disagg_config(MigrationPolicy::AlwaysShip),
        )
        .run(&reqs);
        assert_eq!(report.completed(), 6, "{:?}", report.outcomes);
        assert_eq!(report.migrations, 6);
        assert_eq!(report.migrations_completed, 6);
        assert_eq!(report.migrations_failed, 0);
        assert!(report.migrated_kv_bytes > 0);
        assert_eq!(
            report
                .spans
                .iter()
                .filter(|s| s.name == "kv.migrate")
                .count(),
            6,
            "one migration span per shipped prefix"
        );
        let starts = report
            .events
            .iter()
            .filter(|e| matches!(e.kind, EventKind::MigrateStart { .. }))
            .count();
        let dones = report
            .events
            .iter()
            .filter(|e| matches!(e.kind, EventKind::MigrateDone { .. }))
            .count();
        assert_eq!((starts, dones), (6, 6));
    }

    #[test]
    fn always_reprefill_is_the_migration_free_baseline() {
        let cfg = TransformerConfig::gptj_6b();
        let reqs = burst(6, 64, 8);
        let report = ServingLoop::new(
            ServingModel::Spec(cfg),
            disagg_config(MigrationPolicy::AlwaysReprefill),
        )
        .run(&reqs);
        assert_eq!(report.completed(), 6);
        assert_eq!(report.migrations, 0);
        assert_eq!(report.migrated_kv_bytes, 0);
        assert_eq!(report.reprefills_planned, 6);
        assert_eq!(
            report.reprefills,
            report.reprefills_planned + report.reprefills_evicted + report.reprefills_migration,
            "cause counters partition the re-prefill total"
        );
    }

    #[test]
    fn planner_ships_short_prefixes_and_recomputes_long_ones() {
        // On the engine's unit-efficiency roofline with a 25 Gbps
        // fabric, per-token recompute (~39 µs) undercuts the wire
        // (~147 µs/token) once the prefix amortizes the 12.1 GB
        // weight-read floor (~6 ms): short prompts ship, long re-prefill.
        let cfg = TransformerConfig::gptj_6b();
        let conf = disagg_config(MigrationPolicy::Planner);
        let short =
            ServingLoop::new(ServingModel::Spec(cfg.clone()), conf.clone()).run(&burst(4, 16, 4));
        assert_eq!(short.completed(), 4);
        assert_eq!(short.migrations, 4, "16-token prefixes ship");
        assert_eq!(short.reprefills_planned, 0);
        let long = ServingLoop::new(ServingModel::Spec(cfg), conf).run(&burst(4, 512, 4));
        assert_eq!(long.completed(), 4);
        assert_eq!(long.migrations, 0, "512-token prefixes recompute");
        assert_eq!(long.reprefills_planned, 4);
    }

    #[test]
    fn lost_migration_falls_back_to_lineage_reprefill() {
        let cfg = TransformerConfig::gptj_6b();
        let mut conf = disagg_config(MigrationPolicy::AlwaysShip);
        // Sever the prefill(lane 1, host 2) ↔ decode(lane 0, host 1)
        // link for the whole first second: every early migration dies.
        conf.fault_plan = Some(FaultPlan::new(
            9,
            genie_netsim::FaultSchedule {
                specs: vec![FaultSpec::LinkDown {
                    a: 1,
                    b: 2,
                    from: Nanos::ZERO,
                    until: Nanos::from_secs_f64(1.0),
                }],
            },
        ));
        conf.queue_budget = Nanos::from_secs_f64(30.0);
        let reqs = burst(4, 64, 8);
        let report = ServingLoop::new(ServingModel::Spec(cfg), conf).run(&reqs);
        assert_eq!(report.completed(), 4, "{:?}", report.outcomes);
        assert!(report.migrations_failed >= 1, "outage must sever transfers");
        assert_eq!(report.reprefills_migration, report.migrations_failed);
        assert_eq!(
            report.migrations,
            report.migrations_completed + report.migrations_failed
        );
        let fails = report
            .events
            .iter()
            .filter(|e| matches!(e.kind, EventKind::MigrateFail { .. }))
            .count() as u64;
        assert_eq!(fails, report.migrations_failed);
    }

    #[test]
    fn disagg_same_seed_replays_identically() {
        let arr = ArrivalConfig {
            seed: 23,
            rate_per_s: 40.0,
            horizon: Nanos::from_secs_f64(0.5),
            prompt_len: (4, 48),
            decode_tokens: (2, 8),
            vocab: 50400,
            tenants: 2,
        };
        let cfg = TransformerConfig::gptj_6b();
        let conf = disagg_config(MigrationPolicy::Planner);
        let reqs = arr.generate();
        let a = ServingLoop::new(ServingModel::Spec(cfg.clone()), conf.clone()).run(&reqs);
        let b = ServingLoop::new(ServingModel::Spec(cfg), conf).run(&reqs);
        assert_eq!(a.events, b.events);
        assert_eq!(a.outcomes, b.outcomes);
        assert_eq!(a.migrations, b.migrations);
        assert_eq!(a.spans.len(), b.spans.len());
    }

    #[test]
    fn functional_matches_generate_for_a_solo_request() {
        let m = TransformerLm::new_functional(TransformerConfig::tiny(), 42);
        let prompt = vec![1, 2, 3];
        let oracle = m.generate(&prompt, 5);
        let reqs = vec![ServingRequest {
            id: 1,
            tenant: 0,
            arrival: Nanos::ZERO,
            prompt,
            total_tokens: 5,
        }];
        let report = ServingLoop::new(ServingModel::Functional(m), spec_config()).run(&reqs);
        assert_eq!(report.tokens_for(1), Some(oracle.as_slice()));
    }
}
