//! Request, outcome, and event-log types for the serving loop.
//!
//! Everything here is plain data with total, deterministic ordering:
//! the engine's event log (`Vec<LogEvent>`) doubles as the ground truth
//! for the property suite (capacity, SLO, replay) and must therefore be
//! bit-stable across same-seed runs.

use genie_netsim::Nanos;
use serde::{Deserialize, Serialize};

/// One inference request offered to the serving loop.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct ServingRequest {
    /// Unique request id (ids order admission ties deterministically).
    pub id: u64,
    /// Owning tenant (used for telemetry attribution only; batching is
    /// by model fingerprint, which a single loop shares by construction).
    pub tenant: u64,
    /// Arrival time on the virtual clock.
    pub arrival: Nanos,
    /// Prompt token ids (non-empty).
    pub prompt: Vec<i64>,
    /// Total generated tokens requested (including the first token the
    /// prefill step samples); at least 1.
    pub total_tokens: usize,
}

/// Why a request was shed instead of served.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum ShedReason {
    /// The admission queue was already at capacity on arrival.
    QueueFull,
    /// The request waited past the SLO queue budget without a free slot.
    QueueOverSlo,
    /// The request's KV working set can never fit a single lane.
    KvCapacity,
    /// The fleet scheduler refused the owning tenant (memory admission).
    AdmissionRejected,
}

impl ShedReason {
    /// Stable label for metrics and logs.
    pub fn as_str(&self) -> &'static str {
        match self {
            ShedReason::QueueFull => "queue_full",
            ShedReason::QueueOverSlo => "queue_over_slo",
            ShedReason::KvCapacity => "kv_capacity",
            ShedReason::AdmissionRejected => "admission_rejected",
        }
    }
}

/// Terminal state of one request.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum Outcome {
    /// The request decoded to completion.
    Completed {
        /// All generated tokens, in order.
        tokens: Vec<i64>,
        /// Time from arrival to the first generated token.
        ttft: Nanos,
        /// Virtual time of the last token.
        finished: Nanos,
    },
    /// The request was shed.
    Shed {
        /// Typed reason.
        reason: ShedReason,
        /// Virtual time of the shed decision.
        at: Nanos,
    },
}

/// What happened in one [`LogEvent`].
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum EventKind {
    /// The request entered the admission queue.
    Arrive,
    /// The request was admitted onto a lane.
    Admit {
        /// Lane (device) index the request will decode on.
        lane: u32,
    },
    /// An evicted request re-ran prefill over prompt + generated prefix
    /// to restore its KV cache (lineage-style re-materialization).
    Reprefill,
    /// One token was produced.
    Token {
        /// The sampled token id.
        value: i64,
    },
    /// The request's KV was evicted (LRU) and it re-queued.
    Preempt,
    /// The request's KV prefix left its prefill lane for a decode lane
    /// as simulated link traffic (disaggregated serving).
    MigrateStart {
        /// Source lane (prefill host).
        from: u32,
        /// Destination lane (decode host).
        to: u32,
        /// KV bytes on the wire.
        bytes: u64,
    },
    /// The migrated prefix landed; the request decodes on `to`.
    MigrateDone {
        /// Destination lane now holding the prefix.
        to: u32,
    },
    /// A fault severed the migration; the in-flight prefix is lost and
    /// the request falls back to lineage re-prefill on the decode pool.
    MigrateFail {
        /// Destination lane the transfer was bound for.
        to: u32,
    },
    /// The request finished.
    Complete,
    /// The request was shed.
    Shed(ShedReason),
}

/// One entry of the deterministic event log.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct LogEvent {
    /// Virtual timestamp.
    pub at: Nanos,
    /// Subject request id.
    pub request: u64,
    /// What happened.
    pub kind: EventKind,
    /// Total KV bytes resident across all lanes *after* this event.
    pub kv_resident_bytes: u64,
}
