//! The serving run report: outcomes, event log, SLO statistics, spans.

use crate::request::{EventKind, LogEvent, Outcome, ServingRequest, ShedReason};
use crate::slo::SloStats;
use genie_netsim::Nanos;
use genie_telemetry::causal::{CausalEvent, CausalEventKind, CausalTraceDoc, StepSlice};
use genie_telemetry::SpanRecord;
use std::collections::BTreeMap;

/// Everything a serving run produced, keyed for deterministic replay.
#[derive(Clone, Debug, Default)]
pub struct ServingReport {
    /// Terminal outcome per request id (covers every offered request).
    pub outcomes: BTreeMap<u64, Outcome>,
    /// The full deterministic event log, in virtual-time order.
    pub events: Vec<LogEvent>,
    /// Virtual time when the loop drained.
    pub makespan: Nanos,
    /// Batched decode/prefill steps executed.
    pub steps: u64,
    /// Re-prefill passes executed to restore lost KV (all causes).
    pub reprefills: u64,
    /// Re-prefills caused by LRU eviction under KV pressure.
    pub reprefills_evicted: u64,
    /// Re-prefills caused by a migration lost to a fabric fault.
    pub reprefills_migration: u64,
    /// Re-prefills the migration planner *chose* (shipping priced
    /// higher than recompute, or no decode lane had capacity).
    pub reprefills_planned: u64,
    /// LRU evictions performed under KV pressure.
    pub preemptions: u64,
    /// KV-prefix migrations started (disaggregated serving).
    pub migrations: u64,
    /// Migrations whose prefix landed on the decode lane.
    pub migrations_completed: u64,
    /// Migrations severed mid-flight by a fault.
    pub migrations_failed: u64,
    /// Total KV bytes successfully shipped across lanes.
    pub migrated_kv_bytes: u64,
    /// High-water mark of resident KV bytes across lanes.
    pub peak_kv_bytes: u64,
    /// Serving spans (one per lane per step, plus lifecycle instants),
    /// with deterministic ids — feed these to a `ChromeTrace` for a
    /// stable Perfetto export.
    pub spans: Vec<SpanRecord>,
    /// Per-lane causal step decompositions (compute / link latency /
    /// payload / fault, with member phases) for blame analysis.
    pub slices: Vec<StepSlice>,
    /// Per-tenant SLO burn-rate snapshot at the end of the run.
    pub slo: SloStats,
}

impl ServingReport {
    /// A report that sheds every offered request with one reason — used
    /// when fleet admission refuses the tenant before any serving runs.
    pub fn all_shed(requests: &[ServingRequest], reason: ShedReason) -> Self {
        let mut report = ServingReport::default();
        for r in requests {
            report.outcomes.insert(
                r.id,
                Outcome::Shed {
                    reason,
                    at: r.arrival,
                },
            );
            report.events.push(LogEvent {
                at: r.arrival,
                request: r.id,
                kind: EventKind::Shed(reason),
                kv_resident_bytes: 0,
            });
            if r.arrival > report.makespan {
                report.makespan = r.arrival;
            }
        }
        report
    }

    /// The causal trace document for this run: lifecycle events
    /// (tokens elided) plus per-step slices, ready for
    /// [`genie_telemetry::causal::analyze`].
    pub fn causal_doc(&self) -> CausalTraceDoc {
        let mut events = Vec::new();
        for ev in &self.events {
            let kind = match &ev.kind {
                EventKind::Arrive => CausalEventKind::Arrive,
                EventKind::Admit { lane } => CausalEventKind::Admit { lane: *lane },
                EventKind::Reprefill => CausalEventKind::Reprefill,
                EventKind::Preempt => CausalEventKind::Preempt,
                EventKind::MigrateStart { from, to, .. } => CausalEventKind::MigrateStart {
                    from: *from,
                    to: *to,
                },
                EventKind::MigrateDone { .. } => CausalEventKind::MigrateDone,
                EventKind::MigrateFail { .. } => CausalEventKind::MigrateFail,
                EventKind::Complete => CausalEventKind::Complete,
                EventKind::Shed(_) => CausalEventKind::Shed,
                EventKind::Token { .. } => continue,
            };
            events.push(CausalEvent {
                at_ns: ev.at.0,
                request: ev.request,
                kind,
            });
        }
        CausalTraceDoc {
            events,
            slices: self.slices.clone(),
        }
    }

    /// Requests that completed.
    pub fn completed(&self) -> usize {
        self.outcomes
            .values()
            .filter(|o| matches!(o, Outcome::Completed { .. }))
            .count()
    }

    /// Requests that were shed.
    pub fn shed(&self) -> usize {
        self.outcomes.len() - self.completed()
    }

    /// Fraction of offered requests shed (0 when none offered).
    pub fn shed_rate(&self) -> f64 {
        if self.outcomes.is_empty() {
            0.0
        } else {
            self.shed() as f64 / self.outcomes.len() as f64
        }
    }

    /// Generated tokens across completed requests.
    pub fn tokens_generated(&self) -> u64 {
        self.events
            .iter()
            .filter(|e| matches!(e.kind, EventKind::Token { .. }))
            .count() as u64
    }

    /// Aggregate decode throughput over the whole run.
    pub fn tokens_per_s(&self) -> f64 {
        let secs = self.makespan.as_secs_f64();
        if secs <= 0.0 {
            0.0
        } else {
            self.tokens_generated() as f64 / secs
        }
    }

    /// Completed tokens for one request, if it completed.
    pub fn tokens_for(&self, id: u64) -> Option<&[i64]> {
        match self.outcomes.get(&id) {
            Some(Outcome::Completed { tokens, .. }) => Some(tokens),
            _ => None,
        }
    }

    /// Sorted TTFT samples (seconds) over completed requests.
    pub fn ttfts(&self) -> Vec<f64> {
        let mut out: Vec<f64> = self
            .outcomes
            .values()
            .filter_map(|o| match o {
                Outcome::Completed { ttft, .. } => Some(ttft.as_secs_f64()),
                Outcome::Shed { .. } => None,
            })
            .collect();
        out.sort_by(f64::total_cmp);
        out
    }

    /// Median TTFT in seconds (0 when nothing completed).
    pub fn ttft_p50(&self) -> f64 {
        percentile(&self.ttfts(), 0.50)
    }

    /// 99th-percentile TTFT in seconds (0 when nothing completed).
    pub fn ttft_p99(&self) -> f64 {
        percentile(&self.ttfts(), 0.99)
    }
}

/// Nearest-rank percentile of a sorted sample (0 for an empty one).
pub fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = ((p * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_nearest_rank() {
        let s = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile(&s, 0.50), 2.0);
        assert_eq!(percentile(&s, 0.99), 4.0);
        assert_eq!(percentile(&[], 0.5), 0.0);
    }

    #[test]
    fn all_shed_covers_every_request() {
        let reqs = vec![
            ServingRequest {
                id: 1,
                tenant: 0,
                arrival: Nanos::from_millis(1),
                prompt: vec![1],
                total_tokens: 2,
            },
            ServingRequest {
                id: 2,
                tenant: 0,
                arrival: Nanos::from_millis(5),
                prompt: vec![2],
                total_tokens: 2,
            },
        ];
        let r = ServingReport::all_shed(&reqs, ShedReason::AdmissionRejected);
        assert_eq!(r.outcomes.len(), 2);
        assert_eq!(r.shed(), 2);
        assert_eq!(r.shed_rate(), 1.0);
        assert_eq!(r.makespan, Nanos::from_millis(5));
        assert_eq!(r.tokens_generated(), 0);
    }
}
