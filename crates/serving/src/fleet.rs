//! Fleet admission glue: binding a serving tenant through the global
//! scheduler before its loop starts.
//!
//! The serving loop itself is fleet-agnostic (lanes + capacities); this
//! module asks [`GlobalScheduler`] — memory admission control included —
//! which devices a tenant may occupy, and converts the answer into lane
//! count and per-lane KV budget (device memory minus resident weights).
//! A refused tenant sheds its whole trace with
//! [`ShedReason::AdmissionRejected`](crate::ShedReason::AdmissionRejected).
//!
//! Before the scheduler ever sees the tenant, its spec graph runs through
//! the full `genie-analysis` SRG pass stack (shape/phase/residency GA0xx
//! plus the GA3xx precision family): a graph with deny-level findings is
//! refused outright rather than scheduled onto the fleet.

use genie_analysis::{run_srg_passes, LintConfig};
use genie_cluster::{DevId, Topology};
use genie_models::TransformerConfig;
use genie_netsim::Nanos;
use genie_scheduler::global::tenant::TenantRequest;
use genie_scheduler::global::{FleetEvent, GlobalScheduler};
use genie_srg::shard::ShardSpec;

/// The fleet's answer for one serving tenant.
#[derive(Clone, Debug)]
pub struct FleetBinding {
    /// Whether admission control accepted the tenant.
    pub admitted: bool,
    /// Devices assigned (empty when refused).
    pub devices: Vec<DevId>,
    /// Serving lanes — one per assigned device.
    pub lanes: u32,
    /// Per-lane KV byte budget: the tightest assigned device's memory
    /// after the model's weights are resident.
    pub kv_capacity_bytes: u64,
}

/// Admit `tenant` through the global scheduler at virtual time `now` and
/// derive the serving-loop geometry from its device assignment.
pub fn bind_tenant(
    sched: &mut GlobalScheduler,
    topo: &Topology,
    model: &TransformerConfig,
    tenant: TenantRequest,
    now: Nanos,
) -> FleetBinding {
    let id = tenant.id;
    // Static gate first: a tenant whose spec graph carries deny-level
    // lint findings never reaches the scheduler.
    if run_srg_passes(&tenant.srg, &LintConfig::new()).has_deny() {
        return FleetBinding {
            admitted: false,
            devices: Vec::new(),
            lanes: 0,
            kv_capacity_bytes: 0,
        };
    }
    let plan = sched.step(now, vec![FleetEvent::Admit(tenant)]);
    match plan.assignments.get(&id) {
        Some(devices) if !devices.is_empty() && !plan.rejected.contains_key(&id) => {
            let per_lane = devices
                .iter()
                .map(|d| {
                    topo.device(*d)
                        .spec
                        .mem_capacity
                        .saturating_sub(model.weight_bytes())
                })
                .min()
                .unwrap_or(0);
            FleetBinding {
                admitted: per_lane > 0,
                lanes: devices.len() as u32,
                devices: devices.clone(),
                kv_capacity_bytes: per_lane,
            }
        }
        _ => FleetBinding {
            admitted: false,
            devices: Vec::new(),
            lanes: 0,
            kv_capacity_bytes: 0,
        },
    }
}

/// Admit a *sharded* tenant: same lint gate and scheduler admission as
/// [`bind_tenant`], but the assigned devices are grouped into shard
/// sets of `spec.shards()` — one serving lane per complete group. Each
/// device in a group holds `1/shards` of the weights, so the per-lane
/// KV budget is derived from that smaller resident footprint. A tenant
/// whose spec is invalid, or whose assignment cannot fill one complete
/// group, is refused.
pub fn bind_sharded_tenant(
    sched: &mut GlobalScheduler,
    topo: &Topology,
    model: &TransformerConfig,
    tenant: TenantRequest,
    spec: ShardSpec,
    now: Nanos,
) -> FleetBinding {
    let refused = FleetBinding {
        admitted: false,
        devices: Vec::new(),
        lanes: 0,
        kv_capacity_bytes: 0,
    };
    if spec.validate().is_err() {
        return refused;
    }
    let binding = bind_tenant(sched, topo, model, tenant, now);
    if !binding.admitted {
        return binding;
    }
    let shards = spec.shards() as usize;
    let groups = binding.devices.len() / shards;
    if groups == 0 {
        return refused;
    }
    // Keep only complete shard groups; each holds 1/shards of the
    // weights per device.
    let devices: Vec<DevId> = binding.devices[..groups * shards].to_vec();
    let per_shard_weights = model.weight_bytes() / shards as u64;
    let per_lane = devices
        .iter()
        .map(|d| {
            topo.device(*d)
                .spec
                .mem_capacity
                .saturating_sub(per_shard_weights)
        })
        .min()
        .unwrap_or(0);
    FleetBinding {
        admitted: per_lane > 0,
        lanes: groups as u32,
        devices,
        kv_capacity_bytes: per_lane,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::ServingReport;
    use crate::request::{Outcome, ServingRequest, ShedReason};
    use genie_models::Workload;
    use genie_scheduler::global::tenant::Slo;
    use genie_scheduler::CostModel;

    #[test]
    fn llm_tenant_binds_with_kv_headroom() {
        let topo = Topology::heterogeneous_fleet(2, 25e9);
        let mut sched = GlobalScheduler::new(topo.clone(), CostModel::paper_stack());
        let cfg = TransformerConfig::gptj_6b();
        let tenant = TenantRequest {
            id: 1,
            name: "llm".into(),
            srg: Workload::LlmServing.spec_graph(),
            slo: Slo::Interactive,
            model_fingerprint: 7,
        };
        let binding = bind_tenant(&mut sched, &topo, &cfg, tenant, Nanos::ZERO);
        assert!(binding.admitted, "roomy fleet must admit one LLM tenant");
        assert!(binding.lanes >= 1);
        assert_eq!(binding.lanes as usize, binding.devices.len());
        // Every fleet device keeps >10 GiB of KV headroom beyond the
        // ~12.1 GB of GPT-J weights (the smallest part is the 24 GiB L4).
        assert!(
            binding.kv_capacity_bytes > 10 << 30,
            "kv budget {}",
            binding.kv_capacity_bytes
        );
    }

    #[test]
    fn sharded_tenant_groups_devices_and_gains_kv_headroom() {
        let topo = Topology::heterogeneous_fleet(2, 25e9);
        let cfg = TransformerConfig::gptj_6b();
        let tenant = |id| TenantRequest {
            id,
            name: format!("llm-{id}"),
            srg: Workload::LlmServing.spec_graph(),
            slo: Slo::Interactive,
            model_fingerprint: 7,
        };
        let mut sched = GlobalScheduler::new(topo.clone(), CostModel::paper_stack());
        let flat = bind_tenant(&mut sched, &topo, &cfg, tenant(1), Nanos::ZERO);
        assert!(flat.admitted);

        let mut sched = GlobalScheduler::new(topo.clone(), CostModel::paper_stack());
        let spec = ShardSpec::tensor(2);
        let sharded = bind_sharded_tenant(&mut sched, &topo, &cfg, tenant(1), spec, Nanos::ZERO);
        if sharded.admitted {
            // Lanes are whole shard groups, and each device holds half
            // the weights, so the per-lane KV budget can only improve.
            assert_eq!(sharded.devices.len() as u32, sharded.lanes * spec.shards());
            assert!(sharded.kv_capacity_bytes >= flat.kv_capacity_bytes);
        } else {
            // Refusal is only legitimate when no complete group fits.
            assert!((flat.devices.len() as u32) < spec.shards());
        }

        // A plan wider than the whole fleet can never bind.
        let mut sched = GlobalScheduler::new(topo.clone(), CostModel::paper_stack());
        let wide = bind_sharded_tenant(
            &mut sched,
            &topo,
            &cfg,
            tenant(2),
            ShardSpec::new(64, 64),
            Nanos::ZERO,
        );
        assert!(!wide.admitted);
        assert!(wide.devices.is_empty());
    }

    #[test]
    fn deny_level_lint_findings_refuse_admission() {
        use genie_srg::{ElemType, Node, NodeId, OpKind, Srg, TensorMeta};
        // Shape-incompatible matmul: GA001 denies at the static gate, so
        // the tenant must be refused before the scheduler is consulted.
        let mut g = Srg::new("bad-tenant");
        let a = g.add_node(Node::new(NodeId::new(0), OpKind::Input, "a"));
        let b = g.add_node(Node::new(NodeId::new(0), OpKind::Input, "b"));
        let mm = g.add_node(Node::new(NodeId::new(0), OpKind::MatMul, "mm"));
        g.connect(a, mm, TensorMeta::new([2, 3], ElemType::F32));
        g.connect(b, mm, TensorMeta::new([5, 7], ElemType::F32));

        let topo = Topology::heterogeneous_fleet(2, 25e9);
        let mut sched = GlobalScheduler::new(topo.clone(), CostModel::paper_stack());
        let cfg = TransformerConfig::gptj_6b();
        let tenant = TenantRequest {
            id: 2,
            name: "bad".into(),
            srg: g,
            slo: Slo::Interactive,
            model_fingerprint: 8,
        };
        let binding = bind_tenant(&mut sched, &topo, &cfg, tenant, Nanos::ZERO);
        assert!(!binding.admitted, "deny-level graph must be refused");
        assert!(binding.devices.is_empty());
        assert_eq!(binding.lanes, 0);
    }

    #[test]
    fn refused_tenant_sheds_whole_trace_with_typed_reason() {
        let reqs = vec![ServingRequest {
            id: 9,
            tenant: 1,
            arrival: Nanos::ZERO,
            prompt: vec![1],
            total_tokens: 1,
        }];
        let shed = ServingReport::all_shed(&reqs, ShedReason::AdmissionRejected);
        assert!(matches!(
            shed.outcomes[&9],
            Outcome::Shed {
                reason: ShedReason::AdmissionRejected,
                ..
            }
        ));
    }
}
