//! # genie-serving — the continuous-batching serving runtime
//!
//! The paper's LLM-serving story (§3.6, Table 1) is ultimately about a
//! *loop*: requests arrive, share a model, and decode together, with KV
//! caches pinned near the accelerator. This crate builds that loop as a
//! deterministic discrete-event engine over the repo's existing planes:
//!
//! - [`ArrivalConfig`] — seeded open-loop (Poisson) arrival traces on
//!   the virtual clock; a `u64` seed replays the whole offered load.
//! - [`ServingLoop`] — the engine: SLO-budgeted admission queue,
//!   continuous batching across lanes, per-lane KV residency with LRU
//!   eviction and lineage-style re-prefill, typed shedding
//!   ([`ShedReason`]) under overload, and optional fault schedules
//!   ([`genie_netsim::FaultPlan`]) that degrade throughput instead of
//!   wedging the loop.
//! - [`ServingModel`] — functional (tiny, bit-exact against the
//!   sequential [`generate`](genie_models::TransformerLm::generate)
//!   oracle) or spec (GPT-J scale, roofline-priced batched steps via
//!   [`genie_backend::batched_step_time`]).
//! - [`ServingReport`] — outcomes, the deterministic event log the
//!   property suite replays, TTFT percentiles, and serving spans ready
//!   for the Perfetto exporter; `genie_serving_*` metrics flow into the
//!   process-global registry when enabled.
//! - [`fleet::bind_tenant`] — admission through the global scheduler
//!   (memory admission control included) to derive lanes and KV budget.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod arrivals;
pub mod engine;
pub mod fleet;
pub mod kv;
pub mod report;
pub mod request;
pub mod slo;

pub use arrivals::ArrivalConfig;
pub use engine::{DisaggConfig, MigrationPolicy, ServingConfig, ServingLoop, ServingModel};
pub use fleet::{bind_sharded_tenant, bind_tenant, FleetBinding};
pub use kv::{InFlightKv, KvLedger};
pub use report::{percentile, ServingReport};
pub use request::{EventKind, LogEvent, Outcome, ServingRequest, ShedReason};
pub use slo::{SloConfig, SloStats, SloTracker, TenantSlo};
