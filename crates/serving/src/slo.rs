//! Per-tenant SLO burn-rate accounting for the serving loop.
//!
//! Classic error-budget bookkeeping scaled to the virtual clock: each
//! tenant gets a rolling window of sampled request outcomes (violation
//! = shed, or TTFT over target), and the burn rate is the window's
//! violation fraction divided by the error budget. Burn rate 1.0 means
//! the tenant is consuming its budget exactly as provisioned; above
//! 1.0 the budget is burning down and the `genie_slo_burn_rate` gauge
//! says how fast.
//!
//! Collection is sampled and bounded: `sample_every` thins the stream
//! and `window` caps per-tenant memory, so the tracker's footprint is
//! `O(tenants * window)` regardless of run length.

use genie_netsim::Nanos;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, VecDeque};

/// SLO policy for one serving loop.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct SloConfig {
    /// TTFT target: a completed request whose TTFT exceeds this counts
    /// as an SLO violation (sheds always violate).
    pub ttft_target: Nanos,
    /// Error budget: tolerated violation fraction. Burn rate is the
    /// observed violation rate divided by this.
    pub error_budget: f64,
    /// Rolling-window size (sampled observations retained per tenant).
    pub window: usize,
    /// Sample one of every `sample_every` outcomes (1 = sample all).
    pub sample_every: u64,
}

impl SloConfig {
    /// The paper testbed's serving SLO: 500 ms TTFT target, 5% error
    /// budget, a 256-sample rolling window, no thinning.
    pub fn paper_default() -> Self {
        SloConfig {
            ttft_target: Nanos::from_secs_f64(0.5),
            error_budget: 0.05,
            window: 256,
            sample_every: 1,
        }
    }
}

/// One tenant's bounded outcome window.
#[derive(Clone, Debug, Default)]
struct TenantWindow {
    /// Outcomes seen (pre-sampling), for the thinning counter.
    seen: u64,
    /// Sampled outcomes retained so far (monotone).
    observed: u64,
    /// Sampled violations so far (monotone).
    violations: u64,
    /// Rolling window of sampled outcomes (true = violation).
    window: VecDeque<bool>,
}

/// Rolling per-tenant SLO accounting. Construct per run, feed every
/// terminal outcome through [`observe`](Self::observe), read burn
/// rates at any point.
#[derive(Clone, Debug)]
pub struct SloTracker {
    config: SloConfig,
    tenants: BTreeMap<u64, TenantWindow>,
}

impl SloTracker {
    /// A tracker enforcing `config`.
    pub fn new(config: SloConfig) -> Self {
        assert!(config.error_budget > 0.0, "error budget must be positive");
        assert!(config.window >= 1, "window must hold at least one sample");
        assert!(config.sample_every >= 1, "sample_every must be at least 1");
        SloTracker {
            config,
            tenants: BTreeMap::new(),
        }
    }

    /// Record one terminal outcome for `tenant`. Sampling and window
    /// eviction keep memory bounded.
    pub fn observe(&mut self, tenant: u64, violation: bool) {
        let w = self.tenants.entry(tenant).or_default();
        let idx = w.seen;
        w.seen += 1;
        if !idx.is_multiple_of(self.config.sample_every) {
            return;
        }
        w.observed += 1;
        if violation {
            w.violations += 1;
        }
        w.window.push_back(violation);
        while w.window.len() > self.config.window {
            w.window.pop_front();
        }
    }

    /// `tenant`'s current burn rate: rolling violation rate over the
    /// error budget (0 for a tenant with no sampled outcomes).
    pub fn burn_rate(&self, tenant: u64) -> f64 {
        let Some(w) = self.tenants.get(&tenant) else {
            return 0.0;
        };
        if w.window.is_empty() {
            return 0.0;
        }
        let violations = w.window.iter().filter(|v| **v).count() as f64;
        (violations / w.window.len() as f64) / self.config.error_budget
    }

    /// Snapshot every tenant's counters and burn rate.
    pub fn stats(&self) -> SloStats {
        SloStats {
            per_tenant: self
                .tenants
                .iter()
                .map(|(&tenant, w)| {
                    (
                        tenant,
                        TenantSlo {
                            observed: w.observed,
                            violations: w.violations,
                            burn_rate: self.burn_rate(tenant),
                        },
                    )
                })
                .collect(),
        }
    }
}

/// One tenant's SLO snapshot.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct TenantSlo {
    /// Sampled terminal outcomes recorded.
    pub observed: u64,
    /// Sampled outcomes that violated the SLO (shed, or TTFT over
    /// target).
    pub violations: u64,
    /// Rolling-window violation rate divided by the error budget.
    pub burn_rate: f64,
}

/// Per-tenant SLO snapshot of one serving run.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct SloStats {
    /// Snapshot per tenant id.
    pub per_tenant: BTreeMap<u64, TenantSlo>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn burn_rate_is_violation_rate_over_budget() {
        let mut t = SloTracker::new(SloConfig {
            ttft_target: Nanos::from_secs_f64(0.5),
            error_budget: 0.1,
            window: 100,
            sample_every: 1,
        });
        for i in 0..20 {
            t.observe(7, i % 5 == 0); // 4 violations in 20 -> 20% rate
        }
        assert!((t.burn_rate(7) - 2.0).abs() < 1e-12, "{}", t.burn_rate(7));
        assert_eq!(t.burn_rate(99), 0.0, "unknown tenant burns nothing");
        let stats = t.stats();
        let seven = &stats.per_tenant[&7];
        assert_eq!(seven.observed, 20);
        assert_eq!(seven.violations, 4);
    }

    #[test]
    fn window_is_bounded_and_rolls() {
        let mut t = SloTracker::new(SloConfig {
            ttft_target: Nanos::from_secs_f64(0.5),
            error_budget: 0.5,
            window: 4,
            sample_every: 1,
        });
        // 4 violations, then 4 clean: the window forgets the bad past.
        for _ in 0..4 {
            t.observe(1, true);
        }
        assert_eq!(t.burn_rate(1), 2.0);
        for _ in 0..4 {
            t.observe(1, false);
        }
        assert_eq!(t.burn_rate(1), 0.0);
        // Monotone counters still remember everything sampled.
        assert_eq!(t.stats().per_tenant[&1].violations, 4);
        assert_eq!(t.stats().per_tenant[&1].observed, 8);
    }

    #[test]
    fn sampling_thins_the_stream() {
        let mut t = SloTracker::new(SloConfig {
            ttft_target: Nanos::from_secs_f64(0.5),
            error_budget: 0.05,
            window: 1000,
            sample_every: 4,
        });
        for _ in 0..100 {
            t.observe(2, true);
        }
        assert_eq!(t.stats().per_tenant[&2].observed, 25);
    }
}
