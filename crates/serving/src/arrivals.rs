//! Seeded open-loop arrival generation.
//!
//! Inter-arrival gaps are exponential (Poisson process) drawn from the
//! repo's [`XorShift64`] generator — no wall clock, no global RNG — so a
//! seed fully determines the offered trace. Prompt contents and lengths
//! come from the same stream, which keeps the whole trace replayable
//! from a single `u64`.

use crate::request::ServingRequest;
use genie_netsim::{Nanos, XorShift64};

/// Parameters of a synthetic open-loop arrival trace.
#[derive(Clone, Debug, PartialEq)]
pub struct ArrivalConfig {
    /// PRNG seed; same seed ⇒ identical trace.
    pub seed: u64,
    /// Mean offered load in requests per second (must be positive).
    pub rate_per_s: f64,
    /// Generation stops at the first arrival past this horizon.
    pub horizon: Nanos,
    /// Inclusive (min, max) prompt length in tokens.
    pub prompt_len: (usize, usize),
    /// Inclusive (min, max) total generated tokens per request.
    pub decode_tokens: (usize, usize),
    /// Vocabulary size prompts are drawn from.
    pub vocab: usize,
    /// Requests round-robin over this many tenant ids.
    pub tenants: u64,
}

impl ArrivalConfig {
    /// Materialize the trace: requests sorted by arrival time with ids
    /// assigned in arrival order starting at 1.
    pub fn generate(&self) -> Vec<ServingRequest> {
        assert!(self.rate_per_s > 0.0, "arrival rate must be positive");
        assert!(self.prompt_len.0 >= 1 && self.prompt_len.0 <= self.prompt_len.1);
        assert!(self.decode_tokens.0 >= 1 && self.decode_tokens.0 <= self.decode_tokens.1);
        assert!(self.vocab >= 2, "vocab too small");
        assert!(self.tenants >= 1, "need at least one tenant");

        let mut rng = XorShift64::new(self.seed);
        let mut out = Vec::new();
        let mut t = 0.0f64;
        let mut id = 1u64;
        loop {
            // Inverse-CDF exponential gap; 1 - u ∈ (0, 1] so ln is finite.
            let u = rng.next_f64();
            t += -(1.0 - u).ln() / self.rate_per_s;
            let at = Nanos::from_secs_f64(t);
            if at > self.horizon {
                break;
            }
            let span = |lo: usize, hi: usize, rng: &mut XorShift64| {
                lo + rng.next_below((hi - lo + 1) as u64) as usize
            };
            let plen = span(self.prompt_len.0, self.prompt_len.1, &mut rng);
            let prompt = (0..plen)
                .map(|_| rng.next_below(self.vocab as u64) as i64)
                .collect();
            let total = span(self.decode_tokens.0, self.decode_tokens.1, &mut rng);
            out.push(ServingRequest {
                id,
                tenant: (id - 1) % self.tenants,
                arrival: at,
                prompt,
                total_tokens: total,
            });
            id += 1;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(seed: u64) -> ArrivalConfig {
        ArrivalConfig {
            seed,
            rate_per_s: 50.0,
            horizon: Nanos::from_secs_f64(1.0),
            prompt_len: (2, 6),
            decode_tokens: (1, 4),
            vocab: 32,
            tenants: 3,
        }
    }

    #[test]
    fn same_seed_same_trace() {
        assert_eq!(cfg(9).generate(), cfg(9).generate());
        assert_ne!(cfg(9).generate(), cfg(10).generate());
    }

    #[test]
    fn trace_is_sorted_bounded_and_well_formed() {
        let reqs = cfg(4).generate();
        assert!(reqs.len() > 10, "50 req/s over 1 s should yield dozens");
        let mut prev = Nanos::ZERO;
        for r in &reqs {
            assert!(r.arrival >= prev);
            prev = r.arrival;
            assert!((2..=6).contains(&r.prompt.len()));
            assert!((1..=4).contains(&r.total_tokens));
            assert!(r.prompt.iter().all(|&t| (0..32).contains(&t)));
            assert!(r.tenant < 3);
        }
        let ids: Vec<u64> = reqs.iter().map(|r| r.id).collect();
        assert_eq!(ids, (1..=reqs.len() as u64).collect::<Vec<_>>());
    }
}
