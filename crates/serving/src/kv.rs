//! Per-lane KV-residency ledger with cross-host migration.
//!
//! The ledger is the engine's single source of truth for "whose KV cache
//! is resident where". It accounts in *tokens* (bytes = tokens ×
//! [`kv_bytes_per_token`](genie_models::TransformerConfig::kv_bytes_per_token))
//! and enforces two invariants the property suite re-checks from the
//! event log: no lane's resident-plus-reserved bytes ever exceed its
//! capacity, and a request's KV prefix is resident on at most one lane
//! at any instant.
//!
//! Disaggregated serving adds a third state between "resident on the
//! prefill host" and "resident on the decode host": **in flight**. A
//! migration atomically removes residency at the source and reserves
//! the full footprint at the destination; the bytes are never counted
//! twice and never dropped until the transfer either lands
//! ([`complete_migration`](KvLedger::complete_migration)) or is lost to
//! a fault ([`fail_migration`](KvLedger::fail_migration) — the only
//! place bytes vanish, and the engine must then re-prefill from
//! lineage).

use std::collections::BTreeMap;

/// One KV prefix on the wire between two lanes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct InFlightKv {
    /// Source lane (residency already released).
    pub from: usize,
    /// Destination lane (capacity already reserved).
    pub to: usize,
    /// Prefix length in tokens.
    pub tokens: u64,
}

/// Tracks resident KV tokens per (lane, request) against a fixed
/// per-lane byte capacity, plus prefixes in flight between lanes.
#[derive(Clone, Debug)]
pub struct KvLedger {
    capacity_bytes: u64,
    bytes_per_token: u64,
    lanes: Vec<BTreeMap<u64, u64>>,
    in_flight: BTreeMap<u64, InFlightKv>,
    peak_bytes: u64,
}

impl KvLedger {
    /// A ledger for `lanes` lanes of `capacity_bytes` each, with the
    /// model's per-token KV footprint.
    pub fn new(lanes: usize, capacity_bytes: u64, bytes_per_token: u64) -> Self {
        assert!(lanes >= 1, "need at least one lane");
        assert!(bytes_per_token >= 1, "KV bytes per token must be positive");
        KvLedger {
            capacity_bytes,
            bytes_per_token,
            lanes: vec![BTreeMap::new(); lanes],
            in_flight: BTreeMap::new(),
            peak_bytes: 0,
        }
    }

    /// Per-lane capacity in bytes.
    pub fn capacity_bytes(&self) -> u64 {
        self.capacity_bytes
    }

    /// Resident tokens for `request` on `lane` (0 if absent).
    pub fn resident_tokens(&self, lane: usize, request: u64) -> u64 {
        self.lanes[lane].get(&request).copied().unwrap_or(0)
    }

    /// The lane where `request`'s prefix is resident, if any. In-flight
    /// prefixes are resident nowhere. Panics if the single-residency
    /// invariant is broken — that is an engine bug worth dying loudly on.
    pub fn host_of(&self, request: u64) -> Option<usize> {
        let mut found = None;
        for (lane, residents) in self.lanes.iter().enumerate() {
            if residents.contains_key(&request) {
                assert!(
                    found.is_none(),
                    "request {request} resident on lanes {} and {lane}",
                    found.unwrap()
                );
                found = Some(lane);
            }
        }
        found
    }

    /// Number of lanes holding `request` (the property suite asserts
    /// this never exceeds 1 without tripping [`host_of`]'s panic).
    pub fn residency_count(&self, request: u64) -> usize {
        self.lanes
            .iter()
            .filter(|l| l.contains_key(&request))
            .count()
    }

    /// The migration in flight for `request`, if any.
    pub fn in_flight(&self, request: u64) -> Option<InFlightKv> {
        self.in_flight.get(&request).copied()
    }

    /// Tokens reserved on `lane` by inbound migrations.
    pub fn reserved_tokens(&self, lane: usize) -> u64 {
        self.in_flight
            .values()
            .filter(|m| m.to == lane)
            .map(|m| m.tokens)
            .sum()
    }

    /// Bytes charged to one lane: resident plus inbound reservations.
    /// Reserving at departure time is what makes capacity a true
    /// invariant — the destination can never be oversubscribed by bytes
    /// that are already on the wire.
    pub fn lane_bytes(&self, lane: usize) -> u64 {
        let resident: u64 = self.lanes[lane].values().sum();
        (resident + self.reserved_tokens(lane)) * self.bytes_per_token
    }

    /// Bytes resident or in flight across all lanes.
    pub fn total_bytes(&self) -> u64 {
        (0..self.lanes.len()).map(|l| self.lane_bytes(l)).sum()
    }

    /// High-water mark of [`total_bytes`](Self::total_bytes).
    pub fn peak_bytes(&self) -> u64 {
        self.peak_bytes
    }

    /// Would `extra_tokens` more tokens still fit on `lane`
    /// (counting inbound reservations)?
    pub fn fits(&self, lane: usize, extra_tokens: u64) -> bool {
        self.lane_bytes(lane) + extra_tokens * self.bytes_per_token <= self.capacity_bytes
    }

    /// Set `request`'s resident token count on `lane`, updating the peak.
    pub fn set(&mut self, lane: usize, request: u64, tokens: u64) {
        self.lanes[lane].insert(request, tokens);
        self.update_peak();
    }

    /// Drop `request`'s residency on `lane`, returning the freed tokens.
    pub fn evict(&mut self, lane: usize, request: u64) -> u64 {
        self.lanes[lane].remove(&request).unwrap_or(0)
    }

    /// Start migrating `request`'s prefix from `from` to `to`: residency
    /// at the source is released and the full footprint reserved at the
    /// destination, atomically. Returns the tokens on the wire.
    ///
    /// Panics if the request is not resident on `from`, already has a
    /// migration in flight, or the destination cannot hold it — the
    /// engine must check [`fits`](Self::fits) first.
    pub fn begin_migration(&mut self, request: u64, from: usize, to: usize) -> u64 {
        assert_ne!(from, to, "migration to the same lane is a no-op bug");
        assert!(
            !self.in_flight.contains_key(&request),
            "request {request} already migrating"
        );
        let tokens = self.lanes[from]
            .remove(&request)
            .unwrap_or_else(|| panic!("request {request} not resident on lane {from}"));
        assert!(
            self.fits(to, tokens),
            "destination lane {to} cannot hold {tokens} migrated tokens"
        );
        self.in_flight
            .insert(request, InFlightKv { from, to, tokens });
        self.update_peak();
        tokens
    }

    /// The transfer landed: convert the destination reservation into
    /// residency. Returns `(to, tokens)`.
    pub fn complete_migration(&mut self, request: u64) -> (usize, u64) {
        let m = self
            .in_flight
            .remove(&request)
            .unwrap_or_else(|| panic!("request {request} has no migration in flight"));
        self.lanes[m.to].insert(request, m.tokens);
        self.update_peak();
        (m.to, m.tokens)
    }

    /// The transfer was lost to a fault: drop the reservation. The
    /// prefix is gone from every lane — the caller must re-prefill from
    /// lineage. Returns the lost migration record.
    pub fn fail_migration(&mut self, request: u64) -> InFlightKv {
        self.in_flight
            .remove(&request)
            .unwrap_or_else(|| panic!("request {request} has no migration in flight"))
    }

    fn update_peak(&mut self) {
        let total = self.total_bytes();
        if total > self.peak_bytes {
            self.peak_bytes = total;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accounting_and_peak() {
        let mut led = KvLedger::new(2, 1000, 100);
        led.set(0, 1, 3);
        led.set(1, 2, 5);
        assert_eq!(led.lane_bytes(0), 300);
        assert_eq!(led.lane_bytes(1), 500);
        assert_eq!(led.total_bytes(), 800);
        assert_eq!(led.peak_bytes(), 800);
        assert!(led.fits(0, 7));
        assert!(!led.fits(0, 8));
        assert_eq!(led.evict(1, 2), 5);
        assert_eq!(led.total_bytes(), 300);
        assert_eq!(led.peak_bytes(), 800, "peak is sticky");
        assert_eq!(led.resident_tokens(1, 2), 0);
        assert_eq!(led.evict(1, 2), 0, "double evict is a no-op");
    }

    #[test]
    fn migration_moves_residency_exactly_once() {
        let mut led = KvLedger::new(3, 1000, 100);
        led.set(2, 7, 4);
        assert_eq!(led.host_of(7), Some(2));

        let tokens = led.begin_migration(7, 2, 0);
        assert_eq!(tokens, 4);
        // On the wire: resident nowhere, reserved at the destination.
        assert_eq!(led.host_of(7), None);
        assert_eq!(led.residency_count(7), 0);
        assert_eq!(led.lane_bytes(2), 0, "source freed at departure");
        assert_eq!(led.lane_bytes(0), 400, "destination reserved");
        assert_eq!(led.total_bytes(), 400, "no bytes lost or doubled");
        assert_eq!(
            led.in_flight(7),
            Some(InFlightKv {
                from: 2,
                to: 0,
                tokens: 4
            })
        );

        let (to, landed) = led.complete_migration(7);
        assert_eq!((to, landed), (0, 4));
        assert_eq!(led.host_of(7), Some(0));
        assert_eq!(led.lane_bytes(0), 400);
        assert!(led.in_flight(7).is_none());
    }

    #[test]
    fn reservation_blocks_destination_admission() {
        let mut led = KvLedger::new(2, 1000, 100);
        led.set(1, 1, 6);
        led.begin_migration(1, 1, 0);
        // 600 of 1000 bytes reserved on lane 0: a 5-token prefix no
        // longer fits even though nothing is "resident" yet.
        assert!(!led.fits(0, 5));
        assert!(led.fits(0, 4));
        assert_eq!(led.reserved_tokens(0), 6);
    }

    #[test]
    fn failed_migration_loses_the_bytes_cleanly() {
        let mut led = KvLedger::new(2, 1000, 100);
        led.set(0, 3, 8);
        led.begin_migration(3, 0, 1);
        let lost = led.fail_migration(3);
        assert_eq!(lost.tokens, 8);
        assert_eq!(led.total_bytes(), 0, "reservation released");
        assert_eq!(led.host_of(3), None);
        assert!(led.fits(1, 10), "destination capacity fully recovered");
    }

    #[test]
    #[should_panic(expected = "cannot hold")]
    fn oversized_migration_panics_rather_than_oversubscribes() {
        let mut led = KvLedger::new(2, 1000, 100);
        led.set(0, 1, 8);
        led.set(1, 2, 5);
        led.begin_migration(1, 0, 1);
    }

    #[test]
    #[should_panic(expected = "resident on lanes")]
    fn double_residency_trips_host_of() {
        let mut led = KvLedger::new(2, 1000, 100);
        led.set(0, 1, 1);
        led.set(1, 1, 1);
        led.host_of(1);
    }

    #[test]
    fn migration_peak_counts_the_wire_once() {
        let mut led = KvLedger::new(2, 1000, 100);
        led.set(0, 1, 9);
        assert_eq!(led.peak_bytes(), 900);
        led.begin_migration(1, 0, 1);
        led.complete_migration(1);
        assert_eq!(led.peak_bytes(), 900, "a move must not inflate the peak");
    }
}
