//! Per-lane KV-residency ledger.
//!
//! The ledger is the engine's single source of truth for "whose KV cache
//! is resident where". It accounts in *tokens* (bytes = tokens ×
//! [`kv_bytes_per_token`](genie_models::TransformerConfig::kv_bytes_per_token))
//! and enforces one invariant the property suite re-checks from the
//! event log: no lane's resident bytes ever exceed its capacity.

use std::collections::BTreeMap;

/// Tracks resident KV tokens per (lane, request) against a fixed
/// per-lane byte capacity.
#[derive(Clone, Debug)]
pub struct KvLedger {
    capacity_bytes: u64,
    bytes_per_token: u64,
    lanes: Vec<BTreeMap<u64, u64>>,
    peak_bytes: u64,
}

impl KvLedger {
    /// A ledger for `lanes` lanes of `capacity_bytes` each, with the
    /// model's per-token KV footprint.
    pub fn new(lanes: usize, capacity_bytes: u64, bytes_per_token: u64) -> Self {
        assert!(lanes >= 1, "need at least one lane");
        assert!(bytes_per_token >= 1, "KV bytes per token must be positive");
        KvLedger {
            capacity_bytes,
            bytes_per_token,
            lanes: vec![BTreeMap::new(); lanes],
            peak_bytes: 0,
        }
    }

    /// Per-lane capacity in bytes.
    pub fn capacity_bytes(&self) -> u64 {
        self.capacity_bytes
    }

    /// Resident tokens for `request` on `lane` (0 if absent).
    pub fn resident_tokens(&self, lane: usize, request: u64) -> u64 {
        self.lanes[lane].get(&request).copied().unwrap_or(0)
    }

    /// Bytes resident on one lane.
    pub fn lane_bytes(&self, lane: usize) -> u64 {
        self.lanes[lane].values().sum::<u64>() * self.bytes_per_token
    }

    /// Bytes resident across all lanes.
    pub fn total_bytes(&self) -> u64 {
        (0..self.lanes.len()).map(|l| self.lane_bytes(l)).sum()
    }

    /// High-water mark of [`total_bytes`](Self::total_bytes).
    pub fn peak_bytes(&self) -> u64 {
        self.peak_bytes
    }

    /// Would `extra_tokens` more tokens still fit on `lane`?
    pub fn fits(&self, lane: usize, extra_tokens: u64) -> bool {
        self.lane_bytes(lane) + extra_tokens * self.bytes_per_token <= self.capacity_bytes
    }

    /// Set `request`'s resident token count on `lane`, updating the peak.
    pub fn set(&mut self, lane: usize, request: u64, tokens: u64) {
        self.lanes[lane].insert(request, tokens);
        let total = self.total_bytes();
        if total > self.peak_bytes {
            self.peak_bytes = total;
        }
    }

    /// Drop `request`'s residency on `lane`, returning the freed tokens.
    pub fn evict(&mut self, lane: usize, request: u64) -> u64 {
        self.lanes[lane].remove(&request).unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accounting_and_peak() {
        let mut led = KvLedger::new(2, 1000, 100);
        led.set(0, 1, 3);
        led.set(1, 2, 5);
        assert_eq!(led.lane_bytes(0), 300);
        assert_eq!(led.lane_bytes(1), 500);
        assert_eq!(led.total_bytes(), 800);
        assert_eq!(led.peak_bytes(), 800);
        assert!(led.fits(0, 7));
        assert!(!led.fits(0, 8));
        assert_eq!(led.evict(1, 2), 5);
        assert_eq!(led.total_bytes(), 300);
        assert_eq!(led.peak_bytes(), 800, "peak is sticky");
        assert_eq!(led.resident_tokens(1, 2), 0);
        assert_eq!(led.evict(1, 2), 0, "double evict is a no-op");
    }
}
