//! DLRM-style recommendation model: sparse embedding bags + dense MLP.

use crate::config::DlrmConfig;
use genie_frontend::capture::{CaptureCtx, LazyTensor};
use genie_srg::{ElemType, Modality};
use genie_tensor::{init, Tensor};

/// A recommendation model in the DLRM mold: one pooled embedding lookup
/// per sparse table, concatenated with processed dense features, fed
/// through an interaction MLP to a click-probability score.
#[derive(Clone, Debug)]
pub struct Dlrm {
    /// Architecture.
    pub config: DlrmConfig,
    tables: Option<Vec<Tensor>>,
    dense: Option<DenseWeights>,
}

#[derive(Clone, Debug)]
struct DenseWeights {
    bottom_w: Tensor,
    top_w1: Tensor,
    top_w2: Tensor,
}

impl Dlrm {
    /// Functional model (tiny configs only).
    pub fn new_functional(config: DlrmConfig, seed: u64) -> Self {
        assert!(
            config.table_bytes() < 16 << 20,
            "functional tables must be small"
        );
        assert_eq!(config.elem, ElemType::F32);
        let mut s = seed;
        let mut next = || {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            s
        };
        let tables = (0..config.tables)
            .map(|_| {
                init::uniform(
                    [config.rows_per_table, config.embedding_dim],
                    -0.1,
                    0.1,
                    next(),
                )
            })
            .collect();
        let concat_width = config.embedding_dim * (config.tables + 1);
        let dense = DenseWeights {
            bottom_w: init::uniform(
                [config.dense_features, config.embedding_dim],
                -0.3,
                0.3,
                next(),
            ),
            top_w1: init::uniform([concat_width, config.mlp_hidden], -0.2, 0.2, next()),
            top_w2: init::uniform([config.mlp_hidden, 1], -0.2, 0.2, next()),
        };
        Dlrm {
            config,
            tables: Some(tables),
            dense: Some(dense),
        }
    }

    /// Spec-only model at production scale.
    pub fn new_spec(config: DlrmConfig) -> Self {
        Dlrm {
            config,
            tables: None,
            dense: None,
        }
    }

    /// Whether this model carries real weights.
    pub fn is_functional(&self) -> bool {
        self.tables.is_some()
    }

    /// Capture one inference. `sparse_ids[t]` are the multi-hot indices
    /// for table `t`; `dense_features` is the dense input row.
    pub fn capture_inference(
        &self,
        ctx: &CaptureCtx,
        sparse_ids: &[Vec<i64>],
        dense_features: Option<Tensor>,
    ) -> LazyTensor {
        let cfg = &self.config;
        assert_eq!(sparse_ids.len(), cfg.tables, "one id list per table");
        ctx.modality_scope(Modality::Tabular, || {
            // Sparse side: pooled gathers.
            let mut pooled: Vec<LazyTensor> = Vec::with_capacity(cfg.tables);
            for (t, ids) in sparse_ids.iter().enumerate() {
                let p = ctx.scope("sparse", || {
                    ctx.scope(&t.to_string(), || {
                        let table = ctx.parameter(
                            "table",
                            [cfg.rows_per_table, cfg.embedding_dim],
                            cfg.elem,
                            self.tables.as_ref().map(|ts| ts[t].clone()),
                        );
                        let idx = if self.is_functional() {
                            ctx.input_ids("ids", ids)
                        } else {
                            ctx.input_ids_spec("ids", ids.len())
                        };
                        table.gather_sum(&idx).reshape([1, cfg.embedding_dim])
                    })
                });
                pooled.push(p);
            }

            // Dense side: bottom MLP.
            let dense_vec = ctx.scope("dense_bottom", || {
                let x = ctx.input("dense", [1, cfg.dense_features], cfg.elem, dense_features);
                let w = ctx.parameter(
                    "bottom_w",
                    [cfg.dense_features, cfg.embedding_dim],
                    cfg.elem,
                    self.dense.as_ref().map(|d| d.bottom_w.clone()),
                );
                x.matmul(&w).relu()
            });

            // Interaction: concat everything, top MLP.
            ctx.scope("interaction", || {
                let mut cat = dense_vec;
                for p in &pooled {
                    cat = cat.concat(p, 1);
                }
                let w1 = ctx.parameter(
                    "top_w1",
                    [cfg.embedding_dim * (cfg.tables + 1), cfg.mlp_hidden],
                    cfg.elem,
                    self.dense.as_ref().map(|d| d.top_w1.clone()),
                );
                let w2 = ctx.parameter(
                    "top_w2",
                    [cfg.mlp_hidden, 1],
                    cfg.elem,
                    self.dense.as_ref().map(|d| d.top_w2.clone()),
                );
                cat.matmul(&w1).relu().matmul(&w2)
            })
        })
    }

    /// Functional inference: click score in `[0, 1]` via sigmoid.
    pub fn predict(&self, sparse_ids: &[Vec<i64>], dense_features: Tensor) -> f32 {
        assert!(self.is_functional());
        let ctx = CaptureCtx::new("dlrm.predict");
        let logit = self.capture_inference(&ctx, sparse_ids, Some(dense_features));
        logit.mark_output();
        let cap = ctx.finish();
        let out = genie_frontend::interp::run_single_output(&cap).expect("dlrm executes");
        1.0 / (1.0 + (-out.data()[0]).exp())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use genie_frontend::patterns;
    use genie_srg::{Phase, Residency};

    fn ids(cfg: &DlrmConfig, seed: i64) -> Vec<Vec<i64>> {
        (0..cfg.tables)
            .map(|t| {
                (0..cfg.lookups_per_table)
                    .map(|i| {
                        ((seed + t as i64 * 7 + i as i64 * 13) % cfg.rows_per_table as i64).abs()
                    })
                    .collect()
            })
            .collect()
    }

    #[test]
    fn prediction_is_probability_and_deterministic() {
        let cfg = DlrmConfig::tiny();
        let m = Dlrm::new_functional(cfg.clone(), 3);
        let dense = init::randn([1, cfg.dense_features], 5);
        let a = m.predict(&ids(&cfg, 1), dense.clone());
        let b = m.predict(&ids(&cfg, 1), dense);
        assert_eq!(a, b);
        assert!((0.0..=1.0).contains(&a));
    }

    #[test]
    fn different_ids_change_prediction() {
        let cfg = DlrmConfig::tiny();
        let m = Dlrm::new_functional(cfg.clone(), 3);
        let dense = init::randn([1, cfg.dense_features], 5);
        let a = m.predict(&ids(&cfg, 1), dense.clone());
        let b = m.predict(&ids(&cfg, 2), dense);
        assert!((a - b).abs() > 1e-7);
    }

    #[test]
    fn spec_capture_recognized_as_recsys() {
        let cfg = DlrmConfig::production_like();
        let m = Dlrm::new_spec(cfg.clone());
        let ctx = CaptureCtx::new("dlrm");
        let id_lists: Vec<Vec<i64>> = (0..cfg.tables)
            .map(|_| vec![0; cfg.lookups_per_table])
            .collect();
        let out = m.capture_inference(&ctx, &id_lists, None);
        out.mark_output();
        let mut srg = ctx.finish().srg;
        for node in srg.nodes_mut() {
            node.modality = genie_srg::Modality::Unknown;
        }
        let fired = patterns::run_all(&mut srg);
        assert!(fired.iter().any(|r| r.recognizer == "recsys"));
        // Tables reclassified for tiering.
        let tables = srg
            .nodes()
            .filter(|n| n.residency == Residency::EmbeddingTable)
            .count();
        assert_eq!(tables, cfg.tables);
        assert!(srg.nodes().any(|n| n.phase == Phase::DenseInteraction));
    }
}
