//! Multimodal (VQA-style) model: a vision encoder and a text encoder fused
//! into a joint head — the fourth workload family of Table 1.

use crate::config::{CnnConfig, TransformerConfig};
use genie_frontend::capture::{CaptureCtx, LazyTensor};
use genie_srg::{ElemType, Modality, Phase};
use genie_tensor::{init, Tensor};

/// Configuration of the fusion model.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MultimodalConfig {
    /// Vision tower.
    pub vision: CnnConfig,
    /// Text tower (encoder-style transformer reuse).
    pub text: TransformerConfig,
    /// Joint embedding width.
    pub fusion_dim: usize,
    /// Answer vocabulary.
    pub answers: usize,
}

impl MultimodalConfig {
    /// Simulation-scale VQA model.
    pub fn vqa_like() -> Self {
        MultimodalConfig {
            vision: CnnConfig::resnet_like(),
            text: TransformerConfig::gptj_6b(),
            fusion_dim: 2048,
            answers: 3000,
        }
    }

    /// Tiny functional config.
    pub fn tiny() -> Self {
        MultimodalConfig {
            vision: CnnConfig::tiny(),
            text: TransformerConfig::tiny(),
            fusion_dim: 8,
            answers: 5,
        }
    }
}

/// The multimodal model. Functional only at tiny scale.
#[derive(Clone, Debug)]
pub struct Multimodal {
    /// Architecture.
    pub config: MultimodalConfig,
    weights: Option<FusionWeights>,
}

#[derive(Clone, Debug)]
struct FusionWeights {
    img_proj: Tensor,
    txt_table: Tensor,
    txt_proj: Tensor,
    head_w: Tensor,
}

impl Multimodal {
    /// Functional model (tiny configs only).
    pub fn new_functional(config: MultimodalConfig, seed: u64) -> Self {
        let vis_ch = config.vision.base_channels << ((config.vision.stages - 1) / 2);
        let weights = FusionWeights {
            img_proj: init::uniform([vis_ch, config.fusion_dim], -0.3, 0.3, seed),
            txt_table: init::uniform(
                [config.text.vocab, config.text.d_model],
                -0.3,
                0.3,
                seed + 1,
            ),
            txt_proj: init::uniform(
                [config.text.d_model, config.fusion_dim],
                -0.3,
                0.3,
                seed + 2,
            ),
            head_w: init::uniform([2 * config.fusion_dim, config.answers], -0.3, 0.3, seed + 3),
        };
        Multimodal {
            config,
            weights: Some(weights),
        }
    }

    /// Spec-only model.
    pub fn new_spec(config: MultimodalConfig) -> Self {
        Multimodal {
            config,
            weights: None,
        }
    }

    /// Whether this model carries real weights.
    pub fn is_functional(&self) -> bool {
        self.weights.is_some()
    }

    /// Capture a VQA inference: image + question tokens → answer scores.
    /// The towers are tagged with their modalities; the head fuses them —
    /// exactly the structure the multimodal recognizer and the global
    /// scheduler's modality-aware placement consume.
    pub fn capture_inference(
        &self,
        ctx: &CaptureCtx,
        question: &[i64],
        pixels: Option<Tensor>,
    ) -> LazyTensor {
        let cfg = &self.config;
        let elem = if self.is_functional() {
            ElemType::F32
        } else {
            ElemType::F16
        };
        let w = self.weights.as_ref();

        // Vision tower: a small conv stack then projection.
        let img_vec = ctx.modality_scope(Modality::Vision, || {
            ctx.scope("vision_tower", || {
                let cnn = if self.is_functional() {
                    crate::cnn::SimpleCnn::new_functional(cfg.vision.clone(), 99)
                } else {
                    crate::cnn::SimpleCnn::new_spec(cfg.vision.clone())
                };
                // Reuse the CNN capture up to the feature vector: capture
                // a fresh stack inline (classifier included is fine; we
                // project its penultimate features via gap here instead).
                let img = cfg.vision.image_size;
                let mut x = ctx.input("image", [1, 3, img, img], elem, pixels);
                for i in 0..cfg.vision.stages {
                    let cout = cfg.vision.base_channels << (i / 2);
                    let cin = if i == 0 {
                        3
                    } else {
                        cfg.vision.base_channels << ((i - 1) / 2)
                    };
                    let cw = ctx.parameter(
                        &format!("conv{i}_w"),
                        [cout, cin, 3, 3],
                        elem,
                        // Functional vision weights come from the nested
                        // CNN's RNG; to keep payloads aligned we just
                        // synthesize per-layer seeds here.
                        if self.is_functional() {
                            Some(scale(
                                init::randn([cout, cin, 3, 3], 1000 + i as u64),
                                1.0 / ((cin * 9) as f32).sqrt(),
                            ))
                        } else {
                            None
                        },
                    );
                    let cb = ctx.parameter(
                        &format!("conv{i}_b"),
                        [cout],
                        elem,
                        self.is_functional().then(|| Tensor::zeros([cout])),
                    );
                    x = x.conv2d(&cw, &cb, 1, 1).relu();
                    if i % 2 == 1 && x.dims()[2] >= 4 {
                        x = x.pool2d(2, 2, false);
                    }
                }
                let _ = cnn;
                let proj = ctx.parameter(
                    "img_proj",
                    [x.dims()[1], cfg.fusion_dim],
                    elem,
                    w.map(|w| w.img_proj.clone()),
                );
                x.global_avg_pool().matmul(&proj).relu()
            })
        });

        // Text tower: embedding mean-pool then projection.
        let txt_vec = ctx.modality_scope(Modality::Text, || {
            ctx.scope("text_tower", || {
                let table = ctx.parameter(
                    "txt_table",
                    [cfg.text.vocab, cfg.text.d_model],
                    elem,
                    w.map(|w| w.txt_table.clone()),
                );
                let ids = if self.is_functional() {
                    ctx.input_ids("question", question)
                } else {
                    ctx.input_ids_spec("question", question.len())
                };
                let emb = table.gather(&ids);
                let pooled = emb
                    .transpose()
                    .mean_lastdim()
                    .reshape([1, cfg.text.d_model]);
                let proj = ctx.parameter(
                    "txt_proj",
                    [cfg.text.d_model, cfg.fusion_dim],
                    elem,
                    w.map(|w| w.txt_proj.clone()),
                );
                pooled.matmul(&proj).relu()
            })
        });

        // Fusion head.
        ctx.phase_scope(Phase::ModalityFusion, || {
            ctx.scope("fusion_head", || {
                let fused = img_vec.concat(&txt_vec, 1);
                let head = ctx.parameter(
                    "head_w",
                    [2 * cfg.fusion_dim, cfg.answers],
                    elem,
                    w.map(|w| w.head_w.clone()),
                );
                fused.matmul(&head)
            })
        })
    }

    /// Functional inference: answer scores `[1, answers]`.
    pub fn answer(&self, question: &[i64], pixels: Tensor) -> Tensor {
        assert!(self.is_functional());
        let ctx = CaptureCtx::new("vqa");
        let out = self.capture_inference(&ctx, question, Some(pixels));
        out.mark_output();
        let cap = ctx.finish();
        genie_frontend::interp::run_single_output(&cap).expect("vqa executes")
    }
}

fn scale(t: Tensor, f: f32) -> Tensor {
    let data = t.data().iter().map(|&x| x * f).collect();
    Tensor::from_vec(t.dims().to_vec(), data)
}

#[cfg(test)]
mod tests {
    use super::*;
    use genie_frontend::patterns;

    #[test]
    fn functional_vqa_runs() {
        let m = Multimodal::new_functional(MultimodalConfig::tiny(), 4);
        let img = init::randn([1, 3, 16, 16], 9);
        let out = m.answer(&[1, 2, 3], img.clone());
        assert_eq!(out.dims(), &[1, 5]);
        let again = m.answer(&[1, 2, 3], img);
        assert_eq!(out, again);
    }

    #[test]
    fn modalities_fuse_in_spec_capture() {
        let m = Multimodal::new_spec(MultimodalConfig::tiny());
        let ctx = CaptureCtx::new("vqa.spec");
        let out = m.capture_inference(&ctx, &[0; 8], None);
        out.mark_output();
        let mut srg = ctx.finish().srg;
        let fired = patterns::run_all(&mut srg);
        assert!(
            fired.iter().any(|r| r.recognizer == "multimodal"),
            "fired: {fired:?}"
        );
        assert_eq!(srg.node(out.node).modality, Modality::Mixed);
    }
}
