//! The workload zoo: one fully-annotated spec SRG per Table-1 family.

use crate::cnn::SimpleCnn;
use crate::config::{CnnConfig, DlrmConfig, TransformerConfig};
use crate::dlrm::Dlrm;
use crate::multimodal::{Multimodal, MultimodalConfig};
use crate::transformer::{KvState, TransformerLm};
use genie_frontend::capture::CaptureCtx;
use genie_frontend::{annotate, patterns};
use genie_srg::Srg;

/// The four representative workload families of Table 1.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Workload {
    /// LLM serving (GPT-J decode step).
    LlmServing,
    /// Computer vision (ResNet-style inference).
    ComputerVision,
    /// Recommendation (DLRM inference).
    Recommendation,
    /// Multi-modal (VQA inference).
    Multimodal,
}

impl Workload {
    /// All families, in Table-1 order.
    pub const ALL: [Workload; 4] = [
        Workload::LlmServing,
        Workload::ComputerVision,
        Workload::Recommendation,
        Workload::Multimodal,
    ];

    /// Display name matching the paper's table.
    pub fn name(&self) -> &'static str {
        match self {
            Workload::LlmServing => "LLM Serving",
            Workload::ComputerVision => "Computer Vision",
            Workload::Recommendation => "Recommendation",
            Workload::Multimodal => "Multi-modal",
        }
    }

    /// The paper's "Key Optimization" column for this family.
    pub fn key_optimization(&self) -> &'static str {
        match self {
            Workload::LlmServing => "Phase-aware allocation",
            Workload::ComputerVision => "Pipeline parallelism",
            Workload::Recommendation => "Intelligent data tiering",
            Workload::Multimodal => "Modality-aware placement",
        }
    }

    /// Build the paper-scale spec SRG for this family, run the full
    /// annotation pipeline (recognizers + finalization), and return it.
    pub fn spec_graph(&self) -> Srg {
        let mut srg = match self {
            Workload::LlmServing => {
                let m = TransformerLm::new_spec(TransformerConfig::gptj_6b());
                let ctx = CaptureCtx::new("llm.decode_step");
                let cap = m.capture_decode_step(&ctx, 0, &KvState::default());
                cap.logits.sample().mark_output();
                for (k, v) in cap.k_caches.iter().zip(&cap.v_caches) {
                    k.mark_output();
                    v.mark_output();
                }
                ctx.finish().srg
            }
            Workload::ComputerVision => {
                let m = SimpleCnn::new_spec(CnnConfig::resnet_like());
                let ctx = CaptureCtx::new("cnn.inference");
                m.capture_inference(&ctx, 8, None).mark_output();
                ctx.finish().srg
            }
            Workload::Recommendation => {
                let cfg = DlrmConfig::production_like();
                let m = Dlrm::new_spec(cfg.clone());
                let ctx = CaptureCtx::new("dlrm.inference");
                let ids: Vec<Vec<i64>> = (0..cfg.tables)
                    .map(|_| vec![0; cfg.lookups_per_table])
                    .collect();
                m.capture_inference(&ctx, &ids, None).mark_output();
                ctx.finish().srg
            }
            Workload::Multimodal => {
                let m = Multimodal::new_spec(MultimodalConfig::vqa_like());
                let ctx = CaptureCtx::new("vqa.inference");
                m.capture_inference(&ctx, &[0; 16], None).mark_output();
                ctx.finish().srg
            }
        };
        patterns::run_all(&mut srg);
        annotate::finalize(&mut srg, 1e-3);
        srg
    }
}

/// The functional transformer zoo: every numerically-executable LM
/// preset, with a fixed weight seed per entry. Differential suites (the
/// serving loop vs the sequential `generate` oracle, wavefront vs
/// sequential interpretation) sweep all of them.
pub fn functional_transformers() -> Vec<(&'static str, TransformerLm)> {
    vec![
        (
            "tiny",
            TransformerLm::new_functional(TransformerConfig::tiny(), 42),
        ),
        (
            "tiny-wide",
            TransformerLm::new_functional(TransformerConfig::tiny_wide(), 43),
        ),
        (
            "tiny-deep",
            TransformerLm::new_functional(TransformerConfig::tiny_deep(), 44),
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use genie_srg::stats::GraphStats;

    #[test]
    fn all_spec_graphs_validate() {
        for w in Workload::ALL {
            let srg = w.spec_graph();
            let errors = genie_srg::validate::validate(&srg);
            assert!(errors.is_empty(), "{}: {errors:?}", w.name());
            assert!(srg.node_count() > 10, "{} too small", w.name());
        }
    }

    #[test]
    fn table1_characterization_is_recovered_from_graphs() {
        // The Table-1 "Computation Pattern" and "Memory Access" columns
        // must be derivable purely from the captured SRGs.
        let expectations = [
            (
                Workload::LlmServing,
                "sequential, phased (prefill/decode)",
                "streaming KV cache",
            ),
            (
                Workload::ComputerVision,
                "layer-parallel, regular",
                "predictable feature maps",
            ),
            (
                Workload::Recommendation,
                "sparse + dense mix",
                "hot/cold embeddings",
            ),
            (
                Workload::Multimodal,
                "cross-modal fusion",
                "heterogeneous patterns",
            ),
        ];
        for (w, pattern, memory) in expectations {
            let srg = w.spec_graph();
            let stats = GraphStats::of(&srg).unwrap();
            assert_eq!(stats.computation_pattern(), pattern, "{}", w.name());
            assert_eq!(stats.memory_access_profile(), memory, "{}", w.name());
        }
    }

    #[test]
    fn functional_zoo_generates_deterministically() {
        for (name, m) in functional_transformers() {
            assert!(m.is_functional(), "{name} must carry weights");
            let a = m.generate(&[1, 2, 3], 4);
            let b = m.generate(&[1, 2, 3], 4);
            assert_eq!(a, b, "{name}: generation must be deterministic");
            assert_eq!(a.len(), 4);
            let vocab = m.config.vocab as i64;
            assert!(a.iter().all(|&t| (0..vocab).contains(&t)), "{name}: {a:?}");
        }
    }

    #[test]
    fn llm_graph_exposes_kv_and_weights() {
        let srg = Workload::LlmServing.spec_graph();
        let stats = GraphStats::of(&srg).unwrap();
        assert!(stats.kv_appends >= 56, "2 per layer: {}", stats.kv_appends);
        // ~12 GB of weights visible in the graph.
        assert!(stats.weight_bytes > 11e9 && stats.weight_bytes < 13e9);
    }
}
