//! # genie-models — the workload zoo
//!
//! Concrete models for each workload family the paper studies (Table 1):
//!
//! - [`transformer::TransformerLm`] — decoder-only LM with KV caching.
//!   The GPT-J-6B preset ([`config::TransformerConfig::gptj_6b`]) drives
//!   the §4 evaluation; tiny presets execute numerically for correctness
//!   tests (including the incremental-decode ≡ full-forward equivalence
//!   that underpins every KV-cache optimization).
//! - [`cnn::SimpleCnn`] — ResNet-style vision model whose conv stages the
//!   scheduler pipelines.
//! - [`dlrm::Dlrm`] — recommendation model mixing sparse embedding bags
//!   with dense MLPs.
//! - [`multimodal::Multimodal`] — VQA-style fusion of a vision tower and a
//!   text tower.
//!
//! Every model captures through `genie-frontend` in two regimes: with
//! payloads (functional, tiny) or spec-only (simulation, paper scale).
//! [`zoo::Workload`] packages the paper-scale spec graph of each family
//! with the full annotation pipeline applied.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod cnn;
pub mod config;
pub mod dlrm;
pub mod multimodal;
pub mod sharded;
pub mod transformer;
pub mod zoo;

pub use cnn::SimpleCnn;
pub use config::{CnnConfig, DlrmConfig, TransformerConfig};
pub use dlrm::Dlrm;
pub use multimodal::{Multimodal, MultimodalConfig};
pub use sharded::{ShardedLmCapture, ShardedTransformerLm};
pub use transformer::{KvState, LmCapture, TransformerLm};
pub use zoo::{functional_transformers, Workload};
