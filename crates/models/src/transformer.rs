//! Decoder-only transformer LM built on the Genie frontend.
//!
//! One implementation serves both planes: with materialized weights
//! (functional, tiny configs) captures carry payloads and can be executed
//! numerically; without (simulation, GPT-J scale) the same code emits
//! spec-only SRGs whose shapes and costs drive the performance plane.

use crate::config::TransformerConfig;
use genie_frontend::capture::{CaptureCtx, LazyTensor};
use genie_frontend::value::Value;
use genie_srg::{ElemType, Phase};
use genie_tensor::{init, Tensor};
use std::collections::HashMap;

/// Per-layer weight payloads (functional plane only).
#[derive(Clone, Debug)]
pub(crate) struct LayerWeights {
    pub(crate) wq: Tensor,
    pub(crate) wk: Tensor,
    pub(crate) wv: Tensor,
    pub(crate) wo: Tensor,
    pub(crate) w1: Tensor,
    pub(crate) w2: Tensor,
    pub(crate) ln_g: Tensor,
    pub(crate) ln_b: Tensor,
}

/// A transformer LM. `weights` is `Some` for functional configs.
#[derive(Clone, Debug)]
pub struct TransformerLm {
    /// Architecture.
    pub config: TransformerConfig,
    weights: Option<ModelWeights>,
}

#[derive(Clone, Debug)]
pub(crate) struct ModelWeights {
    pub(crate) wte: Tensor,
    pub(crate) layers: Vec<LayerWeights>,
    pub(crate) lnf_g: Tensor,
    pub(crate) lnf_b: Tensor,
    pub(crate) lm_head: Tensor,
}

/// The KV state carried between decode steps: per-layer K and V tensors.
#[derive(Clone, Debug, Default)]
pub struct KvState {
    /// K caches per layer, each `[t, d_model]`.
    pub k: Vec<Tensor>,
    /// V caches per layer, each `[t, d_model]`.
    pub v: Vec<Tensor>,
}

impl KvState {
    /// Cached sequence length.
    pub fn len(&self) -> usize {
        self.k.first().map_or(0, |t| t.dims()[0])
    }

    /// True when no tokens are cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total bytes held (f32 functional representation).
    pub fn size_bytes(&self) -> usize {
        self.k
            .iter()
            .chain(self.v.iter())
            .map(|t| t.size_bytes())
            .sum()
    }
}

/// Result of capturing one LM graph: handles to the logits and the grown
/// caches so callers can mark outputs / carry state.
pub struct LmCapture {
    /// Logits for the processed positions, `[t, vocab]`.
    pub logits: LazyTensor,
    /// Grown K caches per layer.
    pub k_caches: Vec<LazyTensor>,
    /// Grown V caches per layer.
    pub v_caches: Vec<LazyTensor>,
}

impl TransformerLm {
    /// Functional model with seeded random weights. Intended for tiny
    /// configs; asserts the weights stay under 64 MB.
    pub fn new_functional(config: TransformerConfig, seed: u64) -> Self {
        assert!(
            config.weight_bytes() < 64 << 20,
            "functional models must be small; use spec captures for {} GB",
            config.weight_bytes() >> 30
        );
        assert_eq!(config.elem, ElemType::F32, "functional plane is f32");
        let d = config.d_model;
        let ffn = d * config.ffn_mult;
        let mut s = seed;
        let mut next = || {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            s
        };
        let scale = |t: Tensor, f: f32| {
            let data = t.data().iter().map(|&x| x * f).collect();
            Tensor::from_vec(t.dims().to_vec(), data)
        };
        let layers = (0..config.layers)
            .map(|_| LayerWeights {
                wq: scale(init::randn([d, d], next()), 1.0 / (d as f32).sqrt()),
                wk: scale(init::randn([d, d], next()), 1.0 / (d as f32).sqrt()),
                wv: scale(init::randn([d, d], next()), 1.0 / (d as f32).sqrt()),
                wo: scale(init::randn([d, d], next()), 1.0 / (d as f32).sqrt()),
                w1: scale(init::randn([d, ffn], next()), 1.0 / (d as f32).sqrt()),
                w2: scale(init::randn([ffn, d], next()), 1.0 / (ffn as f32).sqrt()),
                ln_g: Tensor::ones([d]),
                ln_b: Tensor::zeros([d]),
            })
            .collect();
        let weights = ModelWeights {
            wte: scale(init::randn([config.vocab, d], next()), 0.5),
            layers,
            lnf_g: Tensor::ones([d]),
            lnf_b: Tensor::zeros([d]),
            lm_head: scale(
                init::randn([d, config.vocab], next()),
                1.0 / (d as f32).sqrt(),
            ),
        };
        TransformerLm {
            config,
            weights: Some(weights),
        }
    }

    /// Spec-only model (no payloads) at any scale — used for the
    /// simulation plane's GPT-J captures.
    pub fn new_spec(config: TransformerConfig) -> Self {
        TransformerLm {
            config,
            weights: None,
        }
    }

    /// Whether this model carries real weights.
    pub fn is_functional(&self) -> bool {
        self.weights.is_some()
    }

    /// Crate-internal weight access (the sharded wrapper narrows these).
    pub(crate) fn weights(&self) -> Option<&ModelWeights> {
        self.weights.as_ref()
    }

    /// Capture the prefill graph for a prompt. With payloads when
    /// functional (pass the real `prompt`), spec-only otherwise (only
    /// `prompt.len()` matters).
    pub fn capture_prefill(&self, ctx: &CaptureCtx, prompt: &[i64]) -> LmCapture {
        ctx.phase_scope(Phase::LlmPrefill, || {
            self.capture_forward(ctx, prompt, &KvState::default(), prompt.len())
        })
    }

    /// Capture one decode step given the carried KV state. `token` is the
    /// last sampled token.
    pub fn capture_decode_step(&self, ctx: &CaptureCtx, token: i64, kv: &KvState) -> LmCapture {
        ctx.phase_scope(Phase::LlmDecode, || {
            self.capture_forward(ctx, &[token], kv, 1)
        })
    }

    /// Shared forward capture: embeds `tokens`, runs all blocks appending
    /// to the provided caches, and projects logits.
    fn capture_forward(
        &self,
        ctx: &CaptureCtx,
        tokens: &[i64],
        kv: &KvState,
        t: usize,
    ) -> LmCapture {
        let cfg = &self.config;
        let d = cfg.d_model;
        let elem = cfg.elem;
        let w = self.weights.as_ref();

        let ids = if w.is_some() {
            ctx.input_ids("tokens", tokens)
        } else {
            ctx.input_ids_spec("tokens", t)
        };
        let wte = ctx.parameter("wte", [cfg.vocab, d], elem, w.map(|w| w.wte.clone()));
        let mut x = ctx.scope("embed", || wte.gather(&ids));

        let mut k_caches = Vec::with_capacity(cfg.layers);
        let mut v_caches = Vec::with_capacity(cfg.layers);

        for layer in 0..cfg.layers {
            let lw = w.map(|w| &w.layers[layer]);
            let cached = kv.k.get(layer).map_or(0, |c| c.dims()[0]);
            x = ctx.scope("h", || {
                ctx.scope(&layer.to_string(), || {
                    let ln_g = ctx.parameter("ln_g", [d], elem, lw.map(|l| l.ln_g.clone()));
                    let ln_b = ctx.parameter("ln_b", [d], elem, lw.map(|l| l.ln_b.clone()));
                    let normed = x.layer_norm(&ln_g, &ln_b, 1e-5);

                    let (attn_out, kc, vc) = ctx.scope("attn", || {
                        let wq = ctx.parameter("wq", [d, d], elem, lw.map(|l| l.wq.clone()));
                        let wk = ctx.parameter("wk", [d, d], elem, lw.map(|l| l.wk.clone()));
                        let wv = ctx.parameter("wv", [d, d], elem, lw.map(|l| l.wv.clone()));
                        let wo = ctx.parameter("wo", [d, d], elem, lw.map(|l| l.wo.clone()));
                        let q = normed.matmul(&wq);
                        let k_new = normed.matmul(&wk);
                        let v_new = normed.matmul(&wv);

                        // Carried cache enters as a stateful input.
                        let k_in = if cached > 0 {
                            ctx.input(
                                &format!("k_cache_{layer}"),
                                [cached, d],
                                elem,
                                kv.k.get(layer).cloned().filter(|_| w.is_some()),
                            )
                        } else {
                            ctx.empty_cache(&format!("k_cache_{layer}"), d, elem)
                        };
                        let v_in = if cached > 0 {
                            ctx.input(
                                &format!("v_cache_{layer}"),
                                [cached, d],
                                elem,
                                kv.v.get(layer).cloned().filter(|_| w.is_some()),
                            )
                        } else {
                            ctx.empty_cache(&format!("v_cache_{layer}"), d, elem)
                        };
                        let kc = k_in.kv_append(&k_new);
                        let vc = v_in.kv_append(&v_new);

                        let o = q.attention(&kc, &vc, self.config.heads, true);
                        (o.matmul(&wo), kc, vc)
                    });
                    let x1 = x.add(&attn_out);

                    let mlp_out = ctx.scope("mlp", || {
                        let ffn = d * cfg.ffn_mult;
                        let w1 = ctx.parameter("w1", [d, ffn], elem, lw.map(|l| l.w1.clone()));
                        let w2 = ctx.parameter("w2", [ffn, d], elem, lw.map(|l| l.w2.clone()));
                        x1.matmul(&w1).gelu().matmul(&w2)
                    });
                    k_caches.push(kc);
                    v_caches.push(vc);
                    x1.add(&mlp_out)
                })
            });
        }

        let logits = ctx.scope("lm_head", || {
            let lnf_g = ctx.parameter("lnf_g", [d], elem, w.map(|w| w.lnf_g.clone()));
            let lnf_b = ctx.parameter("lnf_b", [d], elem, w.map(|w| w.lnf_b.clone()));
            let head = ctx.parameter(
                "lm_head",
                [d, cfg.vocab],
                elem,
                w.map(|w| w.lm_head.clone()),
            );
            x.layer_norm(&lnf_g, &lnf_b, 1e-5).matmul(&head)
        });

        LmCapture {
            logits,
            k_caches,
            v_caches,
        }
    }

    /// Functional greedy generation: prefill the prompt, then decode
    /// `steps` tokens via per-step re-capture. Returns the generated
    /// tokens. This is the reference semantics every execution mode must
    /// reproduce.
    pub fn generate(&self, prompt: &[i64], steps: usize) -> Vec<i64> {
        assert!(self.is_functional(), "generate needs real weights");
        let mut tokens = Vec::with_capacity(steps);

        // Prefill.
        let ctx = CaptureCtx::new("prefill");
        let cap = self.capture_prefill(&ctx, prompt);
        let sampled = cap.logits.sample();
        sampled.mark_output();
        for (k, v) in cap.k_caches.iter().zip(&cap.v_caches) {
            k.mark_output();
            v.mark_output();
        }
        let captured = ctx.finish();
        let values = genie_frontend::interp::execute(&captured.srg, &captured.values)
            .expect("prefill executes");
        let mut token = take_token(&values, sampled.node);
        let mut kv = collect_kv(&values, &cap);
        tokens.push(token);

        // Decode loop (re-capture per step: data-dependent token feeds in).
        for step in 0..steps.saturating_sub(1) {
            let ctx = CaptureCtx::new(format!("decode.{step}"));
            let cap = self.capture_decode_step(&ctx, token, &kv);
            let sampled = cap.logits.sample();
            sampled.mark_output();
            let captured = ctx.finish();
            let values = genie_frontend::interp::execute(&captured.srg, &captured.values)
                .expect("decode executes");
            token = take_token(&values, sampled.node);
            kv = collect_kv(&values, &cap);
            tokens.push(token);
        }
        tokens
    }

    /// Functional full-sequence logits (no cache): processes the whole
    /// sequence in one capture and returns `[t, vocab]` logits. Used to
    /// cross-check the incremental path.
    pub fn full_logits(&self, sequence: &[i64]) -> Tensor {
        assert!(self.is_functional());
        let ctx = CaptureCtx::new("full");
        let cap = self.capture_prefill(&ctx, sequence);
        cap.logits.mark_output();
        let captured = ctx.finish();
        genie_frontend::interp::run_single_output(&captured).expect("full forward executes")
    }
}

pub(crate) fn take_token(
    values: &HashMap<genie_srg::NodeId, Value>,
    node: genie_srg::NodeId,
) -> i64 {
    values[&node].as_i("sampled token").data()[0]
}

pub(crate) fn collect_kv(values: &HashMap<genie_srg::NodeId, Value>, cap: &LmCapture) -> KvState {
    KvState {
        k: cap
            .k_caches
            .iter()
            .map(|lt| values[&lt.node].as_f("k cache").clone())
            .collect(),
        v: cap
            .v_caches
            .iter()
            .map(|lt| values[&lt.node].as_f("v cache").clone())
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use genie_frontend::patterns;
    use genie_srg::OpKind;

    fn tiny() -> TransformerLm {
        TransformerLm::new_functional(TransformerConfig::tiny(), 42)
    }

    #[test]
    fn generation_is_deterministic() {
        let m = tiny();
        let a = m.generate(&[1, 2, 3], 6);
        let b = m.generate(&[1, 2, 3], 6);
        assert_eq!(a, b);
        assert_eq!(a.len(), 6);
        assert!(a.iter().all(|&t| (0..32).contains(&t)));
    }

    #[test]
    fn incremental_decode_matches_full_forward() {
        // The KV-cache path must produce the same next-token as running
        // the whole sequence through the model — the correctness property
        // behind every KV-cache optimization in the paper.
        let m = tiny();
        let prompt = vec![5, 9, 2, 7];
        let generated = m.generate(&prompt, 3);

        // Re-derive each generated token from full-sequence logits.
        let mut seq = prompt.clone();
        for &tok in &generated {
            let logits = m.full_logits(&seq);
            let t = seq.len();
            let last = genie_tensor::ops::narrow(&logits, 0, t - 1, 1);
            let argmax = genie_tensor::ops::argmax_lastdim(&last).data()[0];
            assert_eq!(argmax, tok, "divergence at position {t}");
            seq.push(tok);
        }
    }

    #[test]
    fn spec_capture_matches_gptj_shape() {
        let m = TransformerLm::new_spec(TransformerConfig::gptj_6b());
        let ctx = CaptureCtx::new("gptj.prefill");
        let cap = m.capture_prefill(&ctx, &vec![0; 72]);
        cap.logits.mark_output();
        let captured = ctx.finish();
        // Spec captures carry no data beyond zero-byte cache seeds.
        assert!(
            captured.values.values().all(|v| v.size_bytes() == 0),
            "spec capture has no payloads"
        );
        assert_eq!(cap.logits.dims(), &[72, 50400]);
        // 28 layers with attention each.
        let attn = captured
            .srg
            .nodes()
            .filter(|n| n.op == OpKind::Attention)
            .count();
        assert_eq!(attn, 28);
        // Weight bytes visible from the graph ≈ config accounting.
        let graph_bytes = captured.srg.parameter_bytes();
        let cfg_bytes = m.config.weight_bytes() as f64;
        let ratio = graph_bytes / cfg_bytes;
        assert!((0.95..1.05).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn recognizers_classify_spec_decode() {
        let m = TransformerLm::new_spec(TransformerConfig::gptj_6b());
        let mut kv = KvState::default();
        // Fake a 72-token cache spec by capturing prefill first.
        let ctx = CaptureCtx::new("p");
        let cap = m.capture_prefill(&ctx, &vec![0; 72]);
        let _ = cap;
        // Decode step with a spec cache of length 72: use empty KvState
        // but spec capture path (cached=0 means empty caches; that still
        // recognizes as decode because query length is 1).
        kv.k.clear();
        let ctx = CaptureCtx::new("d");
        let cap = m.capture_decode_step(&ctx, 0, &kv);
        cap.logits.mark_output();
        let mut srg = ctx.finish().srg;
        // Clear phases to exercise the recognizer (capture already tags
        // via phase_scope).
        for node in srg.nodes_mut() {
            node.phase = genie_srg::Phase::Unknown;
        }
        let fired = patterns::run_all(&mut srg);
        assert!(fired.iter().any(|r| r.recognizer == "llm"));
        assert!(srg
            .nodes()
            .filter(|n| n.op == OpKind::Attention)
            .all(|n| n.phase == Phase::LlmDecode));
    }

    #[test]
    fn gptj_layers_detected_as_repeated_blocks() {
        // The FX-style structural pass must recover all 28 transformer
        // blocks from module paths alone.
        let m = TransformerLm::new_spec(TransformerConfig::gptj_6b());
        let ctx = CaptureCtx::new("p");
        let cap = m.capture_prefill(&ctx, &[0; 8]);
        cap.logits.mark_output();
        let srg = ctx.finish().srg;
        let blocks = genie_frontend::structure::repeated_blocks(&srg);
        let h = blocks.iter().find(|b| b.prefix == "h").expect("h family");
        assert_eq!(h.instances.len(), 28);
        // Every instance carries the same member count (uniform layers).
        let sizes: std::collections::BTreeSet<usize> = h.members.iter().map(|m| m.len()).collect();
        assert_eq!(sizes.len(), 1);
    }

    #[test]
    fn kv_state_accounting() {
        let m = tiny();
        let prompt = vec![1, 2, 3, 4, 5];
        let ctx = CaptureCtx::new("p");
        let cap = m.capture_prefill(&ctx, &prompt);
        for (k, v) in cap.k_caches.iter().zip(&cap.v_caches) {
            k.mark_output();
            v.mark_output();
        }
        cap.logits.sample().mark_output();
        let captured = ctx.finish();
        let values = genie_frontend::interp::execute(&captured.srg, &captured.values).unwrap();
        let kv = collect_kv(&values, &cap);
        assert_eq!(kv.len(), 5);
        assert_eq!(kv.k.len(), 2);
        // 2 layers × (K+V) × 5 tokens × 16 dims × 4 bytes
        assert_eq!(kv.size_bytes(), 2 * 2 * 5 * 16 * 4);
    }
}
