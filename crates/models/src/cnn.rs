//! ResNet-style CNN feature extractor + classifier.

use crate::config::CnnConfig;
use genie_frontend::capture::{CaptureCtx, LazyTensor};
use genie_srg::{ElemType, Modality};
use genie_tensor::{init, Tensor};

/// A simple CNN: `stages` conv→relu→(pool every other stage) blocks, then
/// global average pooling and a linear classifier. Channel width doubles
/// every two stages.
#[derive(Clone, Debug)]
pub struct SimpleCnn {
    /// Architecture.
    pub config: CnnConfig,
    weights: Option<Vec<StageWeights>>,
    classifier: Option<(Tensor, Tensor)>,
}

#[derive(Clone, Debug)]
struct StageWeights {
    w: Tensor,
    b: Tensor,
}

impl SimpleCnn {
    /// Channel count of stage `i`.
    fn channels(&self, i: usize) -> usize {
        self.config.base_channels << (i / 2)
    }

    fn in_channels(&self, i: usize) -> usize {
        if i == 0 {
            3
        } else {
            self.channels(i - 1)
        }
    }

    /// Functional model with seeded weights (tiny configs only).
    pub fn new_functional(config: CnnConfig, seed: u64) -> Self {
        assert_eq!(config.elem, ElemType::F32, "functional plane is f32");
        let mut model = SimpleCnn {
            config,
            weights: None,
            classifier: None,
        };
        let mut s = seed;
        let mut next = || {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            s
        };
        let weights = (0..model.config.stages)
            .map(|i| {
                let cout = model.channels(i);
                let cin = model.in_channels(i);
                StageWeights {
                    w: scale(
                        init::randn([cout, cin, 3, 3], next()),
                        1.0 / ((cin * 9) as f32).sqrt(),
                    ),
                    b: Tensor::zeros([cout]),
                }
            })
            .collect();
        let last = model.channels(model.config.stages - 1);
        model.classifier = Some((
            scale(
                init::randn([last, model.config.classes], next()),
                1.0 / (last as f32).sqrt(),
            ),
            Tensor::zeros([model.config.classes]),
        ));
        model.weights = Some(weights);
        model
    }

    /// Spec-only model at any scale.
    pub fn new_spec(config: CnnConfig) -> Self {
        SimpleCnn {
            config,
            weights: None,
            classifier: None,
        }
    }

    /// Whether this model carries real weights.
    pub fn is_functional(&self) -> bool {
        self.weights.is_some()
    }

    /// Capture the inference graph for a batch of `n` images. Pass the
    /// real pixels for functional runs, `None` for spec captures.
    pub fn capture_inference(
        &self,
        ctx: &CaptureCtx,
        n: usize,
        pixels: Option<Tensor>,
    ) -> LazyTensor {
        let cfg = &self.config;
        let img = cfg.image_size;
        ctx.modality_scope(Modality::Vision, || {
            let mut x = ctx.input("images", [n, 3, img, img], cfg.elem, pixels);
            for i in 0..cfg.stages {
                let cout = self.channels(i);
                let cin = self.in_channels(i);
                x = ctx.scope("stage", || {
                    ctx.scope(&i.to_string(), || {
                        let w = ctx.parameter(
                            "w",
                            [cout, cin, 3, 3],
                            cfg.elem,
                            self.weights.as_ref().map(|ws| ws[i].w.clone()),
                        );
                        let b = ctx.parameter(
                            "b",
                            [cout],
                            cfg.elem,
                            self.weights.as_ref().map(|ws| ws[i].b.clone()),
                        );
                        let mut y = x.conv2d(&w, &b, 1, 1).relu();
                        // Downsample every other stage while the map is
                        // large enough.
                        if i % 2 == 1 && y.dims()[2] >= 4 {
                            y = y.pool2d(2, 2, false);
                        }
                        y
                    })
                });
            }
            ctx.scope("classifier", || {
                let last = self.channels(cfg.stages - 1);
                let w = ctx.parameter(
                    "fc_w",
                    [last, cfg.classes],
                    cfg.elem,
                    self.classifier.as_ref().map(|(w, _)| w.clone()),
                );
                let b = ctx.parameter(
                    "fc_b",
                    [cfg.classes],
                    cfg.elem,
                    self.classifier.as_ref().map(|(_, b)| b.clone()),
                );
                x.global_avg_pool().matmul(&w).add_bias(&b)
            })
        })
    }

    /// Functional inference: returns `[n, classes]` scores.
    pub fn infer(&self, pixels: Tensor) -> Tensor {
        assert!(self.is_functional());
        let n = pixels.dims()[0];
        let ctx = CaptureCtx::new("cnn.infer");
        let out = self.capture_inference(&ctx, n, Some(pixels));
        out.mark_output();
        let cap = ctx.finish();
        genie_frontend::interp::run_single_output(&cap).expect("cnn executes")
    }
}

fn scale(t: Tensor, f: f32) -> Tensor {
    let data = t.data().iter().map(|&x| x * f).collect();
    Tensor::from_vec(t.dims().to_vec(), data)
}

#[cfg(test)]
mod tests {
    use super::*;
    use genie_frontend::patterns;
    use genie_srg::{OpKind, Phase};

    #[test]
    fn functional_inference_shapes_and_determinism() {
        let m = SimpleCnn::new_functional(CnnConfig::tiny(), 7);
        let img = init::randn([2, 3, 16, 16], 1);
        let a = m.infer(img.clone());
        let b = m.infer(img);
        assert_eq!(a.dims(), &[2, 10]);
        assert_eq!(a, b);
    }

    #[test]
    fn spec_capture_is_recognized_as_vision_pipeline() {
        let m = SimpleCnn::new_spec(CnnConfig::resnet_like());
        let ctx = CaptureCtx::new("resnet");
        let out = m.capture_inference(&ctx, 1, None);
        out.mark_output();
        let mut srg = ctx.finish().srg;
        // Strip modality to prove the recognizer rediscovers it.
        for node in srg.nodes_mut() {
            node.modality = genie_srg::Modality::Unknown;
        }
        let fired = patterns::run_all(&mut srg);
        assert!(fired.iter().any(|r| r.recognizer == "vision"));
        let convs = srg.nodes().filter(|n| n.op == OpKind::Conv2d).count();
        assert_eq!(convs, 8);
        assert!(srg
            .nodes()
            .filter(|n| n.op == OpKind::Conv2d)
            .all(|n| n.phase == Phase::VisionEncode));
        // Pipeline stages annotated 0..=7.
        let stages: std::collections::BTreeSet<_> = srg
            .nodes()
            .filter_map(|n| n.attrs.get("pipeline_stage").cloned())
            .collect();
        assert_eq!(stages.len(), 8);
    }

    #[test]
    fn different_images_give_different_scores() {
        let m = SimpleCnn::new_functional(CnnConfig::tiny(), 7);
        let a = m.infer(init::randn([1, 3, 16, 16], 10));
        let b = m.infer(init::randn([1, 3, 16, 16], 11));
        assert!(a.max_abs_diff(&b) > 1e-6);
    }
}
