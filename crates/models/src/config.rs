//! Model configurations.
//!
//! Two regimes share each config type: *simulation-scale* presets matching
//! the paper's workloads (GPT-J-6B with ~12 GB of fp16 weights) whose
//! captures carry no payloads, and *functional-scale* presets small enough
//! to execute with real arithmetic in tests.

use genie_srg::ElemType;
use serde::{Deserialize, Serialize};

/// Decoder-only transformer LM configuration.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct TransformerConfig {
    /// Number of transformer blocks.
    pub layers: usize,
    /// Model (residual stream) width.
    pub d_model: usize,
    /// Attention heads.
    pub heads: usize,
    /// Vocabulary size.
    pub vocab: usize,
    /// FFN inner width as a multiple of `d_model`.
    pub ffn_mult: usize,
    /// Weight / activation element type (sets traffic volumes).
    pub elem: ElemType,
}

impl TransformerConfig {
    /// GPT-J-6B: 28 layers, d_model 4096, 16 heads, vocab 50400, fp16 —
    /// the paper's evaluation model (~12.1 GB of weights).
    pub fn gptj_6b() -> Self {
        TransformerConfig {
            layers: 28,
            d_model: 4096,
            heads: 16,
            vocab: 50400,
            ffn_mult: 4,
            elem: ElemType::F16,
        }
    }

    /// A tiny functional config for numeric tests.
    pub fn tiny() -> Self {
        TransformerConfig {
            layers: 2,
            d_model: 16,
            heads: 2,
            vocab: 32,
            ffn_mult: 2,
            elem: ElemType::F32,
        }
    }

    /// A shallow-but-wide functional variant: exercises kernels whose
    /// rows are longer than [`tiny`](Self::tiny)'s.
    pub fn tiny_wide() -> Self {
        TransformerConfig {
            layers: 1,
            d_model: 24,
            heads: 3,
            vocab: 48,
            ffn_mult: 3,
            elem: ElemType::F32,
        }
    }

    /// A deeper functional variant: more KV layers to carry per decode
    /// step, a smaller residual stream.
    pub fn tiny_deep() -> Self {
        TransformerConfig {
            layers: 3,
            d_model: 12,
            heads: 2,
            vocab: 24,
            ffn_mult: 2,
            elem: ElemType::F32,
        }
    }

    /// Parameters per layer: 4 attention projections (d²) + 2 FFN mats
    /// (d · ffn · 2) + 2 layer-norm vectors (negligible but counted).
    pub fn params_per_layer(&self) -> u64 {
        let d = self.d_model as u64;
        let ffn = d * self.ffn_mult as u64;
        4 * d * d + 2 * d * ffn + 4 * d
    }

    /// Total parameter count including embeddings, final norm, and LM
    /// head.
    pub fn total_params(&self) -> u64 {
        let d = self.d_model as u64;
        let v = self.vocab as u64;
        self.layers as u64 * self.params_per_layer() + 2 * v * d + 2 * d
    }

    /// Total weight bytes at the configured precision.
    pub fn weight_bytes(&self) -> u64 {
        self.total_params() * self.elem.size_bytes() as u64
    }

    /// KV-cache bytes added per token: K and V of `d_model` per layer.
    pub fn kv_bytes_per_token(&self) -> u64 {
        2 * self.layers as u64 * self.d_model as u64 * self.elem.size_bytes() as u64
    }

    /// Approximate FLOPs to process one token (the standard 2·params
    /// estimate for a decoder-only LM).
    pub fn flops_per_token(&self) -> f64 {
        2.0 * self.total_params() as f64
    }

    /// Bytes of logits returned for one position.
    pub fn logits_bytes(&self) -> u64 {
        self.vocab as u64 * 4 // logits materialize in f32
    }
}

/// Simple CNN (ResNet-style feature extractor) configuration.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct CnnConfig {
    /// Convolutional stages.
    pub stages: usize,
    /// Channels per stage (doubling handled by the model builder).
    pub base_channels: usize,
    /// Input image side (square, NCHW with 3 input channels).
    pub image_size: usize,
    /// Classifier classes.
    pub classes: usize,
    /// Element type.
    pub elem: ElemType,
}

impl CnnConfig {
    /// ResNet-50-ish scale for simulation.
    pub fn resnet_like() -> Self {
        CnnConfig {
            stages: 8,
            base_channels: 64,
            image_size: 224,
            classes: 1000,
            elem: ElemType::F16,
        }
    }

    /// Tiny functional config.
    pub fn tiny() -> Self {
        CnnConfig {
            stages: 3,
            base_channels: 4,
            image_size: 16,
            classes: 10,
            elem: ElemType::F32,
        }
    }
}

/// DLRM-style recommender configuration.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct DlrmConfig {
    /// Number of sparse embedding tables.
    pub tables: usize,
    /// Rows per table.
    pub rows_per_table: usize,
    /// Embedding dimension.
    pub embedding_dim: usize,
    /// Dense-feature width.
    pub dense_features: usize,
    /// Hidden width of the interaction MLP.
    pub mlp_hidden: usize,
    /// Lookups per table per request (multi-hot).
    pub lookups_per_table: usize,
    /// Element type.
    pub elem: ElemType,
}

impl DlrmConfig {
    /// Production-ish scale for simulation (tables in the tens of GB).
    pub fn production_like() -> Self {
        DlrmConfig {
            tables: 26,
            rows_per_table: 10_000_000,
            embedding_dim: 128,
            dense_features: 13,
            mlp_hidden: 1024,
            lookups_per_table: 32,
            elem: ElemType::F16,
        }
    }

    /// Tiny functional config.
    pub fn tiny() -> Self {
        DlrmConfig {
            tables: 3,
            rows_per_table: 50,
            embedding_dim: 8,
            dense_features: 4,
            mlp_hidden: 16,
            lookups_per_table: 4,
            elem: ElemType::F32,
        }
    }

    /// Total embedding-table bytes.
    pub fn table_bytes(&self) -> u64 {
        (self.tables * self.rows_per_table * self.embedding_dim) as u64
            * self.elem.size_bytes() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gptj_matches_published_size() {
        let c = TransformerConfig::gptj_6b();
        let params = c.total_params() as f64;
        // GPT-J is ~6.05B params; our block accounting should land within
        // a few percent.
        assert!(
            (5.7e9..6.4e9).contains(&params),
            "GPT-J params came out as {params:e}"
        );
        let gb = c.weight_bytes() as f64 / 1e9;
        assert!((11.0..13.0).contains(&gb), "weights {gb} GB");
    }

    #[test]
    fn gptj_kv_slice_matches_paper() {
        // The paper's ΔKV mode ships ~1.0 MB per token; GPT-J's fp16 KV is
        // 2·28·4096·2 = 458 KB, and their prototype stores f32 (~917 KB).
        let c = TransformerConfig::gptj_6b();
        let fp16 = c.kv_bytes_per_token();
        assert_eq!(fp16, 2 * 28 * 4096 * 2);
        let f32_equiv = fp16 * 2;
        assert!((900_000..1_050_000).contains(&(f32_equiv as usize)));
    }

    #[test]
    fn decode_is_memory_bound_on_a100() {
        // Operational intensity of a decode step = flops / weight bytes
        // read ≈ 1 FLOP/byte, far below the A100 ridge (~156).
        let c = TransformerConfig::gptj_6b();
        let intensity = c.flops_per_token() / c.weight_bytes() as f64;
        assert!(intensity < 2.0);
    }

    #[test]
    fn tiny_configs_are_small() {
        assert!(TransformerConfig::tiny().weight_bytes() < 1_000_000);
        assert!(DlrmConfig::tiny().table_bytes() < 100_000);
    }

    #[test]
    fn dlrm_tables_dwarf_mlp() {
        let c = DlrmConfig::production_like();
        assert!(c.table_bytes() > 50 * (1 << 30)); // tens of GB sparse
    }
}
