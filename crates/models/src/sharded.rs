//! Capture-time sharding of the transformer LM: tensor/pipeline
//! parallelism whose collectives are first-class SRG nodes.
//!
//! [`ShardedTransformerLm`] re-captures the same forward pass as
//! [`TransformerLm`] but splits the weight matrices across
//! tensor-parallel ranks and the layers across pipeline stages,
//! inserting the collectives the fabric must carry:
//!
//! * **column-split** projections (`wq`/`wk`/`wv`, `w1`, `lm_head`)
//!   compute disjoint output columns per rank and reassemble with a
//!   rank-ordered [`all_gather`] — bit-exact because each output column
//!   accumulates over the full inner dimension regardless of the split;
//! * **row-split** projections (`wo`, `w2`) chain per-rank
//!   [`matmul_acc`] partials in ascending rank order — bit-exact because
//!   `matmul_acc` *continues* the scalar fold over contiguous inner
//!   ranges rather than summing independent partials (f32 addition is
//!   not associative; an `all_reduce` of independent row-split partials
//!   would NOT reproduce the oracle's bits);
//! * **[`send_activation`]** hops carry the residual stream between
//!   pipeline stages and return chain results to a stage's rank 0.
//!
//! The w1→gelu→w2 pair uses the Megatron pattern: no collective between
//! them — each rank applies gelu to its own column slice and feeds its
//! row slice of w2 directly.
//!
//! Every captured node is attributed to a shard
//! (`shard = stage * tp + rank`); the map drives
//! [`genie_frontend::execute_sharded`], the sharded placement policy,
//! and the netsim pricing of cut-edge traffic.
//!
//! [`all_gather`]: genie_frontend::capture::CaptureCtx::all_gather
//! [`matmul_acc`]: genie_frontend::capture::LazyTensor::matmul_acc
//! [`send_activation`]: genie_frontend::capture::LazyTensor::send_activation

use crate::transformer::{collect_kv, take_token, KvState, LmCapture, TransformerLm};
use genie_frontend::capture::{CaptureCtx, LazyTensor};
use genie_frontend::shard::{execute_sharded, ShardExecReport};
use genie_srg::shard::ShardSpec;
use genie_srg::{NodeId, Phase};
use genie_tensor::{ops, Tensor};
use std::cell::RefCell;
use std::collections::BTreeMap;

/// A transformer LM captured under a [`ShardSpec`]. Functionally
/// identical to the wrapped model — `generate_sharded` is pinned
/// bit-for-bit against [`TransformerLm::generate`] — but its captures
/// expose the multi-device structure to the scheduler and the fabric.
#[derive(Clone, Debug)]
pub struct ShardedTransformerLm {
    /// The underlying (unsharded) model.
    pub model: TransformerLm,
    /// How to shard it.
    pub spec: ShardSpec,
}

/// One sharded capture: the usual LM handles plus the shard assignment.
pub struct ShardedLmCapture {
    /// Logits / grown caches, as in the unsharded capture.
    pub cap: LmCapture,
    /// Shard id for every captured node.
    pub shard_of: BTreeMap<NodeId, u32>,
}

/// Region-based shard attribution: snapshot the node counter around a
/// closure and tag everything it created. Inner regions win (they tag
/// first; outer regions only fill the remainder).
struct Tagger<'a> {
    ctx: &'a CaptureCtx,
    map: RefCell<BTreeMap<NodeId, u32>>,
}

impl Tagger<'_> {
    fn on<R>(&self, shard: u32, f: impl FnOnce() -> R) -> R {
        let before = self.ctx.node_count();
        let out = f();
        let after = self.ctx.node_count();
        let mut map = self.map.borrow_mut();
        for i in before..after {
            map.entry(NodeId::new(i as u32)).or_insert(shard);
        }
        out
    }
}

impl ShardedTransformerLm {
    /// Wrap `model` under `spec`. Panics if the spec is malformed or the
    /// model's dimensions don't divide across the tensor-parallel ranks.
    pub fn new(model: TransformerLm, spec: ShardSpec) -> Self {
        spec.validate().expect("invalid shard spec");
        let tp = spec.tensor_parallel as usize;
        let cfg = &model.config;
        assert_eq!(
            cfg.d_model % tp,
            0,
            "d_model {} must divide across {tp} tensor-parallel ranks",
            cfg.d_model
        );
        assert_eq!(
            (cfg.d_model * cfg.ffn_mult) % tp,
            0,
            "ffn dim must divide across {tp} tensor-parallel ranks"
        );
        assert!(
            spec.pipeline_stages as usize <= cfg.layers,
            "{} pipeline stages need at least that many layers (have {})",
            spec.pipeline_stages,
            cfg.layers
        );
        ShardedTransformerLm { model, spec }
    }

    /// Pipeline stage owning layer `layer` (contiguous blocks).
    pub fn stage_of_layer(&self, layer: usize) -> u32 {
        let stages = self.spec.pipeline_stages as usize;
        let layers = self.model.config.layers;
        ((layer * stages / layers).min(stages - 1)) as u32
    }

    /// Capture the sharded prefill graph for a prompt.
    pub fn capture_prefill(&self, ctx: &CaptureCtx, prompt: &[i64]) -> ShardedLmCapture {
        ctx.phase_scope(Phase::LlmPrefill, || {
            self.capture_forward(ctx, prompt, &KvState::default())
        })
    }

    /// Capture one sharded decode step given the carried KV state.
    pub fn capture_decode_step(
        &self,
        ctx: &CaptureCtx,
        token: i64,
        kv: &KvState,
    ) -> ShardedLmCapture {
        ctx.phase_scope(Phase::LlmDecode, || self.capture_forward(ctx, &[token], kv))
    }

    fn capture_forward(&self, ctx: &CaptureCtx, tokens: &[i64], kv: &KvState) -> ShardedLmCapture {
        let cfg = &self.model.config;
        let spec = self.spec;
        let tp = spec.tensor_parallel;
        let d = cfg.d_model;
        let ffn = d * cfg.ffn_mult;
        let elem = cfg.elem;
        let w = self.model.weights();
        let t = tokens.len();
        let sid = |stage: u32, rank: u32| spec.shard_id(stage, rank);
        let tag = Tagger {
            ctx,
            map: RefCell::new(BTreeMap::new()),
        };

        // Column slice `rank` of a weight payload (output-dim split).
        let col = |payload: Option<&Tensor>, dim: usize, width: usize, rank: u32| {
            payload.map(|p| ops::narrow(p, dim, rank as usize * width, width))
        };

        // Embedding lives on the first stage's rank 0.
        let mut x = tag.on(sid(0, 0), || {
            let ids = if w.is_some() {
                ctx.input_ids("tokens", tokens)
            } else {
                ctx.input_ids_spec("tokens", t)
            };
            let wte = ctx.parameter("wte", [cfg.vocab, d], elem, w.map(|w| w.wte.clone()));
            ctx.scope("embed", || wte.gather(&ids))
        });

        let mut k_caches = Vec::with_capacity(cfg.layers);
        let mut v_caches = Vec::with_capacity(cfg.layers);
        let mut stage = 0u32;

        for layer in 0..cfg.layers {
            let next_stage = self.stage_of_layer(layer);
            if next_stage != stage {
                // Pipeline hop: the residual stream crosses the fabric.
                x = tag.on(sid(next_stage, 0), || {
                    x.send_activation(sid(stage, 0), sid(next_stage, 0))
                });
                stage = next_stage;
            }
            let s = stage;
            let lw = w.map(|w| &w.layers[layer]);
            let cached = kv.k.get(layer).map_or(0, |c| c.dims()[0]);

            x = ctx.scope("h", || {
                ctx.scope(&layer.to_string(), || {
                    let normed = tag.on(sid(s, 0), || {
                        let ln_g = ctx.parameter("ln_g", [d], elem, lw.map(|l| l.ln_g.clone()));
                        let ln_b = ctx.parameter("ln_b", [d], elem, lw.map(|l| l.ln_b.clone()));
                        x.layer_norm(&ln_g, &ln_b, 1e-5)
                    });

                    let (attn_out, kc, vc) = ctx.scope("attn", || {
                        // Column-split q/k/v projections: each rank owns a
                        // d/tp-wide slice; a rank-ordered gather reassembles.
                        let project =
                            |name: &str, pick: fn(&crate::transformer::LayerWeights) -> &Tensor| {
                                if tp == 1 {
                                    let wp = ctx.parameter(
                                        name,
                                        [d, d],
                                        elem,
                                        lw.map(|l| pick(l).clone()),
                                    );
                                    tag.on(sid(s, 0), || normed.matmul(&wp))
                                } else {
                                    let width = d / tp as usize;
                                    let parts: Vec<LazyTensor> = (0..tp)
                                        .map(|r| {
                                            tag.on(sid(s, r), || {
                                                let wp = ctx.parameter(
                                                    &format!("{name}_r{r}"),
                                                    [d, width],
                                                    elem,
                                                    col(lw.map(pick), 1, width, r),
                                                );
                                                normed.matmul(&wp)
                                            })
                                        })
                                        .collect();
                                    let refs: Vec<&LazyTensor> = parts.iter().collect();
                                    tag.on(sid(s, 0), || ctx.all_gather(&refs, 1))
                                }
                            };
                        let q = project("wq", |l| &l.wq);
                        let k_new = project("wk", |l| &l.wk);
                        let v_new = project("wv", |l| &l.wv);

                        // KV cache and attention stay whole on rank 0: the
                        // cache is the serving plane's migration unit.
                        let (o, kc, vc) = tag.on(sid(s, 0), || {
                            let k_in = if cached > 0 {
                                ctx.input(
                                    &format!("k_cache_{layer}"),
                                    [cached, d],
                                    elem,
                                    kv.k.get(layer).cloned().filter(|_| w.is_some()),
                                )
                            } else {
                                ctx.empty_cache(&format!("k_cache_{layer}"), d, elem)
                            };
                            let v_in = if cached > 0 {
                                ctx.input(
                                    &format!("v_cache_{layer}"),
                                    [cached, d],
                                    elem,
                                    kv.v.get(layer).cloned().filter(|_| w.is_some()),
                                )
                            } else {
                                ctx.empty_cache(&format!("v_cache_{layer}"), d, elem)
                            };
                            let kc = k_in.kv_append(&k_new);
                            let vc = v_in.kv_append(&v_new);
                            let o = q.attention(&kc, &vc, cfg.heads, true);
                            (o, kc, vc)
                        });

                        // Row-split output projection: chained matmul_acc in
                        // rank order continues the exact scalar fold.
                        let out = self.row_split_chain(
                            ctx,
                            &tag,
                            &o,
                            "wo",
                            d,
                            d,
                            s,
                            |l: &crate::transformer::LayerWeights| &l.wo,
                            lw,
                        );
                        (out, kc, vc)
                    });
                    let x1 = tag.on(sid(s, 0), || x.add(&attn_out));

                    let mlp_out = ctx.scope("mlp", || {
                        if tp == 1 {
                            tag.on(sid(s, 0), || {
                                let w1 =
                                    ctx.parameter("w1", [d, ffn], elem, lw.map(|l| l.w1.clone()));
                                let w2 =
                                    ctx.parameter("w2", [ffn, d], elem, lw.map(|l| l.w2.clone()));
                                x1.matmul(&w1).gelu().matmul(&w2)
                            })
                        } else {
                            // Megatron pattern: column-split w1, per-rank gelu
                            // on own slice, row-split w2 — no collective in
                            // between; the matmul_acc chain is the reduction.
                            let width = ffn / tp as usize;
                            let mut acc: Option<LazyTensor> = None;
                            for r in 0..tp {
                                acc = Some(tag.on(sid(s, r), || {
                                    let w1r = ctx.parameter(
                                        &format!("w1_r{r}"),
                                        [d, width],
                                        elem,
                                        col(lw.map(|l| &l.w1), 1, width, r),
                                    );
                                    let w2r = ctx.parameter(
                                        &format!("w2_r{r}"),
                                        [width, d],
                                        elem,
                                        lw.map(|l| {
                                            ops::narrow(&l.w2, 0, r as usize * width, width)
                                        }),
                                    );
                                    let h = x1.matmul(&w1r).gelu();
                                    match &acc {
                                        None => h.matmul(&w2r),
                                        Some(a) => h.matmul_acc(&w2r, a),
                                    }
                                }));
                            }
                            let m = acc.expect("tp >= 1");
                            tag.on(sid(s, 0), || m.send_activation(sid(s, tp - 1), sid(s, 0)))
                        }
                    });
                    k_caches.push(kc);
                    v_caches.push(vc);
                    tag.on(sid(s, 0), || x1.add(&mlp_out))
                })
            });
        }

        // LM head on the last stage; vocab-split across ranks when it
        // divides evenly (column split, so gather is exact).
        let last = spec.pipeline_stages - 1;
        let logits = ctx.scope("lm_head", || {
            let normed = tag.on(sid(last, 0), || {
                let lnf_g = ctx.parameter("lnf_g", [d], elem, w.map(|w| w.lnf_g.clone()));
                let lnf_b = ctx.parameter("lnf_b", [d], elem, w.map(|w| w.lnf_b.clone()));
                x.layer_norm(&lnf_g, &lnf_b, 1e-5)
            });
            if tp > 1 && cfg.vocab.is_multiple_of(tp as usize) {
                let width = cfg.vocab / tp as usize;
                let parts: Vec<LazyTensor> = (0..tp)
                    .map(|r| {
                        tag.on(sid(last, r), || {
                            let hr = ctx.parameter(
                                &format!("lm_head_r{r}"),
                                [d, width],
                                elem,
                                col(w.map(|w| &w.lm_head), 1, width, r),
                            );
                            normed.matmul(&hr)
                        })
                    })
                    .collect();
                let refs: Vec<&LazyTensor> = parts.iter().collect();
                tag.on(sid(last, 0), || ctx.all_gather(&refs, 1))
            } else {
                tag.on(sid(last, 0), || {
                    let head = ctx.parameter(
                        "lm_head",
                        [d, cfg.vocab],
                        elem,
                        w.map(|w| w.lm_head.clone()),
                    );
                    normed.matmul(&head)
                })
            }
        });

        ShardedLmCapture {
            cap: LmCapture {
                logits,
                k_caches,
                v_caches,
            },
            shard_of: tag.map.into_inner(),
        }
    }

    /// Row-split `[rows, cols]` projection of `input` across the stage's
    /// ranks: rank r multiplies its slice of the input columns by its
    /// slice of the weight rows, chaining `matmul_acc` so the fold over
    /// the inner dimension is exactly the unsharded one; the final
    /// partial hops back to rank 0.
    #[allow(clippy::too_many_arguments)]
    fn row_split_chain(
        &self,
        ctx: &CaptureCtx,
        tag: &Tagger<'_>,
        input: &LazyTensor,
        name: &str,
        rows: usize,
        cols: usize,
        stage: u32,
        pick: fn(&crate::transformer::LayerWeights) -> &Tensor,
        lw: Option<&crate::transformer::LayerWeights>,
    ) -> LazyTensor {
        let tp = self.spec.tensor_parallel;
        let elem = self.model.config.elem;
        let sid = |rank: u32| self.spec.shard_id(stage, rank);
        if tp == 1 {
            let wp = ctx.parameter(name, [rows, cols], elem, lw.map(|l| pick(l).clone()));
            return tag.on(sid(0), || input.matmul(&wp));
        }
        let width = rows / tp as usize;
        let mut acc: Option<LazyTensor> = None;
        for r in 0..tp {
            acc = Some(tag.on(sid(r), || {
                let wr = ctx.parameter(
                    &format!("{name}_r{r}"),
                    [width, cols],
                    elem,
                    lw.map(|l| ops::narrow(pick(l), 0, r as usize * width, width)),
                );
                let ir = input.narrow(1, r as usize * width, width);
                match &acc {
                    None => ir.matmul(&wr),
                    Some(a) => ir.matmul_acc(&wr, a),
                }
            }));
        }
        let out = acc.expect("tp >= 1");
        tag.on(sid(0), || out.send_activation(sid(tp - 1), sid(0)))
    }

    /// Sharded greedy generation: same semantics as
    /// [`TransformerLm::generate`], executed through the sharded
    /// interpreter. Returns the tokens plus the aggregated execution
    /// report (per-shard work, collective counts, cross-shard bytes).
    pub fn generate_sharded(&self, prompt: &[i64], steps: usize) -> (Vec<i64>, ShardExecReport) {
        assert!(self.model.is_functional(), "generate needs real weights");
        let mut tokens = Vec::with_capacity(steps);
        let mut total = ShardExecReport::default();
        let merge = |r: ShardExecReport, total: &mut ShardExecReport| {
            for (shard, n) in r.nodes_per_shard {
                *total.nodes_per_shard.entry(shard).or_insert(0) += n;
            }
            for (hop, b) in r.traffic {
                *total.traffic.entry(hop).or_insert(0) += b;
            }
            total.collective_ops += r.collective_ops;
            total.collective_bytes += r.collective_bytes;
        };

        let ctx = CaptureCtx::new(format!("prefill.{}", self.spec.label()));
        let sc = self.capture_prefill(&ctx, prompt);
        let sampled = sc.cap.logits.sample();
        sampled.mark_output();
        for (k, v) in sc.cap.k_caches.iter().zip(&sc.cap.v_caches) {
            k.mark_output();
            v.mark_output();
        }
        let captured = ctx.finish();
        let (values, report) = execute_sharded(&captured.srg, &captured.values, &sc.shard_of)
            .expect("sharded prefill executes");
        merge(report, &mut total);
        let mut token = take_token(&values, sampled.node);
        let mut kv = collect_kv(&values, &sc.cap);
        tokens.push(token);

        for step in 0..steps.saturating_sub(1) {
            let ctx = CaptureCtx::new(format!("decode.{step}.{}", self.spec.label()));
            let sc = self.capture_decode_step(&ctx, token, &kv);
            let sampled = sc.cap.logits.sample();
            sampled.mark_output();
            for (k, v) in sc.cap.k_caches.iter().zip(&sc.cap.v_caches) {
                k.mark_output();
                v.mark_output();
            }
            let captured = ctx.finish();
            let (values, report) = execute_sharded(&captured.srg, &captured.values, &sc.shard_of)
                .expect("sharded decode executes");
            merge(report, &mut total);
            token = take_token(&values, sampled.node);
            kv = collect_kv(&values, &sc.cap);
            tokens.push(token);
        }
        (tokens, total)
    }

    /// Spec-only sharded capture of one decode step at `cached` context
    /// length — the simulation plane's unit of sharded work.
    pub fn capture_decode_spec(
        &self,
        cached: usize,
    ) -> (genie_frontend::CapturedGraph, BTreeMap<NodeId, u32>) {
        let kv = spec_kv(self.model.config.layers, cached, self.model.config.d_model);
        let ctx = CaptureCtx::new(format!("decode.{}", self.spec.label()));
        let sc = self.capture_decode_step(&ctx, 0, &kv);
        sc.cap.logits.mark_output();
        (ctx.finish(), sc.shard_of)
    }
}

/// Spec-plane KV state: shape-only caches of length `cached`.
fn spec_kv(layers: usize, cached: usize, d: usize) -> KvState {
    if cached == 0 {
        return KvState::default();
    }
    KvState {
        k: (0..layers).map(|_| Tensor::zeros([cached, d])).collect(),
        v: (0..layers).map(|_| Tensor::zeros([cached, d])).collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::TransformerConfig;
    use genie_srg::OpKind;

    fn tiny() -> TransformerLm {
        TransformerLm::new_functional(TransformerConfig::tiny(), 42)
    }

    #[test]
    fn tensor_parallel_generation_is_bit_exact() {
        let m = tiny();
        let oracle = m.generate(&[1, 2, 3], 5);
        let sharded = ShardedTransformerLm::new(m, ShardSpec::tensor(2));
        let (tokens, report) = sharded.generate_sharded(&[1, 2, 3], 5);
        assert_eq!(tokens, oracle, "tp2 must reproduce the oracle bits");
        assert!(report.collective_ops > 0, "tp2 must exercise collectives");
        assert_eq!(report.active_shards(), 2);
    }

    #[test]
    fn pipeline_generation_is_bit_exact() {
        let m = tiny();
        let oracle = m.generate(&[4, 7], 4);
        let sharded = ShardedTransformerLm::new(m, ShardSpec::pipeline(2));
        let (tokens, report) = sharded.generate_sharded(&[4, 7], 4);
        assert_eq!(tokens, oracle);
        assert!(report.cross_shard_bytes() > 0, "stages must exchange bytes");
    }

    #[test]
    fn sharded_capture_contains_collective_nodes() {
        let m = tiny();
        let sharded = ShardedTransformerLm::new(m, ShardSpec::new(2, 2));
        let (captured, shard_of) = sharded.capture_decode_spec(8);
        let gathers = captured
            .srg
            .nodes()
            .filter(|n| n.op == OpKind::AllGather)
            .count();
        let sends = captured
            .srg
            .nodes()
            .filter(|n| n.op == OpKind::SendActivation)
            .count();
        let accs = captured
            .srg
            .nodes()
            .filter(|n| n.op == OpKind::MatMulAcc)
            .count();
        assert!(gathers > 0, "column splits gather");
        assert!(sends > 0, "pipeline + chain returns send");
        assert!(accs > 0, "row splits chain matmul_acc");
        // All four shards own captured nodes.
        let shards: std::collections::BTreeSet<u32> = shard_of.values().copied().collect();
        assert_eq!(shards.len(), 4);
    }
}
