//! Cross-crate validation of the learned semantic lexicon (§5): train on
//! the workload zoo, classify configurations it never saw.

use genie_frontend::capture::CaptureCtx;
use genie_frontend::patterns::learned::LearnedLexicon;
use genie_models::{
    CnnConfig, Dlrm, DlrmConfig, KvState, SimpleCnn, TransformerConfig, TransformerLm,
};

fn llm_graph(cfg: TransformerConfig) -> genie_srg::Srg {
    let m = TransformerLm::new_spec(cfg);
    let ctx = CaptureCtx::new("llm");
    let cap = m.capture_decode_step(&ctx, 0, &KvState::default());
    cap.logits.sample().mark_output();
    ctx.finish().srg
}

fn cnn_graph(cfg: CnnConfig) -> genie_srg::Srg {
    let m = SimpleCnn::new_spec(cfg);
    let ctx = CaptureCtx::new("cnn");
    m.capture_inference(&ctx, 1, None).mark_output();
    ctx.finish().srg
}

fn dlrm_graph(cfg: DlrmConfig) -> genie_srg::Srg {
    let m = Dlrm::new_spec(cfg.clone());
    let ctx = CaptureCtx::new("dlrm");
    let ids: Vec<Vec<i64>> = (0..cfg.tables)
        .map(|_| vec![0; cfg.lookups_per_table])
        .collect();
    m.capture_inference(&ctx, &ids, None).mark_output();
    ctx.finish().srg
}

#[test]
fn lexicon_generalizes_across_model_scales() {
    let mut lex = LearnedLexicon::new();

    // Train on small/medium configs.
    lex.learn("llm", &llm_graph(TransformerConfig::tiny()));
    lex.learn(
        "llm",
        &llm_graph(TransformerConfig {
            layers: 8,
            d_model: 512,
            heads: 8,
            vocab: 32000,
            ffn_mult: 4,
            elem: genie_srg::ElemType::F16,
        }),
    );
    lex.learn("vision", &cnn_graph(CnnConfig::tiny()));
    lex.learn(
        "vision",
        &cnn_graph(CnnConfig {
            stages: 5,
            base_channels: 16,
            image_size: 64,
            classes: 100,
            elem: genie_srg::ElemType::F16,
        }),
    );
    lex.learn("recsys", &dlrm_graph(DlrmConfig::tiny()));

    // Classify configurations never seen during training.
    let gptj = llm_graph(TransformerConfig::gptj_6b());
    assert_eq!(lex.classify(&gptj).unwrap().0, "llm");

    let resnet = cnn_graph(CnnConfig::resnet_like());
    assert_eq!(lex.classify(&resnet).unwrap().0, "vision");

    let prod_dlrm = dlrm_graph(DlrmConfig::production_like());
    assert_eq!(lex.classify(&prod_dlrm).unwrap().0, "recsys");
}

#[test]
fn lexicon_survives_redaction() {
    // A fleet scheduler receiving *redacted* graphs can still classify
    // them: the features use no identifying strings.
    let mut lex = LearnedLexicon::new();
    lex.learn("llm", &llm_graph(TransformerConfig::tiny()));
    lex.learn("vision", &cnn_graph(CnnConfig::tiny()));

    let secret = llm_graph(TransformerConfig::gptj_6b());
    let redacted = genie_srg::redact::redact(&secret);
    assert_eq!(lex.classify(&redacted).unwrap().0, "llm");
    // And the features of original and redacted match exactly.
    let a = genie_frontend::patterns::learned::features(&secret);
    let b = genie_frontend::patterns::learned::features(&redacted);
    assert_eq!(a, b);
}

#[test]
fn redacted_fingerprints_still_enable_batching() {
    // Two tenants running the same architecture submit redacted graphs;
    // the structural fingerprint matches so the global scheduler can
    // batch them (§3.6 "How") without seeing the model.
    let a = llm_graph(TransformerConfig::gptj_6b());
    let b = llm_graph(TransformerConfig::gptj_6b());
    let fa = genie_srg::redact::fingerprint(&genie_srg::redact::redact(&a));
    let fb = genie_srg::redact::fingerprint(&genie_srg::redact::redact(&b));
    assert_eq!(fa, fb);

    let other = llm_graph(TransformerConfig::tiny());
    let fo = genie_srg::redact::fingerprint(&genie_srg::redact::redact(&other));
    assert_ne!(fa, fo);
}
