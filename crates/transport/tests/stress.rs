//! Stress and concurrency tests for the TCP transport.

use genie_transport::{Client, RequestBody, ResponseBody, Server, TensorPayload};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

fn echo_server(counter: Arc<AtomicU64>) -> Server {
    Server::spawn(move || {
        let counter = counter.clone();
        move |body: RequestBody| {
            counter.fetch_add(1, Ordering::Relaxed);
            match body {
                RequestBody::Upload { tensor, .. } => ResponseBody::Tensors(vec![tensor]),
                _ => ResponseBody::Pong,
            }
        }
    })
    .expect("server spawns")
}

#[test]
fn many_concurrent_clients_are_isolated() {
    let counter = Arc::new(AtomicU64::new(0));
    let server = echo_server(counter.clone());
    let addr = server.addr();

    let threads: Vec<_> = (0..8)
        .map(|t| {
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).expect("connect");
                for i in 0..50u64 {
                    // Distinct payload per (thread, iteration): the echo
                    // must come back exactly, proving no cross-talk.
                    let data = vec![t as f32 * 1000.0 + i as f32; 16];
                    let reply = client
                        .call(RequestBody::Upload {
                            key: i,
                            tensor: TensorPayload::from_f32(vec![16], &data),
                        })
                        .expect("call");
                    match reply {
                        ResponseBody::Tensors(ts) => {
                            assert_eq!(ts[0], TensorPayload::from_f32(vec![16], &data));
                        }
                        other => panic!("unexpected reply {other:?}"),
                    }
                }
                client.calls
            })
        })
        .collect();

    let total: u64 = threads.into_iter().map(|t| t.join().unwrap()).sum();
    assert_eq!(total, 8 * 50);
    assert_eq!(counter.load(Ordering::Relaxed), 8 * 50);
}

#[test]
fn large_payload_roundtrip() {
    let server = echo_server(Arc::new(AtomicU64::new(0)));
    let mut client = Client::connect(server.addr()).unwrap();
    // 8 MB tensor — tests multi-read framing paths.
    let data = vec![0.5f32; 2 << 20];
    let reply = client
        .call(RequestBody::Upload {
            key: 1,
            tensor: TensorPayload::from_f32(vec![2 << 20], &data),
        })
        .unwrap();
    match reply {
        ResponseBody::Tensors(ts) => assert_eq!(ts[0].size_bytes(), (2 << 20) * 4),
        other => panic!("unexpected {other:?}"),
    }
}

#[test]
fn sequential_reconnects() {
    let server = echo_server(Arc::new(AtomicU64::new(0)));
    for _ in 0..20 {
        let mut client = Client::connect(server.addr()).unwrap();
        assert_eq!(client.call(RequestBody::Ping).unwrap(), ResponseBody::Pong);
        // Client drops, closing the connection; server must keep serving.
    }
}

#[test]
fn server_survives_abrupt_disconnects() {
    let server = echo_server(Arc::new(AtomicU64::new(0)));
    for _ in 0..5 {
        // Connect and slam the socket shut without a clean request.
        let s = std::net::TcpStream::connect(server.addr()).unwrap();
        drop(s);
    }
    // A well-behaved client still works.
    let mut client = Client::connect(server.addr()).unwrap();
    assert_eq!(client.call(RequestBody::Ping).unwrap(), ResponseBody::Pong);
}

#[test]
fn garbage_frames_kill_only_that_connection() {
    use std::io::Write;
    let server = echo_server(Arc::new(AtomicU64::new(0)));
    // Send a valid frame header with garbage body.
    let mut s = std::net::TcpStream::connect(server.addr()).unwrap();
    s.write_all(&8u32.to_be_bytes()).unwrap();
    s.write_all(&[0xFF; 8]).unwrap();
    // The server drops this connection; others are unaffected.
    let mut client = Client::connect(server.addr()).unwrap();
    assert_eq!(client.call(RequestBody::Ping).unwrap(), ResponseBody::Pong);
}
