//! Property-based tests for the transport's retry layer: backoff
//! determinism, retryability classification, and the idempotence
//! contract between client retries and server-side deduplication.

use genie_transport::chaos::ChaosPolicy;
use genie_transport::retry::RetryPolicy;
use genie_transport::{next_request_id, Client, RequestBody, ResponseBody, Server, TransportError};
use proptest::prelude::*;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Backoff is a pure function of (policy, attempt, request id): two
    /// evaluations agree, waits never exceed cap + 50% jitter, and
    /// attempt 0 never waits.
    #[test]
    fn backoff_is_pure_and_bounded(
        seed in any::<u64>(),
        base_ms in 1u64..500,
        cap_ms in 1u64..5_000,
        attempt in 0u32..64,
        request_id in any::<u64>(),
    ) {
        let policy = RetryPolicy {
            max_attempts: 8,
            base_backoff: Duration::from_millis(base_ms),
            max_backoff: Duration::from_millis(cap_ms),
            deadline: Duration::from_secs(1),
            seed,
        };
        let a = policy.backoff(attempt, request_id);
        let b = policy.backoff(attempt, request_id);
        prop_assert_eq!(a, b, "backoff must be deterministic");
        if attempt == 0 {
            prop_assert_eq!(a, Duration::ZERO);
        } else {
            let ceiling = policy.max_backoff.max(policy.base_backoff);
            prop_assert!(a <= ceiling + ceiling / 2, "wait {a:?} above cap {ceiling:?}");
        }
    }

    /// The exponential part is monotone non-decreasing in the attempt
    /// number once jitter is stripped (lower bounds compare).
    #[test]
    fn backoff_lower_bound_is_monotone(
        base_ms in 1u64..200,
        cap_ms in 200u64..5_000,
    ) {
        let policy = RetryPolicy {
            base_backoff: Duration::from_millis(base_ms),
            max_backoff: Duration::from_millis(cap_ms),
            ..RetryPolicy::default()
        };
        let floor = |attempt: u32| {
            policy
                .base_backoff
                .saturating_mul(1u32 << (attempt - 1).min(16))
                .min(policy.max_backoff)
        };
        let mut prev = Duration::ZERO;
        for attempt in 1..20 {
            let f = floor(attempt);
            prop_assert!(f >= prev);
            prop_assert!(policy.backoff(attempt, 7) >= f, "jitter only adds");
            prev = f;
        }
    }

    /// Generated retry schedules with different request ids de-correlate
    /// (thundering-herd protection): some pair of ids must disagree.
    #[test]
    fn jitter_decorrelates_request_ids(seed in any::<u64>()) {
        let policy = RetryPolicy::default().with_seed(seed);
        let waits: Vec<Duration> = (0..16).map(|id| policy.backoff(3, id)).collect();
        let distinct: std::collections::BTreeSet<_> = waits.iter().collect();
        prop_assert!(distinct.len() > 1, "all 16 ids backed off identically");
    }

    /// Retryability is decided by error class alone.
    #[test]
    fn retryability_is_class_stable(msg in "[a-z]{1,16}") {
        prop_assert!(!RetryPolicy::is_retryable(&TransportError::Remote(msg.clone())));
        prop_assert!(!RetryPolicy::is_retryable(&TransportError::Codec(msg)));
        prop_assert!(RetryPolicy::is_retryable(&TransportError::ConnectionClosed));
        prop_assert!(RetryPolicy::is_retryable(&TransportError::Timeout {
            after: Duration::ZERO
        }));
    }
}

/// Duplicate deliveries of one request id reach the handler exactly once,
/// no matter how many times or over how many connections the id is
/// re-sent: the dedup cache answers the rest.
#[test]
fn duplicate_ids_coalesce_server_side() {
    let invocations = Arc::new(AtomicU64::new(0));
    let inv = invocations.clone();
    let mut server = Server::spawn(move || {
        let inv = inv.clone();
        move |_body: RequestBody| {
            let n = inv.fetch_add(1, Ordering::SeqCst) + 1;
            ResponseBody::Handle { key: n, epoch: 0 }
        }
    })
    .unwrap();

    let ids: Vec<u64> = (0..5).map(|_| next_request_id()).collect();
    let mut firsts = Vec::new();
    let mut c1 = Client::connect(server.addr()).unwrap();
    for &id in &ids {
        firsts.push(c1.call_with_id(id, RequestBody::Ping).unwrap());
    }
    // Replay every id three more times, alternating connections.
    for round in 0..3 {
        let mut c = Client::connect(server.addr()).unwrap();
        for (i, &id) in ids.iter().enumerate() {
            let client = if round % 2 == 0 { &mut c } else { &mut c1 };
            let reply = client.call_with_id(id, RequestBody::Ping).unwrap();
            assert_eq!(reply, firsts[i], "cached reply must be byte-identical");
        }
    }
    assert_eq!(
        invocations.load(Ordering::SeqCst),
        ids.len() as u64,
        "handler ran once per unique id"
    );
    server.shutdown();
}

/// A server that stalls every reply beyond the client's deadline yields
/// Timeout on a bare call and Exhausted under a retry policy — never a
/// hang (the test itself would time out) and never a panic.
#[test]
fn stalls_produce_typed_errors() {
    let mut server = Server::spawn_chaotic(
        || |_body: RequestBody| ResponseBody::Pong,
        ChaosPolicy {
            seed: 1,
            stall_rate: 1.0,
            drop_rate: 0.0,
            stall: Duration::from_millis(400),
        },
    )
    .unwrap();
    let deadline = Duration::from_millis(50);
    let mut client = Client::connect_with_deadline(server.addr(), Some(deadline)).unwrap();
    match client.call(RequestBody::Ping).unwrap_err() {
        TransportError::Timeout { after } => assert_eq!(after, deadline),
        other => panic!("expected Timeout, got {other}"),
    }
    let policy = RetryPolicy {
        max_attempts: 2,
        base_backoff: Duration::from_millis(1),
        max_backoff: Duration::from_millis(2),
        deadline,
        seed: 3,
    };
    match client.call_retry(RequestBody::Ping, &policy).unwrap_err() {
        TransportError::Exhausted { attempts, last } => {
            assert_eq!(attempts, 2);
            assert!(matches!(*last, TransportError::Timeout { .. }));
        }
        other => panic!("expected Exhausted, got {other}"),
    }
    server.shutdown();
}

/// Same chaos seed, same fault sequence: two fresh servers with the same
/// hostile policy perturb an identical call sequence identically.
#[test]
fn chaotic_outcomes_are_seed_deterministic() {
    let run = |seed: u64| {
        let mut server = Server::spawn_chaotic(
            || |_body: RequestBody| ResponseBody::Pong,
            ChaosPolicy {
                seed,
                stall_rate: 0.0, // stalls depend on wall-clock deadlines; drops are exact
                drop_rate: 0.4,
                stall: Duration::ZERO,
            },
        )
        .unwrap();
        let mut client =
            Client::connect_with_deadline(server.addr(), Some(Duration::from_secs(2))).unwrap();
        let outcomes: Vec<bool> = (0..12)
            .map(|_| {
                let r = client.call(RequestBody::Ping).is_ok();
                if !r {
                    // Dropped connection: reconnect for the next call.
                    let _ = client.reconnect();
                }
                r
            })
            .collect();
        server.shutdown();
        outcomes
    };
    assert_eq!(run(17), run(17), "same seed, same drop pattern");
}
