//! A threaded RPC server with graceful shutdown.
//!
//! The transport stays policy-free: a [`Handler`] implements the
//! application (Genie's remote executor lives in `genie-backend`). One
//! thread per connection with blocking sockets keeps the state machine
//! obvious — the event-driven complexity budget of this project is spent
//! in the simulator, not in socket plumbing.
//!
//! Two hardening features ride on the loop:
//!
//! - **Request deduplication** — responses are cached by request id in a
//!   bounded FIFO shared across connections. A retried request (same id,
//!   possibly a fresh connection) is answered from the cache without
//!   re-invoking the handler, making client retries idempotent even for
//!   state-mutating requests.
//! - **Chaos injection** — [`Server::spawn_chaotic`] wraps the reply path
//!   in a seeded [`ChaosState`](crate::chaos::ChaosState) that can stall
//!   or drop responses *after* the handler ran, exercising exactly the
//!   ambiguity retries must survive.

use crate::chaos::{ChaosAction, ChaosPolicy, ChaosState};
use crate::error::Result;
use crate::frame::{read_frame, write_frame};
use crate::message::{Request, RequestBody, Response, ResponseBody};
use parking_lot::Mutex;
use std::collections::{HashMap, VecDeque};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

/// Application logic plugged into the server. One handler instance exists
/// per connection; shared state goes behind the factory's captures.
pub trait Handler: Send + 'static {
    /// Handle one request body, returning the response body.
    fn handle(&mut self, body: RequestBody) -> ResponseBody;
}

impl<F> Handler for F
where
    F: FnMut(RequestBody) -> ResponseBody + Send + 'static,
{
    fn handle(&mut self, body: RequestBody) -> ResponseBody {
        self(body)
    }
}

/// How many encoded responses the dedup cache retains. Retries arrive
/// within a handful of calls of the original, so a small FIFO suffices.
const DEDUP_CAPACITY: usize = 1024;

/// Bounded FIFO of encoded responses keyed by request id, shared across
/// connections so a retry over a fresh socket still hits the cache.
#[derive(Debug, Default)]
struct DedupCache {
    by_id: HashMap<u64, Vec<u8>>,
    order: VecDeque<u64>,
}

impl DedupCache {
    fn get(&self, id: u64) -> Option<Vec<u8>> {
        self.by_id.get(&id).cloned()
    }

    fn insert(&mut self, id: u64, payload: Vec<u8>) {
        if self.by_id.insert(id, payload).is_none() {
            self.order.push_back(id);
            while self.order.len() > DEDUP_CAPACITY {
                if let Some(old) = self.order.pop_front() {
                    self.by_id.remove(&old);
                }
            }
        }
    }
}

/// A running server. Dropping it shuts it down.
pub struct Server {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
    conns: Arc<Mutex<Vec<TcpStream>>>,
}

impl Server {
    /// Bind to `127.0.0.1:0` and serve connections, building one handler
    /// per connection via `factory`.
    pub fn spawn<H, F>(factory: F) -> Result<Server>
    where
        H: Handler,
        F: Fn() -> H + Send + 'static,
    {
        Server::spawn_inner(factory, None)
    }

    /// [`spawn`](Self::spawn) with seeded fault injection on the reply
    /// path: responses may be stalled or dropped per `policy`, always
    /// after the handler ran and its response was cached for dedup.
    pub fn spawn_chaotic<H, F>(factory: F, policy: ChaosPolicy) -> Result<Server>
    where
        H: Handler,
        F: Fn() -> H + Send + 'static,
    {
        Server::spawn_inner(factory, Some(Arc::new(ChaosState::new(policy))))
    }

    fn spawn_inner<H, F>(factory: F, chaos: Option<Arc<ChaosState>>) -> Result<Server>
    where
        H: Handler,
        F: Fn() -> H + Send + 'static,
    {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = stop.clone();
        let conns: Arc<Mutex<Vec<TcpStream>>> = Arc::new(Mutex::new(Vec::new()));
        let conns2 = conns.clone();
        let dedup: Arc<Mutex<DedupCache>> = Arc::new(Mutex::new(DedupCache::default()));

        let accept_thread = std::thread::Builder::new()
            .name("genie-accept".into())
            .spawn(move || {
                let mut conn_threads = Vec::new();
                for stream in listener.incoming() {
                    if stop2.load(Ordering::SeqCst) {
                        break;
                    }
                    let Ok(stream) = stream else { continue };
                    // Keep a handle so shutdown can unblock the reader.
                    if let Ok(clone) = stream.try_clone() {
                        conns2.lock().push(clone);
                    }
                    let mut handler = factory();
                    let dedup = dedup.clone();
                    let chaos = chaos.clone();
                    let spawned =
                        std::thread::Builder::new()
                            .name("genie-conn".into())
                            .spawn(move || {
                                let _ = serve_connection(
                                    stream,
                                    &mut handler,
                                    &dedup,
                                    chaos.as_deref(),
                                );
                            });
                    match spawned {
                        Ok(t) => conn_threads.push(t),
                        // Thread exhaustion: drop this connection (the
                        // client observes ConnectionClosed) rather than
                        // tearing the whole server down.
                        Err(_) => continue,
                    }
                }
                for t in conn_threads {
                    let _ = t.join();
                }
            })?;

        Ok(Server {
            addr,
            stop,
            accept_thread: Some(accept_thread),
            conns,
        })
    }

    /// The bound address to connect clients to.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Request shutdown and wait for the accept loop to exit. Open
    /// connections are closed (clients observe `ConnectionClosed`); new
    /// connections are refused.
    pub fn shutdown(&mut self) {
        if self.stop.swap(true, Ordering::SeqCst) {
            return;
        }
        // Unblock accept() with a wake-up connection.
        let _ = TcpStream::connect(self.addr);
        // Unblock per-connection readers parked on live client sockets.
        for stream in self.conns.lock().drain(..) {
            let _ = stream.shutdown(std::net::Shutdown::Both);
        }
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn serve_connection(
    mut stream: TcpStream,
    handler: &mut dyn Handler,
    dedup: &Mutex<DedupCache>,
    chaos: Option<&ChaosState>,
) -> Result<()> {
    let telemetry = genie_telemetry::global();
    stream.set_nodelay(true)?;
    loop {
        let frame = match read_frame(&mut stream) {
            Ok(f) => f,
            Err(crate::error::TransportError::ConnectionClosed) => return Ok(()),
            Err(e) => {
                telemetry
                    .metrics
                    .counter("genie_transport_errors_total", &[("role", "server")])
                    .inc();
                return Err(e);
            }
        };
        telemetry
            .metrics
            .counter(
                "genie_transport_bytes_total",
                &[("role", "server"), ("dir", "rx")],
            )
            .add(frame.len() as u64 + 4);
        let request = Request::decode(frame)?;
        // A duplicate delivery of an already-answered request (client
        // retry after a lost response) is answered from the cache; the
        // handler must not run twice. The lookup is bound first so the
        // cache guard is released before the miss arm re-locks to
        // insert (a match scrutinee's temporaries live for the whole
        // match, which would self-deadlock).
        let cached = dedup.lock().get(request.id);
        let payload = match cached {
            Some(cached) => {
                telemetry
                    .metrics
                    .counter("genie_transport_dups_coalesced_total", &[])
                    .inc();
                cached
            }
            None => {
                let body = {
                    let mut span = telemetry.collector.span("transport.serve", "transport");
                    // Adopt the caller's causal context for the duration of
                    // the handler so spans and trace events emitted inside
                    // it carry the originating request id.
                    let _ctx = request.trace.map(genie_telemetry::causal::with_ctx);
                    if let Some(ctx) = request.trace {
                        span.annotate(|a| {
                            a.request = Some(ctx.request);
                            if ctx.parent_span != 0 {
                                a.cause = Some(ctx.parent_span);
                            }
                        });
                    }
                    handler.handle(request.body)
                };
                let response = Response {
                    id: request.id,
                    body,
                };
                let payload = response.encode()?.to_vec();
                dedup.lock().insert(request.id, payload.clone());
                payload
            }
        };
        // Chaos strikes after the handler ran and the response was
        // cached: the work is done, only the acknowledgement is at risk.
        if let Some(chaos) = chaos {
            match chaos.next_action() {
                ChaosAction::Deliver => {}
                ChaosAction::Stall => {
                    telemetry
                        .metrics
                        .counter("genie_chaos_injected_total", &[("kind", "stall")])
                        .inc();
                    std::thread::sleep(chaos.stall());
                }
                ChaosAction::Drop => {
                    telemetry
                        .metrics
                        .counter("genie_chaos_injected_total", &[("kind", "drop")])
                        .inc();
                    let _ = stream.shutdown(std::net::Shutdown::Both);
                    return Ok(());
                }
            }
        }
        telemetry
            .metrics
            .counter(
                "genie_transport_bytes_total",
                &[("role", "server"), ("dir", "tx")],
            )
            .add(payload.len() as u64 + 4);
        telemetry
            .metrics
            .counter("genie_transport_calls_total", &[("role", "server")])
            .inc();
        write_frame(&mut stream, &payload)?;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::Client;

    #[test]
    fn ping_pong_over_real_sockets() {
        let mut server = Server::spawn(|| {
            |body: RequestBody| match body {
                RequestBody::Ping => ResponseBody::Pong,
                _ => ResponseBody::Error("unsupported".into()),
            }
        })
        .unwrap();
        let mut client = Client::connect(server.addr()).unwrap();
        assert_eq!(client.call(RequestBody::Ping).unwrap(), ResponseBody::Pong);
        server.shutdown();
    }

    #[test]
    fn per_connection_handler_state() {
        // Each connection gets its own counter.
        let mut server = Server::spawn(|| {
            let mut count = 0u64;
            move |_body: RequestBody| {
                count += 1;
                ResponseBody::Handle {
                    key: count,
                    epoch: 0,
                }
            }
        })
        .unwrap();
        let mut c1 = Client::connect(server.addr()).unwrap();
        let mut c2 = Client::connect(server.addr()).unwrap();
        assert_eq!(
            c1.call(RequestBody::Ping).unwrap(),
            ResponseBody::Handle { key: 1, epoch: 0 }
        );
        assert_eq!(
            c1.call(RequestBody::Ping).unwrap(),
            ResponseBody::Handle { key: 2, epoch: 0 }
        );
        // Fresh connection, fresh counter.
        assert_eq!(
            c2.call(RequestBody::Ping).unwrap(),
            ResponseBody::Handle { key: 1, epoch: 0 }
        );
        server.shutdown();
    }

    #[test]
    fn shutdown_is_idempotent() {
        let mut server = Server::spawn(|| |_b: RequestBody| ResponseBody::Ok).unwrap();
        server.shutdown();
        server.shutdown();
    }

    #[test]
    fn duplicate_request_id_coalesced_across_connections() {
        use std::sync::atomic::AtomicU64;
        let invocations = Arc::new(AtomicU64::new(0));
        let inv2 = invocations.clone();
        let mut server = Server::spawn(move || {
            let inv = inv2.clone();
            move |_body: RequestBody| {
                let n = inv.fetch_add(1, Ordering::SeqCst) + 1;
                ResponseBody::Handle { key: n, epoch: 0 }
            }
        })
        .unwrap();
        let id = crate::client::next_request_id();
        let mut c1 = Client::connect(server.addr()).unwrap();
        let first = c1.call_with_id(id, RequestBody::Ping).unwrap();
        // Same id again — same connection and a fresh one: both must get
        // the cached response without the handler running again.
        assert_eq!(c1.call_with_id(id, RequestBody::Ping).unwrap(), first);
        let mut c2 = Client::connect(server.addr()).unwrap();
        assert_eq!(c2.call_with_id(id, RequestBody::Ping).unwrap(), first);
        assert_eq!(invocations.load(Ordering::SeqCst), 1);
        server.shutdown();
    }

    #[test]
    fn dedup_cache_is_bounded() {
        let mut cache = DedupCache::default();
        for id in 0..(DEDUP_CAPACITY as u64 + 10) {
            cache.insert(id, vec![0u8]);
        }
        assert_eq!(cache.by_id.len(), DEDUP_CAPACITY);
        assert!(cache.get(0).is_none(), "oldest entries evicted");
        assert!(cache.get(DEDUP_CAPACITY as u64 + 9).is_some());
    }

    #[test]
    fn chaotic_server_with_none_policy_behaves_normally() {
        let mut server =
            Server::spawn_chaotic(|| |_b: RequestBody| ResponseBody::Pong, ChaosPolicy::none())
                .unwrap();
        let mut client = Client::connect(server.addr()).unwrap();
        for _ in 0..10 {
            assert_eq!(client.call(RequestBody::Ping).unwrap(), ResponseBody::Pong);
        }
        server.shutdown();
    }

    #[test]
    fn trace_context_reaches_the_handler() {
        use genie_telemetry::causal::{self, TraceCtx};
        let seen: Arc<Mutex<Option<TraceCtx>>> = Arc::new(Mutex::new(None));
        let seen2 = seen.clone();
        let mut server = Server::spawn(move || {
            let seen = seen2.clone();
            move |_body: RequestBody| {
                *seen.lock() = causal::current();
                ResponseBody::Pong
            }
        })
        .unwrap();
        let mut client = Client::connect(server.addr()).unwrap();
        let ctx = TraceCtx {
            request: 77,
            parent_span: 3,
        };
        let _guard = causal::with_ctx(ctx);
        assert_eq!(client.call(RequestBody::Ping).unwrap(), ResponseBody::Pong);
        assert_eq!(*seen.lock(), Some(ctx));
        server.shutdown();
    }

    #[test]
    fn retries_survive_a_hostile_server() {
        use crate::retry::RetryPolicy;
        use std::time::Duration;
        // Drops ~25% of responses; the handler mutates state, so only
        // dedup keeps retries idempotent.
        let mut server = Server::spawn_chaotic(
            || {
                let mut count = 0u64;
                move |_body: RequestBody| {
                    count += 1;
                    std::hint::black_box(count);
                    ResponseBody::Ok
                }
            },
            ChaosPolicy::hostile(42, Duration::from_millis(1)),
        )
        .unwrap();
        let mut client =
            Client::connect_with_deadline(server.addr(), Some(Duration::from_millis(500))).unwrap();
        let policy = RetryPolicy {
            max_attempts: 8,
            ..RetryPolicy::fast()
        };
        let mut ok = 0;
        for _ in 0..20 {
            if client.call_retry(RequestBody::Ping, &policy).is_ok() {
                ok += 1;
            }
        }
        assert!(ok >= 18, "retries should mask most drops, got {ok}/20");
        server.shutdown();
    }
}
