//! A threaded RPC server with graceful shutdown.
//!
//! The transport stays policy-free: a [`Handler`] implements the
//! application (Genie's remote executor lives in `genie-backend`). One
//! thread per connection with blocking sockets keeps the state machine
//! obvious — the event-driven complexity budget of this project is spent
//! in the simulator, not in socket plumbing.

use crate::error::Result;
use crate::frame::{read_frame, write_frame};
use crate::message::{Request, RequestBody, Response, ResponseBody};
use parking_lot::Mutex;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

/// Application logic plugged into the server. One handler instance exists
/// per connection; shared state goes behind the factory's captures.
pub trait Handler: Send + 'static {
    /// Handle one request body, returning the response body.
    fn handle(&mut self, body: RequestBody) -> ResponseBody;
}

impl<F> Handler for F
where
    F: FnMut(RequestBody) -> ResponseBody + Send + 'static,
{
    fn handle(&mut self, body: RequestBody) -> ResponseBody {
        self(body)
    }
}

/// A running server. Dropping it shuts it down.
pub struct Server {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
    conns: Arc<Mutex<Vec<TcpStream>>>,
}

impl Server {
    /// Bind to `127.0.0.1:0` and serve connections, building one handler
    /// per connection via `factory`.
    pub fn spawn<H, F>(factory: F) -> Result<Server>
    where
        H: Handler,
        F: Fn() -> H + Send + 'static,
    {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = stop.clone();
        let conns: Arc<Mutex<Vec<TcpStream>>> = Arc::new(Mutex::new(Vec::new()));
        let conns2 = conns.clone();

        let accept_thread = std::thread::Builder::new()
            .name("genie-accept".into())
            .spawn(move || {
                let mut conn_threads = Vec::new();
                for stream in listener.incoming() {
                    if stop2.load(Ordering::SeqCst) {
                        break;
                    }
                    let Ok(stream) = stream else { continue };
                    // Keep a handle so shutdown can unblock the reader.
                    if let Ok(clone) = stream.try_clone() {
                        conns2.lock().push(clone);
                    }
                    let mut handler = factory();
                    let spawned =
                        std::thread::Builder::new()
                            .name("genie-conn".into())
                            .spawn(move || {
                                let _ = serve_connection(stream, &mut handler);
                            });
                    match spawned {
                        Ok(t) => conn_threads.push(t),
                        // Thread exhaustion: drop this connection (the
                        // client observes ConnectionClosed) rather than
                        // tearing the whole server down.
                        Err(_) => continue,
                    }
                }
                for t in conn_threads {
                    let _ = t.join();
                }
            })?;

        Ok(Server {
            addr,
            stop,
            accept_thread: Some(accept_thread),
            conns,
        })
    }

    /// The bound address to connect clients to.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Request shutdown and wait for the accept loop to exit. Open
    /// connections are closed (clients observe `ConnectionClosed`); new
    /// connections are refused.
    pub fn shutdown(&mut self) {
        if self.stop.swap(true, Ordering::SeqCst) {
            return;
        }
        // Unblock accept() with a wake-up connection.
        let _ = TcpStream::connect(self.addr);
        // Unblock per-connection readers parked on live client sockets.
        for stream in self.conns.lock().drain(..) {
            let _ = stream.shutdown(std::net::Shutdown::Both);
        }
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn serve_connection(mut stream: TcpStream, handler: &mut dyn Handler) -> Result<()> {
    let telemetry = genie_telemetry::global();
    stream.set_nodelay(true)?;
    loop {
        let frame = match read_frame(&mut stream) {
            Ok(f) => f,
            Err(crate::error::TransportError::ConnectionClosed) => return Ok(()),
            Err(e) => {
                telemetry
                    .metrics
                    .counter("genie_transport_errors_total", &[("role", "server")])
                    .inc();
                return Err(e);
            }
        };
        telemetry
            .metrics
            .counter(
                "genie_transport_bytes_total",
                &[("role", "server"), ("dir", "rx")],
            )
            .add(frame.len() as u64 + 4);
        let request = Request::decode(frame)?;
        let body = {
            let _span = telemetry.collector.span("transport.serve", "transport");
            handler.handle(request.body)
        };
        let response = Response {
            id: request.id,
            body,
        };
        let payload = response.encode()?;
        telemetry
            .metrics
            .counter(
                "genie_transport_bytes_total",
                &[("role", "server"), ("dir", "tx")],
            )
            .add(payload.len() as u64 + 4);
        telemetry
            .metrics
            .counter("genie_transport_calls_total", &[("role", "server")])
            .inc();
        write_frame(&mut stream, &payload)?;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::Client;

    #[test]
    fn ping_pong_over_real_sockets() {
        let mut server = Server::spawn(|| {
            |body: RequestBody| match body {
                RequestBody::Ping => ResponseBody::Pong,
                _ => ResponseBody::Error("unsupported".into()),
            }
        })
        .unwrap();
        let mut client = Client::connect(server.addr()).unwrap();
        assert_eq!(client.call(RequestBody::Ping).unwrap(), ResponseBody::Pong);
        server.shutdown();
    }

    #[test]
    fn per_connection_handler_state() {
        // Each connection gets its own counter.
        let mut server = Server::spawn(|| {
            let mut count = 0u64;
            move |_body: RequestBody| {
                count += 1;
                ResponseBody::Handle {
                    key: count,
                    epoch: 0,
                }
            }
        })
        .unwrap();
        let mut c1 = Client::connect(server.addr()).unwrap();
        let mut c2 = Client::connect(server.addr()).unwrap();
        assert_eq!(
            c1.call(RequestBody::Ping).unwrap(),
            ResponseBody::Handle { key: 1, epoch: 0 }
        );
        assert_eq!(
            c1.call(RequestBody::Ping).unwrap(),
            ResponseBody::Handle { key: 2, epoch: 0 }
        );
        // Fresh connection, fresh counter.
        assert_eq!(
            c2.call(RequestBody::Ping).unwrap(),
            ResponseBody::Handle { key: 1, epoch: 0 }
        );
        server.shutdown();
    }

    #[test]
    fn shutdown_is_idempotent() {
        let mut server = Server::spawn(|| |_b: RequestBody| ResponseBody::Ok).unwrap();
        server.shutdown();
        server.shutdown();
    }
}
