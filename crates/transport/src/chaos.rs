//! Server-side chaos injection for the real transport.
//!
//! Where `genie-netsim`'s fault plans perturb the *simulated* fabric,
//! [`ChaosPolicy`] perturbs the *real* one: a chaotic server
//! ([`Server::spawn_chaotic`](crate::Server::spawn_chaotic)) runs every
//! handler normally and then, with seeded probabilities, stalls the reply
//! past the client's deadline or drops the connection before replying.
//! Faults are injected **after** the handler runs, which is the hard case
//! for clients: the work happened, the acknowledgement vanished, and only
//! request-id deduplication keeps the retry idempotent.

use parking_lot::Mutex;
use std::time::Duration;

/// What to do with one response.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ChaosAction {
    /// Reply normally.
    Deliver,
    /// Sleep before replying (exceed the client's deadline).
    Stall,
    /// Close the connection without replying.
    Drop,
}

/// Seeded fault probabilities for a chaotic server.
#[derive(Clone, Debug, PartialEq)]
pub struct ChaosPolicy {
    /// Seed for the shared per-server decision stream.
    pub seed: u64,
    /// Probability a response is stalled by [`stall`](Self::stall).
    pub stall_rate: f64,
    /// Probability the connection is dropped before the response.
    pub drop_rate: f64,
    /// How long a stalled response sleeps.
    pub stall: Duration,
}

impl ChaosPolicy {
    /// A policy that never injects anything.
    pub fn none() -> Self {
        ChaosPolicy {
            seed: 0,
            stall_rate: 0.0,
            drop_rate: 0.0,
            stall: Duration::ZERO,
        }
    }

    /// A moderately hostile preset for tests: with the given seed, drop
    /// ~25% of responses and stall ~10% for `stall`.
    pub fn hostile(seed: u64, stall: Duration) -> Self {
        ChaosPolicy {
            seed,
            stall_rate: 0.10,
            drop_rate: 0.25,
            stall,
        }
    }

    /// True when the policy can never perturb a response.
    pub fn is_none(&self) -> bool {
        self.stall_rate <= 0.0 && self.drop_rate <= 0.0
    }
}

/// Shared decision state: one seeded stream per server, shared across
/// connections so the fault sequence is a function of global response
/// order (deterministic under a single-threaded client).
#[derive(Debug)]
pub struct ChaosState {
    policy: ChaosPolicy,
    rng: Mutex<u64>,
}

impl ChaosState {
    /// New state for a policy.
    pub fn new(policy: ChaosPolicy) -> Self {
        let seed = if policy.seed == 0 {
            0x9E3779B97F4A7C15
        } else {
            policy.seed
        };
        ChaosState {
            policy,
            rng: Mutex::new(seed),
        }
    }

    /// Decide the fate of the next response.
    pub fn next_action(&self) -> ChaosAction {
        if self.policy.is_none() {
            return ChaosAction::Deliver;
        }
        let draw = {
            let mut s = self.rng.lock();
            let mut x = *s;
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            *s = x;
            (x.wrapping_mul(0x2545F4914F6CDD1D) >> 11) as f64 / (1u64 << 53) as f64
        };
        if draw < self.policy.drop_rate {
            ChaosAction::Drop
        } else if draw < self.policy.drop_rate + self.policy.stall_rate {
            ChaosAction::Stall
        } else {
            ChaosAction::Deliver
        }
    }

    /// The stall duration to apply on [`ChaosAction::Stall`].
    pub fn stall(&self) -> Duration {
        self.policy.stall
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_policy_always_delivers() {
        let s = ChaosState::new(ChaosPolicy::none());
        for _ in 0..100 {
            assert_eq!(s.next_action(), ChaosAction::Deliver);
        }
    }

    #[test]
    fn seeded_streams_are_deterministic() {
        let run = |seed| {
            let s = ChaosState::new(ChaosPolicy::hostile(seed, Duration::ZERO));
            (0..64).map(|_| s.next_action()).collect::<Vec<_>>()
        };
        assert_eq!(run(9), run(9));
        assert_ne!(run(9), run(10));
    }

    #[test]
    fn hostile_policy_actually_injects() {
        let s = ChaosState::new(ChaosPolicy::hostile(1, Duration::ZERO));
        let actions: Vec<ChaosAction> = (0..200).map(|_| s.next_action()).collect();
        assert!(actions.contains(&ChaosAction::Drop));
        assert!(actions.contains(&ChaosAction::Deliver));
    }
}
