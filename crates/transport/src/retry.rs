//! Retry policy: capped exponential backoff with deterministic jitter.
//!
//! Chaos runs must be reproducible from a seed alone, so the backoff
//! schedule is a pure function of `(policy, request id, attempt)` — no
//! wall clock, no thread-local RNG. Two processes replaying the same
//! seed observe the same waits, which is what lets the chaos harness
//! compare a run against its oracle bit for bit.

use crate::error::TransportError;
use std::time::Duration;

/// How a [`Client`](crate::Client) retries failed calls.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Maximum number of attempts (including the first). At least 1.
    pub max_attempts: u32,
    /// Backoff before the second attempt; doubles per attempt after.
    pub base_backoff: Duration,
    /// Ceiling on any single backoff wait.
    pub max_backoff: Duration,
    /// Per-call socket deadline applied to each attempt.
    pub deadline: Duration,
    /// Seed folded into the jitter stream (combine with the chaos seed so
    /// distinct runs jitter differently but reproducibly).
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 4,
            base_backoff: Duration::from_millis(50),
            max_backoff: Duration::from_secs(2),
            deadline: Duration::from_secs(30),
            seed: 0,
        }
    }
}

impl RetryPolicy {
    /// A tight policy for tests: short deadline, fast backoff.
    pub fn fast() -> Self {
        RetryPolicy {
            max_attempts: 3,
            base_backoff: Duration::from_millis(5),
            max_backoff: Duration::from_millis(40),
            deadline: Duration::from_millis(500),
            seed: 0,
        }
    }

    /// No retries: one attempt with this policy's deadline.
    pub fn once(deadline: Duration) -> Self {
        RetryPolicy {
            max_attempts: 1,
            deadline,
            ..RetryPolicy::default()
        }
    }

    /// A copy with a different jitter seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// The wait before attempt `attempt` (0-based; attempt 0 never
    /// waits). Capped exponential in the attempt number plus up to 50%
    /// deterministic jitter keyed on `(seed, request_id, attempt)`.
    pub fn backoff(&self, attempt: u32, request_id: u64) -> Duration {
        if attempt == 0 {
            return Duration::ZERO;
        }
        let exp = self
            .base_backoff
            .saturating_mul(1u32 << (attempt - 1).min(16))
            .min(self.max_backoff);
        // Jitter in [0, exp/2), from a splitmix-style hash of the key.
        let mut x = self
            .seed
            .wrapping_mul(0x9E3779B97F4A7C15)
            .wrapping_add(request_id)
            .wrapping_mul(0xBF58476D1CE4E5B9)
            .wrapping_add(u64::from(attempt));
        x ^= x >> 30;
        x = x.wrapping_mul(0x94D049BB133111EB);
        x ^= x >> 31;
        let half = exp.as_nanos() as u64 / 2;
        let jitter = if half == 0 { 0 } else { x % half };
        exp + Duration::from_nanos(jitter)
    }

    /// Whether an error is safe to retry. Timeouts, socket errors, and
    /// closed connections are transport-level and retryable (server-side
    /// request-id deduplication makes the retry idempotent); codec,
    /// framing, and application errors are not.
    pub fn is_retryable(e: &TransportError) -> bool {
        matches!(
            e,
            TransportError::Io(_)
                | TransportError::ConnectionClosed
                | TransportError::Timeout { .. }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_is_deterministic_and_capped() {
        let p = RetryPolicy::default().with_seed(7);
        for attempt in 0..10 {
            for id in [1u64, 99, 12345] {
                assert_eq!(p.backoff(attempt, id), p.backoff(attempt, id));
                assert!(p.backoff(attempt, id) <= p.max_backoff + p.max_backoff / 2);
            }
        }
        assert_eq!(p.backoff(0, 1), Duration::ZERO);
        assert!(p.backoff(1, 1) >= p.base_backoff);
    }

    #[test]
    fn backoff_grows_then_saturates() {
        let p = RetryPolicy {
            seed: 0,
            ..RetryPolicy::default()
        };
        // Strip jitter by comparing lower bounds: the exponential part
        // doubles until the cap.
        let exp = |a: u32| {
            p.base_backoff
                .saturating_mul(1u32 << (a - 1).min(16))
                .min(p.max_backoff)
        };
        assert_eq!(exp(1) * 2, exp(2));
        assert_eq!(exp(12), p.max_backoff);
        // Huge attempt numbers must not overflow.
        let _ = p.backoff(u32::MAX, u64::MAX);
    }

    #[test]
    fn jitter_varies_by_request_id() {
        let p = RetryPolicy::default().with_seed(3);
        let spread: std::collections::BTreeSet<Duration> =
            (0..32).map(|id| p.backoff(2, id)).collect();
        assert!(spread.len() > 16, "jitter should spread waits");
    }

    #[test]
    fn retryability_classification() {
        assert!(RetryPolicy::is_retryable(&TransportError::ConnectionClosed));
        assert!(RetryPolicy::is_retryable(&TransportError::Timeout {
            after: Duration::from_secs(1)
        }));
        assert!(RetryPolicy::is_retryable(&TransportError::Io(
            std::io::Error::new(std::io::ErrorKind::ConnectionReset, "rst")
        )));
        assert!(!RetryPolicy::is_retryable(&TransportError::Remote(
            "app".into()
        )));
        assert!(!RetryPolicy::is_retryable(&TransportError::Codec(
            "bad".into()
        )));
    }
}
