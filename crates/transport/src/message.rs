//! The Genie remote-execution protocol.
//!
//! Requests and responses are framed, hand-encoded messages. Graphs
//! travel as JSON (the SRG's portable interchange encoding); tensor
//! payloads travel as raw little-endian bytes referenced zero-copy from
//! the receive buffer.

use crate::error::{Result, TransportError};
use crate::wire;
use bytes::{Bytes, BytesMut};
use genie_telemetry::causal::TraceCtx;

/// Element kind of a tensor payload.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PayloadKind {
    /// 32-bit floats.
    F32,
    /// 64-bit indices.
    I64,
}

/// A tensor on the wire.
#[derive(Clone, Debug, PartialEq)]
pub struct TensorPayload {
    /// Dimension sizes.
    pub dims: Vec<usize>,
    /// Element kind.
    pub kind: PayloadKind,
    /// Raw little-endian element bytes.
    pub data: Bytes,
}

impl TensorPayload {
    /// Wrap an f32 tensor.
    pub fn from_f32(dims: Vec<usize>, data: &[f32]) -> Self {
        TensorPayload {
            dims,
            kind: PayloadKind::F32,
            data: wire::f32s_to_bytes(data),
        }
    }

    /// Wrap an i64 tensor.
    pub fn from_i64(dims: Vec<usize>, data: &[i64]) -> Self {
        TensorPayload {
            dims,
            kind: PayloadKind::I64,
            data: wire::i64s_to_bytes(data),
        }
    }

    /// Payload size in bytes.
    pub fn size_bytes(&self) -> usize {
        self.data.len()
    }

    fn encode(&self, buf: &mut BytesMut) -> Result<()> {
        wire::put_u8(
            buf,
            match self.kind {
                PayloadKind::F32 => 0,
                PayloadKind::I64 => 1,
            },
        );
        wire::put_dims(buf, &self.dims)?;
        wire::put_bytes(buf, &self.data)
    }

    fn decode(buf: &mut Bytes) -> Result<Self> {
        let kind = match wire::get_u8(buf)? {
            0 => PayloadKind::F32,
            1 => PayloadKind::I64,
            other => return Err(TransportError::Codec(format!("bad payload kind {other}"))),
        };
        let dims = wire::get_dims(buf)?;
        let data = wire::get_bytes(buf)?;
        Ok(TensorPayload { dims, kind, data })
    }
}

/// A request body.
#[derive(Clone, Debug, PartialEq)]
pub enum RequestBody {
    /// Liveness probe.
    Ping,
    /// Upload a tensor and pin it as a resident object under `key`.
    /// Returns `Handle { key, epoch }`.
    Upload {
        /// Caller-chosen object key.
        key: u64,
        /// The tensor.
        tensor: TensorPayload,
    },
    /// Execute a serialized SRG. `bindings` map node ids to inline
    /// payloads; `handle_bindings` map node ids to resident objects;
    /// `fetch` lists node ids whose values return inline;
    /// `pin` maps node ids to keys under which their values pin remotely.
    Execute {
        /// JSON-encoded SRG (`genie_srg::serialize`).
        srg_json: String,
        /// Inline input payloads.
        bindings: Vec<(u32, TensorPayload)>,
        /// Handle-resolved input bindings `(node, key, expected_epoch)`.
        handle_bindings: Vec<(u32, u64, u64)>,
        /// Node ids whose outputs to return inline.
        fetch: Vec<u32>,
        /// Node ids whose outputs to pin remotely `(node, key)`.
        pin: Vec<(u32, u64)>,
    },
    /// Fetch a resident object's bytes.
    Fetch {
        /// Object key.
        key: u64,
    },
    /// Drop a resident object.
    Release {
        /// Object key.
        key: u64,
    },
    /// Invalidate every resident object (fault-injection hook for lineage
    /// tests: simulates losing the device).
    Crash,
}

/// A response body.
#[derive(Clone, Debug, PartialEq)]
pub enum ResponseBody {
    /// Ping reply.
    Pong,
    /// Generic success.
    Ok,
    /// A resident-object handle.
    Handle {
        /// Object key.
        key: u64,
        /// Epoch for lineage invalidation.
        epoch: u64,
    },
    /// Inline tensors, ordered as requested.
    Tensors(Vec<TensorPayload>),
    /// Result of an `Execute`: fetched tensors plus handles for pinned
    /// outputs, each in request order.
    ExecuteResult {
        /// Values of the `fetch` nodes.
        tensors: Vec<TensorPayload>,
        /// `(key, epoch)` per `pin` entry.
        handles: Vec<(u64, u64)>,
    },
    /// Application-level failure.
    Error(String),
}

/// A full request envelope.
#[derive(Clone, Debug, PartialEq)]
pub struct Request {
    /// Correlation id.
    pub id: u64,
    /// Causal trace context (serving request + parent span), carried
    /// in the envelope so request attribution survives the wire.
    pub trace: Option<TraceCtx>,
    /// Body.
    pub body: RequestBody,
}

/// A full response envelope.
#[derive(Clone, Debug, PartialEq)]
pub struct Response {
    /// Correlation id (matches the request).
    pub id: u64,
    /// Body.
    pub body: ResponseBody,
}

impl Request {
    /// Encode to a frame payload. Fails with
    /// [`TransportError::Oversize`] on values the wire format cannot
    /// carry (rather than silently truncating them).
    pub fn encode(&self) -> Result<Bytes> {
        let mut buf = BytesMut::new();
        wire::put_u64(&mut buf, self.id);
        // Trace context rides between the id and the body tag: one
        // presence byte, then (request, parent_span) when present.
        match &self.trace {
            Some(ctx) => {
                wire::put_u8(&mut buf, 1);
                wire::put_u64(&mut buf, ctx.request);
                wire::put_u64(&mut buf, ctx.parent_span);
            }
            None => wire::put_u8(&mut buf, 0),
        }
        match &self.body {
            RequestBody::Ping => wire::put_u8(&mut buf, 0),
            RequestBody::Upload { key, tensor } => {
                wire::put_u8(&mut buf, 1);
                wire::put_u64(&mut buf, *key);
                tensor.encode(&mut buf)?;
            }
            RequestBody::Execute {
                srg_json,
                bindings,
                handle_bindings,
                fetch,
                pin,
            } => {
                wire::put_u8(&mut buf, 2);
                wire::put_str(&mut buf, srg_json)?;
                wire::put_u32(&mut buf, bindings.len() as u32);
                for (node, t) in bindings {
                    wire::put_u32(&mut buf, *node);
                    t.encode(&mut buf)?;
                }
                wire::put_u32(&mut buf, handle_bindings.len() as u32);
                for (node, key, epoch) in handle_bindings {
                    wire::put_u32(&mut buf, *node);
                    wire::put_u64(&mut buf, *key);
                    wire::put_u64(&mut buf, *epoch);
                }
                wire::put_u32(&mut buf, fetch.len() as u32);
                for n in fetch {
                    wire::put_u32(&mut buf, *n);
                }
                wire::put_u32(&mut buf, pin.len() as u32);
                for (n, k) in pin {
                    wire::put_u32(&mut buf, *n);
                    wire::put_u64(&mut buf, *k);
                }
            }
            RequestBody::Fetch { key } => {
                wire::put_u8(&mut buf, 3);
                wire::put_u64(&mut buf, *key);
            }
            RequestBody::Release { key } => {
                wire::put_u8(&mut buf, 4);
                wire::put_u64(&mut buf, *key);
            }
            RequestBody::Crash => wire::put_u8(&mut buf, 5),
        }
        Ok(buf.freeze())
    }

    /// Decode from a frame payload.
    pub fn decode(mut raw: Bytes) -> Result<Self> {
        let id = wire::get_u64(&mut raw)?;
        let trace = match wire::get_u8(&mut raw)? {
            0 => None,
            1 => Some(TraceCtx {
                request: wire::get_u64(&mut raw)?,
                parent_span: wire::get_u64(&mut raw)?,
            }),
            other => {
                return Err(TransportError::Codec(format!(
                    "bad trace-context presence byte {other}"
                )))
            }
        };
        let tag = wire::get_u8(&mut raw)?;
        let body = match tag {
            0 => RequestBody::Ping,
            1 => RequestBody::Upload {
                key: wire::get_u64(&mut raw)?,
                tensor: TensorPayload::decode(&mut raw)?,
            },
            2 => {
                let srg_json = wire::get_str(&mut raw)?;
                let n = wire::get_u32(&mut raw)? as usize;
                let mut bindings = Vec::with_capacity(n);
                for _ in 0..n {
                    let node = wire::get_u32(&mut raw)?;
                    bindings.push((node, TensorPayload::decode(&mut raw)?));
                }
                let n = wire::get_u32(&mut raw)? as usize;
                let mut handle_bindings = Vec::with_capacity(n);
                for _ in 0..n {
                    handle_bindings.push((
                        wire::get_u32(&mut raw)?,
                        wire::get_u64(&mut raw)?,
                        wire::get_u64(&mut raw)?,
                    ));
                }
                let n = wire::get_u32(&mut raw)? as usize;
                let mut fetch = Vec::with_capacity(n);
                for _ in 0..n {
                    fetch.push(wire::get_u32(&mut raw)?);
                }
                let n = wire::get_u32(&mut raw)? as usize;
                let mut pin = Vec::with_capacity(n);
                for _ in 0..n {
                    pin.push((wire::get_u32(&mut raw)?, wire::get_u64(&mut raw)?));
                }
                RequestBody::Execute {
                    srg_json,
                    bindings,
                    handle_bindings,
                    fetch,
                    pin,
                }
            }
            3 => RequestBody::Fetch {
                key: wire::get_u64(&mut raw)?,
            },
            4 => RequestBody::Release {
                key: wire::get_u64(&mut raw)?,
            },
            5 => RequestBody::Crash,
            other => return Err(TransportError::Codec(format!("bad request tag {other}"))),
        };
        Ok(Request { id, trace, body })
    }
}

impl Response {
    /// Encode to a frame payload. Fails with
    /// [`TransportError::Oversize`] on values the wire format cannot
    /// carry (rather than silently truncating them).
    pub fn encode(&self) -> Result<Bytes> {
        let mut buf = BytesMut::new();
        wire::put_u64(&mut buf, self.id);
        match &self.body {
            ResponseBody::Pong => wire::put_u8(&mut buf, 0),
            ResponseBody::Ok => wire::put_u8(&mut buf, 1),
            ResponseBody::Handle { key, epoch } => {
                wire::put_u8(&mut buf, 2);
                wire::put_u64(&mut buf, *key);
                wire::put_u64(&mut buf, *epoch);
            }
            ResponseBody::Tensors(ts) => {
                wire::put_u8(&mut buf, 3);
                wire::put_u32(&mut buf, ts.len() as u32);
                for t in ts {
                    t.encode(&mut buf)?;
                }
            }
            ResponseBody::Error(msg) => {
                wire::put_u8(&mut buf, 4);
                wire::put_str(&mut buf, msg)?;
            }
            ResponseBody::ExecuteResult { tensors, handles } => {
                wire::put_u8(&mut buf, 5);
                wire::put_u32(&mut buf, tensors.len() as u32);
                for t in tensors {
                    t.encode(&mut buf)?;
                }
                wire::put_u32(&mut buf, handles.len() as u32);
                for (k, e) in handles {
                    wire::put_u64(&mut buf, *k);
                    wire::put_u64(&mut buf, *e);
                }
            }
        }
        Ok(buf.freeze())
    }

    /// Decode from a frame payload.
    pub fn decode(mut raw: Bytes) -> Result<Self> {
        let id = wire::get_u64(&mut raw)?;
        let tag = wire::get_u8(&mut raw)?;
        let body = match tag {
            0 => ResponseBody::Pong,
            1 => ResponseBody::Ok,
            2 => ResponseBody::Handle {
                key: wire::get_u64(&mut raw)?,
                epoch: wire::get_u64(&mut raw)?,
            },
            3 => {
                let n = wire::get_u32(&mut raw)? as usize;
                let mut ts = Vec::with_capacity(n);
                for _ in 0..n {
                    ts.push(TensorPayload::decode(&mut raw)?);
                }
                ResponseBody::Tensors(ts)
            }
            4 => ResponseBody::Error(wire::get_str(&mut raw)?),
            5 => {
                let n = wire::get_u32(&mut raw)? as usize;
                let mut tensors = Vec::with_capacity(n);
                for _ in 0..n {
                    tensors.push(TensorPayload::decode(&mut raw)?);
                }
                let n = wire::get_u32(&mut raw)? as usize;
                let mut handles = Vec::with_capacity(n);
                for _ in 0..n {
                    handles.push((wire::get_u64(&mut raw)?, wire::get_u64(&mut raw)?));
                }
                ResponseBody::ExecuteResult { tensors, handles }
            }
            other => return Err(TransportError::Codec(format!("bad response tag {other}"))),
        };
        Ok(Response { id, body })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip_req(body: RequestBody) {
        let req = Request {
            id: 42,
            trace: None,
            body,
        };
        let decoded = Request::decode(req.encode().unwrap()).unwrap();
        assert_eq!(decoded, req);
    }

    #[test]
    fn trace_context_rides_the_envelope() {
        let req = Request {
            id: 42,
            trace: Some(TraceCtx {
                request: 1337,
                parent_span: 55,
            }),
            body: RequestBody::Fetch { key: 1 },
        };
        let decoded = Request::decode(req.encode().unwrap()).unwrap();
        assert_eq!(decoded, req);
        assert_eq!(decoded.trace.unwrap().request, 1337);
        assert_eq!(decoded.trace.unwrap().parent_span, 55);
    }

    #[test]
    fn request_roundtrips() {
        roundtrip_req(RequestBody::Ping);
        roundtrip_req(RequestBody::Upload {
            key: 7,
            tensor: TensorPayload::from_f32(vec![2, 2], &[1.0, 2.0, 3.0, 4.0]),
        });
        roundtrip_req(RequestBody::Execute {
            srg_json: "{\"name\":\"g\"}".into(),
            bindings: vec![(0, TensorPayload::from_i64(vec![3], &[1, 2, 3]))],
            handle_bindings: vec![(1, 99, 2)],
            fetch: vec![5, 6],
            pin: vec![(7, 1000)],
        });
        roundtrip_req(RequestBody::Fetch { key: 1 });
        roundtrip_req(RequestBody::Release { key: u64::MAX });
        roundtrip_req(RequestBody::Crash);
    }

    #[test]
    fn response_roundtrips() {
        for body in [
            ResponseBody::Pong,
            ResponseBody::Ok,
            ResponseBody::Handle { key: 3, epoch: 9 },
            ResponseBody::Tensors(vec![
                TensorPayload::from_f32(vec![1], &[5.0]),
                TensorPayload::from_i64(vec![2], &[-1, 1]),
            ]),
            ResponseBody::ExecuteResult {
                tensors: vec![TensorPayload::from_f32(vec![1], &[2.5])],
                handles: vec![(9, 1), (10, 1)],
            },
            ResponseBody::Error("boom".into()),
        ] {
            let resp = Response { id: 8, body };
            assert_eq!(Response::decode(resp.encode().unwrap()).unwrap(), resp);
        }
    }

    #[test]
    fn oversize_tensor_rank_propagates_from_encode() {
        let req = Request {
            id: 1,
            trace: None,
            body: RequestBody::Upload {
                key: 0,
                tensor: TensorPayload {
                    dims: vec![1; 300],
                    kind: PayloadKind::F32,
                    data: Bytes::new(),
                },
            },
        };
        let err = req.encode().unwrap_err();
        assert!(
            matches!(
                err,
                TransportError::Oversize {
                    what: "tensor rank",
                    ..
                }
            ),
            "{err}"
        );
    }

    #[test]
    fn garbage_rejected() {
        assert!(Request::decode(Bytes::from_static(&[1, 2, 3])).is_err());
        let mut buf = BytesMut::new();
        wire::put_u64(&mut buf, 1);
        wire::put_u8(&mut buf, 250); // bad tag
        assert!(Request::decode(buf.freeze()).is_err());
    }

    #[test]
    fn payload_sizes() {
        let t = TensorPayload::from_f32(vec![10], &[0.0; 10]);
        assert_eq!(t.size_bytes(), 40);
        let t = TensorPayload::from_i64(vec![4], &[0; 4]);
        assert_eq!(t.size_bytes(), 32);
    }
}
