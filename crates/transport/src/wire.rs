//! Hand-rolled binary codec primitives.
//!
//! The payload path avoids generic serialization: tensor bytes travel as
//! [`Bytes`] slices that are never re-encoded, so a payload copied into a
//! pinned buffer at creation time reaches the socket without intermediate
//! copies (the software half of §3.4's zero-copy story).

use crate::error::{Result, TransportError};
use bytes::{Buf, BufMut, Bytes, BytesMut};

/// Append a u8.
pub fn put_u8(buf: &mut BytesMut, v: u8) {
    buf.put_u8(v);
}

/// Append a u32 (big-endian).
pub fn put_u32(buf: &mut BytesMut, v: u32) {
    buf.put_u32(v);
}

/// Append a u64 (big-endian).
pub fn put_u64(buf: &mut BytesMut, v: u64) {
    buf.put_u64(v);
}

/// Append a length-prefixed byte string. Fails with
/// [`TransportError::Oversize`] when the length exceeds the `u32` prefix
/// (an `as u32` here would silently truncate payloads over 4 GiB and
/// corrupt the stream).
pub fn put_bytes(buf: &mut BytesMut, v: &[u8]) -> Result<()> {
    let len = u32::try_from(v.len()).map_err(|_| TransportError::Oversize {
        what: "payload length",
        value: v.len() as u64,
        max: u32::MAX as u64,
    })?;
    buf.put_u32(len);
    buf.put_slice(v);
    Ok(())
}

/// Append a length-prefixed UTF-8 string.
pub fn put_str(buf: &mut BytesMut, v: &str) -> Result<()> {
    put_bytes(buf, v.as_bytes())
}

/// Append a list of u32 dims (rank ≤ 255, each dim ≤ `u32::MAX`).
pub fn put_dims(buf: &mut BytesMut, dims: &[usize]) -> Result<()> {
    let rank = u8::try_from(dims.len()).map_err(|_| TransportError::Oversize {
        what: "tensor rank",
        value: dims.len() as u64,
        max: u8::MAX as u64,
    })?;
    buf.put_u8(rank);
    for &d in dims {
        let dim = u32::try_from(d).map_err(|_| TransportError::Oversize {
            what: "tensor dimension",
            value: d as u64,
            max: u32::MAX as u64,
        })?;
        buf.put_u32(dim);
    }
    Ok(())
}

/// Read a u8.
pub fn get_u8(buf: &mut Bytes) -> Result<u8> {
    ensure(buf, 1)?;
    Ok(buf.get_u8())
}

/// Read a u32.
pub fn get_u32(buf: &mut Bytes) -> Result<u32> {
    ensure(buf, 4)?;
    Ok(buf.get_u32())
}

/// Read a u64.
pub fn get_u64(buf: &mut Bytes) -> Result<u64> {
    ensure(buf, 8)?;
    Ok(buf.get_u64())
}

/// Read a length-prefixed byte string (zero-copy slice of the input).
pub fn get_bytes(buf: &mut Bytes) -> Result<Bytes> {
    let len = get_u32(buf)? as usize;
    ensure(buf, len)?;
    Ok(buf.split_to(len))
}

/// Read a length-prefixed UTF-8 string.
pub fn get_str(buf: &mut Bytes) -> Result<String> {
    let raw = get_bytes(buf)?;
    String::from_utf8(raw.to_vec()).map_err(|e| TransportError::Codec(e.to_string()))
}

/// Read dims.
pub fn get_dims(buf: &mut Bytes) -> Result<Vec<usize>> {
    let rank = get_u8(buf)? as usize;
    let mut dims = Vec::with_capacity(rank);
    for _ in 0..rank {
        dims.push(get_u32(buf)? as usize);
    }
    Ok(dims)
}

fn ensure(buf: &Bytes, n: usize) -> Result<()> {
    if buf.remaining() < n {
        Err(TransportError::Codec(format!(
            "need {n} bytes, have {}",
            buf.remaining()
        )))
    } else {
        Ok(())
    }
}

/// Encode an f32 slice as little-endian bytes.
pub fn f32s_to_bytes(data: &[f32]) -> Bytes {
    let mut out = BytesMut::with_capacity(data.len() * 4);
    for &v in data {
        out.put_f32_le(v);
    }
    out.freeze()
}

/// Decode little-endian f32 bytes.
pub fn bytes_to_f32s(mut raw: Bytes) -> Result<Vec<f32>> {
    if !raw.len().is_multiple_of(4) {
        return Err(TransportError::Codec("f32 payload not 4-aligned".into()));
    }
    let mut out = Vec::with_capacity(raw.len() / 4);
    while raw.has_remaining() {
        out.push(raw.get_f32_le());
    }
    Ok(out)
}

/// Encode an i64 slice as little-endian bytes.
pub fn i64s_to_bytes(data: &[i64]) -> Bytes {
    let mut out = BytesMut::with_capacity(data.len() * 8);
    for &v in data {
        out.put_i64_le(v);
    }
    out.freeze()
}

/// Decode little-endian i64 bytes.
pub fn bytes_to_i64s(mut raw: Bytes) -> Result<Vec<i64>> {
    if !raw.len().is_multiple_of(8) {
        return Err(TransportError::Codec("i64 payload not 8-aligned".into()));
    }
    let mut out = Vec::with_capacity(raw.len() / 8);
    while raw.has_remaining() {
        out.push(raw.get_i64_le());
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_roundtrips() {
        let mut buf = BytesMut::new();
        put_u8(&mut buf, 7);
        put_u32(&mut buf, 0xDEAD_BEEF);
        put_u64(&mut buf, u64::MAX);
        put_str(&mut buf, "genie").unwrap();
        put_dims(&mut buf, &[2, 3, 4]).unwrap();
        let mut raw = buf.freeze();
        assert_eq!(get_u8(&mut raw).unwrap(), 7);
        assert_eq!(get_u32(&mut raw).unwrap(), 0xDEAD_BEEF);
        assert_eq!(get_u64(&mut raw).unwrap(), u64::MAX);
        assert_eq!(get_str(&mut raw).unwrap(), "genie");
        assert_eq!(get_dims(&mut raw).unwrap(), vec![2, 3, 4]);
        assert!(raw.is_empty());
    }

    #[test]
    fn short_buffer_errors() {
        let mut raw = Bytes::from_static(&[0, 0]);
        assert!(get_u32(&mut raw).is_err());
    }

    #[test]
    fn oversize_rank_refused_not_truncated() {
        let mut buf = BytesMut::new();
        let dims = vec![1usize; 300];
        let err = put_dims(&mut buf, &dims).unwrap_err();
        assert!(
            matches!(
                err,
                TransportError::Oversize {
                    what: "tensor rank",
                    value: 300,
                    ..
                }
            ),
            "{err}"
        );
        // Nothing half-written before the failing prefix.
        assert!(buf.is_empty());
    }

    #[test]
    fn oversize_dim_refused_not_truncated() {
        if usize::BITS < 64 {
            return; // dims above u32::MAX are unrepresentable on 32-bit
        }
        let mut buf = BytesMut::new();
        let too_big = u32::MAX as usize + 1;
        let err = put_dims(&mut buf, &[2, too_big]).unwrap_err();
        assert!(
            matches!(
                err,
                TransportError::Oversize {
                    what: "tensor dimension",
                    ..
                }
            ),
            "{err}"
        );
    }

    #[test]
    fn bytes_are_zero_copy_slices() {
        let mut buf = BytesMut::new();
        put_bytes(&mut buf, &[1, 2, 3]).unwrap();
        let frozen = buf.freeze();
        let mut view = frozen.clone();
        let payload = get_bytes(&mut view).unwrap();
        // Same backing allocation: slice_ref succeeds.
        assert_eq!(&payload[..], &[1, 2, 3]);
    }

    #[test]
    fn f32_payload_roundtrip() {
        let data = vec![1.5f32, -2.25, 0.0, f32::MAX];
        let raw = f32s_to_bytes(&data);
        assert_eq!(bytes_to_f32s(raw).unwrap(), data);
    }

    #[test]
    fn i64_payload_roundtrip() {
        let data = vec![i64::MIN, -1, 0, 42, i64::MAX];
        let raw = i64s_to_bytes(&data);
        assert_eq!(bytes_to_i64s(raw).unwrap(), data);
    }

    #[test]
    fn misaligned_payloads_rejected() {
        assert!(bytes_to_f32s(Bytes::from_static(&[0u8; 3])).is_err());
        assert!(bytes_to_i64s(Bytes::from_static(&[0u8; 7])).is_err());
    }
}
