//! Pinned, network-ready buffer pool (§3.4).
//!
//! Genie allocates tensors in network-registered memory *at creation
//! time*, so sending them later requires no staging copy. We cannot issue
//! real DMA registrations here, but we can make the architectural claim
//! *observable*: the pool counts every staging copy, and the test suite
//! asserts the proactive path performs zero where the reactive path
//! (`pin_memory()` after the fact) performs one per send.

use bytes::{Bytes, BytesMut};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Statistics shared by all buffers of a pool.
#[derive(Debug, Default)]
pub struct PoolStats {
    /// Buffers handed out.
    pub allocations: AtomicU64,
    /// Buffers recycled from the free list.
    pub reuses: AtomicU64,
    /// Staging copies performed (reactive sends).
    pub staging_copies: AtomicU64,
    /// Bytes copied while staging.
    pub staged_bytes: AtomicU64,
    /// Sends that needed no copy (proactive).
    pub zero_copy_sends: AtomicU64,
}

/// A pool of reusable, "registered" buffers.
#[derive(Clone)]
pub struct PinnedPool {
    free: Arc<Mutex<Vec<BytesMut>>>,
    stats: Arc<PoolStats>,
}

/// A buffer handed out by the pool. Writing application data directly
/// into it is the proactive path.
pub struct PinnedBuf {
    buf: BytesMut,
    pool: PinnedPool,
}

impl PinnedPool {
    /// New empty pool.
    pub fn new() -> Self {
        PinnedPool {
            free: Arc::new(Mutex::new(Vec::new())),
            stats: Arc::new(PoolStats::default()),
        }
    }

    /// Shared statistics handle.
    pub fn stats(&self) -> &PoolStats {
        &self.stats
    }

    /// Allocate a buffer with at least `capacity` bytes, reusing a
    /// recycled buffer when possible.
    pub fn alloc(&self, capacity: usize) -> PinnedBuf {
        self.stats.allocations.fetch_add(1, Ordering::Relaxed);
        let mut free = self.free.lock();
        let buf = if let Some(pos) = free.iter().position(|b| b.capacity() >= capacity) {
            self.stats.reuses.fetch_add(1, Ordering::Relaxed);
            let mut b = free.swap_remove(pos);
            b.clear();
            b
        } else {
            BytesMut::with_capacity(capacity)
        };
        PinnedBuf {
            buf,
            pool: self.clone(),
        }
    }

    /// Proactive path: the data already lives in a pool buffer; freezing
    /// it for the wire is free.
    pub fn send_proactive(&self, buf: PinnedBuf) -> Bytes {
        self.stats.zero_copy_sends.fetch_add(1, Ordering::Relaxed);
        buf.buf.freeze()
    }

    /// Reactive path: data lives in unregistered memory and must be
    /// staged into a registered buffer first — one copy, which the pool
    /// records. This is what `pin_memory()`-after-the-fact costs.
    pub fn send_reactive(&self, data: &[u8]) -> Bytes {
        self.stats.staging_copies.fetch_add(1, Ordering::Relaxed);
        self.stats
            .staged_bytes
            .fetch_add(data.len() as u64, Ordering::Relaxed);
        let mut buf = self.alloc(data.len());
        buf.buf.extend_from_slice(data);
        buf.buf.freeze()
    }

    fn recycle(&self, buf: BytesMut) {
        self.free.lock().push(buf);
    }
}

impl Default for PinnedPool {
    fn default() -> Self {
        Self::new()
    }
}

impl PinnedBuf {
    /// Writable view of the underlying registered buffer.
    pub fn bytes_mut(&mut self) -> &mut BytesMut {
        &mut self.buf
    }

    /// Return the buffer to the pool unused.
    pub fn release(self) {
        let PinnedBuf { buf, pool } = self;
        pool.recycle(buf);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::BufMut;

    #[test]
    fn proactive_path_performs_no_copies() {
        let pool = PinnedPool::new();
        let mut buf = pool.alloc(1024);
        buf.bytes_mut().put_slice(&[7u8; 100]); // app writes directly
        let wire = pool.send_proactive(buf);
        assert_eq!(wire.len(), 100);
        assert_eq!(pool.stats().staging_copies.load(Ordering::Relaxed), 0);
        assert_eq!(pool.stats().zero_copy_sends.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn reactive_path_counts_staging() {
        let pool = PinnedPool::new();
        let unregistered = vec![1u8; 500];
        let wire = pool.send_reactive(&unregistered);
        assert_eq!(wire.len(), 500);
        assert_eq!(pool.stats().staging_copies.load(Ordering::Relaxed), 1);
        assert_eq!(pool.stats().staged_bytes.load(Ordering::Relaxed), 500);
        assert_eq!(pool.stats().zero_copy_sends.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn released_buffers_are_reused() {
        let pool = PinnedPool::new();
        let buf = pool.alloc(4096);
        buf.release();
        let _again = pool.alloc(1000); // smaller fits the recycled 4096
        assert_eq!(pool.stats().reuses.load(Ordering::Relaxed), 1);
        assert_eq!(pool.stats().allocations.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn undersized_recycled_buffers_skipped() {
        let pool = PinnedPool::new();
        pool.alloc(16).release();
        let _big = pool.alloc(1 << 20);
        assert_eq!(pool.stats().reuses.load(Ordering::Relaxed), 0);
    }
}
