//! Transport errors.

use std::fmt;
use std::time::Duration;

/// Errors surfaced by the transport layer.
#[derive(Debug)]
pub enum TransportError {
    /// Underlying socket error.
    Io(std::io::Error),
    /// The peer closed the connection.
    ConnectionClosed,
    /// A frame exceeded the configured maximum.
    FrameTooLarge {
        /// Declared payload length.
        len: usize,
        /// Allowed maximum.
        max: usize,
    },
    /// A value exceeds a wire-format field limit (e.g. a payload longer
    /// than a `u32` length prefix can carry, or a tensor rank above 255).
    /// Encoding would silently truncate, so it is refused instead.
    Oversize {
        /// Which field overflowed.
        what: &'static str,
        /// The offending value.
        value: u64,
        /// The largest encodable value.
        max: u64,
    },
    /// Malformed bytes on the wire.
    Codec(String),
    /// A response arrived for an unknown request id.
    UnexpectedResponse {
        /// The id we got.
        got: u64,
        /// The id we expected.
        expected: u64,
    },
    /// The remote handler reported an application error.
    Remote(String),
    /// A socket read or write exceeded its deadline. The call may or may
    /// not have reached the server — retry with the same request id and
    /// let server-side deduplication coalesce the duplicate.
    Timeout {
        /// The deadline that elapsed (zero when only the socket reported
        /// a timeout and the configured deadline is unknown).
        after: Duration,
    },
    /// A retrying call gave up after exhausting its attempt budget.
    Exhausted {
        /// How many attempts were made.
        attempts: u32,
        /// The error from the final attempt.
        last: Box<TransportError>,
    },
}

impl fmt::Display for TransportError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TransportError::Io(e) => write!(f, "io error: {e}"),
            TransportError::ConnectionClosed => write!(f, "connection closed by peer"),
            TransportError::FrameTooLarge { len, max } => {
                write!(f, "frame of {len} bytes exceeds maximum {max}")
            }
            TransportError::Oversize { what, value, max } => {
                write!(f, "{what} {value} exceeds wire-format maximum {max}")
            }
            TransportError::Codec(msg) => write!(f, "codec error: {msg}"),
            TransportError::UnexpectedResponse { got, expected } => {
                write!(f, "response id {got} does not match request {expected}")
            }
            TransportError::Remote(msg) => write!(f, "remote error: {msg}"),
            TransportError::Timeout { after } => {
                write!(f, "call timed out after {after:?}")
            }
            TransportError::Exhausted { attempts, last } => {
                write!(f, "gave up after {attempts} attempts: {last}")
            }
        }
    }
}

impl std::error::Error for TransportError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TransportError::Io(e) => Some(e),
            TransportError::Exhausted { last, .. } => Some(last.as_ref()),
            _ => None,
        }
    }
}

impl From<std::io::Error> for TransportError {
    fn from(e: std::io::Error) -> Self {
        use std::io::ErrorKind;
        match e.kind() {
            ErrorKind::UnexpectedEof => TransportError::ConnectionClosed,
            // Socket read/write timeouts surface as WouldBlock (Unix) or
            // TimedOut (Windows); the client stamps the configured
            // deadline in afterwards.
            ErrorKind::WouldBlock | ErrorKind::TimedOut => TransportError::Timeout {
                after: Duration::ZERO,
            },
            _ => TransportError::Io(e),
        }
    }
}

/// Transport result alias.
pub type Result<T> = std::result::Result<T, TransportError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = TransportError::FrameTooLarge { len: 10, max: 5 };
        assert_eq!(e.to_string(), "frame of 10 bytes exceeds maximum 5");
        assert!(TransportError::ConnectionClosed
            .to_string()
            .contains("closed"));
        let e = TransportError::Oversize {
            what: "payload length",
            value: 5_000_000_000,
            max: u32::MAX as u64,
        };
        assert!(e.to_string().contains("payload length"), "{e}");
        assert!(e.to_string().contains("5000000000"), "{e}");
    }

    #[test]
    fn eof_maps_to_closed() {
        let io = std::io::Error::new(std::io::ErrorKind::UnexpectedEof, "eof");
        assert!(matches!(
            TransportError::from(io),
            TransportError::ConnectionClosed
        ));
    }

    #[test]
    fn socket_timeouts_map_to_timeout() {
        for kind in [std::io::ErrorKind::WouldBlock, std::io::ErrorKind::TimedOut] {
            let io = std::io::Error::new(kind, "slow");
            assert!(matches!(
                TransportError::from(io),
                TransportError::Timeout { .. }
            ));
        }
    }

    #[test]
    fn exhausted_chains_source() {
        use std::error::Error;
        let e = TransportError::Exhausted {
            attempts: 3,
            last: Box::new(TransportError::Timeout {
                after: Duration::from_millis(250),
            }),
        };
        assert!(e.to_string().contains("3 attempts"), "{e}");
        assert!(e.source().unwrap().to_string().contains("250ms"), "{e}");
    }
}
