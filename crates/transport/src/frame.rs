//! Length-prefixed framing over a byte stream.
//!
//! Wire format: `u32` big-endian payload length, then the payload. The
//! maximum frame size bounds memory per connection; oversized frames are
//! rejected *before* allocation, so a malicious or corrupt length prefix
//! cannot OOM the process.

use crate::error::{Result, TransportError};
use bytes::Bytes;
use std::io::{Read, Write};

/// Default maximum frame payload: 256 MiB (a full GPT-J layer group fits;
/// a corrupt length prefix does not).
pub const MAX_FRAME: usize = 256 << 20;

/// Write one frame.
pub fn write_frame<W: Write>(w: &mut W, payload: &[u8]) -> Result<()> {
    if payload.len() > MAX_FRAME {
        return Err(TransportError::FrameTooLarge {
            len: payload.len(),
            max: MAX_FRAME,
        });
    }
    w.write_all(&(payload.len() as u32).to_be_bytes())?;
    w.write_all(payload)?;
    w.flush()?;
    Ok(())
}

/// Read one frame.
pub fn read_frame<R: Read>(r: &mut R) -> Result<Bytes> {
    let mut len_buf = [0u8; 4];
    r.read_exact(&mut len_buf)?;
    let len = u32::from_be_bytes(len_buf) as usize;
    if len > MAX_FRAME {
        return Err(TransportError::FrameTooLarge {
            len,
            max: MAX_FRAME,
        });
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    Ok(Bytes::from(payload))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn roundtrip_frames() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        write_frame(&mut buf, b"").unwrap();
        write_frame(&mut buf, &[0xAB; 1000]).unwrap();
        let mut cur = Cursor::new(buf);
        assert_eq!(&read_frame(&mut cur).unwrap()[..], b"hello");
        assert_eq!(read_frame(&mut cur).unwrap().len(), 0);
        assert_eq!(read_frame(&mut cur).unwrap().len(), 1000);
    }

    #[test]
    fn truncated_stream_reports_closed() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        buf.truncate(buf.len() - 2);
        let mut cur = Cursor::new(buf);
        assert!(matches!(
            read_frame(&mut cur),
            Err(TransportError::ConnectionClosed) | Err(TransportError::Io(_))
        ));
    }

    #[test]
    fn oversized_length_rejected_without_allocation() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&(u32::MAX).to_be_bytes());
        let mut cur = Cursor::new(buf);
        assert!(matches!(
            read_frame(&mut cur),
            Err(TransportError::FrameTooLarge { .. })
        ));
    }

    #[test]
    fn empty_stream_is_closed() {
        let mut cur = Cursor::new(Vec::new());
        assert!(matches!(
            read_frame(&mut cur),
            Err(TransportError::ConnectionClosed)
        ));
    }
}
