//! Blocking RPC client with traffic accounting, deadlines, and retries.
//!
//! Three hardening layers sit on top of the bare socket:
//!
//! - **Deadlines** — every read and write carries a socket timeout, so a
//!   stalled server yields a typed [`TransportError::Timeout`] instead of
//!   blocking the caller forever.
//! - **Idempotent request ids** — ids come from one process-global
//!   counter, so an id retried over a fresh connection still names the
//!   same logical request and the server's dedup cache can coalesce the
//!   duplicate delivery.
//! - **Retries** — [`Client::call_retry`] re-issues a failed call under a
//!   [`RetryPolicy`]: capped exponential backoff with deterministic
//!   jitter, reconnecting between attempts, surfacing
//!   [`TransportError::Exhausted`] when the budget runs out.

use crate::error::{Result, TransportError};
use crate::frame::{read_frame, write_frame};
use crate::message::{Request, RequestBody, Response, ResponseBody};
use crate::retry::RetryPolicy;
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Default per-call deadline: generous enough for weight uploads over
/// loopback, finite so nothing hangs forever.
pub const DEFAULT_DEADLINE: Duration = Duration::from_secs(30);

/// Process-global request id counter. Global (not per-client) so that a
/// request retried over a reconnected socket keeps a unique identity the
/// server can deduplicate on.
static NEXT_REQUEST_ID: AtomicU64 = AtomicU64::new(1);

/// Allocate a fresh request id, unique within this process.
pub fn next_request_id() -> u64 {
    NEXT_REQUEST_ID.fetch_add(1, Ordering::Relaxed)
}

/// A synchronous client: one outstanding request at a time, correlation
/// ids checked, cumulative byte counters exposed (the evaluation's
/// "network volume via RPC counters").
pub struct Client {
    stream: TcpStream,
    addr: SocketAddr,
    deadline: Option<Duration>,
    /// Set after a transport-level failure: the stream may hold a stale
    /// half-written frame, so the next call reconnects first.
    poisoned: bool,
    /// Total request payload bytes sent.
    pub bytes_sent: u64,
    /// Total response payload bytes received.
    pub bytes_received: u64,
    /// Completed calls.
    pub calls: u64,
}

impl Client {
    /// Connect to a server with the [`DEFAULT_DEADLINE`].
    pub fn connect(addr: SocketAddr) -> Result<Client> {
        Client::connect_with_deadline(addr, Some(DEFAULT_DEADLINE))
    }

    /// Connect with an explicit per-call deadline (`None` blocks forever —
    /// only sensible in tests that own both ends).
    pub fn connect_with_deadline(addr: SocketAddr, deadline: Option<Duration>) -> Result<Client> {
        let stream = Client::open(addr, deadline)?;
        Ok(Client {
            stream,
            addr,
            deadline,
            poisoned: false,
            bytes_sent: 0,
            bytes_received: 0,
            calls: 0,
        })
    }

    fn open(addr: SocketAddr, deadline: Option<Duration>) -> Result<TcpStream> {
        let stream = match deadline {
            Some(d) => TcpStream::connect_timeout(&addr, d)?,
            None => TcpStream::connect(addr)?,
        };
        stream.set_nodelay(true)?;
        stream.set_read_timeout(deadline)?;
        stream.set_write_timeout(deadline)?;
        Ok(stream)
    }

    /// Drop the current socket and dial a fresh one (same address, same
    /// deadline). Counters survive; in-flight state does not.
    pub fn reconnect(&mut self) -> Result<()> {
        self.stream = Client::open(self.addr, self.deadline)?;
        self.poisoned = false;
        Ok(())
    }

    /// The configured per-call deadline.
    pub fn deadline(&self) -> Option<Duration> {
        self.deadline
    }

    /// Issue a synchronous call under a fresh request id.
    pub fn call(&mut self, body: RequestBody) -> Result<ResponseBody> {
        self.call_with_id(next_request_id(), body)
    }

    /// Issue a synchronous call under an explicit request id. Retrying
    /// callers reuse the id across attempts so the server can coalesce
    /// duplicate deliveries of the same logical request.
    pub fn call_with_id(&mut self, id: u64, body: RequestBody) -> Result<ResponseBody> {
        let telemetry = genie_telemetry::global();
        let mut span = telemetry.collector.span("transport.call", "transport");
        if let Some(ctx) = genie_telemetry::causal::current() {
            span.annotate(|a| {
                a.request = Some(ctx.request);
                if ctx.parent_span != 0 {
                    a.cause = Some(ctx.parent_span);
                }
            });
        }
        let result = self.call_inner(id, body);
        match &result {
            Ok(_) => {
                telemetry
                    .metrics
                    .counter("genie_transport_calls_total", &[("role", "client")])
                    .inc();
            }
            Err(e) => {
                let msg = e.to_string();
                span.annotate(|a| a.extra.push(("error".into(), msg)));
                telemetry
                    .metrics
                    .counter("genie_transport_errors_total", &[("role", "client")])
                    .inc();
            }
        }
        result
    }

    /// Issue a call under `policy`: on a retryable transport error the
    /// call is re-sent with the **same** request id after a deterministic
    /// backoff, reconnecting first. Non-retryable errors (application
    /// errors, codec failures) surface immediately; a spent budget
    /// surfaces as [`TransportError::Exhausted`] carrying the final
    /// attempt's error.
    pub fn call_retry(&mut self, body: RequestBody, policy: &RetryPolicy) -> Result<ResponseBody> {
        let telemetry = genie_telemetry::global();
        let id = next_request_id();
        let attempts = policy.max_attempts.max(1);
        let mut last = None;
        for attempt in 0..attempts {
            if attempt > 0 {
                let wait = policy.backoff(attempt, id);
                telemetry
                    .metrics
                    .counter("genie_rpc_retries_total", &[])
                    .inc();
                telemetry
                    .metrics
                    .histogram(
                        "genie_rpc_retry_backoff_seconds",
                        &[],
                        &genie_telemetry::DEFAULT_TIME_BOUNDS,
                    )
                    .observe(wait.as_secs_f64());
                std::thread::sleep(wait);
                if self.poisoned {
                    if let Err(e) = self.reconnect() {
                        last = Some(e);
                        continue;
                    }
                }
            }
            match self.call_with_id(id, body.clone()) {
                Ok(reply) => return Ok(reply),
                Err(e) if RetryPolicy::is_retryable(&e) => last = Some(e),
                Err(e) => return Err(e),
            }
        }
        Err(TransportError::Exhausted {
            attempts,
            last: Box::new(last.unwrap_or(TransportError::ConnectionClosed)),
        })
    }

    fn call_inner(&mut self, id: u64, body: RequestBody) -> Result<ResponseBody> {
        if self.poisoned {
            self.reconnect()?;
        }
        match self.exchange(id, body) {
            Ok(reply) => Ok(reply),
            Err(e) => {
                if RetryPolicy::is_retryable(&e) {
                    self.poisoned = true;
                }
                // Stamp the configured deadline into bare socket timeouts.
                if let (TransportError::Timeout { after }, Some(d)) = (&e, self.deadline) {
                    if after.is_zero() {
                        return Err(TransportError::Timeout { after: d });
                    }
                }
                Err(e)
            }
        }
    }

    fn exchange(&mut self, id: u64, body: RequestBody) -> Result<ResponseBody> {
        let telemetry = genie_telemetry::global();
        // Stamp the caller's ambient causal context into the envelope so
        // the server (and everything it records) inherits the request
        // attribution without any API change at the call sites.
        let payload = Request {
            id,
            trace: genie_telemetry::causal::current(),
            body,
        }
        .encode()?;
        self.bytes_sent += payload.len() as u64 + 4;
        telemetry
            .metrics
            .counter(
                "genie_transport_bytes_total",
                &[("role", "client"), ("dir", "tx")],
            )
            .add(payload.len() as u64 + 4);
        write_frame(&mut self.stream, &payload)?;

        let frame = read_frame(&mut self.stream)?;
        self.bytes_received += frame.len() as u64 + 4;
        telemetry
            .metrics
            .counter(
                "genie_transport_bytes_total",
                &[("role", "client"), ("dir", "rx")],
            )
            .add(frame.len() as u64 + 4);
        let response = Response::decode(frame)?;
        if response.id != id {
            return Err(TransportError::UnexpectedResponse {
                got: response.id,
                expected: id,
            });
        }
        self.calls += 1;
        match response.body {
            ResponseBody::Error(msg) => Err(TransportError::Remote(msg)),
            body => Ok(body),
        }
    }

    /// Total bytes in both directions (incl. framing).
    pub fn total_bytes(&self) -> u64 {
        self.bytes_sent + self.bytes_received
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::TensorPayload;
    use crate::server::Server;

    fn echo_server() -> Server {
        Server::spawn(|| {
            |body: RequestBody| match body {
                RequestBody::Upload { tensor, .. } => ResponseBody::Tensors(vec![tensor]),
                RequestBody::Ping => ResponseBody::Pong,
                RequestBody::Crash => ResponseBody::Error("injected".into()),
                _ => ResponseBody::Ok,
            }
        })
        .unwrap()
    }

    #[test]
    fn tensor_echo_roundtrip() {
        let mut server = echo_server();
        let mut client = Client::connect(server.addr()).unwrap();
        let t = TensorPayload::from_f32(vec![2, 3], &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let reply = client
            .call(RequestBody::Upload {
                key: 1,
                tensor: t.clone(),
            })
            .unwrap();
        assert_eq!(reply, ResponseBody::Tensors(vec![t]));
        server.shutdown();
    }

    #[test]
    fn traffic_counters_accumulate() {
        let mut server = echo_server();
        let mut client = Client::connect(server.addr()).unwrap();
        client.call(RequestBody::Ping).unwrap();
        let after_ping = client.total_bytes();
        assert!(after_ping > 0);
        client
            .call(RequestBody::Upload {
                key: 1,
                tensor: TensorPayload::from_f32(vec![256], &[0.0; 256]),
            })
            .unwrap();
        // A 1 KB payload travels both ways (echo): counters must jump by
        // at least 2 KB beyond the ping baseline.
        assert!(client.total_bytes() > after_ping + 2048);
        assert_eq!(client.calls, 2);
        server.shutdown();
    }

    #[test]
    fn remote_errors_surface() {
        let mut server = echo_server();
        let mut client = Client::connect(server.addr()).unwrap();
        let err = client.call(RequestBody::Crash).unwrap_err();
        assert!(matches!(err, TransportError::Remote(msg) if msg == "injected"));
        server.shutdown();
    }

    #[test]
    fn sequential_ids_survive_many_calls() {
        let mut server = echo_server();
        let mut client = Client::connect(server.addr()).unwrap();
        for _ in 0..100 {
            assert_eq!(client.call(RequestBody::Ping).unwrap(), ResponseBody::Pong);
        }
        assert_eq!(client.calls, 100);
        server.shutdown();
    }

    #[test]
    fn request_ids_are_globally_unique() {
        let a = next_request_id();
        let b = next_request_id();
        assert!(b > a);
    }

    #[test]
    fn stalled_server_times_out_with_typed_error() {
        // A listener that accepts and then never replies.
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let hold = std::thread::spawn(move || {
            let (stream, _) = listener.accept().unwrap();
            std::thread::sleep(Duration::from_millis(400));
            drop(stream);
        });
        let deadline = Duration::from_millis(100);
        let mut client = Client::connect_with_deadline(addr, Some(deadline)).unwrap();
        let err = client.call(RequestBody::Ping).unwrap_err();
        match err {
            TransportError::Timeout { after } => assert_eq!(after, deadline),
            other => panic!("expected Timeout, got {other}"),
        }
        hold.join().unwrap();
    }

    #[test]
    fn dead_server_exhausts_retries() {
        // Bind then drop: the port refuses connections.
        let addr = {
            let l = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
            l.local_addr().unwrap()
        };
        let err = match Client::connect_with_deadline(addr, Some(Duration::from_millis(100))) {
            // Depending on kernel timing connect may fail outright...
            Err(e) => e,
            // ...or succeed against a TIME_WAIT ghost and die on call.
            Ok(mut c) => c
                .call_retry(RequestBody::Ping, &RetryPolicy::fast())
                .unwrap_err(),
        };
        assert!(
            matches!(
                err,
                TransportError::Exhausted { .. }
                    | TransportError::Io(_)
                    | TransportError::Timeout { .. }
                    | TransportError::ConnectionClosed
            ),
            "typed transport error, got {err}"
        );
    }

    #[test]
    fn retry_reconnects_after_server_restart() {
        let mut server = echo_server();
        let addr = server.addr();
        let mut client = Client::connect(addr).unwrap();
        assert_eq!(client.call(RequestBody::Ping).unwrap(), ResponseBody::Pong);
        // Kill the server mid-session: the client's socket is now dead.
        server.shutdown();
        drop(server);
        // Restart on a fresh port is not possible (addr is fixed), so
        // verify the poisoned path: the failed call marks the client and
        // a plain retry against nothing exhausts with a typed error.
        let err = client
            .call_retry(RequestBody::Ping, &RetryPolicy::fast())
            .unwrap_err();
        assert!(
            matches!(
                err,
                TransportError::Exhausted { .. } | TransportError::ConnectionClosed
            ),
            "got {err}"
        );
    }
}
