//! Blocking RPC client with traffic accounting.

use crate::error::{Result, TransportError};
use crate::frame::{read_frame, write_frame};
use crate::message::{Request, RequestBody, Response, ResponseBody};
use std::net::{SocketAddr, TcpStream};

/// A synchronous client: one outstanding request at a time, correlation
/// ids checked, cumulative byte counters exposed (the evaluation's
/// "network volume via RPC counters").
pub struct Client {
    stream: TcpStream,
    next_id: u64,
    /// Total request payload bytes sent.
    pub bytes_sent: u64,
    /// Total response payload bytes received.
    pub bytes_received: u64,
    /// Completed calls.
    pub calls: u64,
}

impl Client {
    /// Connect to a server.
    pub fn connect(addr: SocketAddr) -> Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(Client {
            stream,
            next_id: 1,
            bytes_sent: 0,
            bytes_received: 0,
            calls: 0,
        })
    }

    /// Issue a synchronous call.
    pub fn call(&mut self, body: RequestBody) -> Result<ResponseBody> {
        let telemetry = genie_telemetry::global();
        let mut span = telemetry.collector.span("transport.call", "transport");
        let result = self.call_inner(body);
        match &result {
            Ok(_) => {
                telemetry
                    .metrics
                    .counter("genie_transport_calls_total", &[("role", "client")])
                    .inc();
            }
            Err(e) => {
                let msg = e.to_string();
                span.annotate(|a| a.extra.push(("error".into(), msg)));
                telemetry
                    .metrics
                    .counter("genie_transport_errors_total", &[("role", "client")])
                    .inc();
            }
        }
        result
    }

    fn call_inner(&mut self, body: RequestBody) -> Result<ResponseBody> {
        let telemetry = genie_telemetry::global();
        let id = self.next_id;
        self.next_id += 1;
        let payload = Request { id, body }.encode()?;
        self.bytes_sent += payload.len() as u64 + 4;
        telemetry
            .metrics
            .counter(
                "genie_transport_bytes_total",
                &[("role", "client"), ("dir", "tx")],
            )
            .add(payload.len() as u64 + 4);
        write_frame(&mut self.stream, &payload)?;

        let frame = read_frame(&mut self.stream)?;
        self.bytes_received += frame.len() as u64 + 4;
        telemetry
            .metrics
            .counter(
                "genie_transport_bytes_total",
                &[("role", "client"), ("dir", "rx")],
            )
            .add(frame.len() as u64 + 4);
        let response = Response::decode(frame)?;
        if response.id != id {
            return Err(TransportError::UnexpectedResponse {
                got: response.id,
                expected: id,
            });
        }
        self.calls += 1;
        match response.body {
            ResponseBody::Error(msg) => Err(TransportError::Remote(msg)),
            body => Ok(body),
        }
    }

    /// Total bytes in both directions (incl. framing).
    pub fn total_bytes(&self) -> u64 {
        self.bytes_sent + self.bytes_received
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::TensorPayload;
    use crate::server::Server;

    fn echo_server() -> Server {
        Server::spawn(|| {
            |body: RequestBody| match body {
                RequestBody::Upload { tensor, .. } => ResponseBody::Tensors(vec![tensor]),
                RequestBody::Ping => ResponseBody::Pong,
                RequestBody::Crash => ResponseBody::Error("injected".into()),
                _ => ResponseBody::Ok,
            }
        })
        .unwrap()
    }

    #[test]
    fn tensor_echo_roundtrip() {
        let mut server = echo_server();
        let mut client = Client::connect(server.addr()).unwrap();
        let t = TensorPayload::from_f32(vec![2, 3], &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let reply = client
            .call(RequestBody::Upload {
                key: 1,
                tensor: t.clone(),
            })
            .unwrap();
        assert_eq!(reply, ResponseBody::Tensors(vec![t]));
        server.shutdown();
    }

    #[test]
    fn traffic_counters_accumulate() {
        let mut server = echo_server();
        let mut client = Client::connect(server.addr()).unwrap();
        client.call(RequestBody::Ping).unwrap();
        let after_ping = client.total_bytes();
        assert!(after_ping > 0);
        client
            .call(RequestBody::Upload {
                key: 1,
                tensor: TensorPayload::from_f32(vec![256], &[0.0; 256]),
            })
            .unwrap();
        // A 1 KB payload travels both ways (echo): counters must jump by
        // at least 2 KB beyond the ping baseline.
        assert!(client.total_bytes() > after_ping + 2048);
        assert_eq!(client.calls, 2);
        server.shutdown();
    }

    #[test]
    fn remote_errors_surface() {
        let mut server = echo_server();
        let mut client = Client::connect(server.addr()).unwrap();
        let err = client.call(RequestBody::Crash).unwrap_err();
        assert!(matches!(err, TransportError::Remote(msg) if msg == "injected"));
        server.shutdown();
    }

    #[test]
    fn sequential_ids_survive_many_calls() {
        let mut server = echo_server();
        let mut client = Client::connect(server.addr()).unwrap();
        for _ in 0..100 {
            assert_eq!(client.call(RequestBody::Ping).unwrap(), ResponseBody::Pong);
        }
        assert_eq!(client.calls, 100);
        server.shutdown();
    }
}
