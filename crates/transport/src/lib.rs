//! # genie-transport — real user-space networking
//!
//! The functional counterpart of §3.4's datapath: a dependency-light TCP
//! transport that actually moves Genie's protocol over sockets.
//!
//! - [`frame`] — length-prefixed framing with pre-allocation bounds;
//! - [`wire`] / [`message`] — a hand-rolled binary codec; tensor payloads
//!   are [`bytes::Bytes`] slices referenced zero-copy out of the receive
//!   buffer, graphs travel as the SRG's portable JSON;
//! - [`client`] / [`server`] — blocking RPC with correlation ids, per-
//!   connection handler state, traffic counters (the paper's "network
//!   volume via RPC counters"), and graceful shutdown;
//! - [`retry`] / [`chaos`] — the robustness layer: per-call deadlines
//!   ([`TransportError::Timeout`] instead of hangs), process-global
//!   idempotent request ids deduplicated server-side, capped exponential
//!   backoff with deterministic jitter ([`retry::RetryPolicy`]), and a
//!   seeded chaotic server ([`chaos::ChaosPolicy`]) that stalls or drops
//!   responses after the handler ran;
//! - [`buffer`] — the pinned-buffer pool realizing §3.4's *proactive*
//!   allocation: tensors born in registered memory ship with zero staging
//!   copies, and the pool's counters prove it.
//!
//! The transport knows nothing about graphs or scheduling: the remote
//! executor that interprets [`message::RequestBody::Execute`] lives in
//! `genie-backend`, plugged in through the [`server::Handler`] trait.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod buffer;
pub mod chaos;
pub mod client;
pub mod error;
pub mod frame;
pub mod message;
pub mod retry;
pub mod server;
pub mod wire;

pub use buffer::{PinnedBuf, PinnedPool};
pub use chaos::{ChaosAction, ChaosPolicy};
pub use client::{next_request_id, Client, DEFAULT_DEADLINE};
pub use error::{Result, TransportError};
pub use message::{PayloadKind, Request, RequestBody, Response, ResponseBody, TensorPayload};
pub use retry::RetryPolicy;
pub use server::{Handler, Server};
