//! Execution plans are part of the portable SRG story: a scheduler can
//! run in a different process from the backend, so plans must serialize
//! losslessly.

use genie_cluster::{ClusterState, Topology};
use genie_frontend::capture::CaptureCtx;
use genie_models::{KvState, TransformerConfig, TransformerLm};
use genie_scheduler::{schedule, CostModel, ExecutionPlan, SemanticsAware};

fn decode_plan() -> ExecutionPlan {
    let m = TransformerLm::new_spec(TransformerConfig::tiny());
    let ctx = CaptureCtx::new("decode");
    let cap = m.capture_decode_step(&ctx, 0, &KvState::default());
    cap.logits.sample().mark_output();
    let srg = ctx.finish().srg;
    let topo = Topology::paper_testbed();
    let state = ClusterState::new();
    schedule(
        &srg,
        &topo,
        &state,
        &CostModel::paper_stack(),
        &SemanticsAware::new(),
    )
}

#[test]
fn plans_roundtrip_through_json() {
    let plan = decode_plan();
    let json = serde_json::to_string(&plan).expect("serialize");
    let back: ExecutionPlan = serde_json::from_str(&json).expect("deserialize");

    assert_eq!(back.policy, plan.policy);
    assert_eq!(back.placements, plan.placements);
    assert_eq!(back.transfers, plan.transfers);
    assert_eq!(back.pinned_uploads, plan.pinned_uploads);
    assert_eq!(back.network_bytes(), plan.network_bytes());
    assert_eq!(back.srg.node_count(), plan.srg.node_count());
    // Stable encoding: a second pass is byte-identical.
    let json2 = serde_json::to_string(&back).expect("re-serialize");
    assert_eq!(json, json2);
}

#[test]
fn deserialized_plans_are_executable_in_simulation() {
    let plan = decode_plan();
    let json = serde_json::to_string(&plan).unwrap();
    let back: ExecutionPlan = serde_json::from_str(&json).unwrap();

    let topo = Topology::paper_testbed();
    let cost = CostModel::paper_stack();
    let a = genie_backend::simulate_once(
        &plan,
        &topo,
        &cost,
        genie_netsim::RpcParams::rdma_zero_copy(),
    );
    let b = genie_backend::simulate_once(
        &back,
        &topo,
        &cost,
        genie_netsim::RpcParams::rdma_zero_copy(),
    );
    assert_eq!(a.makespan_s, b.makespan_s);
    assert_eq!(a.network_bytes, b.network_bytes);
}
