//! Elastic scaling (§3.6 "When").
//!
//! Phase annotations let the fleet provision for what the workload is
//! *about to do*: scale out for a parallelizable prefill burst, scale back
//! to one device for the sequential decode that follows. A phase-blind
//! scheduler must provision for the peak at all times.

use genie_srg::Phase;

/// Recommended device count for `pending_work_s` seconds of single-device
/// work in the given phase, targeting `target_latency_s`.
///
/// Parallelizable phases split across devices (up to `max_devices`);
/// sequential phases cannot use more than one device productively, no
/// matter the backlog.
pub fn recommend_devices(
    phase: &Phase,
    pending_work_s: f64,
    target_latency_s: f64,
    max_devices: usize,
) -> usize {
    if pending_work_s <= 0.0 || max_devices == 0 {
        return 0;
    }
    if !phase.is_parallelizable() {
        return 1;
    }
    let needed = (pending_work_s / target_latency_s.max(1e-9)).ceil() as usize;
    needed.clamp(1, max_devices)
}

/// Fleet savings of phase-aware elasticity over static peak provisioning,
/// for a workload alternating `prefill_s` of parallelizable work and
/// `decode_s` of sequential work: returns (device-seconds used by
/// elastic, device-seconds used by static-peak).
pub fn elasticity_savings(
    prefill_s: f64,
    decode_s: f64,
    target_latency_s: f64,
    max_devices: usize,
) -> (f64, f64) {
    let prefill_devs =
        recommend_devices(&Phase::LlmPrefill, prefill_s, target_latency_s, max_devices);
    let decode_devs = recommend_devices(&Phase::LlmDecode, decode_s, target_latency_s, max_devices);
    // Elastic: devices held only for each phase's (shortened) duration.
    let elastic = prefill_devs as f64 * (prefill_s / prefill_devs.max(1) as f64)
        + decode_devs as f64 * decode_s;
    // Static: hold the peak allocation for the whole job.
    let peak = prefill_devs.max(decode_devs) as f64;
    let static_peak = peak * (prefill_s / prefill_devs.max(1) as f64 + decode_s);
    (elastic, static_peak)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prefill_scales_out() {
        // 8 s of prefill backlog at a 1 s target → 8 devices.
        assert_eq!(recommend_devices(&Phase::LlmPrefill, 8.0, 1.0, 16), 8);
        // Capped by the pool.
        assert_eq!(recommend_devices(&Phase::LlmPrefill, 100.0, 1.0, 4), 4);
    }

    #[test]
    fn decode_never_scales_out() {
        assert_eq!(recommend_devices(&Phase::LlmDecode, 100.0, 1.0, 16), 1);
    }

    #[test]
    fn zero_work_needs_nothing() {
        assert_eq!(recommend_devices(&Phase::LlmPrefill, 0.0, 1.0, 8), 0);
    }

    #[test]
    fn elasticity_saves_device_seconds() {
        // 8 s prefill + 100 s decode, 1 s target, up to 8 devices.
        let (elastic, static_peak) = elasticity_savings(8.0, 100.0, 1.0, 8);
        assert!(
            elastic < static_peak,
            "elastic {elastic} vs static {static_peak}"
        );
        // Static holds 8 devices for ~101 s ≈ 808; elastic ≈ 8 + 100.
        assert!(static_peak / elastic > 5.0);
    }
}
