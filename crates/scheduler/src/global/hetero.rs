//! Heterogeneous placement (§3.6 "Where").
//!
//! With semantic graphs as the request language, the global scheduler
//! knows each workload's roofline profile and can match it to hardware:
//! memory-bandwidth-bound work to bandwidth-optimized parts, dense
//! compute to flagships, light interactive serving to the inference tier.

use crate::global::tenant::WorkloadClass;
use genie_cluster::{DevId, GpuClass, Topology};

/// The device class a workload class prefers.
pub fn preferred_class(class: WorkloadClass) -> GpuClass {
    match class {
        // LLM decode and attention-heavy fusion are memory-bandwidth-bound.
        WorkloadClass::Llm | WorkloadClass::Multimodal => GpuClass::BandwidthOptimized,
        // Dense conv stacks ride peak FLOPs.
        WorkloadClass::Vision => GpuClass::Flagship,
        // Recommendation inference is light per request: cheap tier.
        WorkloadClass::Recommendation => GpuClass::Inference,
        WorkloadClass::Generic => GpuClass::Flagship,
    }
}

/// Devices of the preferred class, falling back to the whole pool when
/// the fleet has none of that class.
pub fn affinity_devices(topo: &Topology, class: WorkloadClass) -> Vec<DevId> {
    let wanted = preferred_class(class);
    let matching: Vec<DevId> = topo
        .devices()
        .iter()
        .filter(|d| d.spec.class == wanted)
        .map(|d| d.id)
        .collect();
    if matching.is_empty() {
        topo.devices().iter().map(|d| d.id).collect()
    } else {
        matching
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classes_map_to_hardware() {
        assert_eq!(
            preferred_class(WorkloadClass::Llm),
            GpuClass::BandwidthOptimized
        );
        assert_eq!(preferred_class(WorkloadClass::Vision), GpuClass::Flagship);
        assert_eq!(
            preferred_class(WorkloadClass::Recommendation),
            GpuClass::Inference
        );
    }

    #[test]
    fn affinity_filters_fleet() {
        let topo = Topology::heterogeneous_fleet(2, 25e9);
        let llm = affinity_devices(&topo, WorkloadClass::Llm);
        assert_eq!(llm.len(), 2);
        for d in &llm {
            assert_eq!(topo.device(*d).spec.class, GpuClass::BandwidthOptimized);
        }
    }

    #[test]
    fn homogeneous_pool_falls_back() {
        let topo = Topology::rack(3, 25e9); // all A100 flagships
        let rec = affinity_devices(&topo, WorkloadClass::Recommendation);
        assert_eq!(rec.len(), 3, "no inference tier → whole pool");
    }
}
