//! KV-migration planning for prefill/decode disaggregation.
//!
//! When a request finishes its prefill on a prefill-lane host, its KV
//! prefix must reach a decode-lane host before the first decode step.
//! There are exactly two ways to get it there, and which is cheaper is a
//! genuine cost question the fleet scheduler answers with the same
//! calibrated [`CostModel`] it prices everything else with:
//!
//! - **Ship** the prefix over the fabric: `kv_bytes_per_token × tokens`
//!   at the link's goodput, plus per-call overhead and latency. On the
//!   paper's measured stack (1.4 GB/s, 0.45 s/call) this is expensive
//!   for short prefixes and linear in prefix length.
//! - **Re-prefill** at the decode host from request lineage: one prefill
//!   pass priced by the efficiency-derated roofline — compute grows with
//!   prefix length, but the weight-read floor is paid regardless.
//!
//! On the measured stack, short prefixes re-prefill (the weight read is
//! cheaper than an RPC) and long prefixes ship (derated recompute grows
//! faster than wire time). The crossover *direction* flips with the
//! calibration: on an ideal zero-copy fabric with full-efficiency
//! kernels, per-token recompute beats the wire — long prefixes
//! re-prefill from lineage — which is the §3 translation argument in
//! miniature: semantics beat bytes once the datapath stops taxing them.

use super::GlobalScheduler;
use crate::cost::CostModel;
use genie_cluster::GpuSpec;
use serde::{Deserialize, Serialize};

/// What to do with a finished prefill's KV prefix.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum MigrationDecision {
    /// Ship the resident KV bytes over the fabric to the decode host.
    Ship,
    /// Recompute the prefix at the decode host from request lineage.
    Reprefill,
}

/// One priced migration: both alternatives and the verdict.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct MigrationPlan {
    /// Request being moved.
    pub request: u64,
    /// Source lane (prefill host).
    pub from: u32,
    /// Destination lane (decode host).
    pub to: u32,
    /// Resident prefix length in tokens.
    pub kv_tokens: u64,
    /// Bytes on the wire if shipped.
    pub kv_bytes: u64,
    /// Estimated seconds to ship the prefix.
    pub ship_s: f64,
    /// Estimated seconds to re-prefill at the destination.
    pub reprefill_s: f64,
    /// The cheaper alternative (ties ship: bytes already exist).
    pub decision: MigrationDecision,
}

/// Prices ship-vs-reprefill for one model on one device class.
///
/// Holds the model constants the scheduler crate cannot know itself
/// (it deliberately does not depend on `genie-models`): callers pass
/// `TransformerConfig::{kv_bytes_per_token, flops_per_token,
/// weight_bytes}` at construction.
#[derive(Clone, Debug)]
pub struct KvMigrationPlanner {
    cost: CostModel,
    gpu: GpuSpec,
    /// KV-cache bytes per resident token
    /// (`layers × kv_heads × head_dim × 2 × dtype`).
    pub bytes_per_token: u64,
    /// Forward-pass FLOPs per token (≈ 2 × params).
    pub flops_per_token: f64,
    /// Weight bytes streamed once per prefill pass.
    pub weight_bytes: u64,
}

impl KvMigrationPlanner {
    /// New planner over a cost model, device, and model constants.
    pub fn new(
        cost: CostModel,
        gpu: GpuSpec,
        bytes_per_token: u64,
        flops_per_token: f64,
        weight_bytes: u64,
    ) -> Self {
        KvMigrationPlanner {
            cost,
            gpu,
            bytes_per_token,
            flops_per_token,
            weight_bytes,
        }
    }

    /// Wire bytes for a prefix of `tokens`.
    pub fn kv_bytes(&self, tokens: u64) -> u64 {
        self.bytes_per_token * tokens
    }

    /// Seconds to ship `kv_bytes` over the fabric as one call.
    pub fn ship_time(&self, kv_bytes: u64) -> f64 {
        self.cost.transfer_time(kv_bytes as f64)
    }

    /// Seconds to recompute a `tokens`-long prefix at the destination:
    /// the efficiency-derated roofline of one prefill pass (weight read
    /// plus KV writes on the byte side).
    pub fn reprefill_time(&self, tokens: u64) -> f64 {
        let flops = tokens as f64 * self.flops_per_token;
        let bytes = self.weight_bytes as f64 + self.kv_bytes(tokens) as f64;
        let compute = flops / (self.gpu.peak_flops * self.cost.compute_efficiency);
        let memory = bytes / (self.gpu.mem_bandwidth * self.cost.memory_efficiency);
        self.gpu.kernel_launch_overhead + compute.max(memory)
    }

    /// Price both alternatives for one finished prefill and pick the
    /// cheaper (ties ship: the bytes already exist, recompute burns the
    /// decode host).
    pub fn plan(&self, request: u64, from: u32, to: u32, kv_tokens: u64) -> MigrationPlan {
        let kv_bytes = self.kv_bytes(kv_tokens);
        let ship_s = self.ship_time(kv_bytes);
        let reprefill_s = self.reprefill_time(kv_tokens);
        let decision = if ship_s <= reprefill_s {
            MigrationDecision::Ship
        } else {
            MigrationDecision::Reprefill
        };
        genie_telemetry::global().collector.instant(
            "kv.plan",
            "scheduler",
            genie_telemetry::SemAttrs::new()
                .request(request)
                .with("from", from.to_string())
                .with("to", to.to_string())
                .with("kv_tokens", kv_tokens.to_string())
                .with("ship_s", format!("{ship_s:.6}"))
                .with("reprefill_s", format!("{reprefill_s:.6}"))
                .with("decision", format!("{decision:?}")),
        );
        MigrationPlan {
            request,
            from,
            to,
            kv_tokens,
            kv_bytes,
            ship_s,
            reprefill_s,
            decision,
        }
    }
}

impl GlobalScheduler {
    /// Build a KV-migration planner priced with this fleet's cost model.
    /// The model constants come from the caller (typically
    /// `TransformerConfig`); the device is the decode-side spec.
    pub fn kv_migration_planner(
        &self,
        gpu: GpuSpec,
        bytes_per_token: u64,
        flops_per_token: f64,
        weight_bytes: u64,
    ) -> KvMigrationPlanner {
        KvMigrationPlanner::new(
            self.cost.clone(),
            gpu,
            bytes_per_token,
            flops_per_token,
            weight_bytes,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// GPT-J-ish constants: 458 752 KV bytes/token, ~12.1 GB weights,
    /// ~12.1 GFLOP/token.
    fn gptj_planner(cost: CostModel) -> KvMigrationPlanner {
        KvMigrationPlanner::new(cost, GpuSpec::a100_80gb(), 458_752, 12.1e9, 12_100_000_000)
    }

    #[test]
    fn short_prefix_reprefills_long_prefix_ships_on_paper_stack() {
        let p = gptj_planner(CostModel::paper_stack());
        let short = p.plan(1, 2, 0, 64);
        assert_eq!(short.decision, MigrationDecision::Reprefill);
        assert!(short.reprefill_s < short.ship_s);
        let long = p.plan(2, 2, 0, 4096);
        assert_eq!(long.decision, MigrationDecision::Ship);
        assert!(long.ship_s < long.reprefill_s);
    }

    #[test]
    fn calibration_flips_the_crossover_direction() {
        // The decision is a genuine function of the calibration, and the
        // two stacks flip it in *opposite* directions. On the measured
        // paper stack (derated kernels, 1.4 GB/s RPC) short prefixes
        // recompute and long ones ship. On an ideal zero-copy fabric with
        // full-efficiency kernels, recompute per token beats the wire —
        // long prefixes re-prefill — while tiny prefixes ship because
        // recompute still pays the whole weight-read floor (~6 ms for
        // 12.1 GB at 2 TB/s) and a few KV pages cross 25 GbE faster.
        let ideal = gptj_planner(CostModel::ideal_25g());
        let tiny = ideal.plan(3, 1, 0, 16);
        assert_eq!(tiny.decision, MigrationDecision::Ship);
        for tokens in [256u64, 2048, 16384] {
            let plan = ideal.plan(3, 1, 0, tokens);
            assert_eq!(
                plan.decision,
                MigrationDecision::Reprefill,
                "{tokens} tokens: ship {} vs reprefill {}",
                plan.ship_s,
                plan.reprefill_s
            );
        }
    }

    #[test]
    fn costs_are_monotone_in_prefix_length() {
        let p = gptj_planner(CostModel::paper_stack());
        let mut prev_ship = 0.0;
        let mut prev_re = 0.0;
        for tokens in [0u64, 128, 512, 2048, 8192] {
            let plan = p.plan(4, 1, 0, tokens);
            assert!(plan.ship_s >= prev_ship);
            assert!(plan.reprefill_s >= prev_re);
            assert_eq!(plan.kv_bytes, 458_752 * tokens);
            prev_ship = plan.ship_s;
            prev_re = plan.reprefill_s;
        }
    }

    #[test]
    fn empty_prefix_reprefills() {
        // Nothing resident: shipping still pays the per-call overhead,
        // recompute pays only the weight-read floor.
        let p = gptj_planner(CostModel::paper_stack());
        let plan = p.plan(5, 1, 0, 0);
        assert_eq!(plan.decision, MigrationDecision::Reprefill);
        assert_eq!(plan.kv_bytes, 0);
    }

    #[test]
    fn global_scheduler_exposes_its_calibration() {
        use genie_cluster::Topology;
        let sched = GlobalScheduler::new(Topology::rack(2, 25e9), CostModel::paper_stack());
        let p = sched.kv_migration_planner(GpuSpec::a100_80gb(), 458_752, 12.1e9, 12_100_000_000);
        // Same verdicts as a planner built directly on the same model.
        let direct = gptj_planner(CostModel::paper_stack());
        for tokens in [64u64, 4096] {
            assert_eq!(
                p.plan(6, 1, 0, tokens).decision,
                direct.plan(6, 1, 0, tokens).decision
            );
        }
    }
}
