//! Tenant requests: the unit of fleet-wide scheduling (§3.6).
//!
//! In the Genie vision, every client instance submits its semantic graph
//! to the global scheduler as a first-class description of its workload —
//! not an opaque "give me 2 GPUs".

use genie_srg::stats::GraphStats;
use genie_srg::{Phase, Srg};
use serde::{Deserialize, Serialize};

/// Service-level objective class.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Slo {
    /// Latency-sensitive, user-facing (VQA queries, chat decode).
    Interactive,
    /// Throughput-oriented, deadline in minutes+ (batch scoring,
    /// training).
    Batch,
}

/// Workload class derived from the semantic graph.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum WorkloadClass {
    /// LLM serving (phased, stateful).
    Llm,
    /// Vision inference (regular, pipelinable).
    Vision,
    /// Recommendation (sparse + dense).
    Recommendation,
    /// Multimodal fusion.
    Multimodal,
    /// Anything else.
    Generic,
}

/// One tenant's scheduling request.
#[derive(Clone, Debug)]
pub struct TenantRequest {
    /// Unique tenant id.
    pub id: u64,
    /// Human-readable name.
    pub name: String,
    /// The annotated semantic graph (the request's *description*).
    pub srg: Srg,
    /// SLO class.
    pub slo: Slo,
    /// A fingerprint of the model weights: tenants sharing it run the
    /// same public model and are batchable (§3.6 "How").
    pub model_fingerprint: u64,
}

impl TenantRequest {
    /// Classify the workload from the graph alone.
    pub fn classify(&self) -> WorkloadClass {
        classify_graph(&self.srg)
    }

    /// The dominant phase of the request (most nodes).
    pub fn dominant_phase(&self) -> Phase {
        let mut counts: std::collections::HashMap<Phase, usize> = std::collections::HashMap::new();
        for node in self.srg.nodes() {
            *counts.entry(node.phase.clone()).or_default() += 1;
        }
        counts
            .into_iter()
            .filter(|(p, _)| *p != Phase::Unknown)
            .max_by_key(|(_, c)| *c)
            .map(|(p, _)| p)
            .unwrap_or(Phase::Unknown)
    }
}

/// Classify any SRG into a workload class using its statistics.
pub fn classify_graph(srg: &Srg) -> WorkloadClass {
    let Ok(stats) = GraphStats::of(srg) else {
        return WorkloadClass::Generic;
    };
    match stats.computation_pattern() {
        "sequential, phased (prefill/decode)" => WorkloadClass::Llm,
        "cross-modal fusion" => WorkloadClass::Multimodal,
        "sparse + dense mix" => WorkloadClass::Recommendation,
        _ if stats.modalities.iter().any(|m| m == "vision") => WorkloadClass::Vision,
        _ => WorkloadClass::Generic,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use genie_models::Workload;

    #[test]
    fn zoo_graphs_classify_correctly() {
        let cases = [
            (Workload::LlmServing, WorkloadClass::Llm),
            (Workload::ComputerVision, WorkloadClass::Vision),
            (Workload::Recommendation, WorkloadClass::Recommendation),
            (Workload::Multimodal, WorkloadClass::Multimodal),
        ];
        for (w, expect) in cases {
            let srg = w.spec_graph();
            assert_eq!(classify_graph(&srg), expect, "{}", w.name());
        }
    }

    #[test]
    fn dominant_phase_of_llm_decode() {
        let req = TenantRequest {
            id: 1,
            name: "chat".into(),
            srg: Workload::LlmServing.spec_graph(),
            slo: Slo::Interactive,
            model_fingerprint: 42,
        };
        assert_eq!(req.dominant_phase(), Phase::LlmDecode);
        assert_eq!(req.classify(), WorkloadClass::Llm);
    }
}
