//! Semantics-aware global scheduling (§3.6).
//!
//! Genie instances act as clients to a fleet-wide scheduler, submitting
//! semantic graphs as first-class workload descriptions. The global
//! scheduler answers three questions no intent-blind system can:
//!
//! - **Where** ([`hetero`]) — match workload rooflines to heterogeneous
//!   hardware;
//! - **When** ([`elastic`]) — scale allocations with phase transitions;
//! - **How** ([`batching`]) — co-execute tenants that share a model.

pub mod batching;
pub mod elastic;
pub mod hetero;
pub mod migrate;
pub mod tenant;

use crate::cost::CostModel;
use crate::plan::ExecutionPlan;
use crate::policy::SemanticsAware;
use crate::schedule::schedule;
use genie_cluster::{ClusterState, DevId, Topology};
use genie_netsim::Nanos;
use std::collections::BTreeMap;
use tenant::{TenantRequest, WorkloadClass};

/// The fleet-wide scheduler: admits tenant requests, partitions the fleet
/// by hardware affinity, and plans each tenant onto its partition with
/// the semantics-aware local policy.
pub struct GlobalScheduler {
    topo: Topology,
    state: ClusterState,
    cost: CostModel,
    tenants: Vec<TenantRequest>,
    /// Resources charged to the live state per planned tenant, so a
    /// departure (or a full re-plan) can hand them back exactly.
    planned: BTreeMap<u64, PlannedResources>,
}

/// What one planned tenant holds on the fleet.
#[derive(Clone, Debug, Default)]
struct PlannedResources {
    pinned: Vec<(DevId, u64)>,
    queued: Vec<(DevId, f64)>,
}

/// One event for the incremental [`GlobalScheduler::step`] entry point.
#[derive(Clone, Debug)]
pub enum FleetEvent {
    /// A tenant arrives (same id replaces any waiting request).
    Admit(TenantRequest),
    /// A tenant leaves; its pinned memory and queued work are released.
    Depart(u64),
}

/// Outcome of a planning round.
#[derive(Debug)]
pub struct FleetPlan {
    /// Per-tenant plans, keyed by tenant id.
    pub plans: BTreeMap<u64, ExecutionPlan>,
    /// Batch groups discovered among LLM tenants.
    pub batch_groups: Vec<batching::BatchGroup>,
    /// Devices assigned per tenant.
    pub assignments: BTreeMap<u64, Vec<DevId>>,
    /// Tenants whose plans exceed device memory, with the violations.
    /// Admission control: these must wait, spill, or shrink.
    pub rejected: BTreeMap<u64, Vec<crate::memory::MemoryViolation>>,
}

impl GlobalScheduler {
    /// New scheduler over a fleet.
    pub fn new(topo: Topology, cost: CostModel) -> Self {
        GlobalScheduler {
            state: ClusterState::new(),
            topo,
            cost,
            tenants: Vec::new(),
            planned: BTreeMap::new(),
        }
    }

    /// Admit a tenant request.
    pub fn admit(&mut self, request: TenantRequest) {
        self.tenants.push(request);
    }

    /// Number of admitted tenants.
    pub fn tenant_count(&self) -> usize {
        self.tenants.len()
    }

    /// Mutable live state (tests inject congestion / residents).
    pub fn state_mut(&mut self) -> &mut ClusterState {
        &mut self.state
    }

    /// Plan every admitted tenant from scratch. Previously recorded load
    /// is handed back first, so repeated rounds never double-charge the
    /// fleet; tenants are then admitted in ascending id order (see
    /// [`step`](Self::step) for why order must be deterministic). Queue
    /// state carries across tenants so later ids see earlier load.
    pub fn plan_round(&mut self) -> FleetPlan {
        let ids: Vec<u64> = self.planned.keys().copied().collect();
        for id in ids {
            self.release(id);
        }
        self.step(Nanos::ZERO, Vec::new())
    }

    /// Incremental planning: apply `events` (arrivals and departures) at
    /// simulated time `now`, then plan every tenant that is not already
    /// placed — new arrivals and previously rejected tenants alike — in
    /// ascending tenant-id order.
    ///
    /// The id ordering is the admission-control contract: a departure
    /// frees memory, and whichever waiting tenants fit must re-admit in
    /// the same order every time, independent of arrival interleaving.
    /// (An earlier revision iterated in arrival order, so two rounds
    /// bracketing the same departure could admit different survivors.)
    pub fn step(&mut self, now: Nanos, events: Vec<FleetEvent>) -> FleetPlan {
        for event in events {
            match event {
                FleetEvent::Admit(request) => {
                    self.tenants.retain(|t| t.id != request.id);
                    self.tenants.push(request);
                }
                FleetEvent::Depart(id) => {
                    self.tenants.retain(|t| t.id != id);
                    self.release(id);
                }
            }
        }

        let telemetry = genie_telemetry::global();
        telemetry.collector.instant(
            "fleet.step",
            "scheduler",
            genie_telemetry::SemAttrs::new()
                .with("now_s", format!("{:.6}", now.as_secs_f64()))
                .with("tenants", self.tenants.len().to_string()),
        );

        let mut plans = BTreeMap::new();
        let mut assignments = BTreeMap::new();
        let mut rejected = BTreeMap::new();

        // Discover cross-tenant batch groups among LLM tenants first.
        let mut llm_tenants: Vec<TenantRequest> = self
            .tenants
            .iter()
            .filter(|t| t.classify() == WorkloadClass::Llm)
            .cloned()
            .collect();
        llm_tenants.sort_by_key(|t| t.id);
        let batch_groups = batching::group_by_model(&llm_tenants);

        // Deterministic admission order: ascending tenant id.
        let mut pending: Vec<TenantRequest> = self
            .tenants
            .iter()
            .filter(|t| !self.planned.contains_key(&t.id))
            .cloned()
            .collect();
        pending.sort_by_key(|t| t.id);

        for t in &pending {
            let class = t.classify();
            // Request-scoped causal breadcrumb: one instant per planned
            // tenant, attributed to the tenant id so the causal analyzer
            // can tie fleet scheduling work back to the request.
            telemetry.collector.instant(
                "fleet.plan_tenant",
                "scheduler",
                genie_telemetry::SemAttrs::new()
                    .request(t.id)
                    .with("class", format!("{class:?}")),
            );
            let devices = hetero::affinity_devices(&self.topo, class);
            // Build a filtered sub-topology view by masking queue state:
            // we bias placement by loading non-affine devices heavily.
            let mut masked = self.state.clone();
            for d in self.topo.devices() {
                if !devices.contains(&d.id) {
                    masked.enqueue_work(d.id, 1e6);
                }
            }
            let plan = schedule(
                &t.srg,
                &self.topo,
                &masked,
                &self.cost,
                &SemanticsAware::new(),
            );
            // Admission control: a plan that does not fit is rejected —
            // its load never lands, so later tenants can still admit (and
            // the tenant stays pending for the next step).
            let violations = crate::memory::check(&plan, &self.topo, &self.state);
            if !violations.is_empty() {
                rejected.insert(t.id, violations);
                continue;
            }
            // Record load so the next tenant sees it: queued kernel time
            // and pinned memory — remembered per tenant so a departure
            // can release it.
            let mut resources = PlannedResources::default();
            for (node, loc) in &plan.placements {
                if let Some(dev) = loc.device() {
                    let gpu = &self.topo.device(dev).spec;
                    let secs = self.cost.kernel_time(plan.srg.node(*node), gpu);
                    self.state.enqueue_work(dev, secs);
                    resources.queued.push((dev, secs));
                }
            }
            for (_, dev, bytes) in &plan.pinned_uploads {
                if self.state.alloc(&self.topo, *dev, *bytes).is_ok() {
                    resources.pinned.push((*dev, *bytes));
                }
            }
            let used: Vec<DevId> = {
                let mut v: Vec<DevId> = plan
                    .placements
                    .values()
                    .filter_map(|l| l.device())
                    .collect();
                v.sort_unstable();
                v.dedup();
                v
            };
            self.planned.insert(t.id, resources);
            assignments.insert(t.id, used);
            plans.insert(t.id, plan);
        }

        FleetPlan {
            plans,
            batch_groups,
            assignments,
            rejected,
        }
    }

    /// Hand back everything a planned tenant was charged for.
    fn release(&mut self, id: u64) {
        if let Some(resources) = self.planned.remove(&id) {
            for (dev, bytes) in resources.pinned {
                self.state.release(dev, bytes);
            }
            for (dev, secs) in resources.queued {
                self.state.drain_work(dev, secs);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::tenant::Slo;
    use super::*;
    use genie_models::Workload;

    fn request(id: u64, w: Workload, fp: u64) -> TenantRequest {
        TenantRequest {
            id,
            name: format!("tenant-{id}"),
            srg: w.spec_graph(),
            slo: Slo::Interactive,
            model_fingerprint: fp,
        }
    }

    #[test]
    fn fleet_separates_workload_classes() {
        let topo = Topology::heterogeneous_fleet(2, 25e9);
        let mut sched = GlobalScheduler::new(topo.clone(), CostModel::ideal_25g());
        sched.admit(request(1, Workload::LlmServing, 100));
        sched.admit(request(2, Workload::ComputerVision, 200));
        sched.admit(request(3, Workload::Recommendation, 300));
        let fleet = sched.plan_round();

        // LLM tenant lands on bandwidth-optimized hardware.
        let llm_devs = &fleet.assignments[&1];
        assert!(llm_devs
            .iter()
            .all(|d| topo.device(*d).spec.class == genie_cluster::GpuClass::BandwidthOptimized));
        // Vision tenant on flagships.
        let vis_devs = &fleet.assignments[&2];
        assert!(vis_devs
            .iter()
            .all(|d| topo.device(*d).spec.class == genie_cluster::GpuClass::Flagship));
        // The production DLRM's 66 GB of embedding tables exceed the
        // 24 GB inference tier: admission control must reject it with a
        // concrete violation rather than plan an unexecutable layout.
        assert!(fleet.rejected.contains_key(&3));
        assert!(fleet.rejected[&3].iter().all(|v| v.required > v.free));

        // On an A100 rack (80 GB devices) the same tenant admits.
        let roomy = Topology::rack(2, 25e9);
        let mut sched = GlobalScheduler::new(roomy, CostModel::paper_stack());
        sched.admit(request(3, Workload::Recommendation, 300));
        let fleet = sched.plan_round();
        assert!(fleet.rejected.is_empty());
        assert_eq!(fleet.plans.len(), 1);
    }

    #[test]
    fn shared_model_tenants_form_batch_group() {
        let topo = Topology::heterogeneous_fleet(2, 25e9);
        let mut sched = GlobalScheduler::new(topo, CostModel::ideal_25g());
        sched.admit(request(1, Workload::LlmServing, 777));
        sched.admit(request(2, Workload::LlmServing, 777));
        sched.admit(request(3, Workload::LlmServing, 888));
        let fleet = sched.plan_round();
        let shared = fleet
            .batch_groups
            .iter()
            .find(|g| g.fingerprint == 777)
            .unwrap();
        assert_eq!(shared.tenants, vec![1, 2]);
    }

    #[test]
    fn oversized_tenants_are_rejected() {
        // Five GPT-J tenants pinning ~12 GB each onto a fleet whose
        // bandwidth-optimized tier has 2×48 GB: the fleet admits what
        // fits and rejects the rest with concrete violations.
        let topo = Topology::heterogeneous_fleet(1, 25e9);
        let mut sched = GlobalScheduler::new(topo, CostModel::paper_stack());
        for id in 1..=5u64 {
            sched.admit(request(id, Workload::LlmServing, id));
        }
        let fleet = sched.plan_round();
        assert!(
            !fleet.rejected.is_empty(),
            "48 GB cannot hold 5×12 GB models plus activations"
        );
        assert!(
            fleet.plans.len() + fleet.rejected.len() == 5,
            "every tenant either plans or rejects"
        );
        for violations in fleet.rejected.values() {
            assert!(violations.iter().all(|v| v.required > v.free));
        }
        // At least the first tenants admit.
        assert!(fleet.plans.len() >= 2, "admitted {}", fleet.plans.len());
    }

    #[test]
    fn admission_order_is_deterministic_regardless_of_arrival_order() {
        // Regression: plan_round used to iterate tenants in arrival
        // order, so the same fleet and tenant set admitted different
        // survivors depending on interleaving. Admission is now sorted by
        // tenant id.
        let plan_with_order = |ids: &[u64]| {
            let topo = Topology::heterogeneous_fleet(1, 25e9);
            let mut sched = GlobalScheduler::new(topo, CostModel::paper_stack());
            for &id in ids {
                sched.admit(request(id, Workload::LlmServing, id));
            }
            let fleet = sched.plan_round();
            let admitted: Vec<u64> = fleet.plans.keys().copied().collect();
            let rejected: Vec<u64> = fleet.rejected.keys().copied().collect();
            (admitted, rejected, fleet.assignments)
        };
        let forward = plan_with_order(&[1, 2, 3, 4, 5]);
        let shuffled = plan_with_order(&[4, 2, 5, 1, 3]);
        assert_eq!(
            forward, shuffled,
            "admission must not depend on arrival order"
        );
        assert!(!forward.1.is_empty(), "the fixture must actually overflow");
    }

    #[test]
    fn repeated_rounds_do_not_double_charge_the_fleet() {
        // Regression: a second plan_round used to stack queued work and
        // pinned memory on top of the first, so tenants that fit on round
        // one were rejected on round two.
        let topo = Topology::heterogeneous_fleet(1, 25e9);
        let mut sched = GlobalScheduler::new(topo, CostModel::paper_stack());
        sched.admit(request(1, Workload::LlmServing, 1));
        sched.admit(request(2, Workload::LlmServing, 2));
        let first = sched.plan_round();
        let second = sched.plan_round();
        assert_eq!(
            first.plans.keys().collect::<Vec<_>>(),
            second.plans.keys().collect::<Vec<_>>(),
            "a re-plan of the same tenant set must admit the same tenants"
        );
        assert_eq!(first.rejected.len(), second.rejected.len());
    }

    #[test]
    fn step_readmits_rejected_tenants_after_departure() {
        use genie_netsim::Nanos;
        // Overfill the bandwidth-optimized tier, then depart admitted
        // tenants until the rejected ones fit: each step re-checks the
        // freed memory in ascending id order.
        let topo = Topology::heterogeneous_fleet(1, 25e9);
        let mut sched = GlobalScheduler::new(topo, CostModel::paper_stack());
        let events = (1..=5u64)
            .map(|id| FleetEvent::Admit(request(id, Workload::LlmServing, id)))
            .collect();
        let fleet = sched.step(Nanos::ZERO, events);
        assert!(!fleet.rejected.is_empty(), "fixture must overflow the tier");
        let admitted: Vec<u64> = fleet.assignments.keys().copied().collect();
        let waiting: Vec<u64> = fleet.rejected.keys().copied().collect();

        // Departing the first admitted tenant frees its slice; the
        // lowest-id waiting tenant admits on the next step.
        let fleet2 = sched.step(
            Nanos::from_secs_f64(1.0),
            vec![FleetEvent::Depart(admitted[0])],
        );
        assert!(
            fleet2.plans.contains_key(&waiting[0]),
            "freed memory must re-admit the lowest waiting id: {:?}",
            fleet2.rejected
        );
        // And an empty step is a no-op: nothing pending, nothing planned.
        let fleet3 = sched.step(Nanos::from_secs_f64(2.0), Vec::new());
        assert!(fleet3.plans.is_empty() && fleet3.rejected.is_empty());
    }

    #[test]
    fn later_tenants_see_earlier_load() {
        let topo = Topology::heterogeneous_fleet(2, 25e9);
        let mut sched = GlobalScheduler::new(topo, CostModel::ideal_25g());
        sched.admit(request(1, Workload::LlmServing, 1));
        sched.admit(request(2, Workload::LlmServing, 2));
        let fleet = sched.plan_round();
        // Both are decode-phase LLMs → same class; the second should not
        // necessarily collide with the first if two devices exist.
        let a = &fleet.assignments[&1];
        let b = &fleet.assignments[&2];
        assert!(!a.is_empty() && !b.is_empty());
        assert_ne!(a, b, "load spreading across the affinity partition");
    }
}
