//! Semantics-aware global scheduling (§3.6).
//!
//! Genie instances act as clients to a fleet-wide scheduler, submitting
//! semantic graphs as first-class workload descriptions. The global
//! scheduler answers three questions no intent-blind system can:
//!
//! - **Where** ([`hetero`]) — match workload rooflines to heterogeneous
//!   hardware;
//! - **When** ([`elastic`]) — scale allocations with phase transitions;
//! - **How** ([`batching`]) — co-execute tenants that share a model.

pub mod batching;
pub mod elastic;
pub mod hetero;
pub mod tenant;

use crate::cost::CostModel;
use crate::plan::ExecutionPlan;
use crate::policy::SemanticsAware;
use crate::schedule::schedule;
use genie_cluster::{ClusterState, DevId, Topology};
use std::collections::BTreeMap;
use tenant::{TenantRequest, WorkloadClass};

/// The fleet-wide scheduler: admits tenant requests, partitions the fleet
/// by hardware affinity, and plans each tenant onto its partition with
/// the semantics-aware local policy.
pub struct GlobalScheduler {
    topo: Topology,
    state: ClusterState,
    cost: CostModel,
    tenants: Vec<TenantRequest>,
}

/// Outcome of a planning round.
#[derive(Debug)]
pub struct FleetPlan {
    /// Per-tenant plans, keyed by tenant id.
    pub plans: BTreeMap<u64, ExecutionPlan>,
    /// Batch groups discovered among LLM tenants.
    pub batch_groups: Vec<batching::BatchGroup>,
    /// Devices assigned per tenant.
    pub assignments: BTreeMap<u64, Vec<DevId>>,
    /// Tenants whose plans exceed device memory, with the violations.
    /// Admission control: these must wait, spill, or shrink.
    pub rejected: BTreeMap<u64, Vec<crate::memory::MemoryViolation>>,
}

impl GlobalScheduler {
    /// New scheduler over a fleet.
    pub fn new(topo: Topology, cost: CostModel) -> Self {
        GlobalScheduler {
            state: ClusterState::new(),
            topo,
            cost,
            tenants: Vec::new(),
        }
    }

    /// Admit a tenant request.
    pub fn admit(&mut self, request: TenantRequest) {
        self.tenants.push(request);
    }

    /// Number of admitted tenants.
    pub fn tenant_count(&self) -> usize {
        self.tenants.len()
    }

    /// Mutable live state (tests inject congestion / residents).
    pub fn state_mut(&mut self) -> &mut ClusterState {
        &mut self.state
    }

    /// Plan every admitted tenant. Each tenant is restricted to its
    /// affinity partition (a sub-topology containing only matching
    /// devices) and planned with the semantics-aware policy; queue state
    /// carries across tenants so later arrivals see earlier load.
    pub fn plan_round(&mut self) -> FleetPlan {
        let mut plans = BTreeMap::new();
        let mut assignments = BTreeMap::new();
        let mut rejected = BTreeMap::new();

        // Discover cross-tenant batch groups among LLM tenants first.
        let llm_tenants: Vec<TenantRequest> = self
            .tenants
            .iter()
            .filter(|t| t.classify() == WorkloadClass::Llm)
            .cloned()
            .collect();
        let batch_groups = batching::group_by_model(&llm_tenants);

        for t in &self.tenants {
            let class = t.classify();
            let devices = hetero::affinity_devices(&self.topo, class);
            // Build a filtered sub-topology view by masking queue state:
            // we bias placement by loading non-affine devices heavily.
            let mut masked = self.state.clone();
            for d in self.topo.devices() {
                if !devices.contains(&d.id) {
                    masked.enqueue_work(d.id, 1e6);
                }
            }
            let plan = schedule(
                &t.srg,
                &self.topo,
                &masked,
                &self.cost,
                &SemanticsAware::new(),
            );
            // Admission control: a plan that does not fit is rejected —
            // its load never lands, so later tenants can still admit.
            let violations = crate::memory::check(&plan, &self.topo, &self.state);
            if !violations.is_empty() {
                rejected.insert(t.id, violations);
                continue;
            }
            // Record load so the next tenant sees it: queued kernel time
            // and pinned memory.
            for (node, loc) in &plan.placements {
                if let Some(dev) = loc.device() {
                    let gpu = &self.topo.device(dev).spec;
                    self.state
                        .enqueue_work(dev, self.cost.kernel_time(plan.srg.node(*node), gpu));
                }
            }
            for (_, dev, bytes) in &plan.pinned_uploads {
                let _ = self.state.alloc(&self.topo, *dev, *bytes);
            }
            let used: Vec<DevId> = {
                let mut v: Vec<DevId> = plan
                    .placements
                    .values()
                    .filter_map(|l| l.device())
                    .collect();
                v.sort_unstable();
                v.dedup();
                v
            };
            assignments.insert(t.id, used);
            plans.insert(t.id, plan);
        }

        FleetPlan {
            plans,
            batch_groups,
            assignments,
            rejected,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::tenant::Slo;
    use super::*;
    use genie_models::Workload;

    fn request(id: u64, w: Workload, fp: u64) -> TenantRequest {
        TenantRequest {
            id,
            name: format!("tenant-{id}"),
            srg: w.spec_graph(),
            slo: Slo::Interactive,
            model_fingerprint: fp,
        }
    }

    #[test]
    fn fleet_separates_workload_classes() {
        let topo = Topology::heterogeneous_fleet(2, 25e9);
        let mut sched = GlobalScheduler::new(topo.clone(), CostModel::ideal_25g());
        sched.admit(request(1, Workload::LlmServing, 100));
        sched.admit(request(2, Workload::ComputerVision, 200));
        sched.admit(request(3, Workload::Recommendation, 300));
        let fleet = sched.plan_round();

        // LLM tenant lands on bandwidth-optimized hardware.
        let llm_devs = &fleet.assignments[&1];
        assert!(llm_devs
            .iter()
            .all(|d| topo.device(*d).spec.class == genie_cluster::GpuClass::BandwidthOptimized));
        // Vision tenant on flagships.
        let vis_devs = &fleet.assignments[&2];
        assert!(vis_devs
            .iter()
            .all(|d| topo.device(*d).spec.class == genie_cluster::GpuClass::Flagship));
        // The production DLRM's 66 GB of embedding tables exceed the
        // 24 GB inference tier: admission control must reject it with a
        // concrete violation rather than plan an unexecutable layout.
        assert!(fleet.rejected.contains_key(&3));
        assert!(fleet.rejected[&3].iter().all(|v| v.required > v.free));

        // On an A100 rack (80 GB devices) the same tenant admits.
        let roomy = Topology::rack(2, 25e9);
        let mut sched = GlobalScheduler::new(roomy, CostModel::paper_stack());
        sched.admit(request(3, Workload::Recommendation, 300));
        let fleet = sched.plan_round();
        assert!(fleet.rejected.is_empty());
        assert_eq!(fleet.plans.len(), 1);
    }

    #[test]
    fn shared_model_tenants_form_batch_group() {
        let topo = Topology::heterogeneous_fleet(2, 25e9);
        let mut sched = GlobalScheduler::new(topo, CostModel::ideal_25g());
        sched.admit(request(1, Workload::LlmServing, 777));
        sched.admit(request(2, Workload::LlmServing, 777));
        sched.admit(request(3, Workload::LlmServing, 888));
        let fleet = sched.plan_round();
        let shared = fleet
            .batch_groups
            .iter()
            .find(|g| g.fingerprint == 777)
            .unwrap();
        assert_eq!(shared.tenants, vec![1, 2]);
    }

    #[test]
    fn oversized_tenants_are_rejected() {
        // Five GPT-J tenants pinning ~12 GB each onto a fleet whose
        // bandwidth-optimized tier has 2×48 GB: the fleet admits what
        // fits and rejects the rest with concrete violations.
        let topo = Topology::heterogeneous_fleet(1, 25e9);
        let mut sched = GlobalScheduler::new(topo, CostModel::paper_stack());
        for id in 1..=5u64 {
            sched.admit(request(id, Workload::LlmServing, id));
        }
        let fleet = sched.plan_round();
        assert!(
            !fleet.rejected.is_empty(),
            "48 GB cannot hold 5×12 GB models plus activations"
        );
        assert!(
            fleet.plans.len() + fleet.rejected.len() == 5,
            "every tenant either plans or rejects"
        );
        for violations in fleet.rejected.values() {
            assert!(violations.iter().all(|v| v.required > v.free));
        }
        // At least the first tenants admit.
        assert!(fleet.plans.len() >= 2, "admitted {}", fleet.plans.len());
    }

    #[test]
    fn later_tenants_see_earlier_load() {
        let topo = Topology::heterogeneous_fleet(2, 25e9);
        let mut sched = GlobalScheduler::new(topo, CostModel::ideal_25g());
        sched.admit(request(1, Workload::LlmServing, 1));
        sched.admit(request(2, Workload::LlmServing, 2));
        let fleet = sched.plan_round();
        // Both are decode-phase LLMs → same class; the second should not
        // necessarily collide with the first if two devices exist.
        let a = &fleet.assignments[&1];
        let b = &fleet.assignments[&2];
        assert!(!a.is_empty() && !b.is_empty());
        assert_ne!(a, b, "load spreading across the affinity partition");
    }
}
