//! Cross-tenant decode batching (§3.6 "How").
//!
//! Two tenants decoding against the *same public model* can share one
//! batched kernel invocation: the weights are read from HBM once per step
//! regardless of batch size, so a memory-bound decode step serves `b`
//! requests for little more than the cost of one. Only a scheduler that
//! can see model identity (the weight fingerprint in the semantic graph)
//! can discover this.

use crate::global::tenant::TenantRequest;
use std::collections::BTreeMap;

/// A batch group: tenants sharing a model fingerprint.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BatchGroup {
    /// Shared model fingerprint.
    pub fingerprint: u64,
    /// Tenant ids in the group, sorted.
    pub tenants: Vec<u64>,
}

/// Group batchable tenants by model fingerprint. Singleton groups are
/// returned too (callers decide whether to run them unbatched).
pub fn group_by_model(tenants: &[TenantRequest]) -> Vec<BatchGroup> {
    let mut groups: BTreeMap<u64, Vec<u64>> = BTreeMap::new();
    for t in tenants {
        groups.entry(t.model_fingerprint).or_default().push(t.id);
    }
    groups
        .into_iter()
        .map(|(fingerprint, mut tenants)| {
            tenants.sort_unstable();
            BatchGroup {
                fingerprint,
                tenants,
            }
        })
        .collect()
}

/// Per-step kernel time for a decode batch of size `b`, given the
/// single-request step time split into weight-read time (shared across
/// the batch) and per-request time (KV reads + attention).
///
/// `weight_fraction` is the share of a single-request step spent reading
/// weights (≈ 0.9 for large LLMs at batch 1).
pub fn batched_step_time(single_step_s: f64, weight_fraction: f64, b: usize) -> f64 {
    let b = b.max(1) as f64;
    let shared = single_step_s * weight_fraction.clamp(0.0, 1.0);
    let per_req = single_step_s * (1.0 - weight_fraction.clamp(0.0, 1.0));
    shared + per_req * b
}

/// Throughput multiplier of batching `b` requests versus running them
/// serially.
pub fn batching_speedup(single_step_s: f64, weight_fraction: f64, b: usize) -> f64 {
    let serial = single_step_s * b.max(1) as f64;
    serial / batched_step_time(single_step_s, weight_fraction, b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::global::tenant::Slo;
    use genie_srg::Srg;

    fn tenant(id: u64, fp: u64) -> TenantRequest {
        TenantRequest {
            id,
            name: format!("t{id}"),
            srg: Srg::new("g"),
            slo: Slo::Interactive,
            model_fingerprint: fp,
        }
    }

    #[test]
    fn grouping_by_fingerprint() {
        let tenants = vec![tenant(1, 10), tenant(2, 20), tenant(3, 10), tenant(4, 10)];
        let groups = group_by_model(&tenants);
        assert_eq!(groups.len(), 2);
        let big = groups.iter().find(|g| g.fingerprint == 10).unwrap();
        assert_eq!(big.tenants, vec![1, 3, 4]);
    }

    #[test]
    fn batching_approaches_weight_sharing_limit() {
        // 30 ms step, 90% weight reads: batching 8 is nearly 6× cheaper
        // than 8 serial steps.
        let speedup = batching_speedup(0.030, 0.9, 8);
        assert!(speedup > 4.0, "speedup {speedup}");
        // And is bounded by the serial case for b = 1.
        assert!((batching_speedup(0.030, 0.9, 1) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn compute_bound_workloads_gain_little() {
        // weight_fraction ≈ 0: batching is linear, no win.
        let speedup = batching_speedup(0.030, 0.0, 8);
        assert!((speedup - 1.0).abs() < 1e-9);
    }

    #[test]
    fn batched_time_monotone_in_batch() {
        let t4 = batched_step_time(0.03, 0.9, 4);
        let t8 = batched_step_time(0.03, 0.9, 8);
        assert!(t8 > t4);
        assert!(t8 < 0.03 * 8.0);
    }
}
