//! Sharded placement: honor a capture-time shard assignment, mapping
//! shard *i* to the *i*-th device in the pool.
//!
//! Where the other policies decide placement from graph structure, this
//! one carries a decision already made by the sharding planner
//! ([`genie_srg::shard`] or the sharded model capture): every node's
//! shard id picks its device, so the cut edges the planner priced are
//! exactly the transfers the shared derivation emits. Nodes absent from
//! the map (and collectives, which the planner assigns to their
//! destination shard) ride shard 0.

use super::{place_with, Policy};
use crate::plan::Location;
use crate::view::ClusterView;
use genie_srg::{NodeId, Srg};
use std::collections::BTreeMap;

/// Places each node on the device its shard id selects.
#[derive(Clone, Debug, Default)]
pub struct Sharded {
    /// Shard id per node; missing nodes fall back to shard 0.
    pub shard_of: BTreeMap<NodeId, u32>,
}

impl Sharded {
    /// Policy for a planner-produced assignment.
    pub fn new(shard_of: BTreeMap<NodeId, u32>) -> Self {
        Sharded { shard_of }
    }

    /// Highest shard id referenced (the device count this plan needs).
    pub fn shards(&self) -> u32 {
        self.shard_of.values().max().map_or(0, |&s| s) + 1
    }
}

impl Policy for Sharded {
    fn name(&self) -> &'static str {
        "sharded"
    }

    fn place(&self, srg: &Srg, view: &ClusterView<'_>) -> BTreeMap<NodeId, Location> {
        let devices = view.devices();
        assert!(!devices.is_empty(), "no devices in pool");
        assert!(
            self.shards() as usize <= devices.len(),
            "plan needs {} devices, pool has {}",
            self.shards(),
            devices.len()
        );
        place_with(srg, |id| {
            let shard = self.shard_of.get(&id).copied().unwrap_or(0) as usize;
            Location::Device(devices[shard])
        })
    }
}

#[cfg(test)]
mod tests {
    use super::super::testutil::chain_graph;
    use super::*;
    use crate::cost::CostModel;
    use genie_cluster::{ClusterState, Topology};

    #[test]
    fn nodes_land_on_their_shards_and_sources_on_client() {
        let srg = chain_graph();
        // Alternate compute nodes between two shards.
        let mut shard_of = BTreeMap::new();
        for (i, n) in srg.nodes().filter(|n| !n.op.is_source()).enumerate() {
            shard_of.insert(n.id, (i % 2) as u32);
        }
        let policy = Sharded::new(shard_of.clone());
        assert_eq!(policy.shards(), 2);

        let topo = Topology::rack(2, 25e9);
        let state = ClusterState::new();
        let cost = CostModel::ideal_25g();
        let view = ClusterView::new(&topo, &state, &cost);
        let placed = policy.place(&srg, &view);
        let devices = view.devices();
        for (id, shard) in &shard_of {
            assert_eq!(placed[id], Location::Device(devices[*shard as usize]));
        }
        let input = srg.nodes().find(|n| n.name == "x").unwrap().id;
        assert_eq!(placed[&input], Location::ClientCpu);
    }

    #[test]
    #[should_panic(expected = "devices")]
    fn refuses_pools_smaller_than_the_plan() {
        let srg = chain_graph();
        let mut shard_of = BTreeMap::new();
        for n in srg.nodes() {
            shard_of.insert(n.id, 3);
        }
        let topo = Topology::rack(2, 25e9);
        let state = ClusterState::new();
        let cost = CostModel::ideal_25g();
        let view = ClusterView::new(&topo, &state, &cost);
        Sharded::new(shard_of).place(&srg, &view);
    }
}
