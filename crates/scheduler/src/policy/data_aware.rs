//! Data-aware greedy placement: §2.2's "slightly better" baseline that
//! prices data movement per decision but still sees operations as
//! independent — the placement analogue of the ΔKV execution mode.

use super::{place_with, Policy};
use crate::plan::Location;
use crate::view::ClusterView;
use genie_srg::{NodeId, Srg};
use std::collections::BTreeMap;

/// Greedy minimum-ingress placement: each operation goes to the device
/// that minimizes the bytes that must move to it right now, given where
/// its inputs already landed. With no lookahead and no notion of phases,
/// it gravitates to one device (saving transfers) but can never discover
/// phase-level splits like prefill/decode disaggregation.
#[derive(Clone, Copy, Debug, Default)]
pub struct DataAware;

impl Policy for DataAware {
    fn name(&self) -> &'static str {
        "data_aware"
    }

    fn place(&self, srg: &Srg, view: &ClusterView<'_>) -> BTreeMap<NodeId, Location> {
        let devices = view.devices();
        assert!(!devices.is_empty(), "no devices in pool");
        // Track where producers landed as we sweep in topo order.
        let mut landed: BTreeMap<NodeId, Location> = BTreeMap::new();
        let placements = place_with(srg, |id| {
            let mut best = (f64::INFINITY, devices[0]);
            for &dev in &devices {
                let mut ingress = 0.0;
                for edge in srg.in_edges(id) {
                    let src_loc = landed
                        .get(&edge.src)
                        .copied()
                        .unwrap_or(Location::ClientCpu);
                    if src_loc != Location::Device(dev) {
                        ingress += edge.transfer_bytes();
                    }
                }
                // Small queue-aware tiebreak keeps it from collapsing onto
                // a hot device when ingress ties.
                let score = ingress + view.state.queue_seconds(dev) * 1e3;
                if score < best.0 {
                    best = (score, dev);
                }
            }
            let loc = Location::Device(best.1);
            landed.insert(id, loc);
            loc
        });
        placements
    }
}

#[cfg(test)]
mod tests {
    use super::super::testutil::chain_graph;
    use super::*;
    use crate::cost::CostModel;
    use genie_cluster::{ClusterState, Topology};

    #[test]
    fn chain_collapses_to_one_device() {
        let srg = chain_graph();
        let topo = Topology::rack(4, 25e9);
        let state = ClusterState::new();
        let cost = CostModel::ideal_25g();
        let view = ClusterView::new(&topo, &state, &cost);
        let p = DataAware.place(&srg, &view);
        let used: std::collections::BTreeSet<_> = p.values().filter_map(|l| l.device()).collect();
        assert_eq!(used.len(), 1, "a pure chain has no reason to cross devices");
    }
}
