//! Round-robin placement: the paper's strawman of semantic blindness
//! (§2.2 — "spreading each request across available GPU resources with a
//! round-robin policy").

use super::{place_with, Policy};
use crate::plan::Location;
use crate::view::ClusterView;
use genie_srg::{NodeId, Srg};
use std::collections::BTreeMap;

/// Treats every operation as independent and identical, cycling through
/// devices in topological order. Maximally "fair", maximally oblivious:
/// large stateful tensors ping-pong across the network.
#[derive(Clone, Copy, Debug, Default)]
pub struct RoundRobin;

impl Policy for RoundRobin {
    fn name(&self) -> &'static str {
        "round_robin"
    }

    fn place(&self, srg: &Srg, view: &ClusterView<'_>) -> BTreeMap<NodeId, Location> {
        let devices = view.devices();
        assert!(!devices.is_empty(), "no devices in pool");
        let mut i = 0usize;
        place_with(srg, |_| {
            let d = devices[i % devices.len()];
            i += 1;
            Location::Device(d)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::super::testutil::chain_graph;
    use super::*;
    use crate::cost::CostModel;
    use genie_cluster::{ClusterState, Topology};

    #[test]
    fn cycles_across_devices() {
        let srg = chain_graph();
        let topo = Topology::rack(3, 25e9);
        let state = ClusterState::new();
        let cost = CostModel::ideal_25g();
        let view = ClusterView::new(&topo, &state, &cost);
        let p = RoundRobin.place(&srg, &view);
        let used: std::collections::BTreeSet<_> = p.values().filter_map(|l| l.device()).collect();
        assert_eq!(used.len(), 3, "all devices touched");
        // Inputs stay on the client.
        let input = srg.nodes().find(|n| n.name == "x").unwrap().id;
        assert_eq!(p[&input], Location::ClientCpu);
    }

    #[test]
    fn sources_originate_on_client() {
        let srg = chain_graph();
        let topo = Topology::rack(2, 25e9);
        let state = ClusterState::new();
        let cost = CostModel::ideal_25g();
        let view = ClusterView::new(&topo, &state, &cost);
        let p = RoundRobin.place(&srg, &view);
        for node in srg.nodes() {
            if node.op.is_source() {
                assert_eq!(p[&node.id], Location::ClientCpu, "{} on client", node.name);
            }
        }
    }
}
