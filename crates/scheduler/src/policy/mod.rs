//! Placement policies — the pluggable half of `schedule()`.
//!
//! A policy maps each SRG node to a [`Location`]. Everything else
//! (transfer derivation, handle reuse, cost estimation) is shared
//! machinery in [`crate::schedule`], so policies stay small and
//! comparable. The four built-ins span the design space of §2.2:
//!
//! | policy | §2.2 characterization |
//! |---|---|
//! | [`RoundRobin`] | semantically blind: ops independent *and* identical |
//! | [`LeastLoaded`] | semantically blind with load awareness |
//! | [`DataAware`] | ops independent but *not* identical (ΔKV-grade) |
//! | [`SemanticsAware`] | full SRG semantics (Genie) |

mod data_aware;
mod least_loaded;
mod round_robin;
mod semantics_aware;
mod sharded;

pub use data_aware::DataAware;
pub use least_loaded::LeastLoaded;
pub use round_robin::RoundRobin;
pub use semantics_aware::SemanticsAware;
pub use sharded::Sharded;

use crate::plan::Location;
use crate::view::ClusterView;
use genie_srg::{NodeId, Srg};
use std::collections::BTreeMap;

/// A placement policy.
pub trait Policy {
    /// Stable policy name (appears in plans and reports).
    fn name(&self) -> &'static str;

    /// Assign a location to every node.
    fn place(&self, srg: &Srg, view: &ClusterView<'_>) -> BTreeMap<NodeId, Location>;
}

/// Shared helper: place sources next to their consumers and inputs on the
/// client. `compute_loc` decides where each compute node goes.
pub(crate) fn place_with(
    srg: &Srg,
    mut compute_loc: impl FnMut(NodeId) -> Location,
) -> BTreeMap<NodeId, Location> {
    let mut placements: BTreeMap<NodeId, Location> = BTreeMap::new();
    let order = genie_srg::traverse::topo_order(srg).expect("valid SRG");

    // First pass: compute nodes.
    for &id in &order {
        let node = srg.node(id);
        if node.op.is_source() {
            continue;
        }
        placements.insert(id, compute_loc(id));
    }

    // Second pass: sources. Everything the client holds — model inputs
    // AND weights — originates on the client. Weight edges to remote
    // consumers therefore cross the network, where the shared transfer
    // derivation turns them into one-time pinned uploads (or handle
    // references once resident). This is what makes "re-upload versus pin"
    // an observable cost rather than an accounting fiction.
    for &id in &order {
        if srg.node(id).op.is_source() {
            placements.insert(id, Location::ClientCpu);
        }
    }
    placements
}

#[cfg(test)]
pub(crate) mod testutil {
    use genie_frontend::capture::CaptureCtx;
    use genie_srg::{ElemType, Srg};

    /// A 4-layer matmul chain with weights: enough structure for placement
    /// tests.
    pub fn chain_graph() -> Srg {
        let ctx = CaptureCtx::new("chain");
        let mut x = ctx.input("x", [1, 8], ElemType::F32, None);
        for i in 0..4 {
            let w = ctx.parameter(&format!("w{i}"), [8, 8], ElemType::F32, None);
            x = x.matmul(&w).relu();
        }
        x.mark_output();
        ctx.finish().srg
    }
}
