//! The semantics-aware policy: Genie's placement logic (§3.3).
//!
//! Reads the SRG's annotations and applies, without any per-application
//! code:
//!
//! - **Stateful co-location** — every node in a stateful phase
//!   (`LlmDecode`) lands on the home device of its KV cache, eliminating
//!   cache movement.
//! - **Pipeline parallelism** — `VisionEncode` nodes follow their
//!   `pipeline_stage` attribute across devices so stages overlap.
//! - **Data tiering** — `EmbeddingLookup` goes to the device with the
//!   most free memory; `DenseInteraction` to the fastest compute.
//! - **Modality affinity** — mixed/fusion nodes join the device holding
//!   the largest upstream state.
//! - **Rate-aware output placement** — volume-collapsing ops (`Sample`)
//!   run next to their producer so only the collapsed bytes cross the
//!   network.

use super::{place_with, Policy};
use crate::plan::Location;
use crate::view::ClusterView;
use genie_cluster::DevId;
use genie_srg::{NodeId, OpKind, Phase, Residency, Srg};
use std::collections::BTreeMap;

/// Genie's semantics-aware placement policy.
#[derive(Clone, Copy, Debug, Default)]
pub struct SemanticsAware {
    /// Number of devices to spread pipeline stages across (0 = all).
    pub pipeline_width: usize,
}

impl SemanticsAware {
    /// Pipeline over every available device.
    pub fn new() -> Self {
        SemanticsAware { pipeline_width: 0 }
    }
}

impl Policy for SemanticsAware {
    fn name(&self) -> &'static str {
        "semantics_aware"
    }

    fn place(&self, srg: &Srg, view: &ClusterView<'_>) -> BTreeMap<NodeId, Location> {
        let devices = view.devices();
        assert!(!devices.is_empty(), "no devices in pool");

        // Availability filter: a fleet-level scheduler communicates
        // partition decisions by loading out-of-partition devices; any
        // device queued far beyond the minimum is treated as unavailable.
        let min_q = devices
            .iter()
            .map(|&d| view.state.queue_seconds(d))
            .fold(f64::INFINITY, f64::min);
        let avail: Vec<DevId> = devices
            .iter()
            .copied()
            .filter(|&d| view.state.queue_seconds(d) <= min_q + 1e3)
            .collect();
        let avail = if avail.is_empty() {
            devices.clone()
        } else {
            avail
        };

        // Home device for stateful phases: where the session's resident
        // objects already live if any, else the least-loaded device.
        let home = resident_home(srg, view).unwrap_or_else(|| {
            avail
                .iter()
                .copied()
                .min_by(|&a, &b| {
                    view.state
                        .queue_seconds(a)
                        .partial_cmp(&view.state.queue_seconds(b))
                        .expect("finite queues")
                        .then(a.cmp(&b))
                })
                .expect("avail non-empty")
        });

        let pipe_devs: Vec<DevId> = if self.pipeline_width == 0 {
            avail.clone()
        } else {
            avail
                .iter()
                .copied()
                .take(self.pipeline_width.max(1))
                .collect()
        };

        let by_key = |f: &dyn Fn(DevId) -> f64| -> DevId {
            avail
                .iter()
                .copied()
                .max_by(|&a, &b| f(a).partial_cmp(&f(b)).expect("finite").then(b.cmp(&a)))
                .expect("avail non-empty")
        };
        let tier_mem = by_key(&|d| view.state.mem_free(view.topo, d) as f64);
        let tier_compute = by_key(&|d| view.topo.device(d).spec.peak_flops);

        // Pre-pass: producer placements for rate-aware co-location are
        // resolved lazily via this map as we sweep in topo order.
        let mut landed: BTreeMap<NodeId, DevId> = BTreeMap::new();

        let placements = place_with(srg, |id| {
            let node = srg.node(id);
            let dev = match (&node.phase, &node.op) {
                // Collapse-rate ops sit with their producer: ship 8 bytes,
                // not 200 KB of logits.
                (_, OpKind::Sample) => srg
                    .predecessors(id)
                    .first()
                    .and_then(|p| landed.get(p))
                    .copied()
                    .unwrap_or(home),
                // Stateful co-location.
                (Phase::LlmDecode, _) | (Phase::LlmPrefill, _) => home,
                // Pipelined CNN inference.
                (Phase::VisionEncode, _) => {
                    let stage: usize = node
                        .attrs
                        .get("pipeline_stage")
                        .and_then(|s| s.parse().ok())
                        .unwrap_or(0);
                    pipe_devs[stage % pipe_devs.len()]
                }
                // Tiering.
                (Phase::EmbeddingLookup, _) => tier_mem,
                (Phase::DenseInteraction, _) => tier_compute,
                // Fusion: follow the heaviest upstream producer.
                (Phase::ModalityFusion, _) => srg
                    .in_edges(id)
                    .max_by(|a, b| {
                        a.transfer_bytes()
                            .partial_cmp(&b.transfer_bytes())
                            .expect("finite bytes")
                    })
                    .and_then(|e| landed.get(&e.src))
                    .copied()
                    .unwrap_or(home),
                // Unknown phases: stay near inputs (home).
                _ => home,
            };
            landed.insert(id, dev);
            Location::Device(dev)
        });
        placements
    }
}

/// If the cluster already pins resident objects for this session's
/// stateful tensors, reuse their device (sessions stick to their cache).
fn resident_home(srg: &Srg, view: &ClusterView<'_>) -> Option<DevId> {
    for edge in srg.edges() {
        let src = srg.node(edge.src);
        if src.residency == Residency::StatefulKvCache {
            if let Some(obj) = view.state.resident(edge.tensor.0) {
                return Some(obj.device);
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::CostModel;
    use genie_cluster::{ClusterState, ResidentObject, Topology};
    use genie_frontend::capture::CaptureCtx;
    use genie_models::{CnnConfig, SimpleCnn, TransformerConfig, TransformerLm};

    fn view_fixture(
        topo: &Topology,
        state: &ClusterState,
        cost: &CostModel,
    ) -> ClusterView<'static> {
        // SAFETY-free lifetime juggling: tests just leak.
        let topo: &'static Topology = Box::leak(Box::new(topo.clone()));
        let state: &'static ClusterState = Box::leak(Box::new(state.clone()));
        let cost: &'static CostModel = Box::leak(Box::new(cost.clone()));
        ClusterView::new(topo, state, cost)
    }

    #[test]
    fn decode_colocates_on_one_device() {
        let m = TransformerLm::new_spec(TransformerConfig::gptj_6b());
        let ctx = CaptureCtx::new("d");
        let cap = m.capture_decode_step(&ctx, 0, &genie_models::KvState::default());
        cap.logits.sample().mark_output();
        let srg = ctx.finish().srg;

        let topo = Topology::rack(4, 25e9);
        let state = ClusterState::new();
        let cost = CostModel::ideal_25g();
        let view = view_fixture(&topo, &state, &cost);
        let p = SemanticsAware::new().place(&srg, &view);
        let used: std::collections::BTreeSet<_> = p.values().filter_map(|l| l.device()).collect();
        assert_eq!(used.len(), 1, "decode must pin to the cache's device");
    }

    #[test]
    fn session_follows_existing_resident_cache() {
        let m = TransformerLm::new_spec(TransformerConfig::gptj_6b());
        let ctx = CaptureCtx::new("d");
        let cap = m.capture_decode_step(&ctx, 0, &genie_models::KvState::default());
        cap.logits.sample().mark_output();
        let srg = ctx.finish().srg;

        // Find a stateful tensor id and pin it on device 2.
        let kv_tensor = srg
            .edges()
            .find(|e| srg.node(e.src).residency == Residency::StatefulKvCache)
            .unwrap()
            .tensor;
        let topo = Topology::rack(4, 25e9);
        let mut state = ClusterState::new();
        state
            .register_resident(
                &topo,
                ResidentObject {
                    key: kv_tensor.0,
                    device: DevId(2),
                    bytes: 1,
                    epoch: 1,
                },
            )
            .unwrap();
        // Make another device idle-est so least-loaded would pick it.
        state.enqueue_work(DevId(2), 10.0);

        let cost = CostModel::ideal_25g();
        let view = view_fixture(&topo, &state, &cost);
        let p = SemanticsAware::new().place(&srg, &view);
        let used: std::collections::BTreeSet<_> = p.values().filter_map(|l| l.device()).collect();
        assert_eq!(
            used,
            [DevId(2)].into_iter().collect(),
            "the session must follow its pinned cache, even to a busy device"
        );
    }

    #[test]
    fn vision_pipeline_spreads_stages() {
        let m = SimpleCnn::new_spec(CnnConfig::resnet_like());
        let ctx = CaptureCtx::new("v");
        m.capture_inference(&ctx, 1, None).mark_output();
        let mut srg = ctx.finish().srg;
        genie_frontend::patterns::run_all(&mut srg);

        let topo = Topology::rack(4, 25e9);
        let state = ClusterState::new();
        let cost = CostModel::ideal_25g();
        let view = view_fixture(&topo, &state, &cost);
        let p = SemanticsAware::new().place(&srg, &view);
        let used: std::collections::BTreeSet<_> = p.values().filter_map(|l| l.device()).collect();
        assert!(used.len() >= 3, "8 stages over 4 devices: {used:?}");
    }

    #[test]
    fn sample_sits_with_logits_producer() {
        let m = TransformerLm::new_spec(TransformerConfig::gptj_6b());
        let ctx = CaptureCtx::new("d");
        let cap = m.capture_decode_step(&ctx, 0, &genie_models::KvState::default());
        let tok = cap.logits.sample();
        tok.mark_output();
        let srg = ctx.finish().srg;

        let topo = Topology::rack(2, 25e9);
        let state = ClusterState::new();
        let cost = CostModel::ideal_25g();
        let view = view_fixture(&topo, &state, &cost);
        let p = SemanticsAware::new().place(&srg, &view);
        assert_eq!(p[&tok.node], p[&cap.logits.node]);
    }
}
